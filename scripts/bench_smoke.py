#!/usr/bin/env python
"""Kernel-layer regression smoke check.

Two gates, both against the checked-in ``BENCH_kernels.json``:

1. **Speedup** — re-times the tiny fixed smoke benchmark (see
   :mod:`repro.experiments.kernel_bench`) and compares against the
   recorded ``smoke.baseline_speedup``.  Exits non-zero when the current
   speedup drops below half the baseline — i.e. a >2x regression of the
   vectorized backend relative to the scalar one, which is what a kernel
   silently degrading to per-vertex work looks like.  The 2x slack
   absorbs ordinary machine-to-machine noise.
2. **Disabled-observability overhead** — times the vectorized and scalar
   runs under an explicitly disabled ``repro.obs`` registry, in the same
   process, and requires their time *ratio* to stay within
   ``--obs-limit`` (default +5 %) of the recorded pre-instrumentation
   ``smoke.vectorized_s / smoke.python_s``.  The ratio form cancels host
   speed drift (shared runners can be tens of percent slower than the
   box that recorded the baseline) while still amplifying per-run
   instrumentation creep ~10x on the short vectorized side.  This is
   what keeps the instrumentation an honest no-op for library users who
   never opt in.

A third gate runs against ``BENCH_hw.json`` (when present):

3. **Accelerator engine speedup** — re-times the batched accelerator
   engine against the event engine on a small fixed graph (exact parity
   asserted first) and compares against the recorded
   ``smoke.baseline_speedup`` the same way as gate 1.  Catches the
   batched engine's vectorized precompute silently regressing.

A fourth gate runs against ``BENCH_service.json``:

4. **Service micro-batching win** — re-runs the closed-loop fleet of
   small jobs through the coloring service with batching on vs off
   (byte parity with direct ``repro.color`` asserted first) and compares
   the throughput win against the recorded ``smoke.baseline_speedup``.
   The allowed factor is more generous (``--service-factor``, default 4)
   because closed-loop service timings carry scheduler noise that kernel
   micro-benchmarks do not; what the gate reliably catches is the batch
   lane silently falling apart (every job running solo again).

Two more gates cover the optional compiled kernel tier
(``repro.kernels.native``); both **auto-skip** — reported, not failed —
when no native backend is available, because the tier is opt-in by
design:

5. **Native kernel speedup** — times the raw scatter-OR + first-free
   kernels, vectorized vs compiled (bit-identity asserted first), and
   requires an absolute >= 3x win.  An absolute floor, not a baseline
   ratio: the failure mode is the compiled path silently degrading to
   the vectorized fallback, which reads as ~1x.
6. **Native replay speedup** — times the batched accelerator engine with
   ``replay="python"`` vs ``replay="native"`` (exact stats parity
   asserted first) and requires >= 1.2x; the whole-run number is diluted
   by the shared vectorized precompute, hence the modest floor.

A seventh gate runs against ``BENCH_streaming.json``:

7. **Streaming-lane speedup** — replays the fixed RMAT stream through a
   live service session (validity asserted after every batch, untimed)
   and requires the sustained deltas/sec to beat the naive per-batch
   full recolor by an **absolute >= 10x** (``--streaming-floor``).  An
   absolute floor, not a baseline ratio: the failure mode is the
   incremental path silently degrading to per-batch full recolors,
   which reads as ~1x regardless of host speed.

An eighth gate runs against ``BENCH_mesh.json``:

8. **Mesh worker scaling** — re-runs the closed-loop fleet through a
   2-worker and a 1-worker mesh (byte parity with direct ``repro.color``
   asserted across every registry stand-in, both data paths, before any
   timing) and requires an absolute >= 1.3x throughput win
   (``--mesh-floor``).  **Auto-skips with the reason reported** on
   single-CPU hosts, where N processes time-slicing one core cannot
   scale — same honesty rule as the kernel bench's worker-scaling
   block, which records ``host_cpus`` for the same reason.

A ninth gate runs against ``BENCH_router.json``:

9. **Fitted routing quality** — refits the decision surface from the
   checked-in scenario-sweep matrix and re-scores both routing policies
   against the *recorded* per-backend seconds (deterministic — catches
   fit or policy regressions without re-timing anything), requiring the
   fitted router to match the measured-fastest parity-neutral backend on
   >= ``--router-agreement-floor`` of points and to cut mean routed
   latency vs the hand-set constants by >= ``--router-reduction-floor``.
   A small live probe then boots fitted and constant services and
   asserts both produce colorings byte-identical to direct
   ``repro.color`` — routing may only ever change which backend runs,
   never the colors.

A tenth gate runs against ``BENCH_hbm.json``:

10. **Memory profiles + compressed layouts** — fully deterministic
    (modeled cycles, no wall clock): asserts exact event-vs-batched
    stats/colors parity on every registered memory profile under all
    three edge layouts, then requires the delta-compressed layout to cut
    modeled edge-read cycles (``edge_blocks_fetched *
    dram_stream_cycles``) by >= ``--hbm-reduction-floor`` (default 15 %)
    on every skewed stand-in.  Catches a layout or profile silently
    breaking the engine parity contract, or the compression degrading to
    the plain encoding.

Usage:

    python scripts/bench_smoke.py [--factor 2.0] [--repeats 3]
        [--obs-limit 1.05] [--skip-hw] [--skip-service] [--skip-native]
        [--skip-streaming] [--skip-mesh] [--skip-router] [--skip-hbm]
        [--service-factor 4.0] [--streaming-floor 10.0] [--mesh-floor 1.3]
        [--router-agreement-floor 0.9] [--router-reduction-floor 0.10]
        [--hbm-reduction-floor 0.15]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import (  # noqa: E402
    check_hbm_smoke,
    check_hw_native_smoke,
    check_hw_smoke,
    check_mesh_smoke,
    check_native_smoke,
    check_obs_overhead,
    check_router_smoke,
    check_service_smoke,
    check_smoke,
    check_streaming_smoke,
    load_hbm_results,
    load_hw_results,
    load_mesh_results,
    load_results,
    load_router_results,
    load_service_results,
    load_streaming_results,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed slowdown vs the baseline speedup (default: 2.0)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats; the best run counts (default: 3)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="result JSON to compare against (default: repo BENCH_kernels.json)",
    )
    parser.add_argument(
        "--obs-limit",
        type=float,
        default=1.05,
        help="allowed obs-disabled time vs the baseline vectorized_s "
             "(default: 1.05 = +5%%)",
    )
    parser.add_argument(
        "--hw-baseline",
        type=Path,
        default=None,
        help="hw result JSON to compare against (default: repo BENCH_hw.json)",
    )
    parser.add_argument(
        "--skip-hw",
        action="store_true",
        help="skip the accelerator-engine gate",
    )
    parser.add_argument(
        "--service-baseline",
        type=Path,
        default=None,
        help="service result JSON to compare against "
             "(default: repo BENCH_service.json)",
    )
    parser.add_argument(
        "--service-factor",
        type=float,
        default=4.0,
        help="allowed slowdown vs the baseline micro-batching win "
             "(default: 4.0 — service timings are noisier)",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the service micro-batching gate",
    )
    parser.add_argument(
        "--skip-native",
        action="store_true",
        help="skip the native kernel-tier gates",
    )
    parser.add_argument(
        "--streaming-baseline",
        type=Path,
        default=None,
        help="streaming result JSON to echo alongside the gate "
             "(default: repo BENCH_streaming.json)",
    )
    parser.add_argument(
        "--streaming-floor",
        type=float,
        default=10.0,
        help="absolute floor for the session-lane speedup over naive "
             "per-batch full recolor (default: 10.0)",
    )
    parser.add_argument(
        "--skip-streaming",
        action="store_true",
        help="skip the streaming session-lane gate",
    )
    parser.add_argument(
        "--mesh-baseline",
        type=Path,
        default=None,
        help="mesh result JSON to echo alongside the gate "
             "(default: repo BENCH_mesh.json)",
    )
    parser.add_argument(
        "--mesh-floor",
        type=float,
        default=1.3,
        help="absolute floor for the 2-worker mesh's throughput win over "
             "1 worker on multi-CPU hosts (default: 1.3)",
    )
    parser.add_argument(
        "--skip-mesh",
        action="store_true",
        help="skip the mesh worker-scaling gate",
    )
    parser.add_argument(
        "--router-baseline",
        type=Path,
        default=None,
        help="router result JSON to refit and re-score "
             "(default: repo BENCH_router.json)",
    )
    parser.add_argument(
        "--router-agreement-floor",
        type=float,
        default=0.9,
        help="fraction of sweep points where the fitted router must match "
             "the measured-fastest parity-neutral backend (default: 0.9)",
    )
    parser.add_argument(
        "--router-reduction-floor",
        type=float,
        default=0.10,
        help="required mean-latency reduction of fitted over constant "
             "routing on the recorded matrix (default: 0.10)",
    )
    parser.add_argument(
        "--skip-router",
        action="store_true",
        help="skip the fitted-routing gate",
    )
    parser.add_argument(
        "--hbm-baseline",
        type=Path,
        default=None,
        help="hbm result JSON to echo alongside the gate "
             "(default: repo BENCH_hbm.json)",
    )
    parser.add_argument(
        "--hbm-reduction-floor",
        type=float,
        default=0.15,
        help="required delta-compressed edge-read-cycle reduction on "
             "every skewed stand-in (default: 0.15)",
    )
    parser.add_argument(
        "--skip-hbm",
        action="store_true",
        help="skip the memory-profile/layout gate",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_results(args.baseline)
    except FileNotFoundError as e:
        print(f"no baseline found ({e.filename}); run benchmarks/bench_kernels.py")
        return 1
    ok, current, threshold = check_smoke(
        baseline, factor=args.factor, repeats=args.repeats
    )
    recorded = float(baseline["smoke"]["baseline_speedup"])
    print(
        f"smoke speedup: current {current:.2f}x, "
        f"baseline {recorded:.2f}x, threshold {threshold:.2f}x"
    )
    if not ok:
        print("FAIL: vectorized backend regressed more than the allowed factor")
        return 1

    obs_ok, obs_current, obs_threshold = check_obs_overhead(
        baseline, limit=args.obs_limit, repeats=max(args.repeats, 5)
    )
    print(
        f"obs-disabled time ratio (vectorized/python): "
        f"current {obs_current:.4f}, threshold {obs_threshold:.4f} "
        f"(baseline x {args.obs_limit:.2f})"
    )
    if not obs_ok:
        print("FAIL: disabled observability costs more than the allowed overhead")
        return 1

    if not args.skip_hw:
        try:
            hw_baseline = load_hw_results(args.hw_baseline)
        except FileNotFoundError as e:
            print(f"no hw baseline found ({e.filename}); run benchmarks/bench_hw.py")
            return 1
        hw_ok, hw_current, hw_threshold = check_hw_smoke(
            hw_baseline, factor=args.factor, repeats=args.repeats
        )
        hw_recorded = float(hw_baseline["smoke"]["baseline_speedup"])
        print(
            f"hw engine speedup: current {hw_current:.2f}x, "
            f"baseline {hw_recorded:.2f}x, threshold {hw_threshold:.2f}x"
        )
        if not hw_ok:
            print("FAIL: batched accelerator engine regressed more than the "
                  "allowed factor")
            return 1

    if not args.skip_service:
        try:
            service_baseline = load_service_results(args.service_baseline)
        except FileNotFoundError as e:
            print(f"no service baseline found ({e.filename}); "
                  "run benchmarks/bench_service.py")
            return 1
        svc_ok, svc_current, svc_threshold = check_service_smoke(
            service_baseline, factor=args.service_factor, repeats=args.repeats
        )
        svc_recorded = float(service_baseline["smoke"]["baseline_speedup"])
        print(
            f"service micro-batching win: current {svc_current:.2f}x, "
            f"baseline {svc_recorded:.2f}x, threshold {svc_threshold:.2f}x"
        )
        if not svc_ok:
            print("FAIL: service micro-batching regressed more than the "
                  "allowed factor")
            return 1

    if not args.skip_streaming:
        try:
            streaming_baseline = load_streaming_results(args.streaming_baseline)
        except FileNotFoundError as e:
            print(f"no streaming baseline found ({e.filename}); "
                  "run benchmarks/bench_streaming.py")
            return 1
        str_ok, str_current, str_threshold = check_streaming_smoke(
            streaming_baseline, floor=args.streaming_floor, repeats=args.repeats
        )
        str_recorded = float(streaming_baseline["smoke"]["baseline_speedup"])
        print(
            f"streaming session-lane speedup: current {str_current:.2f}x, "
            f"recorded {str_recorded:.2f}x, floor {str_threshold:.2f}x"
        )
        if not str_ok:
            print("FAIL: session lane fell below the absolute floor over "
                  "naive per-batch full recolor")
            return 1

    if not args.skip_mesh:
        try:
            mesh_baseline = load_mesh_results(args.mesh_baseline)
        except FileNotFoundError as e:
            print(f"no mesh baseline found ({e.filename}); "
                  "run benchmarks/bench_mesh.py")
            return 1
        mesh_ok, mesh_current, mesh_threshold = check_mesh_smoke(
            floor=args.mesh_floor, repeats=args.repeats
        )
        if mesh_ok is None:
            print(
                f"mesh worker scaling: skipped (host has "
                f"{int(mesh_current)} CPU(s); N processes time-slice one "
                f"core — baseline recorded host_cpus="
                f"{mesh_baseline.get('host_cpus')})"
            )
        else:
            mesh_recorded = float(
                mesh_baseline["smoke"]["baseline_speedup"]
            )
            print(
                f"mesh worker scaling: current {mesh_current:.2f}x, "
                f"recorded {mesh_recorded:.2f}x, floor {mesh_threshold:.2f}x"
            )
            if not mesh_ok:
                print("FAIL: 2-worker mesh fell below the absolute "
                      "throughput floor over 1 worker")
                return 1

    if not args.skip_router:
        try:
            router_baseline = load_router_results(args.router_baseline)
        except FileNotFoundError as e:
            print(f"no router baseline found ({e.filename}); "
                  "run benchmarks/bench_router.py")
            return 1
        rt_ok, rt_current, rt_floors = check_router_smoke(
            router_baseline,
            agreement_floor=args.router_agreement_floor,
            reduction_floor=args.router_reduction_floor,
        )
        print(
            f"fitted routing: agreement {rt_current['agreement']:.2f} "
            f"(floor {rt_floors['agreement']:.2f}), latency reduction "
            f"{rt_current['latency_reduction']:.2f} "
            f"(floor {rt_floors['latency_reduction']:.2f}), "
            f"{rt_current['parity_colorings_checked']} colorings "
            "byte-checked against direct repro.color"
        )
        if not rt_ok:
            print("FAIL: fitted routing fell below the agreement or "
                  "latency-reduction floor (or broke coloring parity)")
            return 1

    if not args.skip_hbm:
        try:
            hbm_baseline = load_hbm_results(args.hbm_baseline)
        except FileNotFoundError as e:
            print(f"no hbm baseline found ({e.filename}); "
                  "run benchmarks/bench_hbm.py")
            return 1
        hbm_ok, hbm_current, hbm_threshold = check_hbm_smoke(
            hbm_baseline, floor=args.hbm_reduction_floor
        )
        hbm_recorded = float(
            hbm_baseline["smoke"]["min_delta_reduction"]
        )
        print(
            f"hbm profile/layout gate: parity ok, min delta-compressed "
            f"reduction current {hbm_current:.1%}, recorded "
            f"{hbm_recorded:.1%}, floor {hbm_threshold:.1%}"
        )
        if not hbm_ok:
            print("FAIL: delta-compressed layout fell below the "
                  "edge-read-cycle reduction floor")
            return 1

    if not args.skip_native:
        nat_ok, nat_current, nat_threshold = check_native_smoke(
            repeats=args.repeats
        )
        if nat_ok is None:
            from repro.kernels import native

            print(f"native kernels: skipped ({native.unavailable_reason()})")
        else:
            print(
                f"native kernel speedup: current {nat_current:.2f}x, "
                f"floor {nat_threshold:.2f}x"
            )
            if not nat_ok:
                print("FAIL: compiled kernels fell below the acceptance floor")
                return 1
            rep_ok, rep_current, rep_threshold = check_hw_native_smoke(
                repeats=args.repeats
            )
            print(
                f"native replay speedup: current {rep_current:.2f}x, "
                f"floor {rep_threshold:.2f}x"
            )
            if not rep_ok:
                print("FAIL: compiled replay fell below the acceptance floor")
                return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
