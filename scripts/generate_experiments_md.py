#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the full experiment suite (a few minutes) and writes the markdown
report.  The benchmark harness (``pytest benchmarks/``) prints the same
data; this script is the canonical snapshot recorded in the repository.

Run:  python scripts/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import (
    fig3a_breakdown,
    fig3b_overlap,
    fig11_ablation,
    fig12_scaling,
    fig13_comparison,
    fig14_resources,
    report,
    table2_preprocessing,
    table3_datasets,
    table4_colors,
)
from repro.hw import multiport_bram_comparison


def block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def main(out_path: str = "EXPERIMENTS.md") -> None:
    t0 = time.time()
    parts: list[str] = []
    w = parts.append

    w("# EXPERIMENTS — paper vs measured\n")
    w(
        "Every table and figure of the paper's evaluation, regenerated on the\n"
        "synthetic stand-in suite (see DESIGN.md §1 for the substitutions and\n"
        "§4 for the calibration policy).  Regenerate this file with\n"
        "`python scripts/generate_experiments_md.py`; the same data prints\n"
        "from `pytest benchmarks/ --benchmark-only`.\n\n"
        "**Reading guide.** Absolute times are *modelled* (cycle-approximate\n"
        "simulator + calibrated CPU/GPU cost models over stand-in graphs), so\n"
        "only the *shape* — who wins, by what factor, where the crossovers\n"
        "fall — is comparable with the paper.  Each section states the paper's\n"
        "claim and whether it reproduces.\n\n"
        "**Engines and tiers.** All accelerator results below come from the\n"
        "event-driven reference engine on the default stand-in tier.  The\n"
        "epoch-batched fast path (`engine=\"batched\"`, exact-parity contract,\n"
        "~10x wall clock — see docs/performance.md and BENCH_hw.json) and the\n"
        "~10x larger paper-scale tier (`tier=\"paper\"`,\n"
        "`BITCOLOR_PAPER_TIER=1` on the Fig 12 benchmark driver) exist for\n"
        "larger sweeps; the batched engine reproduces these tables exactly.\n"
    )

    # Table 3 first: the workload inventory everything else runs on.
    w("\n## Table 3 — datasets\n")
    w("Paper: ten SNAP graphs (4.1 K – 65.6 M vertices).  Here: seeded\n"
      "synthetic stand-ins matched on topology class, average degree, and the\n"
      "HDV cache-coverage fraction `min(1, 512K / paper_nodes)`.\n\n")
    w(block(report.render_table3(table3_datasets())))

    w("\n## Table 2 — preprocessing vs coloring time\n")
    w("**Paper claim:** DBG reordering is cheap relative to coloring\n"
      "(1–15 % across graphs, e.g. CF 80.7 s vs 757.5 s = 10.6 %).\n"
      "**Measured (modelled at paper scale):** 2.9–12.1 %, same conclusion —\n"
      "preprocessing is amortised.  **Reproduces.**\n\n")
    w(block(report.render_table2(table2_preprocessing())))

    w("\n## Figure 3(a) — CPU stage breakdown\n")
    fig3a = fig3a_breakdown()
    agg = fig3a["aggregate"]
    w("**Paper:** Stage0 39.24 %, Stage1 46.53 %, Stage2 14.23 % — color\n"
      "traversal is the bottleneck.  **Measured:** the cycle-weighted\n"
      f"aggregate puts Stage1 at {100 * agg['stage1']:.1f} % and Stage0 at\n"
      f"{100 * agg['stage0']:.1f} %; Stage1 dominates, as the paper argues.\n"
      "Stage2 is smaller than the paper's 14 % (our per-vertex overhead\n"
      "constant is conservative).  **Reproduces (direction).**\n\n")
    w(block(report.render_fig3a(fig3a)))

    w("\n## Figure 3(b) — neighbourhood overlap ratio\n")
    f3b = fig3b_overlap()
    k1 = 100 * f3b["average"][1]
    w("**Paper:** most ratios ≤ 10 %, average 4.96 % at small intervals.\n"
      f"**Measured:** average {k1:.1f} % at interval 1, rising with window\n"
      "size; the community stand-ins (CD/CA) sit in the 10–20 % band the\n"
      "paper's CA shows.  **Reproduces.**\n\n")
    w(block(report.render_fig3b(f3b)))

    w("\n## Figure 11 — single-BWPE optimization ablation\n")
    w("**Paper:** cumulative HDC→BWC→MGR→PUV removes 88.63 % of DRAM access\n"
      "time, 66.89 % of computation, 82.91 % of total time vs BSL; HDC alone\n"
      "eliminates nearly all DRAM traffic on cache-resident graphs (CD) and\n"
      "~55 % on large ones; MGR adds >10 % DRAM savings on road graphs.\n"
      "**Measured:** see the per-graph tables; aggregate reductions printed at\n"
      "the end.  Every step is monotone; HDC dominates on cache-resident\n"
      "graphs; MGR matters most on roads.  **Reproduces.**\n\n")
    w(block(report.render_fig11(fig11_ablation())))

    w("\n## Figure 12 — scaling with parallelism\n")
    w("**Paper:** P=16 gives 3.92×–7.01× over one BWPE; sublinear due to data\n"
      "conflicts.  **Measured:** 5.8×–10× — same sublinear shape, with the\n"
      "loss split across DCT stalls, dispatch serialization and shared DRAM\n"
      "channels.  Road graphs show P=2 speedups slightly above 2× because\n"
      "conflict forwarding replaces DRAM reads with register forwards (a real\n"
      "property of the design the paper does not isolate).  **Reproduces\n"
      "(band overlaps; our top end is higher).**\n\n")
    w(block(report.render_fig12(fig12_scaling())))

    w("\n## Figure 13 — BitColor vs CPU and GPU\n")
    w("**Paper:** 30×–97× over CPU (avg 54.9×); 1.63×–6.69× over GPU (avg\n"
      "2.71×); throughput 0.88 / 15.3 / 41.6 MCV/S; energy 12 / 19 / 156\n"
      "KCV/J (13× and 8.2× better).  **Measured:** avg 54.9× over CPU\n"
      "(41–76×); avg 2.8× over GPU (1.66–5.04×); energy ratios reproduce with\n"
      "the paper-implied wall powers (see `repro.hw.energy`).\n"
      "**Reproduces.**\n\n")
    w(block(report.render_fig13(fig13_comparison())))

    w("\n## Figure 14 — resource utilization and frequency\n")
    w("**Paper:** near-linear growth to P=8, super-linear at P=16, ending at\n"
      "47.79 % LUTs / 51.09 % FFs / 96.72 % BRAM, frequency always >200 MHz.\n"
      "**Measured (analytic model):** matches at the calibrated P=16 point\n"
      "and preserves the growth shape.  Note: the paper's own multi-port\n"
      "formula (P·D/2 words) would exceed the U200 at P=16 with a 1 MB data\n"
      "set; the model halves the deployed cache at P=16, as a real build\n"
      "must (DESIGN.md §1).  **Reproduces (by construction + shape).**\n\n")
    w(block(report.render_fig14(fig14_resources())))

    w("\n## Table 4 — color count, BSL vs sorted preprocessing\n")
    t4 = table4_colors()
    t4_avg = 100 * sum(r.reduction for r in t4) / max(len(t4), 1)
    w("**Paper:** sorting reduces colors 9.3 % on average.  **Measured:**\n"
      f"{t4_avg:.1f} % average reduction.  Interpretation note: within-vertex edge\n"
      "order cannot change a sequential greedy result (only the neighbour\n"
      "color *set* matters), so we attribute the reduction to the ordering\n"
      "component of the preprocessing — BSL is natural-order greedy on the\n"
      "raw graph, \"sorted\" is greedy after DBG + edge sort (descending-\n"
      "degree processing order, i.e. Welsh–Powell ordering).  Absolute color\n"
      "counts differ from the paper's because the stand-ins are not the real\n"
      "SNAP instances.  **Reproduces (magnitude of reduction).**\n\n")
    w(block(report.render_table4(t4)))

    w("\n## Section 4.4 — multi-port cache storage comparison\n")
    w("**Paper claim:** bit-selection needs 2/P of the LVT design's BRAM and\n"
      "avoids one cycle of read latency.  **Measured:** exact, from the\n"
      "functional models' own storage accounting.  **Reproduces.**\n\n")
    rows = []
    for p in (2, 4, 8, 16):
        c = multiport_bram_comparison(512 * 1024, p)
        rows.append(
            (f"P={p}", c["bit_select_blocks"], c["lvt_blocks"],
             f"{c['ratio']:.4f}", f"{c['paper_ratio']:.4f}")
        )
    w(block(report.render_table(
        ["Ports", "BitSel BRAM blocks", "LVT BRAM blocks", "ratio", "paper 2/P"],
        rows,
    )))

    # ------------------------------------------------------------------
    # Beyond-the-paper sections.
    # ------------------------------------------------------------------
    w("\n## Extension — greedy MIS on the same substrate (Section 2.4 claim)\n")
    w("The paper claims its techniques transfer to other graph algorithms.\n"
      "Greedy maximal independent set on the identical cache/loader/conflict\n"
      "substrate shows the same optimization savings and parallel scaling:\n\n")
    from repro.experiments.runner import get_graph as _gg, get_spec as _gs
    from repro.hw import OptimizationFlags as _OF
    from repro.hw.mis_engine import BitwiseMISAccelerator as _MIS

    mis_rows = []
    for key in ("EF", "CL", "RC", "CF"):
        g = _gg(key)
        spec = _gs(key)
        bsl = _MIS(spec.config_for(1, g.num_vertices), _OF.none()).run(g)
        opt = _MIS(spec.config_for(1, g.num_vertices)).run(g)
        p16 = _MIS(spec.config_for(16, g.num_vertices)).run(g)
        mis_rows.append(
            (key, opt.set_size,
             f"{bsl.stats.makespan_cycles / opt.stats.makespan_cycles:.2f}x",
             f"{opt.stats.makespan_cycles / max(p16.stats.makespan_cycles, 1):.2f}x")
        )
    w(block(report.render_table(
        ["Graph", "MIS size", "optimization speedup (P=1)", "P=16 speedup"],
        mis_rows,
    )))

    w("\n## Extension — HBM profile: where read merging stops paying\n")
    w("Beyond the paper's DDR4 Alveo U200: the `hbm2` memory profile\n"
      "(32×256-bit pseudo-channels) plus compressed edge layouts, swept at\n"
      "`tier=\"paper\"` by `repro.experiments.run_hbm_sweep` (recorded in\n"
      "BENCH_hbm.json; this table reads the checked-in artifact).  Merge\n"
      "gain = makespan(MGR off) / makespan(MGR on), HDV cache at 10 % of\n"
      "paper sizing to keep the LDV stream alive; colors are byte-identical\n"
      "across every (channels × layout) cell.  Long-run graphs (CF, CO)\n"
      "keep paying at 32 channels; power-law graphs (EF, CL) cross the\n"
      "1.02 threshold everywhere — see docs/performance.md.\n\n")
    from repro.experiments import load_hbm_results
    from repro.experiments.hbm_sweep import DEFAULT_HBM_RESULT_PATH

    hbm = load_hbm_results(DEFAULT_HBM_RESULT_PATH)
    hbm_rows = []
    for row in hbm["crossover"]:
        if row["parallelism"] != 64 or row["layout"] != "plain":
            continue
        gains = row["gains_by_channels"]
        stop = row["merge_stops_paying_at"]
        hbm_rows.append(
            (row["dataset"],
             *(f"{gains[ch]:.3f}x" for ch in ("4", "8", "16", "32")),
             "never" if stop is None else f"{stop} ch")
        )
    w(block(report.render_table(
        ["Graph", "4 ch", "8 ch", "16 ch", "32 ch", "merge stops paying"],
        hbm_rows,
    )))
    red = hbm["smoke"]["delta_reduction"]
    w("\nDelta-compressed layout, modelled edge-read cycle reduction at\n"
      "256-bit blocks (gate 10 floor 15 %): "
      + ", ".join(f"{k} {100 * v:.0f} %" for k, v in red.items())
      + ".\n")

    w("\n## Sensitivity — headline aggregates vs the fitted constants\n")
    w("Halving/doubling each fitted constant (docs/calibration.md) moves the\n"
      "averages but never the ordering FPGA > GPU > CPU (4-dataset slice):\n\n")
    from repro.experiments import (
        sweep_cpu_memory, sweep_dram_occupancy,
        sweep_gpu_frontier_rate, sweep_physical_channels,
    )

    sens = (
        sweep_dram_occupancy() + sweep_physical_channels()
        + sweep_cpu_memory() + sweep_gpu_frontier_rate()
    )
    w(block(report.render_table(
        ["parameter", "value", "avg vs CPU", "avg vs GPU"],
        [(r.parameter, f"{r.value:g}", f"{r.avg_speedup_vs_cpu:.1f}x",
          f"{r.avg_speedup_vs_gpu:.2f}x") for r in sens],
    )))

    w("\n## Cross-validation — cycle-stepped BWPE vs the task-level model\n")
    w("An independent cycle-by-cycle microsimulation of one engine\n"
      "(`repro.hw.cycle_sim`) re-derives total cycles from explicit pipeline\n"
      "state; agreement with the task-granular model bounds the accounting\n"
      "error of everything above:\n\n")
    from repro.hw import BitColorAccelerator as _Acc, HWConfig as _HW
    from repro.hw.cycle_sim import CycleAccurateBWPE as _Cyc

    cyc_rows = []
    for key in ("EF", "RC"):
        g = _gg(key)
        for fl, label in ((_OF.none(), "BSL"), (_OF.all(), "full")):
            cfg = _gs(key).config_for(1, g.num_vertices)
            task = _Acc(cfg, fl).run(g).stats.makespan_cycles
            _, cyc = _Cyc(cfg, fl).run(g)
            cyc_rows.append(
                (key, label, task, cyc.cycles, f"{cyc.cycles / task:.3f}")
            )
    w(block(report.render_table(
        ["Graph", "flags", "task-model cycles", "cycle-sim cycles", "ratio"],
        cyc_rows,
    )))

    w(f"\n---\nGenerated in {time.time() - t0:.0f} s by "
      "`scripts/generate_experiments_md.py`.\n")

    Path(out_path).write_text("".join(parts))
    print(f"wrote {out_path} ({time.time() - t0:.0f}s)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md")
