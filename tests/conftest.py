"""Shared fixtures: small deterministic graphs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    degree_based_grouping,
    erdos_renyi,
    path_graph,
    rmat,
    road_grid,
    sort_edges,
    star_graph,
)


@pytest.fixture
def triangle() -> CSRGraph:
    """K3 — needs exactly 3 colors."""
    return complete_graph(3, name="triangle")


@pytest.fixture
def paper_example() -> CSRGraph:
    """The 6-vertex example of the paper's Figure 1.

    Vertex 4's neighbours are 0, 2, 3, 5; vertices 0 and 3 end up green,
    2 blue, so 4 must take the third color.
    """
    edges = [(0, 1), (0, 4), (1, 2), (2, 4), (3, 4), (4, 5), (2, 3), (1, 5)]
    return CSRGraph.from_edge_list(6, edges, name="fig1")


@pytest.fixture
def small_random() -> CSRGraph:
    return erdos_renyi(60, 0.12, seed=7, name="small-random")


@pytest.fixture
def medium_powerlaw() -> CSRGraph:
    return rmat(9, 6, seed=11, name="medium-powerlaw")


@pytest.fixture
def preprocessed_powerlaw(medium_powerlaw: CSRGraph) -> CSRGraph:
    """DBG-reordered + edge-sorted — the input BitColor expects."""
    return sort_edges(degree_based_grouping(medium_powerlaw).graph)


@pytest.fixture
def small_grid() -> CSRGraph:
    return road_grid(8, 8, seed=3, name="small-grid")


@pytest.fixture
def star10() -> CSRGraph:
    return star_graph(10)


@pytest.fixture
def path10() -> CSRGraph:
    return path_graph(10)


@pytest.fixture
def cycle5() -> CSRGraph:
    return cycle_graph(5)


def assert_array_equal(a, b, msg=""):
    assert np.array_equal(np.asarray(a), np.asarray(b)), msg or f"{a} != {b}"
