"""Tests for Algorithm 1 (basic greedy coloring)."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper_coloring,
    greedy_coloring,
    greedy_coloring_fast,
    num_colors,
)
from repro.graph import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    random_bipartite,
    star_graph,
)


class TestKnownGraphs:
    def test_path_two_colors(self, path10):
        r = greedy_coloring(path10)
        assert r.num_colors == 2
        assert_proper_coloring(path10, r.colors)

    def test_even_cycle_two_colors(self):
        g = cycle_graph(8)
        r = greedy_coloring(g)
        assert r.num_colors == 2

    def test_odd_cycle_three_colors(self, cycle5):
        r = greedy_coloring(cycle5)
        assert r.num_colors == 3

    def test_complete_graph(self):
        g = complete_graph(7)
        r = greedy_coloring(g)
        assert r.num_colors == 7
        assert sorted(r.colors.tolist()) == list(range(1, 8))

    def test_star_two_colors(self, star10):
        r = greedy_coloring(star10)
        assert r.num_colors == 2
        assert r.colors[0] == 1

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        r = greedy_coloring(CSRGraph.empty(4))
        assert (r.colors == 1).all()

    def test_paper_figure1(self, paper_example):
        """Vertex 4 (neighbours 0, 2, 3, 5) sees two distinct colors among
        its colored neighbours and must take the third — the paper's
        worked example."""
        r = greedy_coloring(paper_example)
        assert_proper_coloring(paper_example, r.colors)
        nbr_colors = {int(r.colors[v]) for v in (0, 2, 3)}
        assert nbr_colors == {1, 2}
        assert r.colors[4] == 3


class TestCounters:
    def test_stage0_counts_every_edge_slot(self, small_random):
        r = greedy_coloring(small_random)
        assert r.counters.stage0_ops == small_random.num_edges

    def test_stage2_counts_every_vertex(self, small_random):
        r = greedy_coloring(small_random)
        assert r.counters.stage2_ops == small_random.num_vertices

    def test_stage1_scan_at_least_one_per_vertex(self, small_random):
        r = greedy_coloring(small_random)
        assert r.counters.stage1_scan_ops >= small_random.num_vertices

    def test_breakdown_sums_to_one(self, small_random):
        b = greedy_coloring(small_random).counters.breakdown()
        assert sum(b.values()) == pytest.approx(1.0)

    def test_paper_clear_mode(self, small_random):
        touched = greedy_coloring(small_random, clear_mode="touched")
        paper = greedy_coloring(small_random, clear_mode="paper", color_number=1024)
        # Same coloring, different accounting.
        assert np.array_equal(touched.colors, paper.colors)
        assert paper.counters.stage1_clear_ops == 1024 * small_random.num_vertices
        assert touched.counters.stage1_clear_ops < paper.counters.stage1_clear_ops

    def test_invalid_clear_mode(self, triangle):
        with pytest.raises(ValueError):
            greedy_coloring(triangle, clear_mode="bogus")

    def test_path_counter_example(self):
        """Hand-checked counters on a 3-vertex path 0-1-2."""
        g = path_graph(3)
        r = greedy_coloring(g)
        # Stage0: deg(0)+deg(1)+deg(2) = 1+2+1 = 4.
        assert r.counters.stage0_ops == 4
        # Vertex 0: no flags set beyond slot 0... scan color1 free -> 1 op.
        # Vertex 1: neighbour 0 has color1 -> scan colors 1,2 -> 2 ops.
        # Vertex 2: neighbour 1 has color2 -> scan color 1 free -> 1 op.
        assert r.counters.stage1_scan_ops == 4


class TestOrdering:
    def test_custom_order_changes_colors(self):
        # The "crown" construction where a bad order forces many colors.
        g = random_bipartite(6, 6, 1.0, seed=1)
        natural = greedy_coloring(g)
        assert natural.num_colors == 2
        # Interleave sides: 0, 6, 1, 7, ... is still fine for complete
        # bipartite (any neighbour set is the whole other side).
        order = [v for pair in zip(range(6), range(6, 12)) for v in pair]
        inter = greedy_coloring(g, order=order)
        assert_proper_coloring(g, inter.colors)

    def test_order_must_be_permutation(self, triangle):
        with pytest.raises(ValueError):
            greedy_coloring(triangle, order=[0, 0, 1])
        with pytest.raises(ValueError):
            greedy_coloring(triangle, order=[0, 1])

    def test_order_recorded(self, triangle):
        r = greedy_coloring(triangle, order=[2, 1, 0])
        assert r.order.tolist() == [2, 1, 0]


class TestMaxColors:
    def test_cap_ok(self, cycle5):
        greedy_coloring(cycle5, max_colors=3)

    def test_cap_exceeded(self):
        g = complete_graph(5)
        with pytest.raises(ValueError, match="max_colors"):
            greedy_coloring(g, max_colors=4)


class TestFastPath:
    def test_matches_counted_version(self):
        for seed in range(5):
            g = erdos_renyi(80, 0.1, seed=seed)
            a = greedy_coloring(g).colors
            b = greedy_coloring_fast(g)
            assert np.array_equal(a, b)

    def test_respects_order(self, small_random):
        gen = np.random.default_rng(3)
        order = gen.permutation(small_random.num_vertices)
        a = greedy_coloring(small_random, order=order).colors
        b = greedy_coloring_fast(small_random, order=order)
        assert np.array_equal(a, b)

    def test_greedy_is_first_fit(self, small_random):
        """Every vertex holds the smallest color its neighbours allow."""
        colors = greedy_coloring_fast(small_random)
        for v in range(small_random.num_vertices):
            nbrs = set(colors[small_random.neighbors(v)].tolist())
            c = int(colors[v])
            assert all(k in nbrs for k in range(1, c)), (
                f"vertex {v} skipped a free color below {c}"
            )
