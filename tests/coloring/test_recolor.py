"""Tests for Kempe-chain and iterated-greedy color reduction."""

import warnings

import numpy as np
import pytest

from repro.coloring import assert_proper_coloring, greedy_coloring_fast, num_colors
from repro.coloring.recolor import iterated_greedy, kempe_chain, kempe_reduce
from repro.graph import CSRGraph, cycle_graph, erdos_renyi, rmat


class TestKempeChain:
    def test_simple_chain(self):
        # Path 0-1-2 colored 1,2,1: chain of 0 toward color 2 is everything.
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)])
        colors = np.array([1, 2, 1])
        chain = kempe_chain(g, colors, 0, 2)
        assert chain.tolist() == [0, 1, 2]

    def test_chain_stops_at_other_colors(self):
        # 0-1-2-3 colored 1,2,3,1: chain of 0 toward 2 stops at vertex 2.
        g = CSRGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        colors = np.array([1, 2, 3, 1])
        chain = kempe_chain(g, colors, 0, 2)
        assert chain.tolist() == [0, 1]

    def test_swap_preserves_properness(self):
        g = erdos_renyi(50, 0.15, seed=3)
        colors = greedy_coloring_fast(g)
        k = num_colors(colors)
        if k >= 2:
            v = int(np.nonzero(colors == k)[0][0])
            chain = kempe_chain(g, colors, v, 1)
            swapped = colors.copy()
            mask = np.isin(np.arange(g.num_vertices), chain)
            swapped[mask & (colors == k)] = 1
            swapped[mask & (colors == 1)] = k
            assert_proper_coloring(g, swapped)

    def test_invalid_args(self):
        g = CSRGraph.from_edge_list(2, [(0, 1)])
        with pytest.raises(ValueError):
            kempe_chain(g, np.array([1, 2]), 0, 1)  # same color
        with pytest.raises(ValueError):
            kempe_chain(g, np.array([0, 2]), 0, 1)  # uncolored vertex


class TestKempeReduce:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper_and_never_worse(self, seed):
        g = erdos_renyi(60, 0.15, seed=seed)
        colors = greedy_coloring_fast(g)
        res = kempe_reduce(g, colors)
        assert_proper_coloring(g, res.colors)
        assert res.colors_after <= res.colors_before

    def test_reduces_bad_cycle_coloring(self):
        """An even cycle colored with 3 colors by a bad order drops to 2."""
        g = cycle_graph(8)
        bad_order = [0, 2, 4, 6, 1, 3, 5, 7]
        colors = greedy_coloring_fast(g, order=np.array(bad_order))
        # This order 2-colors it actually; force a 3-coloring manually.
        colors = np.array([1, 2, 1, 2, 1, 2, 1, 3])
        assert colors[7] == 3
        res = kempe_reduce(g, colors)
        assert_proper_coloring(g, res.colors)
        assert res.colors_after == 2

    def test_input_unchanged(self, small_random):
        colors = greedy_coloring_fast(small_random)
        snap = colors.copy()
        kempe_reduce(small_random, colors)
        assert np.array_equal(colors, snap)


class TestIteratedGreedy:
    @pytest.mark.parametrize("seed", range(3))
    def test_never_worse(self, seed):
        g = rmat(8, 6, seed=seed)
        base = greedy_coloring_fast(g)
        res = iterated_greedy(g, colors=base, iterations=6, seed=seed)
        assert_proper_coloring(g, res.colors)
        assert res.colors_after <= num_colors(base)

    def test_improves_random_order_start(self):
        """Starting from a random-order coloring, iterated greedy usually
        recovers several colors."""
        g = rmat(9, 6, seed=10)
        gen = np.random.default_rng(4)
        bad = greedy_coloring_fast(g, order=gen.permutation(g.num_vertices))
        res = iterated_greedy(g, colors=bad, iterations=8, seed=1)
        assert res.colors_after <= num_colors(bad)

    def test_default_start(self, small_random):
        res = iterated_greedy(small_random, iterations=3)
        assert_proper_coloring(small_random, res.colors)
        assert res.iterations == 3


class TestDeprecatedNumColors:
    """RecolorResult.num_colors is a deprecated alias for colors_after."""

    def _check(self, res):
        with pytest.warns(DeprecationWarning, match="num_colors"):
            value = res.num_colors
        assert value == res.colors_after
        assert value == res.n_colors

    def test_kempe_reduce(self, small_random):
        res = kempe_reduce(small_random, greedy_coloring_fast(small_random))
        self._check(res)

    def test_iterated_greedy(self, small_random):
        res = iterated_greedy(small_random, iterations=2, seed=0)
        self._check(res)

    def test_canonical_spellings_stay_silent(self, small_random):
        res = kempe_reduce(small_random, greedy_coloring_fast(small_random))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert res.n_colors == res.colors_after
            assert isinstance(res.improved, bool)
