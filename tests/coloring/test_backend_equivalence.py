"""Property tests: the batch backends are bit-identical to Python.

The kernel layer (:mod:`repro.kernels`) re-implements the coloring hot
paths as batched NumPy sweeps; its contract is *exact* equivalence — same
colors, same counters, same per-round statistics, same errors — which
these hypothesis tests enforce over random graphs, orderings, seeds and
option combinations.

The bitwise and Jones–Plassmann suites are parametrized over both batch
tiers: the always-present ``vectorized`` NumPy kernels and the optional
compiled ``native`` tier (:mod:`repro.kernels.native`), which skips
cleanly when no numba/C-compiler backend is usable on this host.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import (
    bitwise_greedy_coloring,
    jones_plassmann_coloring,
    luby_mis,
    mis_coloring,
)
from repro.graph import CSRGraph
from repro.kernels import native as native_kernels

TIERS = [
    "vectorized",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not native_kernels.available(),
            reason=f"native tier unavailable: {native_kernels.unavailable_reason()}",
        ),
    ),
]

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=24, max_extra_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_extra_edges,
        )
    )
    return CSRGraph.from_edge_list(n, edges)


# ----------------------------------------------------------------------
# bitwise greedy
# ----------------------------------------------------------------------


def assert_bitwise_equal(a, b):
    assert np.array_equal(a.colors, b.colors)
    assert a.num_colors == b.num_colors
    assert a.pruned_edges == b.pruned_edges
    assert a.counters == b.counters


@pytest.mark.parametrize("tier", TIERS)
@common
@given(g=graphs(), prune=st.booleans())
def test_bitwise_backends_agree(tier, g, prune):
    a = bitwise_greedy_coloring(g, prune_uncolored=prune)
    b = bitwise_greedy_coloring(g, prune_uncolored=prune, backend=tier)
    assert_bitwise_equal(a, b)


@pytest.mark.parametrize("tier", TIERS)
@common
@given(g=graphs(), rnd=st.randoms(use_true_random=False))
def test_bitwise_backends_agree_on_custom_order(tier, g, rnd):
    order = list(range(g.num_vertices))
    rnd.shuffle(order)
    a = bitwise_greedy_coloring(g, order=order)
    b = bitwise_greedy_coloring(g, order=order, backend=tier)
    assert_bitwise_equal(a, b)


@pytest.mark.parametrize("tier", TIERS)
@common
@given(g=graphs(), max_colors=st.integers(1, 4))
def test_bitwise_backends_agree_on_max_colors_errors(tier, g, max_colors):
    try:
        a = bitwise_greedy_coloring(g, max_colors=max_colors)
        err_a = None
    except ValueError as e:
        a, err_a = None, str(e)
    try:
        b = bitwise_greedy_coloring(g, max_colors=max_colors, backend=tier)
        err_b = None
    except ValueError as e:
        b, err_b = None, str(e)
    # Both succeed identically or both raise the *same* first-offender
    # message (the batched sweep must report the order-minimal vertex).
    assert err_a == err_b
    if err_a is None:
        assert_bitwise_equal(a, b)


@pytest.mark.parametrize("tier", TIERS)
def test_bitwise_many_colors_crosses_word_boundary(tier):
    # A clique forces one color per vertex; 70 vertices needs 70 colors,
    # which exercises the multi-word state path end to end.
    n = 70
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    g = CSRGraph.from_edge_list(n, edges)
    a = bitwise_greedy_coloring(g)
    b = bitwise_greedy_coloring(g, backend=tier)
    assert_bitwise_equal(a, b)
    assert a.num_colors == n


def test_bitwise_backend_validation():
    g = CSRGraph.from_edge_list(2, [(0, 1)])
    with pytest.raises(ValueError):
        bitwise_greedy_coloring(g, backend="fpga")


# ----------------------------------------------------------------------
# Jones–Plassmann
# ----------------------------------------------------------------------


@pytest.mark.parametrize("tier", TIERS)
@common
@given(g=graphs(), seed=st.integers(0, 5))
def test_jp_backends_agree(tier, g, seed):
    a = jones_plassmann_coloring(g, seed=seed)
    b = jones_plassmann_coloring(g, seed=seed, backend=tier)
    assert np.array_equal(a.colors, b.colors)
    assert a.num_colors == b.num_colors
    assert a.rounds == b.rounds


@pytest.mark.parametrize("tier", TIERS)
@common
@given(g=graphs(), seed=st.integers(0, 3))
def test_jp_backends_agree_with_priorities(tier, g, seed):
    # Supplied priorities (with ties, broken by vertex ID) must follow the
    # exact same rounds on both backends.
    prio = np.arange(g.num_vertices) % 3
    a = jones_plassmann_coloring(g, seed=seed, priorities=prio)
    b = jones_plassmann_coloring(g, seed=seed, priorities=prio, backend=tier)
    assert np.array_equal(a.colors, b.colors)
    assert a.rounds == b.rounds


# ----------------------------------------------------------------------
# Luby MIS
# ----------------------------------------------------------------------


@common
@given(graphs(), st.integers(0, 5))
def test_luby_backends_agree(g, seed):
    a = luby_mis(g, seed=seed)
    b = luby_mis(g, seed=seed, backend="vectorized")
    assert np.array_equal(a, b)


@common
@given(graphs(), st.integers(0, 3), st.randoms(use_true_random=False))
def test_luby_backends_agree_on_candidates(g, seed, rnd):
    mask = np.array(
        [rnd.random() < 0.6 for _ in range(g.num_vertices)], dtype=bool
    )
    a = luby_mis(g, seed=seed, candidates=mask)
    b = luby_mis(g, seed=seed, candidates=mask, backend="vectorized")
    assert np.array_equal(a, b)


@common
@given(graphs(), st.integers(0, 3))
def test_mis_coloring_backends_agree(g, seed):
    a = mis_coloring(g, seed=seed)
    b = mis_coloring(g, seed=seed, backend="vectorized")
    assert np.array_equal(a.colors, b.colors)
    assert a.num_colors == b.num_colors
    assert a.mis_rounds == b.mis_rounds
    assert a.peak_live_state == b.peak_live_state
