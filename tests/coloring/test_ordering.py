"""Tests for vertex-ordering strategies."""

import numpy as np
import pytest

from repro.coloring import (
    ORDERINGS,
    assert_proper_coloring,
    compare_orderings,
    greedy_coloring_fast,
    num_colors,
    ordering,
)
from repro.graph import degeneracy, erdos_renyi, rmat, star_graph


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_is_permutation(self, name, medium_powerlaw):
        order = ordering(medium_powerlaw, name, seed=1)
        assert sorted(order.tolist()) == list(range(medium_powerlaw.num_vertices))

    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_produces_proper_coloring(self, name, small_random):
        order = ordering(small_random, name, seed=2)
        colors = greedy_coloring_fast(small_random, order=order)
        assert_proper_coloring(small_random, colors)

    def test_unknown_strategy(self, triangle):
        with pytest.raises(ValueError, match="unknown ordering"):
            ordering(triangle, "bogus")

    def test_natural(self, small_random):
        assert np.array_equal(
            ordering(small_random, "natural"),
            np.arange(small_random.num_vertices),
        )

    def test_largest_first_degrees_descend(self, medium_powerlaw):
        order = ordering(medium_powerlaw, "largest_first")
        degs = medium_powerlaw.degrees()[order]
        assert np.all(np.diff(degs) <= 0)

    def test_random_seeded(self, small_random):
        a = ordering(small_random, "random", seed=5)
        b = ordering(small_random, "random", seed=5)
        c = ordering(small_random, "random", seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_incidence_grows_connected(self):
        """After the first vertex, each next vertex (in a connected graph)
        has at least one already-ordered neighbour."""
        g = rmat(7, 6, seed=9)
        order = ordering(g, "incidence")
        placed = set()
        placed.add(int(order[0]))
        disconnected = 0
        for v in order[1:]:
            nbrs = set(int(w) for w in g.neighbors(int(v)))
            if not (nbrs & placed) and nbrs:
                disconnected += 1
            placed.add(int(v))
        # Only component boundaries may lack a placed neighbour.
        assert disconnected < 10


class TestQuality:
    def test_smallest_last_respects_degeneracy_bound(self, medium_powerlaw):
        order = ordering(medium_powerlaw, "smallest_last")
        colors = greedy_coloring_fast(medium_powerlaw, order=order)
        assert num_colors(colors) <= degeneracy(medium_powerlaw) + 1

    def test_compare_orderings_keys(self, small_random):
        result = compare_orderings(small_random, seed=1)
        assert set(result) == set(ORDERINGS)
        assert all(v >= 1 for v in result.values())

    def test_structured_orders_beat_random_on_star_forests(self):
        g = star_graph(60)
        result = compare_orderings(g, seed=3)
        assert result["largest_first"] == 2
        assert result["smallest_last"] == 2


class TestLargestFirstSharedKernel:
    """``largest_first`` is :func:`repro.graph.descending_degree_order`
    on out-degrees — one degree-sort kernel, two call sites (DBG is the
    other).  Pinned so the deduplication cannot silently diverge."""

    def test_equals_shared_kernel(self, medium_powerlaw):
        from repro.graph import descending_degree_order

        assert np.array_equal(
            ordering(medium_powerlaw, "largest_first"),
            descending_degree_order(medium_powerlaw.degrees()),
        )

    def test_stable_among_ties(self):
        # Every vertex of a cycle has degree 2: a stable descending sort
        # must preserve vertex order exactly.
        from repro.graph import cycle_graph

        g = cycle_graph(7)
        assert np.array_equal(
            ordering(g, "largest_first"), np.arange(g.num_vertices)
        )
