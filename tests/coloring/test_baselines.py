"""Tests for the non-greedy baselines: DSATUR, Jones–Plassmann, Gunrock,
Luby MIS, and exact backtracking."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper_coloring,
    chromatic_number,
    dsatur_coloring,
    exact_coloring,
    greedy_clique_lower_bound,
    greedy_coloring_fast,
    gunrock_coloring,
    jones_plassmann_coloring,
    luby_mis,
    mis_coloring,
    num_colors,
)
from repro.coloring.gunrock import default_round_cap
from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    random_bipartite,
    rmat,
    star_graph,
)


class TestDSATUR:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper(self, seed):
        g = erdos_renyi(60, 0.15, seed=seed)
        assert_proper_coloring(g, dsatur_coloring(g))

    def test_bipartite_optimal(self):
        """DSATUR is exact on bipartite graphs."""
        g = random_bipartite(15, 15, 0.3, seed=2)
        if g.num_edges:
            assert num_colors(dsatur_coloring(g)) == 2

    def test_complete(self):
        assert num_colors(dsatur_coloring(complete_graph(6))) == 6

    def test_odd_cycle(self, cycle5):
        assert num_colors(dsatur_coloring(cycle5)) == 3

    def test_empty(self):
        assert dsatur_coloring(CSRGraph.empty(0)).size == 0
        assert (dsatur_coloring(CSRGraph.empty(3)) == 1).all()

    def test_not_worse_than_greedy_on_average(self):
        wins = ties = losses = 0
        for seed in range(8):
            g = erdos_renyi(60, 0.2, seed=seed)
            d = num_colors(dsatur_coloring(g))
            gr = num_colors(greedy_coloring_fast(g))
            if d < gr:
                wins += 1
            elif d == gr:
                ties += 1
            else:
                losses += 1
        assert wins + ties >= losses


class TestJonesPlassmann:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper(self, seed):
        g = erdos_renyi(50, 0.15, seed=seed)
        r = jones_plassmann_coloring(g, seed=seed)
        assert_proper_coloring(g, r.colors)

    def test_rounds_recorded(self, small_random):
        r = jones_plassmann_coloring(small_random, seed=1)
        assert r.num_rounds == len(r.rounds)
        assert sum(rd.colored_vertices for rd in r.rounds) == small_random.num_vertices

    def test_single_round_on_empty_graph(self):
        g = CSRGraph.empty(10)
        r = jones_plassmann_coloring(g)
        assert r.num_rounds == 1
        assert r.num_colors == 1

    def test_custom_priorities(self, small_random):
        degs = small_random.degrees()
        r = jones_plassmann_coloring(small_random, priorities=degs)
        assert_proper_coloring(small_random, r.colors)

    def test_priority_length_check(self, triangle):
        with pytest.raises(ValueError):
            jones_plassmann_coloring(triangle, priorities=np.array([1, 2]))

    def test_max_rounds_guard(self, small_random):
        with pytest.raises(RuntimeError):
            jones_plassmann_coloring(small_random, max_rounds=0)


class TestGunrock:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper(self, seed):
        g = erdos_renyi(60, 0.15, seed=seed)
        r = gunrock_coloring(g, seed=seed)
        assert_proper_coloring(g, r.colors)

    def test_round_cap_respected(self, medium_powerlaw):
        r = gunrock_coloring(medium_powerlaw, max_rounds=3)
        assert r.rounds <= 3
        assert_proper_coloring(medium_powerlaw, r.colors)

    def test_tail_counted(self, medium_powerlaw):
        r = gunrock_coloring(medium_powerlaw, max_rounds=2)
        assert r.tail_vertices > 0
        assert r.tail_edges >= r.tail_vertices  # power-law tail is hub-heavy

    def test_default_cap(self):
        assert default_round_cap(2) == 4
        assert default_round_cap(10**6) == 8

    def test_uses_more_colors_than_greedy(self):
        """Gunrock's quality deficit — the paper's Section 5.3 remark."""
        worse = 0
        for seed in range(5):
            g = rmat(8, 6, seed=seed)
            gk = gunrock_coloring(g, seed=seed).num_colors
            gr = num_colors(greedy_coloring_fast(g))
            worse += gk >= gr
        assert worse >= 4

    def test_per_round_accounting(self, small_random):
        r = gunrock_coloring(small_random)
        assert sum(r.per_round_colored) + r.tail_vertices == small_random.num_vertices


class TestLubyMIS:
    def test_mis_is_independent(self, small_random):
        mis = luby_mis(small_random, seed=1)
        for u, v in small_random.iter_edges():
            assert not (mis[u] and mis[v])

    def test_mis_is_maximal(self, small_random):
        mis = luby_mis(small_random, seed=1)
        for v in range(small_random.num_vertices):
            if not mis[v]:
                nbrs = small_random.neighbors(v)
                assert mis[nbrs].any(), f"vertex {v} could join the MIS"

    def test_candidates_respected(self, small_random):
        cand = np.zeros(small_random.num_vertices, dtype=bool)
        cand[:10] = True
        mis = luby_mis(small_random, candidates=cand, seed=2)
        assert not mis[10:].any()

    def test_candidates_length_check(self, triangle):
        with pytest.raises(ValueError):
            luby_mis(triangle, candidates=np.array([True]))

    @pytest.mark.parametrize("seed", range(3))
    def test_mis_coloring_proper(self, seed):
        g = erdos_renyi(50, 0.12, seed=seed)
        r = mis_coloring(g, seed=seed)
        assert_proper_coloring(g, r.colors)
        assert r.num_colors == num_colors(r.colors)

    def test_peak_state_tracked(self, small_random):
        r = mis_coloring(small_random, seed=3)
        assert r.peak_live_state > 0


class TestBacktracking:
    def test_known_chromatic_numbers(self):
        assert chromatic_number(complete_graph(5)) == 5
        assert chromatic_number(cycle_graph(6)) == 2
        assert chromatic_number(cycle_graph(7)) == 3
        assert chromatic_number(path_graph(5)) == 2
        assert chromatic_number(star_graph(8)) == 2

    def test_petersen_graph(self):
        """The Petersen graph is famously 3-chromatic."""
        import networkx as nx

        g = CSRGraph.from_networkx(nx.petersen_graph())
        assert chromatic_number(g) == 3

    def test_bipartite_two(self):
        g = random_bipartite(8, 8, 0.4, seed=1)
        if g.num_edges:
            assert chromatic_number(g) == 2

    def test_exact_coloring_is_proper(self):
        g = erdos_renyi(18, 0.3, seed=4)
        assert_proper_coloring(g, exact_coloring(g))

    def test_exact_lower_bounds_heuristics(self):
        for seed in range(4):
            g = erdos_renyi(16, 0.35, seed=seed)
            chi = chromatic_number(g)
            assert chi <= num_colors(greedy_coloring_fast(g))
            assert chi <= num_colors(dsatur_coloring(g))

    def test_clique_lower_bound(self):
        assert greedy_clique_lower_bound(complete_graph(6)) == 6
        assert greedy_clique_lower_bound(path_graph(5)) == 2
        assert greedy_clique_lower_bound(CSRGraph.empty(0)) == 0

    def test_node_limit(self):
        g = erdos_renyi(30, 0.5, seed=5)
        with pytest.raises(RuntimeError, match="node"):
            exact_coloring(g, node_limit=3)

    def test_edge_cases(self):
        assert chromatic_number(CSRGraph.empty(0)) == 0
        assert chromatic_number(CSRGraph.empty(5)) == 1
