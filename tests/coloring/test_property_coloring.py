"""Property-based tests (hypothesis) over the coloring algorithms.

Strategy: generate arbitrary small undirected graphs; assert the core
invariants of every algorithm — properness, bitwise/greedy equivalence,
exact ≤ heuristic color counts, first-fit minimality.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import (
    assert_proper_coloring,
    bitwise_greedy_coloring,
    chromatic_number,
    dsatur_coloring,
    first_free_color,
    greedy_coloring,
    greedy_coloring_fast,
    gunrock_coloring,
    jones_plassmann_coloring,
    mis_coloring,
    num_colors,
    num_to_bits,
)
from repro.graph import CSRGraph


@st.composite
def graphs(draw, max_vertices=24, max_extra_edges=60):
    """Random undirected simple graphs, including edgeless and dense ones."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_extra_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=m,
        )
    )
    return CSRGraph.from_edge_list(n, edges)


common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(graphs())
def test_greedy_is_proper(g):
    r = greedy_coloring(g)
    assert_proper_coloring(g, r.colors)


@common
@given(graphs())
def test_bitwise_equals_greedy(g):
    assert np.array_equal(
        bitwise_greedy_coloring(g).colors, greedy_coloring(g).colors
    )


@common
@given(graphs())
def test_pruned_bitwise_equals_greedy(g):
    assert np.array_equal(
        bitwise_greedy_coloring(g, prune_uncolored=True).colors,
        greedy_coloring_fast(g),
    )


@common
@given(graphs())
def test_dsatur_proper(g):
    assert_proper_coloring(g, dsatur_coloring(g))


@common
@given(graphs(), st.integers(0, 5))
def test_jones_plassmann_proper(g, seed):
    assert_proper_coloring(g, jones_plassmann_coloring(g, seed=seed).colors)


@common
@given(graphs(), st.integers(0, 5))
def test_gunrock_proper(g, seed):
    assert_proper_coloring(g, gunrock_coloring(g, seed=seed).colors)


@common
@given(graphs(), st.integers(0, 5))
def test_mis_coloring_proper(g, seed):
    assert_proper_coloring(g, mis_coloring(g, seed=seed).colors)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graphs(max_vertices=12, max_extra_edges=25))
def test_exact_below_heuristics(g):
    chi = chromatic_number(g)
    assert chi <= num_colors(greedy_coloring_fast(g))
    assert chi <= num_colors(dsatur_coloring(g))
    # Greedy never exceeds max degree + 1 (the classic bound).
    assert num_colors(greedy_coloring_fast(g)) <= g.max_degree() + 1


@common
@given(st.sets(st.integers(1, 200), max_size=30))
def test_first_free_color_is_mex(used):
    """first_free_color == the minimum excluded color of any color set."""
    state = 0
    for c in used:
        state |= num_to_bits(c)
    expected = 1
    while expected in used:
        expected += 1
    assert first_free_color(state) == expected
