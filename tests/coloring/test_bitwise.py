"""Tests for Algorithm 2 (bit-wise greedy coloring).

The central property: the bit-wise algorithm makes *identical* coloring
decisions to Algorithm 1 — only the work accounting differs.
"""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper_coloring,
    bitwise_greedy_coloring,
    greedy_coloring,
)
from repro.graph import (
    complete_graph,
    degree_based_grouping,
    erdos_renyi,
    rmat,
    road_grid,
    sort_edges,
)


class TestEquivalenceWithGreedy:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(70, 0.12, seed=seed)
        a = greedy_coloring(g).colors
        b = bitwise_greedy_coloring(g).colors
        assert np.array_equal(a, b)

    def test_power_law(self, preprocessed_powerlaw):
        a = greedy_coloring(preprocessed_powerlaw).colors
        b = bitwise_greedy_coloring(preprocessed_powerlaw).colors
        assert np.array_equal(a, b)

    def test_road(self, small_grid):
        a = greedy_coloring(small_grid).colors
        b = bitwise_greedy_coloring(small_grid).colors
        assert np.array_equal(a, b)

    def test_custom_order(self, small_random):
        gen = np.random.default_rng(2)
        order = gen.permutation(small_random.num_vertices)
        a = greedy_coloring(small_random, order=order).colors
        b = bitwise_greedy_coloring(small_random, order=order).colors
        assert np.array_equal(a, b)


class TestPruning:
    def test_pruning_preserves_result(self, preprocessed_powerlaw):
        plain = bitwise_greedy_coloring(preprocessed_powerlaw)
        pruned = bitwise_greedy_coloring(preprocessed_powerlaw, prune_uncolored=True)
        assert np.array_equal(plain.colors, pruned.colors)

    def test_pruned_edge_count_is_half(self, small_random):
        """In ascending order, exactly one endpoint of every undirected
        edge sees the other as 'not yet colored'."""
        r = bitwise_greedy_coloring(small_random, prune_uncolored=True)
        assert r.pruned_edges == small_random.num_undirected_edges

    def test_prune_reduces_stage0_work(self, small_random):
        plain = bitwise_greedy_coloring(small_random)
        pruned = bitwise_greedy_coloring(small_random, prune_uncolored=True)
        assert (
            pruned.counters.stage0_ops
            == plain.counters.stage0_ops - pruned.pruned_edges
        )

    def test_prune_requires_ascending_order(self, small_random):
        order = np.arange(small_random.num_vertices)[::-1]
        with pytest.raises(ValueError, match="ascending"):
            bitwise_greedy_coloring(small_random, order=order, prune_uncolored=True)


class TestCounters:
    def test_stage1_one_op_per_vertex(self, small_random):
        """The whole point: Stage 1 is O(1) per vertex."""
        r = bitwise_greedy_coloring(small_random)
        assert r.counters.stage1_scan_ops == small_random.num_vertices
        assert r.counters.stage1_clear_ops == 0

    def test_stage1_far_below_greedy(self, medium_powerlaw):
        g = sort_edges(degree_based_grouping(medium_powerlaw).graph)
        greedy = greedy_coloring(g)
        bitwise = bitwise_greedy_coloring(g)
        assert bitwise.counters.stage1_ops < greedy.counters.stage1_ops / 3


class TestMaxColors:
    def test_cap_exceeded(self):
        g = complete_graph(6)
        with pytest.raises(ValueError, match="max_colors"):
            bitwise_greedy_coloring(g, max_colors=5)

    def test_cap_ok(self):
        g = complete_graph(6)
        r = bitwise_greedy_coloring(g, max_colors=6)
        assert r.num_colors == 6


class TestFullPipeline:
    def test_preprocessed_equivalence_with_pruning(self):
        """The paper's full pipeline: DBG + edge sort + PUV gives the exact
        greedy coloring with roughly half the Stage-0 work."""
        g = sort_edges(degree_based_grouping(rmat(9, 5, seed=33)).graph)
        greedy = greedy_coloring(g)
        bw = bitwise_greedy_coloring(g, prune_uncolored=True)
        assert np.array_equal(greedy.colors, bw.colors)
        assert_proper_coloring(g, bw.colors)
        assert bw.counters.stage0_ops * 2 == greedy.counters.stage0_ops
