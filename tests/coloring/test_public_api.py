"""Public-API snapshot: the registry and the package surface cannot drift.

Three invariants:

* ``repro.coloring.__all__`` is exactly the snapshot below — adding or
  removing a public name is a deliberate act that updates this test;
* every name an :class:`AlgorithmSpec` claims as its backing export is
  really public (``exports`` ⊆ ``__all__``) and really importable;
* the CLI's ``--algorithm`` choices are exactly the registered names, so
  ``repro.color`` and ``bitcolor-repro color`` can never disagree.
"""

import repro
import repro.coloring as coloring
from repro.cli import build_parser
from repro.coloring import ALGORITHMS, ColoringOutcome, algorithm_names

PUBLIC_API_SNAPSHOT = {
    # exact solvers / bounds
    "chromatic_number",
    "exact_coloring",
    "greedy_clique_lower_bound",
    # bitset primitives
    "CascadedMuxCompressor",
    "Num2BitTable",
    "bits_or",
    "bits_to_num",
    "first_free_bits",
    "first_free_color",
    "num_to_bits",
    "popcount",
    # algorithms + results
    "BitwiseResult",
    "bitwise_greedy_coloring",
    "dsatur_coloring",
    "GreedyResult",
    "StageCounters",
    "greedy_coloring",
    "greedy_coloring_fast",
    "GunrockResult",
    "default_round_cap",
    "gunrock_coloring",
    "JPResult",
    "JPRound",
    "jones_plassmann_coloring",
    "MISColoringResult",
    "luby_mis",
    "mis_coloring",
    # balanced / incremental / ordering / recolor extensions
    "balance_coloring",
    "balance_ratio",
    "balanced_greedy_coloring",
    "BatchDiff",
    "IncrementalColoring",
    "IncrementalOutcome",
    "IncrementalStats",
    "ORDERINGS",
    "compare_orderings",
    "ordering",
    "RecolorResult",
    "iterated_greedy",
    "kempe_chain",
    "kempe_reduce",
    # outcome protocol + registry
    "ColoringOutcome",
    "OutcomeMixin",
    "PlainColoringResult",
    "ALGORITHMS",
    "AlgorithmSpec",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    # verification
    "UNCOLORED",
    "ColoringError",
    "assert_proper_coloring",
    "color_class_sizes",
    "find_conflicts",
    "is_proper_coloring",
    "num_colors",
}


def test_all_matches_snapshot():
    assert set(coloring.__all__) == PUBLIC_API_SNAPSHOT


def test_all_names_are_importable_and_unique():
    assert len(coloring.__all__) == len(set(coloring.__all__))
    for name in coloring.__all__:
        assert hasattr(coloring, name), f"{name} in __all__ but not importable"


def test_registry_exports_are_public():
    for spec in ALGORITHMS.values():
        assert spec.exports, f"{spec.name} declares no backing exports"
        for name in spec.exports:
            assert name in coloring.__all__, (
                f"registry algorithm {spec.name!r} claims export {name!r} "
                "which is not in repro.coloring.__all__"
            )


def test_registered_names_snapshot():
    assert algorithm_names() == (
        "bitwise",
        "greedy",
        "dsatur",
        "jp",
        "luby",
        "gunrock",
        "incremental",
    )


def test_cli_choices_match_registry():
    parser = build_parser()
    # Find the color subparser's --algorithm choices.
    subparsers = next(
        a for a in parser._actions if hasattr(a, "choices") and "color" in (a.choices or {})
    )
    color_parser = subparsers.choices["color"]
    algo_action = next(
        a for a in color_parser._actions if "--algorithm" in a.option_strings
    )
    assert tuple(algo_action.choices) == algorithm_names()


def test_top_level_facade_is_exported():
    assert "color" in repro.__all__
    assert callable(repro.color)


def test_outcome_protocol_is_runtime_checkable():
    import numpy as np

    from repro.coloring import PlainColoringResult

    out = PlainColoringResult.from_colors(np.array([1, 2, 1]), algorithm="x")
    assert isinstance(out, ColoringOutcome)
    assert out.n_colors == 2
    assert out.as_dict()["n_colors"] == 2
