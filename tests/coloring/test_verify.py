"""Tests for coloring validation."""

import numpy as np
import pytest

from repro.coloring import (
    ColoringError,
    assert_proper_coloring,
    color_class_sizes,
    find_conflicts,
    is_proper_coloring,
    num_colors,
)
from repro.graph import CSRGraph, complete_graph


class TestFindConflicts:
    def test_no_conflicts(self, triangle):
        assert find_conflicts(triangle, np.array([1, 2, 3])) == []

    def test_conflict_found(self, triangle):
        conflicts = find_conflicts(triangle, np.array([1, 1, 2]))
        assert conflicts == [(0, 1)]

    def test_uncolored_never_conflicts(self, triangle):
        assert find_conflicts(triangle, np.array([0, 0, 0])) == []

    def test_length_mismatch(self, triangle):
        with pytest.raises(ValueError):
            find_conflicts(triangle, np.array([1, 2]))


class TestIsProper:
    def test_valid(self, triangle):
        assert is_proper_coloring(triangle, np.array([1, 2, 3]))

    def test_incomplete_rejected(self, triangle):
        assert not is_proper_coloring(triangle, np.array([1, 2, 0]))
        assert is_proper_coloring(
            triangle, np.array([1, 2, 0]), require_complete=False
        )

    def test_wrong_length(self, triangle):
        assert not is_proper_coloring(triangle, np.array([1, 2]))


class TestAssertProper:
    def test_passes(self, paper_example):
        assert_proper_coloring(
            paper_example, np.array([1, 2, 3, 1, 4, 1])
        )

    def test_reports_conflict_edge(self, triangle):
        with pytest.raises(ColoringError, match="conflicting"):
            assert_proper_coloring(triangle, np.array([1, 1, 2]))

    def test_reports_uncolored(self, triangle):
        with pytest.raises(ColoringError, match="uncolored"):
            assert_proper_coloring(triangle, np.array([1, 2, 0]))

    def test_reports_length(self, triangle):
        with pytest.raises(ColoringError, match="entries"):
            assert_proper_coloring(triangle, np.array([1, 2]))


class TestCounts:
    def test_num_colors(self):
        assert num_colors(np.array([1, 2, 2, 5, 0])) == 3

    def test_class_sizes(self):
        sizes = color_class_sizes(np.array([1, 1, 2, 0, 2, 2]))
        assert sizes == {1: 2, 2: 3}

    def test_empty(self):
        assert num_colors(np.array([], dtype=np.int64)) == 0
        assert color_class_sizes(np.array([], dtype=np.int64)) == {}
