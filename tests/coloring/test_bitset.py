"""Tests for the bit-wise color-state primitives."""

import numpy as np
import pytest

from repro.coloring import (
    CascadedMuxCompressor,
    Num2BitTable,
    bits_or,
    bits_to_num,
    first_free_bits,
    first_free_color,
    num_to_bits,
    popcount,
)
from repro.coloring.bitset import first_free_colors_u64


class TestFirstFree:
    def test_empty_state(self):
        assert first_free_bits(0) == 1
        assert first_free_color(0) == 1

    def test_paper_example(self):
        """Figure 1: state 0b0011 -> first free color is bit 2 (red)."""
        assert first_free_bits(0b0011) == 0b0100
        assert first_free_color(0b0011) == 3

    def test_gap_in_middle(self):
        assert first_free_color(0b1011) == 3
        assert first_free_color(0b0101) == 2

    def test_dense_prefix(self):
        state = (1 << 100) - 1  # colors 1..100 all taken
        assert first_free_color(state) == 101

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            first_free_bits(-1)

    def test_exhaustive_small(self):
        """Cross-check the bit trick against the naive scan for all states
        up to 2^12."""
        for state in range(1 << 12):
            c = 1
            while state & (1 << (c - 1)):
                c += 1
            assert first_free_color(state) == c


class TestConversions:
    def test_num_to_bits(self):
        assert num_to_bits(0) == 0
        assert num_to_bits(1) == 0b1
        assert num_to_bits(4) == 0b1000

    def test_bits_to_num(self):
        assert bits_to_num(0) == 0
        assert bits_to_num(0b1) == 1
        assert bits_to_num(1 << 511) == 512

    def test_roundtrip(self):
        for c in [0, 1, 2, 17, 64, 100, 1024]:
            assert bits_to_num(num_to_bits(c)) == c

    def test_non_one_hot_rejected(self):
        with pytest.raises(ValueError):
            bits_to_num(0b11)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            num_to_bits(-2)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_bits_or(self):
        assert bits_or([]) == 0
        assert bits_or([0b01, 0b10, 0b01]) == 0b11


class TestNum2BitTable:
    def test_lookup(self):
        t = Num2BitTable(16)
        assert t.decompress(0) == 0
        assert t.decompress(1) == 1
        assert t.decompress(16) == 1 << 15

    def test_counts_lookups(self):
        t = Num2BitTable(8)
        t.decompress(3)
        t.decompress(4)
        assert t.lookups == 2
        t.reset_counters()
        assert t.lookups == 0

    def test_out_of_range(self):
        t = Num2BitTable(8)
        with pytest.raises(ValueError):
            t.decompress(9)
        with pytest.raises(ValueError):
            t.decompress(-1)

    def test_bram_bits(self):
        t = Num2BitTable(1024)
        assert t.bram_bits == 1025 * 1024

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Num2BitTable(0)


class TestCascadedMuxCompressor:
    def test_all_one_hots_1024(self):
        """Every one-hot word up to 1024 colors compresses correctly."""
        c = CascadedMuxCompressor(1024)
        for k in range(1, 1025):
            assert c.compress(1 << (k - 1)) == k

    def test_zero(self):
        assert CascadedMuxCompressor().compress(0) == 0

    def test_non_one_hot(self):
        with pytest.raises(ValueError):
            CascadedMuxCompressor().compress(0b101)

    def test_overflow(self):
        c = CascadedMuxCompressor(16)
        with pytest.raises(ValueError):
            c.compress(1 << 16)

    def test_latency_constant(self):
        assert CascadedMuxCompressor.LATENCY_CYCLES == 3

    def test_counts(self):
        c = CascadedMuxCompressor()
        c.compress(1)
        c.compress(2)
        assert c.compressions == 2
        c.reset_counters()
        assert c.compressions == 0

    def test_matches_table_inverse(self):
        t = Num2BitTable(256)
        c = CascadedMuxCompressor(256)
        for k in range(257):
            assert c.compress(t.decompress(k)) == k


class TestVectorised:
    def test_matches_scalar(self):
        gen = np.random.default_rng(5)
        states = gen.integers(0, 1 << 40, size=200, dtype=np.uint64)
        out = first_free_colors_u64(states)
        for s, c in zip(states, out):
            assert first_free_color(int(s)) == int(c)

    def test_saturated_rejected(self):
        with pytest.raises(OverflowError):
            first_free_colors_u64(np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64))

    def test_high_bits(self):
        states = np.array([(1 << 62) - 1], dtype=np.uint64)
        assert first_free_colors_u64(states)[0] == 63
