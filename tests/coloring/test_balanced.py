"""Tests for balanced coloring."""

import numpy as np
import pytest

from repro.coloring import (
    assert_proper_coloring,
    balance_coloring,
    balance_ratio,
    balanced_greedy_coloring,
    greedy_coloring_fast,
    num_colors,
)
from repro.graph import erdos_renyi, rmat, star_graph


class TestBalanceRatio:
    def test_perfect(self):
        assert balance_ratio(np.array([1, 2, 1, 2])) == 1.0

    def test_skewed(self):
        # classes: {1: 3, 2: 1} -> ideal 2, ratio 1.5
        assert balance_ratio(np.array([1, 1, 1, 2])) == pytest.approx(1.5)

    def test_empty(self):
        assert balance_ratio(np.array([0, 0])) == 1.0


class TestRebalancePass:
    @pytest.mark.parametrize("seed", range(4))
    def test_properness_preserved(self, seed):
        g = erdos_renyi(80, 0.08, seed=seed)
        colors = greedy_coloring_fast(g)
        rebalanced = balance_coloring(g, colors)
        assert_proper_coloring(g, rebalanced)

    def test_never_more_colors(self, medium_powerlaw):
        colors = greedy_coloring_fast(medium_powerlaw)
        rebalanced = balance_coloring(medium_powerlaw, colors)
        assert num_colors(rebalanced) <= num_colors(colors)

    def test_improves_star(self):
        """Greedy on a star gives classes {hub}, {all leaves} — massively
        unbalanced; rebalancing can't help (only 2 feasible classes) but
        must not break anything."""
        g = star_graph(30)
        colors = greedy_coloring_fast(g)
        out = balance_coloring(g, colors)
        assert_proper_coloring(g, out)

    def test_improves_skew(self, medium_powerlaw):
        colors = greedy_coloring_fast(medium_powerlaw)
        before = balance_ratio(colors)
        after = balance_ratio(balance_coloring(medium_powerlaw, colors))
        assert after <= before

    def test_input_not_mutated(self, small_random):
        colors = greedy_coloring_fast(small_random)
        snapshot = colors.copy()
        balance_coloring(small_random, colors)
        assert np.array_equal(colors, snapshot)

    def test_trivial_single_color(self):
        from repro.graph import CSRGraph

        g = CSRGraph.empty(5)
        colors = np.ones(5, dtype=np.int64)
        assert np.array_equal(balance_coloring(g, colors), colors)


class TestBalancedGreedy:
    @pytest.mark.parametrize("seed", range(4))
    def test_proper(self, seed):
        g = erdos_renyi(70, 0.1, seed=seed)
        colors = balanced_greedy_coloring(g)
        assert_proper_coloring(g, colors)

    def test_better_balance_than_first_fit(self):
        g = rmat(9, 6, seed=12)
        ff = balance_ratio(greedy_coloring_fast(g))
        bal = balance_ratio(balanced_greedy_coloring(g))
        assert bal < ff

    def test_color_count_close_to_first_fit(self, medium_powerlaw):
        ff = num_colors(greedy_coloring_fast(medium_powerlaw))
        bal = num_colors(balanced_greedy_coloring(medium_powerlaw))
        assert bal <= ff + 3

    def test_custom_order(self, small_random):
        order = np.arange(small_random.num_vertices)[::-1]
        colors = balanced_greedy_coloring(small_random, order=order)
        assert_proper_coloring(small_random, colors)
