"""Tests for incremental (streaming) coloring."""

import numpy as np
import pytest

import repro
from repro.coloring import (
    IncrementalColoring,
    IncrementalOutcome,
    assert_proper_coloring,
)
from repro.coloring.verify import UNCOLORED
from repro.graph import erdos_renyi, rmat


class TestBasicOperations:
    def test_initial_state(self):
        inc = IncrementalColoring(3)
        assert inc.num_vertices == 3
        assert inc.n_colors == 1  # everyone color 1, no edges
        inc.validate()

    def test_add_edge_no_conflict(self):
        inc = IncrementalColoring(2)
        repaired = inc.add_edge(0, 1)
        assert repaired  # both started color 1
        inc.validate()
        assert inc.color_of(0) != inc.color_of(1)

    def test_duplicate_edge_noop(self):
        inc = IncrementalColoring(2)
        inc.add_edge(0, 1)
        before = inc.stats.edges_added
        assert inc.add_edge(1, 0) is False
        assert inc.stats.edges_added == before

    def test_self_loop_rejected(self):
        inc = IncrementalColoring(2)
        with pytest.raises(ValueError):
            inc.add_edge(1, 1)

    def test_vertex_out_of_range(self):
        inc = IncrementalColoring(2)
        with pytest.raises(IndexError):
            inc.add_edge(0, 5)

    def test_add_vertex(self):
        inc = IncrementalColoring(1)
        v = inc.add_vertex()
        assert v == 1
        inc.add_edge(0, 1)
        inc.validate()

    def test_remove_edge(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        inc.remove_edge(0, 1)
        assert inc.stats.edges_removed == 1
        inc.validate()
        # Removing a non-edge is a no-op.
        inc.remove_edge(0, 2)
        assert inc.stats.edges_removed == 1


class TestStreaming:
    def test_stream_stays_proper(self):
        g = erdos_renyi(80, 0.08, seed=4)
        inc = IncrementalColoring(g.num_vertices)
        for u, v in g.iter_edges():
            if u < v:
                inc.add_edge(u, v)
        inc.validate()
        snapshot = inc.to_graph()
        assert_proper_coloring(snapshot, inc.colors())
        assert snapshot.num_undirected_edges == g.num_undirected_edges

    def test_from_graph(self, medium_powerlaw):
        inc = IncrementalColoring.from_graph(medium_powerlaw)
        inc.validate()
        assert_proper_coloring(medium_powerlaw, inc.colors())

    def test_repair_work_far_below_rebuild(self):
        """The streaming claim: per-edge repair cost ≪ recoloring all
        vertices per edge."""
        g = rmat(8, 5, seed=6)
        inc = IncrementalColoring.from_graph(g)
        # Rebuild cost per edge would be ~|E| neighbour scans each time.
        total_edges = g.num_undirected_edges
        assert inc.stats.recolor_work < 3 * total_edges

    def test_compact_renumbers_densely(self):
        inc = IncrementalColoring(4)
        inc.add_edge(0, 1)
        inc.add_edge(0, 2)
        inc.add_edge(1, 2)  # forces a third color somewhere
        colors = inc.compact()
        used = sorted(set(colors.tolist()))
        assert used == list(range(1, len(used) + 1))
        inc.validate()

    def test_interleaved_insert_delete(self):
        gen = np.random.default_rng(9)
        inc = IncrementalColoring(30)
        present = set()
        for _ in range(600):
            u, v = int(gen.integers(30)), int(gen.integers(30))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in present and gen.random() < 0.4:
                inc.remove_edge(u, v)
                present.discard(key)
            else:
                inc.add_edge(u, v)
                present.add(key)
            inc.validate()
        assert inc.to_graph().num_undirected_edges == len(present)


class TestEdgePaths:
    """Previously-untested edges: clash repairs, no-ops, invalid input."""

    def test_clash_recolors_smaller_neighbourhood_endpoint(self):
        inc = IncrementalColoring(4)
        inc.add_edge(0, 1)  # both color 1 -> vertex 0 repairs to color 2
        inc.add_edge(0, 2)  # 2 (color 1) vs 0 (color 2): no clash
        assert inc.color_of(2) == 1
        # Clash between 2 (degree 2 after insert) and 3 (degree 1): the
        # endpoint with the smaller neighbourhood — 3 — must repair.
        c2 = inc.color_of(2)
        assert inc.add_edge(2, 3) is True
        assert inc.color_of(2) == c2  # larger-neighbourhood endpoint kept
        assert inc.color_of(3) != c2  # smaller one moved off the clash
        inc.validate()

    def test_insert_cascade_opens_new_color(self):
        # Growing K2 -> K3 -> K4 must end at 4 distinct colors, each
        # insertion repairing exactly the colliding endpoint.
        inc = IncrementalColoring(4)
        for u in range(4):
            for v in range(u + 1, 4):
                inc.add_edge(u, v)
                inc.validate()
        assert inc.n_colors == 4
        assert inc.stats.conflicts_repaired >= 3

    def test_clash_repair_picks_first_free_color(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        inc.add_edge(1, 2)  # 2 collides with neither or repairs cheaply
        inc.add_edge(0, 2)  # triangle: someone needs a third color
        inc.validate()
        colors = {inc.color_of(v) for v in range(3)}
        assert colors == {1, 2, 3}  # first-free never skips a color

    def test_noop_duplicate_add_keeps_stats_and_colors(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        snapshot = (
            inc.stats.edges_added,
            inc.stats.conflicts_repaired,
            inc.stats.vertices_recolored,
            inc.stats.recolor_work,
        )
        colors_before = inc.colors().tolist()
        assert inc.add_edge(0, 1) is False
        assert inc.add_edge(1, 0) is False
        assert (
            inc.stats.edges_added,
            inc.stats.conflicts_repaired,
            inc.stats.vertices_recolored,
            inc.stats.recolor_work,
        ) == snapshot
        assert inc.colors().tolist() == colors_before

    def test_noop_remove_missing_edge(self):
        inc = IncrementalColoring(3)
        colors_before = inc.colors().tolist()
        inc.remove_edge(0, 2)
        assert inc.stats.edges_removed == 0
        assert inc.colors().tolist() == colors_before
        inc.validate()

    def test_invalid_vertices_rejected_everywhere(self):
        inc = IncrementalColoring(2)
        with pytest.raises(IndexError, match="out of range"):
            inc.add_edge(-1, 0)
        with pytest.raises(IndexError, match="out of range"):
            inc.add_edge(0, 2)
        with pytest.raises(IndexError, match="out of range"):
            inc.remove_edge(0, 2)
        with pytest.raises(IndexError, match="out of range"):
            inc.remove_edge(5, 0)
        # Failed calls must leave no half-inserted state behind.
        assert inc.stats.edges_added == 0
        assert inc.to_graph().num_undirected_edges == 0

    def test_empty_instance_operations(self):
        inc = IncrementalColoring(0)
        assert inc.num_vertices == 0
        assert inc.n_colors == 0
        assert inc.compact().tolist() == []
        inc.validate()
        v = inc.add_vertex()
        assert v == 0 and inc.color_of(0) == 1

    def test_compact_after_removals_closes_gaps(self):
        # Build a triangle (3 colors), then delete edges so color 3's
        # holder could legally wear color 1 — compact renumbers densely.
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        inc.add_edge(1, 2)
        inc.add_edge(0, 2)
        high = max(inc.color_of(v) for v in range(3))
        assert high == 3
        # Recolor vertex colors into a gappy set by removing and re-adding.
        inc.remove_edge(0, 1)
        inc._colors[0] = 7  # simulate a gap a long stream could produce
        inc._colors[1] = 7  # both legal: 0-1 edge is gone
        inc.validate()
        compacted = inc.compact()
        used = sorted(set(compacted.tolist()))
        assert used == list(range(1, len(used) + 1))
        inc.validate()

    def test_validate_detects_manufactured_conflict(self):
        inc = IncrementalColoring(2)
        inc.add_edge(0, 1)
        inc._colors[1] = inc._colors[0]  # corrupt on purpose
        with pytest.raises(AssertionError, match="conflict"):
            inc.validate()

    def test_repair_stats_track_scan_work(self):
        inc = IncrementalColoring(2)
        inc.add_edge(0, 1)  # both were color 1: one endpoint repairs
        assert inc.stats.conflicts_repaired == 1
        assert inc.stats.vertices_recolored == 1
        assert inc.stats.recolor_work >= 1


class TestApplyBatch:
    """The vectorized delta-batch hot path and its sparse diff."""

    def test_batch_matches_scalar_replay(self):
        g = erdos_renyi(60, 0.1, seed=7)
        pairs = g.edge_array()
        pairs = pairs[pairs[:, 0] < pairs[:, 1]]
        batched = IncrementalColoring(g.num_vertices)
        diff = batched.apply_batch(additions=pairs)
        batched.validate()
        assert diff.edges_added == pairs.shape[0]
        assert batched.to_graph().fingerprint() == g.fingerprint()

    def test_diff_lists_only_changed_vertices(self):
        inc = IncrementalColoring(4)
        diff = inc.apply_batch(additions=[(0, 1), (2, 3)])
        # Each pair collides (all start color 1): exactly one endpoint
        # per pair recolors, and the diff says which with old + new.
        assert diff.conflicts == 2
        assert diff.changed.size == 2
        assert np.array_equal(diff.old_colors, [1, 1])
        assert np.array_equal(diff.colors, inc.colors()[diff.changed])
        # A second no-op batch produces an empty diff.
        empty = inc.apply_batch(additions=[(0, 1)])
        assert empty.changed.size == 0 and empty.edges_added == 0

    def test_batch_dedups_and_skips_existing(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        diff = inc.apply_batch(
            additions=[(0, 1), (1, 0), (1, 2), (2, 1), (1, 2)]
        )
        assert diff.edges_added == 1  # only (1, 2) was actually new
        assert inc.to_graph().num_undirected_edges == 2
        inc.validate()

    def test_batch_removals_then_additions_order(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        # Same batch removes (0,1) and re-adds it: removal runs first, so
        # the addition really inserts and the edge survives.
        diff = inc.apply_batch(additions=[(0, 1)], removals=[(0, 1)])
        assert diff.edges_removed == 1 and diff.edges_added == 1
        assert inc.to_graph().num_undirected_edges == 1
        inc.validate()

    def test_batch_add_vertices_grows_then_connects(self):
        inc = IncrementalColoring(2)
        diff = inc.apply_batch(
            additions=[(0, 2), (1, 3)], add_vertices=2
        )
        assert inc.num_vertices == 4
        assert diff.edges_added == 2
        inc.validate()

    def test_large_random_batches_stay_proper(self):
        rng = np.random.default_rng(3)
        g = rmat(9, 6, seed=3)
        inc = IncrementalColoring.from_graph(g)
        for _ in range(8):
            adds = rng.integers(0, g.num_vertices, size=(120, 2))
            adds = adds[adds[:, 0] != adds[:, 1]]
            rem_pairs = inc.to_graph().edge_array()
            rems = rem_pairs[rng.integers(0, rem_pairs.shape[0], size=30)]
            inc.apply_batch(adds, rems)
            inc.validate()

    def test_batch_rejects_bad_shapes(self):
        inc = IncrementalColoring(4)
        with pytest.raises(ValueError, match="pairs"):
            inc.apply_batch(additions=np.arange(6))
        with pytest.raises(ValueError, match="self loops"):
            inc.apply_batch(additions=[(2, 2)])
        with pytest.raises(IndexError, match="out of range"):
            inc.apply_batch(additions=[(0, 9)])


class TestOutcomeAndRegistry:
    """The ColoringOutcome conformance + registry satellite."""

    def test_outcome_conforms(self):
        from repro.coloring.outcome import ColoringOutcome

        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        out = inc.outcome()
        assert isinstance(out, IncrementalOutcome)
        assert isinstance(out, ColoringOutcome)
        assert out.n_colors == inc.n_colors
        assert np.array_equal(out.colors, inc.colors())
        d = out.as_dict()
        assert d["algorithm"] == "incremental"

    def test_registered_with_facade(self, small_random):
        out = repro.color(small_random, algorithm="incremental")
        assert_proper_coloring(small_random, out.colors)
        assert out.n_colors >= 1

    def test_facade_rejects_opts(self, small_random):
        with pytest.raises(TypeError):
            repro.color(small_random, algorithm="incremental", order="asc")

    def test_num_colors_method_deprecated_but_working(self):
        inc = IncrementalColoring(2)
        inc.add_edge(0, 1)
        with pytest.warns(DeprecationWarning, match="n_colors"):
            legacy = inc.num_colors()
        assert legacy == inc.n_colors == 2


class TestCompactUncolored:
    """Regression: compact() must not conflate UNCOLORED with color 0."""

    def test_compact_preserves_uncolored(self):
        inc = IncrementalColoring(5)
        inc.add_edge(0, 1)
        inc.add_edge(1, 2)
        inc._colors[3] = UNCOLORED  # a partially-colored stream
        inc._colors[4] = UNCOLORED
        compacted = inc.compact()
        assert compacted[3] == UNCOLORED
        assert compacted[4] == UNCOLORED
        colored = compacted[compacted != UNCOLORED]
        assert sorted(set(colored.tolist())) == list(
            range(1, len(set(colored.tolist())) + 1)
        )

    def test_n_colors_ignores_uncolored(self):
        inc = IncrementalColoring(3)
        inc._colors[:] = UNCOLORED
        assert inc.n_colors == 0
        inc._colors[0] = 5
        assert inc.n_colors == 1

    def test_all_uncolored_compact_is_noop(self):
        inc = IncrementalColoring(3)
        inc._colors[:] = UNCOLORED
        assert inc.compact().tolist() == [UNCOLORED] * 3
