"""Tests for incremental (streaming) coloring."""

import numpy as np
import pytest

from repro.coloring import IncrementalColoring, assert_proper_coloring
from repro.graph import erdos_renyi, rmat


class TestBasicOperations:
    def test_initial_state(self):
        inc = IncrementalColoring(3)
        assert inc.num_vertices == 3
        assert inc.num_colors() == 1  # everyone color 1, no edges
        inc.validate()

    def test_add_edge_no_conflict(self):
        inc = IncrementalColoring(2)
        repaired = inc.add_edge(0, 1)
        assert repaired  # both started color 1
        inc.validate()
        assert inc.color_of(0) != inc.color_of(1)

    def test_duplicate_edge_noop(self):
        inc = IncrementalColoring(2)
        inc.add_edge(0, 1)
        before = inc.stats.edges_added
        assert inc.add_edge(1, 0) is False
        assert inc.stats.edges_added == before

    def test_self_loop_rejected(self):
        inc = IncrementalColoring(2)
        with pytest.raises(ValueError):
            inc.add_edge(1, 1)

    def test_vertex_out_of_range(self):
        inc = IncrementalColoring(2)
        with pytest.raises(IndexError):
            inc.add_edge(0, 5)

    def test_add_vertex(self):
        inc = IncrementalColoring(1)
        v = inc.add_vertex()
        assert v == 1
        inc.add_edge(0, 1)
        inc.validate()

    def test_remove_edge(self):
        inc = IncrementalColoring(3)
        inc.add_edge(0, 1)
        inc.remove_edge(0, 1)
        assert inc.stats.edges_removed == 1
        inc.validate()
        # Removing a non-edge is a no-op.
        inc.remove_edge(0, 2)
        assert inc.stats.edges_removed == 1


class TestStreaming:
    def test_stream_stays_proper(self):
        g = erdos_renyi(80, 0.08, seed=4)
        inc = IncrementalColoring(g.num_vertices)
        for u, v in g.iter_edges():
            if u < v:
                inc.add_edge(u, v)
        inc.validate()
        snapshot = inc.to_graph()
        assert_proper_coloring(snapshot, inc.colors())
        assert snapshot.num_undirected_edges == g.num_undirected_edges

    def test_from_graph(self, medium_powerlaw):
        inc = IncrementalColoring.from_graph(medium_powerlaw)
        inc.validate()
        assert_proper_coloring(medium_powerlaw, inc.colors())

    def test_repair_work_far_below_rebuild(self):
        """The streaming claim: per-edge repair cost ≪ recoloring all
        vertices per edge."""
        g = rmat(8, 5, seed=6)
        inc = IncrementalColoring.from_graph(g)
        # Rebuild cost per edge would be ~|E| neighbour scans each time.
        total_edges = g.num_undirected_edges
        assert inc.stats.recolor_work < 3 * total_edges

    def test_compact_renumbers_densely(self):
        inc = IncrementalColoring(4)
        inc.add_edge(0, 1)
        inc.add_edge(0, 2)
        inc.add_edge(1, 2)  # forces a third color somewhere
        colors = inc.compact()
        used = sorted(set(colors.tolist()))
        assert used == list(range(1, len(used) + 1))
        inc.validate()

    def test_interleaved_insert_delete(self):
        gen = np.random.default_rng(9)
        inc = IncrementalColoring(30)
        present = set()
        for _ in range(600):
            u, v = int(gen.integers(30)), int(gen.integers(30))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in present and gen.random() < 0.4:
                inc.remove_edge(u, v)
                present.discard(key)
            else:
                inc.add_edge(u, v)
                present.add(key)
            inc.validate()
        assert inc.to_graph().num_undirected_edges == len(present)
