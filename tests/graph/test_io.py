"""Tests for graph I/O."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphError,
    erdos_renyi,
    load_npz,
    parse_snap_text,
    save_npz,
    sort_edges,
    write_dimacs,
    write_edge_list,
)
from repro.graph.io import load_snap_edge_list


SNAP_SAMPLE = """\
# Undirected graph: toy
# Nodes: 4 Edges: 3
10\t20
20\t30
30\t40
"""


class TestSnapParser:
    def test_basic_parse(self):
        g = parse_snap_text(SNAP_SAMPLE)
        assert g.num_vertices == 4  # IDs compacted
        assert g.num_undirected_edges == 3
        assert g.is_symmetric()

    def test_id_compaction_preserves_order(self):
        g = parse_snap_text("5 100\n100 7\n")
        # Sorted unique IDs: 5, 7, 100 -> 0, 1, 2.
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 1)

    def test_percent_comments(self):
        g = parse_snap_text("% matrix-market style comment\n0 1\n")
        assert g.num_undirected_edges == 1

    def test_empty_text(self):
        g = parse_snap_text("# nothing\n")
        assert g.num_vertices == 0

    def test_malformed_line(self):
        with pytest.raises(GraphError, match="line 1"):
            parse_snap_text("justoneword\n")

    def test_non_integer(self):
        with pytest.raises(GraphError, match="non-integer"):
            parse_snap_text("a b\n")

    def test_file_roundtrip(self, tmp_path):
        p = tmp_path / "toy.txt"
        p.write_text(SNAP_SAMPLE)
        g = load_snap_edge_list(p)
        assert g.name == "toy"
        assert g.num_undirected_edges == 3


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = sort_edges(erdos_renyi(40, 0.2, seed=1, name="roundtrip"))
        p = tmp_path / "g.npz"
        save_npz(g, p)
        back = load_npz(p)
        assert back.name == "roundtrip"
        assert np.array_equal(back.offsets, g.offsets)
        assert np.array_equal(back.edges, g.edges)
        assert back.meta.get("edges_sorted") is True

    def test_meta_flags_default_false(self, tmp_path):
        g = erdos_renyi(10, 0.3, seed=2)
        p = tmp_path / "g.npz"
        save_npz(g, p)
        back = load_npz(p)
        assert "edges_sorted" not in back.meta


class TestWriters:
    def test_dimacs(self, tmp_path):
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)])
        p = tmp_path / "g.col"
        write_dimacs(g, p)
        lines = p.read_text().splitlines()
        assert lines[0] == "p edge 3 2"
        assert "e 1 2" in lines
        assert "e 2 3" in lines
        # Each undirected edge appears exactly once.
        assert sum(1 for l in lines if l.startswith("e ")) == 2

    def test_edge_list_roundtrip(self, tmp_path):
        g = erdos_renyi(25, 0.3, seed=4, name="el")
        p = tmp_path / "g.txt"
        write_edge_list(g, p)
        back = load_snap_edge_list(p)
        assert back.num_undirected_edges == g.num_undirected_edges
