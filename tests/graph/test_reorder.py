"""Tests for DBG reordering and edge sorting."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphError,
    apply_permutation,
    degree_based_grouping,
    erdos_renyi,
    invert_permutation,
    is_descending_degree_order,
    random_permutation,
    rmat,
    sort_edges,
    star_graph,
)
from repro.coloring import assert_proper_coloring, greedy_coloring_fast


class TestPermutations:
    def test_invert(self):
        perm = np.array([2, 0, 1, 3])
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(4))
        assert np.array_equal(inv[perm], np.arange(4))

    def test_apply_identity(self, small_random):
        g = apply_permutation(small_random, np.arange(small_random.num_vertices))
        assert np.array_equal(g.offsets, small_random.offsets)

    def test_apply_preserves_structure(self, small_random):
        gen = np.random.default_rng(1)
        perm = gen.permutation(small_random.num_vertices)
        g = apply_permutation(small_random, perm)
        assert g.num_edges == small_random.num_edges
        # Edge (perm-inverse) consistency: new u~v iff old perm[u]~perm[v].
        inv = invert_permutation(perm)
        for old_u, old_v in list(small_random.iter_edges())[:50]:
            assert g.has_edge(int(inv[old_u]), int(inv[old_v]))

    def test_apply_invalid_permutation(self, triangle):
        with pytest.raises(GraphError):
            apply_permutation(triangle, np.array([0, 0, 1]))
        with pytest.raises(GraphError):
            apply_permutation(triangle, np.array([0, 1]))


class TestDBG:
    def test_descending_degree(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        assert is_descending_degree_order(r.graph)
        assert r.graph.meta["dbg_reordered"] is True

    def test_star_hub_first(self):
        # Build a star with the hub at the END so DBG must move it first.
        g = star_graph(6)
        rr = random_permutation(g, seed=3)
        r = degree_based_grouping(rr.graph)
        assert r.graph.degree(0) == 5

    def test_stable_tie_break(self):
        """Equal-degree vertices keep their original relative order."""
        g = CSRGraph.from_edge_list(4, [(0, 1), (2, 3)])
        r = degree_based_grouping(g)
        assert np.array_equal(r.new_to_old, np.arange(4))

    def test_permutations_are_inverses(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        assert np.array_equal(
            r.new_to_old[r.old_to_new], np.arange(medium_powerlaw.num_vertices)
        )

    def test_coloring_maps_back(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        colors_new = greedy_coloring_fast(r.graph)
        colors_old = r.map_coloring_to_original(colors_new)
        assert_proper_coloring(medium_powerlaw, colors_old)

    def test_map_coloring_wrong_length(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        with pytest.raises(GraphError):
            r.map_coloring_to_original(np.zeros(3))

    def test_degree_multiset_preserved(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        assert sorted(r.graph.degrees()) == sorted(medium_powerlaw.degrees())


class TestEdgeSorting:
    def test_sorted_after(self, medium_powerlaw):
        r = degree_based_grouping(medium_powerlaw)
        g = sort_edges(r.graph)
        assert g.has_sorted_edges()
        assert g.meta["edges_sorted"] is True

    def test_neighbour_sets_preserved(self, medium_powerlaw):
        g = sort_edges(medium_powerlaw)
        for v in range(0, medium_powerlaw.num_vertices, 37):
            assert sorted(medium_powerlaw.neighbors(v).tolist()) == g.neighbors(v).tolist()

    def test_renaming_invalidates_sortedness_flag(self, medium_powerlaw):
        g = sort_edges(medium_powerlaw)
        r = random_permutation(g, seed=9)
        assert "edges_sorted" not in r.graph.meta


class TestRandomPermutation:
    def test_deterministic(self, small_random):
        a = random_permutation(small_random, seed=4)
        b = random_permutation(small_random, seed=4)
        assert np.array_equal(a.new_to_old, b.new_to_old)

    def test_full_pipeline_preserves_coloring_validity(self):
        g = rmat(8, 6, seed=20)
        r = degree_based_grouping(g)
        gs = sort_edges(r.graph)
        colors = greedy_coloring_fast(gs)
        assert_proper_coloring(gs, colors)
        assert_proper_coloring(g, r.map_coloring_to_original(colors))


class TestDescendingDegreeOrder:
    """The shared degree-sort kernel behind both DBG and the coloring
    package's ``largest_first`` ordering."""

    def test_is_permutation_and_descends(self, medium_powerlaw):
        from repro.graph import descending_degree_order

        degrees = medium_powerlaw.degrees()
        order = descending_degree_order(degrees)
        assert sorted(order.tolist()) == list(range(degrees.size))
        assert np.all(np.diff(degrees[order]) <= 0)

    def test_stable_tie_break_is_vertex_id(self):
        from repro.graph import descending_degree_order

        order = descending_degree_order(np.array([3, 5, 3, 5, 1]))
        assert order.tolist() == [1, 3, 0, 2, 4]

    def test_dbg_uses_it(self, medium_powerlaw):
        """DBG's permutation is exactly the shared kernel's order on
        in-degrees."""
        from repro.graph import descending_degree_order

        r = degree_based_grouping(medium_powerlaw)
        want = descending_degree_order(medium_powerlaw.in_degrees())
        assert np.array_equal(r.new_to_old, want)
