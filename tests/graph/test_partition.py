"""Tests for the HDV/LDV partition and the edge-cut shard planner."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    degree_based_grouping,
    partition_by_cache_capacity,
    partition_by_degree,
    partition_round_robin,
    partition_vertex_ranges,
    rmat,
    star_graph,
)


def _graph(offsets, edges, name):
    return CSRGraph(
        offsets=np.asarray(offsets, dtype=np.int64),
        edges=np.asarray(edges, dtype=np.int64),
        name=name,
    )


@pytest.fixture
def empty_graph():
    return _graph([0], [], "empty")


@pytest.fixture
def single_vertex_graph():
    return _graph([0, 0], [], "single")


@pytest.fixture
def dbg_graph():
    return degree_based_grouping(rmat(9, 6, seed=12)).graph


class TestCacheCapacity:
    def test_capacity_limits_vt(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=100, color_bytes=2)
        assert p.v_t == 50
        assert p.num_hdv == 50
        assert p.num_ldv == dbg_graph.num_vertices - 50

    def test_whole_graph_fits(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=1 << 20)
        assert p.v_t == dbg_graph.num_vertices
        assert p.num_ldv == 0
        assert p.hdv_edge_coverage == 1.0

    def test_is_hdv(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=20)
        assert p.is_hdv(0)
        assert not p.is_hdv(p.v_t)

    def test_invalid(self, dbg_graph):
        with pytest.raises(ValueError):
            partition_by_cache_capacity(dbg_graph, cache_bytes=-1)
        with pytest.raises(ValueError):
            partition_by_cache_capacity(dbg_graph, 100, color_bytes=0)

    def test_coverage_beats_fraction(self, dbg_graph):
        """After DBG, caching the top k% of vertices covers far more than
        k% of edge endpoints — the whole point of the HDV cache."""
        n = dbg_graph.num_vertices
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=2 * (n // 10))
        assert p.hdv_edge_coverage > 2 * (p.num_hdv / n)


class TestDegreePartition:
    def test_threshold_split(self, dbg_graph):
        p = partition_by_degree(dbg_graph, min_degree=10)
        degs = dbg_graph.in_degrees()
        if p.v_t < dbg_graph.num_vertices:
            assert degs[p.v_t] < 10
        if p.v_t > 0:
            assert degs[p.v_t - 1] >= 10

    def test_all_above(self):
        g = degree_based_grouping(star_graph(5)).graph
        p = partition_by_degree(g, min_degree=1)
        assert p.v_t == g.num_vertices

    def test_none_above(self, dbg_graph):
        p = partition_by_degree(dbg_graph, min_degree=10**9)
        assert p.v_t == 0


class TestPartitionEdgeCases:
    def test_empty_graph(self, empty_graph):
        p = partition_by_cache_capacity(empty_graph, cache_bytes=1 << 20)
        assert p.v_t == 0
        assert p.num_hdv == 0 and p.num_ldv == 0
        assert p.hdv_edge_coverage == 0.0
        assert partition_by_degree(empty_graph, min_degree=1).v_t == 0

    def test_single_vertex(self, single_vertex_graph):
        p = partition_by_cache_capacity(single_vertex_graph, cache_bytes=1 << 20)
        assert p.v_t == 1
        assert p.is_hdv(0)
        assert p.num_ldv == 0

    def test_all_hdv(self, dbg_graph):
        """A cache big enough for every color makes the whole graph HDV."""
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=1 << 30)
        assert p.num_hdv == dbg_graph.num_vertices
        assert p.num_ldv == 0
        assert p.hdv_edge_coverage == 1.0
        assert all(p.is_hdv(v) for v in (0, dbg_graph.num_vertices - 1))


class TestShardPlan:
    @pytest.mark.parametrize(
        "partitioner", [partition_vertex_ranges, partition_round_robin]
    )
    def test_empty_graph(self, empty_graph, partitioner):
        plan = partitioner(empty_graph, 4)
        assert plan.num_vertices == 0
        assert plan.num_boundary == 0 and plan.num_interior == 0
        assert plan.cut_edges == 0
        assert plan.shard_sizes().tolist() == [0, 0, 0, 0]
        for shard in range(4):
            assert plan.shard_vertices(shard).size == 0

    @pytest.mark.parametrize(
        "partitioner", [partition_vertex_ranges, partition_round_robin]
    )
    def test_single_vertex(self, single_vertex_graph, partitioner):
        plan = partitioner(single_vertex_graph, 4)
        assert plan.owner.tolist() == [0]
        assert plan.num_boundary == 0
        assert plan.shard_sizes().tolist() == [1, 0, 0, 0]
        assert plan.shard_vertices(0).tolist() == [0]
        assert plan.interior_vertices(0).tolist() == [0]

    def test_more_shards_than_vertices(self):
        g = _graph([0, 1, 2], [1, 0], "pair")
        plan = partition_vertex_ranges(g, 5)
        assert plan.num_shards == 5
        assert plan.shard_sizes().tolist() == [1, 1, 0, 0, 0]
        # The single edge crosses shards, so both endpoints are boundary.
        assert plan.boundary_vertices().tolist() == [0, 1]
        assert plan.cut_edges == 2
        assert plan.num_interior == 0

    def test_owner_covers_all_shards(self, dbg_graph):
        plan = partition_vertex_ranges(dbg_graph, 8)
        assert plan.owner.size == dbg_graph.num_vertices
        assert set(np.unique(plan.owner)) == set(range(8))
        sizes = plan.shard_sizes()
        assert sizes.sum() == dbg_graph.num_vertices
        assert sizes.max() - sizes.min() <= 1

    def test_boundary_matches_definition(self, dbg_graph):
        plan = partition_round_robin(dbg_graph, 4)
        src = dbg_graph.source_of_edge_slots()
        cross = plan.owner[src] != plan.owner[dbg_graph.edges]
        expected = np.zeros(dbg_graph.num_vertices, dtype=bool)
        expected[src[cross]] = True
        expected[dbg_graph.edges[cross]] = True
        assert np.array_equal(plan.boundary, expected)
        assert plan.cut_edges == int(cross.sum())

    def test_interior_disjoint_from_boundary(self, dbg_graph):
        plan = partition_vertex_ranges(dbg_graph, 4)
        boundary = set(plan.boundary_vertices().tolist())
        for shard in range(4):
            interior = plan.interior_vertices(shard)
            assert boundary.isdisjoint(interior.tolist())
            owned = plan.shard_vertices(shard)
            assert set(interior.tolist()) <= set(owned.tolist())

    def test_arrays_read_only(self, dbg_graph):
        plan = partition_vertex_ranges(dbg_graph, 2)
        with pytest.raises(ValueError):
            plan.owner[0] = 1
        with pytest.raises(ValueError):
            plan.boundary[0] = True

    def test_invalid_inputs(self, dbg_graph):
        with pytest.raises(ValueError):
            partition_vertex_ranges(dbg_graph, 0)
        with pytest.raises(ValueError):
            partition_round_robin(dbg_graph, -1)
        plan = partition_vertex_ranges(dbg_graph, 2)
        with pytest.raises(ValueError):
            plan.shard_vertices(2)
