"""Tests for the HDV/LDV partition (vertex threshold selection)."""

import pytest

from repro.graph import (
    degree_based_grouping,
    partition_by_cache_capacity,
    partition_by_degree,
    rmat,
    star_graph,
)


@pytest.fixture
def dbg_graph():
    return degree_based_grouping(rmat(9, 6, seed=12)).graph


class TestCacheCapacity:
    def test_capacity_limits_vt(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=100, color_bytes=2)
        assert p.v_t == 50
        assert p.num_hdv == 50
        assert p.num_ldv == dbg_graph.num_vertices - 50

    def test_whole_graph_fits(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=1 << 20)
        assert p.v_t == dbg_graph.num_vertices
        assert p.num_ldv == 0
        assert p.hdv_edge_coverage == 1.0

    def test_is_hdv(self, dbg_graph):
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=20)
        assert p.is_hdv(0)
        assert not p.is_hdv(p.v_t)

    def test_invalid(self, dbg_graph):
        with pytest.raises(ValueError):
            partition_by_cache_capacity(dbg_graph, cache_bytes=-1)
        with pytest.raises(ValueError):
            partition_by_cache_capacity(dbg_graph, 100, color_bytes=0)

    def test_coverage_beats_fraction(self, dbg_graph):
        """After DBG, caching the top k% of vertices covers far more than
        k% of edge endpoints — the whole point of the HDV cache."""
        n = dbg_graph.num_vertices
        p = partition_by_cache_capacity(dbg_graph, cache_bytes=2 * (n // 10))
        assert p.hdv_edge_coverage > 2 * (p.num_hdv / n)


class TestDegreePartition:
    def test_threshold_split(self, dbg_graph):
        p = partition_by_degree(dbg_graph, min_degree=10)
        degs = dbg_graph.in_degrees()
        if p.v_t < dbg_graph.num_vertices:
            assert degs[p.v_t] < 10
        if p.v_t > 0:
            assert degs[p.v_t - 1] >= 10

    def test_all_above(self):
        g = degree_based_grouping(star_graph(5)).graph
        p = partition_by_degree(g, min_degree=1)
        assert p.v_t == g.num_vertices

    def test_none_above(self, dbg_graph):
        p = partition_by_degree(dbg_graph, min_degree=10**9)
        assert p.v_t == 0
