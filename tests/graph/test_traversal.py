"""Tests for BFS / connected-components utilities."""

import numpy as np
import pytest

from repro.graph import CSRGraph, cycle_graph, erdos_renyi, path_graph, road_grid, star_graph
from repro.graph.traversal import (
    bfs_levels,
    component_summary,
    connected_components,
    eccentricity_estimate,
    is_connected,
)


class TestBFS:
    def test_path_distances(self):
        g = path_graph(5)
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_levels(g, 2).tolist() == [2, 1, 0, 1, 2]

    def test_unreachable(self):
        g = CSRGraph.from_edge_list(4, [(0, 1)])
        lv = bfs_levels(g, 0)
        assert lv[1] == 1
        assert lv[2] == -1 and lv[3] == -1

    def test_cycle(self):
        g = cycle_graph(8)
        lv = bfs_levels(g, 0)
        assert lv.max() == 4

    def test_invalid_source(self):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            bfs_levels(path_graph(3), 5)


class TestComponents:
    def test_single_component(self):
        g = star_graph(6)
        assert np.unique(connected_components(g)).size == 1
        assert is_connected(g)

    def test_multiple(self):
        g = CSRGraph.from_edge_list(6, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        # Isolated vertices each get their own component.
        assert np.unique(comp).size == 4
        assert not is_connected(g)

    def test_summary(self):
        g = CSRGraph.from_edge_list(5, [(0, 1), (1, 2)])
        s = component_summary(g)
        assert s.num_components == 3
        assert s.largest_size == 3
        assert s.largest_fraction == pytest.approx(0.6)
        assert s.sizes == (3, 1, 1)

    def test_empty(self):
        s = component_summary(CSRGraph.empty(0))
        assert s.num_components == 0
        assert is_connected(CSRGraph.empty(0))

    def test_matches_networkx(self):
        import networkx as nx

        g = erdos_renyi(70, 0.03, seed=5)
        ours = np.unique(connected_components(g)).size
        theirs = nx.number_connected_components(g.to_networkx())
        assert ours == theirs


class TestEccentricity:
    def test_path_exact(self):
        g = path_graph(20)
        assert eccentricity_estimate(g, probes=2, seed=1) == 19

    def test_lower_bound(self):
        import networkx as nx

        g = road_grid(8, 8, diag_prob=0.0, removal_prob=0.0, seed=0)
        est = eccentricity_estimate(g, probes=3, seed=2)
        true = nx.diameter(g.to_networkx())
        assert est <= true
        assert est >= true // 2

    def test_empty(self):
        assert eccentricity_estimate(CSRGraph.empty(0)) == 0
