"""Tests for the bandwidth-efficient edge-array layouts.

Layouts are *encodings*, never reorderings: the neighbor lists they
describe are untouched, only the bits-per-entry accounting changes.  The
load-bearing invariants pinned here:

* ``plain`` reproduces the historical ``ceil(k / edges_per_block)``
  block math bit-for-bit;
* the scalar ``EdgeLayout.prefix_blocks`` (event engine) and the
  vectorized ``kernels.prefix_block_counts`` (batched engine) are the
  same integer function — this is what makes engine parity survive
  every layout;
* compressed layouts never *increase* the total encoded bits, and
  delta-compression falls back to the plain entry width on rows whose
  neighbors are not sorted.
"""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    DEFAULT_LAYOUT,
    LAYOUTS,
    build_layout,
    degree_based_grouping,
    rmat,
    sort_edges,
    star_graph,
    validate_layout,
)
from repro.kernels import prefix_block_counts


def preprocess(g):
    return sort_edges(degree_based_grouping(g).graph)


@pytest.fixture
def skewed():
    return preprocess(rmat(9, 8, seed=3, name="skewed"))


class TestValidation:
    def test_names(self):
        assert LAYOUTS == ("plain", "degree-sorted", "delta-compressed")
        assert DEFAULT_LAYOUT == "plain"
        for name in LAYOUTS:
            assert validate_layout(name) == name

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown layout 'csr5'"):
            validate_layout("csr5")

    def test_build_unknown(self, skewed):
        with pytest.raises(ValueError, match="unknown layout"):
            build_layout(skewed, "csr5")


class TestPlain:
    def test_reproduces_ceil_block_math(self, skewed):
        layout = build_layout(skewed, "plain")
        block_bits = 512
        edges_per_block = block_bits // 32
        degrees = np.diff(skewed.offsets)
        for v in range(skewed.num_vertices):
            deg = int(degrees[v])
            for k in {0, 1, deg // 2, deg}:
                want = -(-k // edges_per_block) if k else 0
                assert layout.prefix_blocks(v, k, block_bits) == want

    def test_full_width_everywhere(self, skewed):
        layout = build_layout(skewed, "plain")
        assert np.all(layout.entry_bits == 32)
        assert np.all(layout.header_bits == 32)
        assert layout.compression_ratio(skewed.degrees()) == 1.0


class TestCompressedLayouts:
    @pytest.mark.parametrize("name", ("degree-sorted", "delta-compressed"))
    def test_never_larger_than_plain(self, name, skewed):
        degrees = skewed.degrees()
        plain = build_layout(skewed, "plain")
        compressed = build_layout(skewed, name)
        assert compressed.total_bits(degrees) <= plain.total_bits(degrees)
        assert compressed.compression_ratio(degrees) <= 1.0

    def test_degree_sorted_widths_fit_max_id(self, skewed):
        layout = build_layout(skewed, "degree-sorted")
        assert set(np.unique(layout.entry_bits)) <= {8, 16, 32}
        offsets, edges = skewed.offsets, skewed.edges
        for v in range(0, skewed.num_vertices, 37):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            if lo == hi:
                continue
            assert int(edges[lo:hi].max()) < 2 ** int(layout.entry_bits[v])

    def test_delta_rows_fall_back_when_unsorted(self):
        # Hand-build a graph with one sorted and one unsorted row.
        g = CSRGraph(
            offsets=np.array([0, 3, 6, 6, 6, 6, 6, 6, 6, 6, 6],
                             dtype=np.int64),
            edges=np.array([0, 5, 9, 8, 2, 6], dtype=np.int64),
            name="half-sorted",
        )
        layout = build_layout(g, "delta-compressed")
        assert layout.entry_bits[0] < 32  # sorted row: delta width
        assert layout.entry_bits[1] == 32  # unsorted row: plain fallback
        assert layout.meta["rows_fallback_plain"] == 1

    def test_delta_compresses_preprocessed_graph(self, skewed):
        layout = build_layout(skewed, "delta-compressed")
        # sort_edges guarantees sorted rows, so no fallbacks...
        assert layout.meta["rows_fallback_plain"] == 0
        # ...and a skewed graph must actually compress.
        assert layout.compression_ratio(skewed.degrees()) < 0.85

    def test_zero_degree_rows_cost_nothing(self):
        g = star_graph(5)
        g = CSRGraph(  # append an isolated vertex
            offsets=np.append(g.offsets, g.offsets[-1]),
            edges=g.edges,
            name="star+isolated",
        )
        v = g.num_vertices - 1
        for name in LAYOUTS:
            layout = build_layout(g, name)
            assert layout.row_bits(g.degrees())[v] == 0
            assert layout.prefix_blocks(v, 0, 512) == 0


class TestScalarVectorizedAgreement:
    """The same prefix-block function, scalar and vectorized — the
    engine-parity contract under compressed layouts hangs on this."""

    @pytest.mark.parametrize("name", LAYOUTS)
    @pytest.mark.parametrize("block_bits", (256, 512))
    def test_prefix_blocks_match(self, name, block_bits, skewed):
        layout = build_layout(skewed, name)
        degrees = np.diff(skewed.offsets)
        rng = np.random.default_rng(11)
        counts = (rng.random(skewed.num_vertices) * (degrees + 1)).astype(
            np.int64
        )
        vectorized = prefix_block_counts(
            layout.header_bits, layout.entry_bits, counts, block_bits
        )
        scalar = np.array([
            layout.prefix_blocks(v, int(counts[v]), block_bits)
            for v in range(skewed.num_vertices)
        ])
        assert np.array_equal(vectorized, scalar)
