"""Tests for k-core decomposition and degeneracy ordering."""

import numpy as np
import pytest

from repro.coloring import greedy_coloring_fast, num_colors
from repro.graph import (
    CSRGraph,
    complete_graph,
    core_decomposition,
    cycle_graph,
    degeneracy,
    degeneracy_order,
    erdos_renyi,
    path_graph,
    rmat,
    star_graph,
)


class TestKnownValues:
    def test_complete(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_cycle(self):
        assert degeneracy(cycle_graph(10)) == 2

    def test_path(self):
        assert degeneracy(path_graph(10)) == 1

    def test_star(self):
        assert degeneracy(star_graph(20)) == 1

    def test_tree(self):
        edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]
        assert degeneracy(CSRGraph.from_edge_list(6, edges)) == 1

    def test_empty(self):
        assert degeneracy(CSRGraph.empty(0)) == 0
        assert degeneracy(CSRGraph.empty(5)) == 0

    def test_matches_networkx(self):
        import networkx as nx

        g = erdos_renyi(80, 0.1, seed=3)
        ours = core_decomposition(g).core_numbers
        theirs = nx.core_number(g.to_networkx())
        for v in range(g.num_vertices):
            assert ours[v] == theirs[v]


class TestDecompositionProperties:
    def test_core_membership(self):
        """Inside the k-core, every vertex has >= k neighbours in it."""
        g = rmat(8, 6, seed=5)
        dec = core_decomposition(g)
        k = dec.degeneracy
        core = set(dec.k_core_vertices(k).tolist())
        assert core
        for v in core:
            inside = sum(1 for w in g.neighbors(v) if int(w) in core)
            assert inside >= k

    def test_removal_order_is_permutation(self):
        g = erdos_renyi(60, 0.1, seed=7)
        dec = core_decomposition(g)
        assert sorted(dec.removal_order.tolist()) == list(range(60))

    def test_peeling_property(self):
        """Each peeled vertex has at most `degeneracy` later-peeled
        neighbours — the defining property of the order."""
        g = erdos_renyi(50, 0.15, seed=8)
        dec = core_decomposition(g)
        pos = np.empty(g.num_vertices, dtype=int)
        pos[dec.removal_order] = np.arange(g.num_vertices)
        for v in range(g.num_vertices):
            later = sum(1 for w in g.neighbors(v) if pos[int(w)] > pos[v])
            assert later <= dec.degeneracy


class TestDegeneracyOrdering:
    def test_color_bound(self):
        """Greedy in smallest-last order uses ≤ degeneracy + 1 colors."""
        for seed in range(4):
            g = rmat(8, 5, seed=seed)
            order = degeneracy_order(g)
            colors = greedy_coloring_fast(g, order=order)
            assert num_colors(colors) <= degeneracy(g) + 1

    def test_often_beats_max_degree_bound(self):
        g = star_graph(50)
        order = degeneracy_order(g)
        assert num_colors(greedy_coloring_fast(g, order=order)) == 2
