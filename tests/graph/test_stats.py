"""Tests for graph statistics (overlap ratio, degree stats, HDV coverage)."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    complete_graph,
    degree_histogram,
    degree_stats,
    gini_coefficient,
    hdv_coverage,
    neighborhood_overlap_ratio,
    overlap_ratio_sweep,
    path_graph,
    rmat,
    star_graph,
)


class TestDegreeStats:
    def test_complete(self):
        s = degree_stats(complete_graph(5))
        assert s.min_degree == s.max_degree == 4
        assert s.mean_degree == 4.0
        assert s.gini == pytest.approx(0.0, abs=1e-9)

    def test_star_skew(self):
        s = degree_stats(star_graph(20))
        assert s.max_degree == 19
        assert s.min_degree == 1
        assert s.gini > 0.4

    def test_empty(self):
        s = degree_stats(CSRGraph.empty(0))
        assert s.num_vertices == 0
        assert s.mean_degree == 0.0

    def test_histogram(self):
        h = degree_histogram(star_graph(5))
        assert h[1] == 4
        assert h[4] == 1

    def test_gini_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.array([0, 0])) == 0.0


class TestOverlapRatio:
    def test_complete_graph_full_overlap(self):
        """In K_n, consecutive vertices share all but two neighbours."""
        g = complete_graph(10)
        r = neighborhood_overlap_ratio(g, 1)
        # N(v) and N(v-1) share n-2 of v's n-1 neighbours.
        assert r == pytest.approx(8 / 9)

    def test_path_graph_no_overlap(self):
        """On a path, consecutive vertices never share a neighbour...

        except that v-1's neighbour list contains v-2 and v, and N(v)
        = {v-1, v+1}; overlap is empty.
        """
        g = path_graph(50)
        assert neighborhood_overlap_ratio(g, 1) == pytest.approx(0.0)

    def test_handmade_example(self):
        # 0-2, 1-2, 0-3, 1-3: vertices 2 and 3 share both neighbours.
        g = CSRGraph.from_edge_list(4, [(0, 2), (1, 2), (0, 3), (1, 3)])
        r = neighborhood_overlap_ratio(g, 1)
        # v=1: N(1)={2,3}, N(0)={2,3} -> 1.0 ; v=2: N(2)={0,1}, N(1)={2,3} -> 0
        # v=3: N(3)={0,1}, N(2)={0,1} -> 1.0 ; mean = 2/3
        assert r == pytest.approx(2 / 3)

    def test_interval_growth(self):
        """Larger windows can only increase the union, so the ratio is
        non-decreasing in the interval."""
        g = rmat(9, 6, seed=8)
        r1 = neighborhood_overlap_ratio(g, 1)
        r8 = neighborhood_overlap_ratio(g, 8)
        assert r8 >= r1

    def test_power_law_low_overlap(self):
        """The paper's observation: overlap is small on real-ish graphs."""
        g = rmat(10, 6, seed=9)
        assert neighborhood_overlap_ratio(g, 4, sample=500) < 0.25

    def test_sweep_keys(self):
        g = rmat(8, 4, seed=10)
        sweep = overlap_ratio_sweep(g, (1, 2, 4), sample=200)
        assert set(sweep.keys()) == {1, 2, 4}

    def test_invalid_interval(self, triangle):
        with pytest.raises(ValueError):
            neighborhood_overlap_ratio(triangle, 0)

    def test_tiny_graph(self, triangle):
        assert neighborhood_overlap_ratio(triangle, 5) == 0.0


class TestHDVCoverage:
    def test_star_hub_covers_everything(self):
        g = star_graph(10)
        # Caching just the hub covers the 9 leaf->hub slots of 18 total.
        assert hdv_coverage(g, 1) == pytest.approx(0.5)

    def test_full_coverage(self, small_random):
        assert hdv_coverage(small_random, small_random.num_vertices) == 1.0

    def test_zero_coverage(self, small_random):
        assert hdv_coverage(small_random, 0) == 0.0

    def test_monotone(self, medium_powerlaw):
        vals = [hdv_coverage(medium_powerlaw, t) for t in (0, 10, 100, 400)]
        assert vals == sorted(vals)

    def test_empty_graph(self):
        assert hdv_coverage(CSRGraph.empty(3), 1) == 0.0
