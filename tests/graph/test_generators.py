"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    GraphError,
    barabasi_albert,
    community_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    powerlaw_cluster,
    random_bipartite,
    random_regular,
    rmat,
    road_grid,
    star_graph,
)
from repro.graph.stats import gini_coefficient


def _basic_invariants(g):
    assert g.is_symmetric()
    assert not g.has_self_loops()
    assert not g.has_duplicate_edges()


class TestRMAT:
    def test_size(self):
        g = rmat(8, 4, seed=1)
        assert g.num_vertices == 256
        # Duplicates removed, so at most 2 * edge_factor * n directed slots.
        assert 0 < g.num_edges <= 2 * 4 * 256
        _basic_invariants(g)

    def test_determinism(self):
        a, b = rmat(7, 4, seed=5), rmat(7, 4, seed=5)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.offsets, b.offsets)

    def test_seed_changes_graph(self):
        a, b = rmat(7, 4, seed=5), rmat(7, 4, seed=6)
        assert not (
            np.array_equal(a.edges, b.edges) and np.array_equal(a.offsets, b.offsets)
        )

    def test_degree_skew(self):
        """Graph500 parameters give a heavy-tailed degree distribution."""
        g = rmat(10, 8, seed=2)
        assert gini_coefficient(g.degrees()) > 0.35

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            rmat(4, 2, a=0.9, b=0.2, c=0.2)
        with pytest.raises(GraphError):
            rmat(-1, 2)


class TestBarabasiAlbert:
    def test_size_and_invariants(self):
        g = barabasi_albert(200, 3, seed=1)
        assert g.num_vertices == 200
        # Each of the n - m new vertices adds m undirected edges.
        assert g.num_undirected_edges == (200 - 3) * 3
        _basic_invariants(g)

    def test_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=3)
        assert g.max_degree() > 10

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert(10, 0)


class TestPowerlawCluster:
    def test_invariants(self):
        g = powerlaw_cluster(150, 4, 0.5, seed=2)
        assert g.num_vertices == 150
        _basic_invariants(g)

    def test_clustering_above_ba(self):
        """Triad closure must raise the clustering coefficient vs plain BA."""
        import networkx as nx

        plc = powerlaw_cluster(300, 4, 0.9, seed=4).to_networkx()
        ba = barabasi_albert(300, 4, seed=4).to_networkx()
        assert nx.average_clustering(plc) > nx.average_clustering(ba)

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            powerlaw_cluster(50, 2, 1.5)


class TestRoadGrid:
    def test_size(self):
        g = road_grid(10, 12, seed=1)
        assert g.num_vertices == 120
        _basic_invariants(g)

    def test_bounded_degree(self):
        g = road_grid(20, 20, seed=2)
        assert g.max_degree() <= 8  # 4-grid + diagonals

    def test_no_perturbation_is_exact_grid(self):
        g = road_grid(5, 5, diag_prob=0.0, removal_prob=0.0, seed=0)
        assert g.num_undirected_edges == 2 * 5 * 4  # 2 * r * (c-1) for square
        assert g.degree(0) == 2  # corner
        assert g.degree(12) == 4  # center

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            road_grid(0, 5)


class TestCommunityGraph:
    def test_size(self):
        g = community_graph(10, 20, seed=1)
        assert g.num_vertices == 200
        _basic_invariants(g)

    def test_community_structure(self):
        """Intra-community edges dominate with the default rates."""
        g = community_graph(8, 25, p_in=0.3, p_out=0.001, seed=2)
        arr = g.edge_array()
        same = np.count_nonzero(arr[:, 0] // 25 == arr[:, 1] // 25)
        assert same / max(arr.shape[0], 1) > 0.8

    def test_invalid(self):
        with pytest.raises(GraphError):
            community_graph(0, 5)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 300, 0.05
        g = erdos_renyi(n, p, seed=3)
        expect = p * n * (n - 1) / 2
        assert abs(g.num_undirected_edges - expect) < 4 * np.sqrt(expect)
        _basic_invariants(g)

    def test_p_zero_and_one(self):
        assert erdos_renyi(20, 0.0, seed=1).num_edges == 0
        g = erdos_renyi(10, 1.0, seed=1)
        assert g.num_undirected_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, -0.1)


class TestRandomRegular:
    def test_degree_bound(self):
        g = random_regular(50, 4, seed=2)
        assert g.max_degree() <= 4
        _basic_invariants(g)

    def test_parity_check(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)

    def test_degree_range_check(self):
        with pytest.raises(GraphError):
            random_regular(5, 5)


class TestPrimitives:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_undirected_edges == 10

    def test_star(self):
        g = star_graph(8)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_star_invalid(self):
        with pytest.raises(GraphError):
            star_graph(0)

    def test_path(self):
        g = path_graph(6)
        assert g.num_undirected_edges == 5
        assert g.degree(0) == 1
        assert g.degree(3) == 2

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_undirected_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_bipartite_structure(self):
        g = random_bipartite(20, 30, 0.2, seed=5)
        assert g.num_vertices == 50
        for u, v in g.iter_edges():
            assert (u < 20) != (v < 20), "edge inside one side"
