"""Tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphError, complete_graph, erdos_renyi


class TestConstruction:
    def test_from_edge_list_basic(self):
        g = CSRGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 6  # symmetrized
        assert g.num_undirected_edges == 3
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_from_edge_list_no_symmetrize(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)], symmetrize=False)
        assert g.num_edges == 2
        assert g.neighbors(1).tolist() == [2]
        assert g.neighbors(2).tolist() == []

    def test_dedup(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (0, 1), (1, 0)])
        assert g.num_undirected_edges == 1

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edge_list(3, [(0, 0), (0, 1)])
        assert not g.has_self_loops()
        assert g.num_undirected_edges == 1

    def test_self_loops_kept_when_requested(self):
        g = CSRGraph.from_edge_list(
            2, [(0, 0), (0, 1)], drop_self_loops=False, symmetrize=False, dedup=False
        )
        assert g.has_self_loops()

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.neighbors(4).size == 0

    def test_zero_vertex_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.degrees().size == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, [(0, 2)])
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(2, [(-1, 0)])

    def test_malformed_offsets_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(offsets=np.array([1, 2]), edges=np.array([0, 0]))
        with pytest.raises(GraphError):
            CSRGraph(offsets=np.array([0, 2]), edges=np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(offsets=np.array([0, 2, 1]), edges=np.array([0, 1]))

    def test_edge_destination_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(offsets=np.array([0, 1]), edges=np.array([5]))

    def test_arrays_are_read_only(self):
        g = CSRGraph.from_edge_list(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.edges[0] = 2
        with pytest.raises(ValueError):
            g.offsets[0] = 1

    def test_bad_edge_list_shape(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_list(3, [(0, 1, 2)])


class TestQueries:
    def test_degrees(self, triangle):
        assert triangle.degrees().tolist() == [2, 2, 2]
        assert triangle.max_degree() == 2
        assert triangle.degree(0) == 2

    def test_in_degrees_symmetric(self, small_random):
        assert np.array_equal(small_random.in_degrees(), small_random.degrees())

    def test_edge_range_matches_neighbors(self, paper_example):
        s, e = paper_example.edge_range(4)
        assert (paper_example.edges[s:e] == paper_example.neighbors(4)).all()

    def test_has_edge(self, paper_example):
        assert paper_example.has_edge(0, 4)
        assert paper_example.has_edge(4, 0)
        assert not paper_example.has_edge(0, 3)

    def test_has_edge_sorted_path(self, paper_example):
        g = paper_example.with_sorted_edges()
        assert g.has_edge(0, 4)
        assert not g.has_edge(0, 3)

    def test_vertex_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(3)
        with pytest.raises(GraphError):
            triangle.degree(-1)

    def test_iter_edges_count(self, small_random):
        assert sum(1 for _ in small_random.iter_edges()) == small_random.num_edges

    def test_edge_array_shape(self, small_random):
        arr = small_random.edge_array()
        assert arr.shape == (small_random.num_edges, 2)

    def test_source_of_edge_slots(self, paper_example):
        src = paper_example.source_of_edge_slots()
        assert src.size == paper_example.num_edges
        # Slot sources must be consistent with offsets.
        for v in range(paper_example.num_vertices):
            s, e = paper_example.edge_range(v)
            assert (src[s:e] == v).all()


class TestPredicates:
    def test_is_symmetric(self, small_random):
        assert small_random.is_symmetric()

    def test_not_symmetric(self):
        g = CSRGraph.from_edge_list(3, [(0, 1)], symmetrize=False)
        assert not g.is_symmetric()

    def test_has_sorted_edges(self, small_random):
        assert small_random.has_sorted_edges()  # from_arrays lexsorts

    def test_unsorted_detection(self):
        g = CSRGraph(offsets=np.array([0, 2, 2, 2]), edges=np.array([2, 1]))
        assert not g.has_sorted_edges()

    def test_duplicate_detection(self):
        g = CSRGraph(offsets=np.array([0, 2, 2]), edges=np.array([1, 1]))
        assert g.has_duplicate_edges()
        g2 = CSRGraph(offsets=np.array([0, 2, 2, 2]), edges=np.array([1, 2]))
        assert not g2.has_duplicate_edges()


class TestDerivation:
    def test_with_sorted_edges(self):
        g = CSRGraph(offsets=np.array([0, 3, 3, 3]), edges=np.array([2, 0, 1]))
        s = g.with_sorted_edges()
        assert s.neighbors(0).tolist() == [0, 1, 2]
        assert s.meta["edges_sorted"] is True
        # Original untouched.
        assert g.neighbors(0).tolist() == [2, 0, 1]

    def test_subgraph(self, paper_example):
        sub = paper_example.subgraph([0, 1, 4])
        assert sub.num_vertices == 3
        # Edges (0,1) and (0,4) survive; (1,4) doesn't exist.
        assert sub.has_edge(0, 1)
        assert sub.has_edge(0, 2)  # old 4 renumbered to 2
        assert not sub.has_edge(1, 2)

    def test_subgraph_invalid_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph([0, 7])

    def test_networkx_roundtrip(self, small_random):
        nx_g = small_random.to_networkx()
        back = CSRGraph.from_networkx(nx_g)
        assert back.num_vertices == small_random.num_vertices
        assert back.num_undirected_edges == small_random.num_undirected_edges

    def test_complete_graph_density(self):
        g = complete_graph(6)
        assert g.num_undirected_edges == 15
        assert g.degrees().tolist() == [5] * 6


class TestEdgeKeyOverflowGuard:
    """`src * n + dst` edge keys must refuse to wrap int64 silently."""

    def test_from_arrays_rejects_oversized_vertex_count(self):
        # 4e9 vertices would make the largest key n**2 - 1 > 2**63; the
        # guard must fire before any O(n) allocation happens.
        with pytest.raises(GraphError, match="edge-key encoding limit"):
            CSRGraph.from_arrays(4_000_000_000, np.array([0]), np.array([1]))

    def test_edge_keys_guard_boundary(self):
        from repro.graph.csr import MAX_KEY_ENCODABLE_VERTICES, _edge_keys

        src = np.array([MAX_KEY_ENCODABLE_VERTICES - 1], dtype=np.int64)
        dst = np.array([MAX_KEY_ENCODABLE_VERTICES - 1], dtype=np.int64)
        # At the limit the largest key n**2 - 1 still fits in int64...
        keys = _edge_keys(MAX_KEY_ENCODABLE_VERTICES, src, dst)
        assert keys[0] == MAX_KEY_ENCODABLE_VERTICES**2 - 1
        assert MAX_KEY_ENCODABLE_VERTICES**2 - 1 < 2**63
        # ...one vertex more and it would not.
        assert (MAX_KEY_ENCODABLE_VERTICES + 1) ** 2 - 1 >= 2**63
        with pytest.raises(GraphError, match="overflow int64"):
            _edge_keys(MAX_KEY_ENCODABLE_VERTICES + 1, src, dst)

    def test_duplicate_and_symmetry_checks_still_work(self):
        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)])
        assert not g.has_duplicate_edges()
        assert g.is_symmetric()


class TestFingerprint:
    def test_stable_across_instances(self):
        from repro.graph import csr_fingerprint

        a = CSRGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        b = CSRGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert csr_fingerprint(a) == csr_fingerprint(b)
        assert a.fingerprint() == csr_fingerprint(a)
        # Memoised: same string object on repeat calls.
        assert a.fingerprint() is a.fingerprint()

    def test_hex_shape(self):
        g = complete_graph(3)
        fp = g.fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # valid hex

    def test_name_and_meta_do_not_matter(self):
        a = CSRGraph.from_edge_list(3, [(0, 1)], name="first")
        b = CSRGraph.from_edge_list(3, [(0, 1)], name="second")
        b.meta["edges_sorted"] = True
        assert a.fingerprint() == b.fingerprint()

    def test_structure_matters(self):
        base = CSRGraph.from_edge_list(4, [(0, 1), (1, 2)])
        other_edge = CSRGraph.from_edge_list(4, [(0, 1), (1, 3)])
        extra_vertex = CSRGraph.from_edge_list(5, [(0, 1), (1, 2)])
        assert base.fingerprint() != other_edge.fingerprint()
        assert base.fingerprint() != extra_vertex.fingerprint()

    def test_isolated_vertices_distinguish(self):
        # Same (empty) edge arrays, different vertex counts.
        assert CSRGraph.empty(2).fingerprint() != CSRGraph.empty(3).fingerprint()

    def test_edge_order_within_vertex_matters(self):
        # The digest is over the raw CSR arrays: a sorted-edges variant is
        # a different content address (it is a different preprocessed input).
        g = CSRGraph(
            offsets=np.array([0, 2, 3, 4]),
            edges=np.array([2, 1, 0, 0]),
        )
        assert g.fingerprint() != g.with_sorted_edges().fingerprint()

    def test_known_vector_pinned(self):
        """Pin one digest so accidental format changes are loud.

        If this fails because the hashed layout deliberately changed, bump
        ``FINGERPRINT_VERSION`` and update the constant here.
        """
        from repro.graph.csr import csr_fingerprint

        g = CSRGraph.from_edge_list(3, [(0, 1), (1, 2)])
        import hashlib

        h = hashlib.sha256()
        h.update(b"csr-v1")
        h.update(np.int64(3).tobytes())
        h.update(np.ascontiguousarray(g.offsets).tobytes())
        h.update(np.ascontiguousarray(g.edges).tobytes())
        assert csr_fingerprint(g) == h.hexdigest()
