"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "rmat", "out.npz", "--scale", "8"]
        )
        assert args.kind == "rmat"
        assert args.scale == 8

    def test_color_needs_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color"])

    def test_version_reports_kernel_tiers(self, capsys):
        import repro
        from repro.kernels import capabilities

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert "kernel tiers:" in out
        caps = capabilities()
        for tier in caps["tiers"]:
            assert tier in out
        if caps["native_available"]:
            assert caps["native_backend"]["name"] in out
        else:
            assert "unavailable" in out

    def test_color_accepts_native_backend(self):
        args = build_parser().parse_args(
            ["color", "--dataset", "EF", "--backend", "native"]
        )
        assert args.backend == "native"

    def test_simulate_replay_choices(self):
        args = build_parser().parse_args(
            ["simulate", "--dataset", "EF", "--engine", "batched",
             "--replay", "native"]
        )
        assert args.replay == "native"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--dataset", "EF", "--replay", "fortran"]
            )


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "road", "uniform", "community"])
    def test_generate_kinds(self, kind, tmp_path, capsys):
        out = tmp_path / f"{kind}.npz"
        rc = main(["generate", kind, str(out), "--scale", "7", "--seed", "1"])
        assert rc == 0
        assert out.exists()
        assert "vertices" in capsys.readouterr().out


class TestColor:
    def test_color_file(self, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["generate", "uniform", str(graph_path), "--scale", "7", "--degree", "6"])
        colors_path = tmp_path / "colors.npy"
        rc = main([
            "color", "--input", str(graph_path),
            "--algorithm", "greedy", "--output", str(colors_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colors (validated)" in out
        assert np.load(colors_path).min() >= 1

    def test_color_dataset(self, capsys):
        rc = main(["color", "--dataset", "EF", "--algorithm", "bitwise"])
        assert rc == 0
        assert "validated" in capsys.readouterr().out

    def test_color_native_backend_end_to_end(self, capsys):
        # backend="native" silently falls back without a compiler, so
        # this runs (and must succeed) on every host.
        rc = main([
            "color", "--dataset", "EF", "--algorithm", "bitwise",
            "--backend", "native",
        ])
        assert rc == 0
        assert "validated" in capsys.readouterr().out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["color", "--dataset", "NOPE"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["color", "--input", "/does/not/exist.txt"])


class TestSimulate:
    def test_simulate_dataset(self, capsys):
        rc = main(["simulate", "--dataset", "EF", "-p", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "MCV/s" in out

    def test_simulate_with_gantt_and_disable(self, capsys):
        rc = main([
            "simulate", "--dataset", "EF", "-p", "2",
            "--disable", "mgr", "puv", "--gantt", "--cache-kb", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PE 0" in out
        assert "HDC+BWC" in out

    def test_simulate_native_replay_end_to_end(self, capsys):
        # replay="native" silently falls back without a compiler, so this
        # runs (and must succeed) on every host.
        rc = main([
            "simulate", "--dataset", "EF", "-p", "4",
            "--engine", "batched", "--replay", "native",
        ])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out


class TestServeParser:
    def test_serve_args(self):
        args = build_parser().parse_args([
            "serve", "--socket", "/tmp/x.sock", "--executors", "4",
            "--max-depth", "32", "--no-batching",
        ])
        assert args.socket == "/tmp/x.sock"
        assert args.executors == 4
        assert args.max_depth == 32
        assert args.no_batching is True

    def test_serve_requires_socket(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_source_is_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "submit", "--socket", "/tmp/x.sock",
                "--dataset", "EF", "--status",
            ])

    def test_submit_deltas_defaults(self):
        args = build_parser().parse_args([
            "submit-deltas", "--socket", "/tmp/x.sock", "--dataset", "EF",
        ])
        assert args.batches == 3
        assert args.batch_size == 64
        assert args.algorithm == "bitwise"
        assert args.backend is None
        assert args.verify_every is False

    def test_submit_deltas_source_required_and_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit-deltas", "--socket", "/tmp/x.sock"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "submit-deltas", "--socket", "/tmp/x.sock",
                "--dataset", "EF", "--input", "g.npz",
            ])


@pytest.fixture
def served_socket(tmp_path):
    from repro.obs import Registry
    from repro.service import ColoringService, ServiceConfig
    from repro.service.server import ServiceServer

    svc = ColoringService(ServiceConfig(executors=2, registry=Registry()))
    path = tmp_path / "cli.sock"
    server = ServiceServer(svc, path).run_in_thread()
    yield path
    server.shutdown()
    svc.close(drain=False, timeout=5)


class TestSubmit:
    def test_submit_dataset(self, served_socket, capsys):
        rc = main([
            "submit", "--socket", str(served_socket), "--dataset", "EF",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EF:" in out and "colors via" in out

    def test_submit_graph_file(self, served_socket, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["generate", "uniform", str(graph_path), "--scale", "7"])
        capsys.readouterr()
        colors_path = tmp_path / "c.npy"
        rc = main([
            "submit", "--socket", str(served_socket),
            "--input", str(graph_path), "--output", str(colors_path),
        ])
        assert rc == 0
        assert "colors via" in capsys.readouterr().out
        assert np.load(colors_path).min() >= 1

    def test_submit_status(self, served_socket, capsys):
        rc = main(["submit", "--socket", str(served_socket), "--status"])
        assert rc == 0
        assert '"status": "ok"' in capsys.readouterr().out

    def test_submit_needs_a_source(self, served_socket):
        with pytest.raises(SystemExit, match="needs"):
            main(["submit", "--socket", str(served_socket)])


class TestSubmitDeltas:
    def test_dataset_round_trip(self, served_socket, capsys):
        rc = main([
            "submit-deltas", "--socket", str(served_socket),
            "--dataset", "EF", "--batches", "2", "--batch-size", "32",
            "--verify-every",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "session " in out and "vertices" in out
        assert "batch 1/2" in out and "batch 2/2" in out
        assert "verified:" in out and "colors proper" in out
        assert "deltas/s" in out

    def test_graph_file_round_trip(self, served_socket, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["generate", "uniform", str(graph_path), "--scale", "7"])
        capsys.readouterr()
        rc = main([
            "submit-deltas", "--socket", str(served_socket),
            "--input", str(graph_path), "--batches", "2",
            "--batch-size", "16",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch" in out and "verified:" in out


class TestExperiment:
    def test_fig14(self, capsys):
        rc = main(["experiment", "fig14"])
        assert rc == 0
        assert "BRAM" in capsys.readouterr().out

    def test_table3(self, capsys):
        rc = main(["experiment", "table3"])
        assert rc == 0
        assert "ego-Facebook" in capsys.readouterr().out


class TestMemProfilesAndLayouts:
    def test_version_lists_profiles_and_layouts(self, capsys):
        from repro.cli import build_parser
        from repro.hw import mem

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "memory profiles:" in out
        for name in mem.profiles():
            assert name in out
        assert "edge layouts:" in out
        assert "delta-compressed" in out

    def test_simulate_hbm_profile_and_layout(self, capsys):
        rc = main([
            "simulate", "--dataset", "EF", "-p", "4",
            "--mem-profile", "hbm2", "--layout", "delta-compressed",
            "--engine", "batched",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mem=hbm2" in out
        assert "layout=delta-compressed" in out
        assert "makespan" in out

    def test_simulate_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--dataset", "EF", "--mem-profile", "gddr6"])

    def test_color_hw_profile_and_layout(self, capsys):
        rc = main([
            "color", "--dataset", "EF", "--algorithm", "bitwise",
            "--backend", "hw", "--mem-profile", "hbm2",
            "--layout", "degree-sorted",
        ])
        assert rc == 0
        assert "validated" in capsys.readouterr().out


class TestHbmSweep:
    def test_parser_args(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["hbm-sweep", "--mini", "--channels", "4,8", "--tier", "standin"]
        )
        assert args.mini and args.channels == "4,8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hbm-sweep", "--tier", "huge"])

    def test_mini_sweep_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "hbm.json"
        rc = main([
            "hbm-sweep", "--mini", "--parallelisms", "8",
            "--channels", "4,32", "--out", str(out_path), "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells swept" in out
        assert out_path.exists()
        import json

        doc = json.loads(out_path.read_text())
        assert doc["colors_identical_across_cells"] is True
        assert {e["channels"] for e in doc["entries"]} == {4, 32}
