"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "rmat", "out.npz", "--scale", "8"]
        )
        assert args.kind == "rmat"
        assert args.scale == 8

    def test_color_needs_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color"])


class TestGenerate:
    @pytest.mark.parametrize("kind", ["rmat", "road", "uniform", "community"])
    def test_generate_kinds(self, kind, tmp_path, capsys):
        out = tmp_path / f"{kind}.npz"
        rc = main(["generate", kind, str(out), "--scale", "7", "--seed", "1"])
        assert rc == 0
        assert out.exists()
        assert "vertices" in capsys.readouterr().out


class TestColor:
    def test_color_file(self, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        main(["generate", "uniform", str(graph_path), "--scale", "7", "--degree", "6"])
        colors_path = tmp_path / "colors.npy"
        rc = main([
            "color", "--input", str(graph_path),
            "--algorithm", "greedy", "--output", str(colors_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "colors (validated)" in out
        assert np.load(colors_path).min() >= 1

    def test_color_dataset(self, capsys):
        rc = main(["color", "--dataset", "EF", "--algorithm", "bitwise"])
        assert rc == 0
        assert "validated" in capsys.readouterr().out

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["color", "--dataset", "NOPE"])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["color", "--input", "/does/not/exist.txt"])


class TestSimulate:
    def test_simulate_dataset(self, capsys):
        rc = main(["simulate", "--dataset", "EF", "-p", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "MCV/s" in out

    def test_simulate_with_gantt_and_disable(self, capsys):
        rc = main([
            "simulate", "--dataset", "EF", "-p", "2",
            "--disable", "mgr", "puv", "--gantt", "--cache-kb", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PE 0" in out
        assert "HDC+BWC" in out


class TestExperiment:
    def test_fig14(self, capsys):
        rc = main(["experiment", "fig14"])
        assert rc == 0
        assert "BRAM" in capsys.readouterr().out

    def test_table3(self, capsys):
        rc = main(["experiment", "table3"])
        assert rc == 0
        assert "ego-Facebook" in capsys.readouterr().out
