"""Tier-1 wrapper around ``scripts/bench_smoke.py``.

Keeps two budgets honest on every test run: the vectorized bitwise
backend must stay within 2x of the speedup recorded in the checked-in
``BENCH_kernels.json``, and the disabled-observability overhead on the
same kernel run must keep the vectorized/python time ratio within 5 %
of the recorded pre-instrumentation ratio (ratio form so host speed
drift cancels).  The smoke graph is tiny (1200 vertices) so this costs
tens of milliseconds.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import (
    check_hw_native_smoke,
    check_hw_smoke,
    check_native_smoke,
    check_obs_overhead,
    check_router_smoke,
    check_smoke,
    load_hw_results,
    load_results,
    load_router_results,
    run_native_smoke,
    run_smoke,
)
from repro.experiments.hw_bench import DEFAULT_HW_RESULT_PATH, LARGEST_STANDIN
from repro.experiments.kernel_bench import DEFAULT_RESULT_PATH
from repro.experiments.router_bench import DEFAULT_ROUTER_RESULT_PATH
from repro.experiments.streaming_bench import DEFAULT_STREAMING_RESULT_PATH

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _quiesce_worker_pools():
    """Reap any persistent worker pools before timing.

    The smoke gates compare wall clock against a baseline recorded in a
    clean single-process state; idle pool workers left behind by the
    parallel-backend tests measurably perturb microsecond-scale timings
    on small hosts, so the pools are shut down first (they respawn on
    demand).
    """
    from repro.parallel.pool import shutdown_pools

    shutdown_pools()
    yield


def test_baseline_is_checked_in():
    assert DEFAULT_RESULT_PATH == REPO_ROOT / "BENCH_kernels.json"
    assert DEFAULT_RESULT_PATH.exists(), "run benchmarks/bench_kernels.py first"
    doc = json.loads(DEFAULT_RESULT_PATH.read_text())
    assert doc["smoke"]["baseline_speedup"] > 1.0
    gd = [
        e
        for e in doc["entries"]
        if e["dataset"] == "GD" and e["algorithm"] == "bitwise"
    ]
    assert gd and gd[0]["speedup"] >= 10.0


def test_hw_baseline_is_checked_in():
    assert DEFAULT_HW_RESULT_PATH == REPO_ROOT / "BENCH_hw.json"
    assert DEFAULT_HW_RESULT_PATH.exists(), "run benchmarks/bench_hw.py first"
    doc = json.loads(DEFAULT_HW_RESULT_PATH.read_text())
    assert doc["smoke"]["baseline_speedup"] > 1.0
    assert all(e["exact_parity"] for e in doc["entries"])
    # The acceptance record: >=10x on the largest stand-in.
    rc = [e for e in doc["entries"] if e["dataset"] == LARGEST_STANDIN]
    assert rc and rc[0]["speedup"] >= 10.0


def test_streaming_baseline_is_checked_in():
    assert DEFAULT_STREAMING_RESULT_PATH == REPO_ROOT / "BENCH_streaming.json"
    assert DEFAULT_STREAMING_RESULT_PATH.exists(), (
        "run benchmarks/bench_streaming.py first"
    )
    doc = json.loads(DEFAULT_STREAMING_RESULT_PATH.read_text())
    # The acceptance record: the session lane sustains >= 10x the naive
    # per-batch full-recolor baseline, with every batch validated.
    assert doc["floor_speedup"] == 10.0
    assert doc["smoke"]["baseline_speedup"] >= doc["floor_speedup"]
    assert doc["smoke"]["validated_batches"] > 0
    for entry in doc["entries"]:
        assert entry["validated_batches"] == entry["batches"]


def test_router_baseline_is_checked_in():
    assert DEFAULT_ROUTER_RESULT_PATH == REPO_ROOT / "BENCH_router.json"
    assert DEFAULT_ROUTER_RESULT_PATH.exists(), (
        "run benchmarks/bench_router.py first"
    )
    doc = json.loads(DEFAULT_ROUTER_RESULT_PATH.read_text())
    # The acceptance record: the fitted router matches the measured
    # fastest parity-neutral backend on >= 90% of sweep points AND cuts
    # mean routed latency >= 10% vs the hand-set thresholds, with live
    # coloring parity asserted before the record was kept.
    assert doc["agreement_floor"] == 0.9
    assert doc["reduction_floor"] == 0.10
    assert doc["smoke"]["agreement"] >= doc["agreement_floor"]
    assert doc["smoke"]["latency_reduction"] >= doc["reduction_floor"]
    assert doc["smoke"]["parity_colorings_checked"] > 0
    assert len(doc["matrix"]["points"]) >= 48


def test_router_smoke_no_regression():
    """Refit from the checked-in matrix and re-score both policies.

    Deterministic (scores against the recorded seconds, no re-timing)
    apart from the small live parity probe through real services.
    """
    baseline = load_router_results()
    ok, current, floors = check_router_smoke(baseline)
    assert ok, (
        f"fitted routing regressed: agreement {current['agreement']:.2f} "
        f"(floor {floors['agreement']:.2f}), latency reduction "
        f"{current['latency_reduction']:.2f} "
        f"(floor {floors['latency_reduction']:.2f})"
    )
    assert current["parity_colorings_checked"] > 0


def test_hw_smoke_no_regression():
    baseline = load_hw_results()
    ok, current, threshold = check_hw_smoke(baseline, factor=2.0, repeats=2)
    assert ok, (
        f"batched accelerator engine regressed: smoke speedup {current:.2f}x "
        f"fell below threshold {threshold:.2f}x"
    )


def test_smoke_no_regression():
    baseline = load_results()
    ok, current, threshold = check_smoke(baseline, factor=2.0, repeats=3)
    assert ok, (
        f"vectorized backend regressed: smoke speedup {current:.2f}x "
        f"fell below threshold {threshold:.2f}x"
    )


def test_smoke_script_main():
    """The CLI wiring itself: exit 0 against the checked-in baseline."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_smoke", REPO_ROOT / "scripts" / "bench_smoke.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.main(["--repeats", "2"]) == 0
    # An absurd factor<1 demand must fail (current can't beat baseline*10).
    assert mod.main(["--factor", "0.01"]) == 1


def test_obs_disabled_overhead():
    """Instrumented-but-disabled kernels must stay within 5% of baseline."""
    baseline = load_results()
    ok, current, threshold = check_obs_overhead(baseline, limit=1.05, repeats=7)
    assert ok, (
        f"disabled observability overhead too high: vectorized/python "
        f"time ratio {current:.4f} exceeds threshold {threshold:.4f}"
    )


def test_run_smoke_shape():
    doc = run_smoke(repeats=1)
    assert doc["algorithm"] == "bitwise"
    assert doc["baseline_speedup"] == pytest.approx(
        doc["python_s"] / doc["vectorized_s"]
    )


def test_native_kernel_gate():
    """The compiled tier must clear its absolute floor — or skip cleanly.

    ``ok is None`` means no native backend is usable on this host, which
    is a legitimate state (the tier is opt-in); anything else is a hard
    pass/fail against the >= 3x acceptance floor.
    """
    ok, current, threshold = check_native_smoke(repeats=3)
    if ok is None:
        from repro.kernels import native

        pytest.skip(f"native tier unavailable: {native.unavailable_reason()}")
    assert ok, (
        f"compiled kernels fell below the acceptance floor: "
        f"{current:.2f}x < {threshold:.2f}x"
    )


def test_native_replay_gate():
    """Same shape for the batched engine's compiled replay recurrence."""
    ok, current, threshold = check_hw_native_smoke(repeats=2)
    if ok is None:
        from repro.kernels import native

        pytest.skip(f"native tier unavailable: {native.unavailable_reason()}")
    assert ok, (
        f"compiled replay fell below the acceptance floor: "
        f"{current:.2f}x < {threshold:.2f}x"
    )


def test_native_smoke_doc_shape():
    doc = run_native_smoke(repeats=1)
    if not doc["available"]:
        assert doc["reason"]
        return
    assert doc["baseline_speedup"] == pytest.approx(
        doc["vectorized_s"] / doc["native_s"]
    )
    assert doc["backend"]["name"]


def test_native_baseline_recorded_when_available():
    """The checked-in JSON must carry the native evidence for this PR's
    acceptance: >= 3x on the raw kernel bench (recorded on the machine
    that regenerated it — the block is absent only if that machine had
    no compiler, which the seed baseline did)."""
    doc = json.loads(DEFAULT_RESULT_PATH.read_text())
    native_smoke = doc.get("native_smoke")
    assert native_smoke is not None
    if native_smoke["available"]:
        assert native_smoke["baseline_speedup"] >= 3.0
        assert native_smoke["backend"]["name"]
    hw_doc = json.loads(DEFAULT_HW_RESULT_PATH.read_text())
    hw_native = hw_doc.get("native_smoke")
    assert hw_native is not None
    if hw_native["available"]:
        assert hw_native["baseline_speedup"] >= 1.2
