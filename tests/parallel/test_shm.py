"""Tests for the shared-memory CSR transport."""

import numpy as np
import pytest

from repro.graph import erdos_renyi, rmat, CSRGraph
from repro.parallel import SharedCSR, attach_graph
from repro.parallel import shm as shm_mod


@pytest.fixture
def graph():
    return rmat(8, 4, seed=5, name="shm-test")


class TestSharedCSR:
    def test_round_trip_same_process(self, graph):
        with SharedCSR(graph) as shared:
            view = attach_graph(shared.spec)
            assert view.num_vertices == graph.num_vertices
            assert view.num_edges == graph.num_edges
            assert view.name == graph.name
            assert np.array_equal(view.offsets, graph.offsets)
            assert np.array_equal(view.edges, graph.edges)
            # Drop our attachment before the owner unlinks.
            shm_mod._ATTACHED.pop(shared.spec.offsets_name, None)

    def test_attach_is_idempotent(self, graph):
        with SharedCSR(graph) as shared:
            a = attach_graph(shared.spec)
            b = attach_graph(shared.spec)
            assert a is b
            shm_mod._ATTACHED.pop(shared.spec.offsets_name, None)

    def test_meta_travels(self):
        g = erdos_renyi(50, 0.1, seed=1, name="meta-test")
        g.meta["origin"] = "synthetic"
        with SharedCSR(g) as shared:
            view = attach_graph(shared.spec)
            assert view.meta["origin"] == "synthetic"
            shm_mod._ATTACHED.pop(shared.spec.offsets_name, None)

    def test_empty_graph(self):
        g = CSRGraph(
            offsets=np.zeros(1, dtype=np.int64),
            edges=np.zeros(0, dtype=np.int64),
            name="empty",
        )
        with SharedCSR(g) as shared:
            view = attach_graph(shared.spec)
            assert view.num_vertices == 0
            assert view.num_edges == 0
            shm_mod._ATTACHED.pop(shared.spec.offsets_name, None)

    def test_for_graph_memoises(self, graph):
        a = SharedCSR.for_graph(graph)
        b = SharedCSR.for_graph(graph)
        assert a is b
        assert graph._cache["parallel.shared_csr"] is a

    def test_spec_is_small(self, graph):
        """Only names and scalars cross the process boundary per task."""
        import pickle

        with SharedCSR(graph) as shared:
            assert len(pickle.dumps(shared.spec)) < 1024
