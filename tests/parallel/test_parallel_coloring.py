"""Tests for the partition-parallel coloring backend.

The load-bearing properties: every result is a proper coloring, and the
colors are byte-identical for any worker count (the shard count, not the
pool size, determines the answer).
"""

import numpy as np
import pytest

import repro
from repro.coloring import assert_proper_coloring
from repro.coloring.bitwise import bitwise_greedy_coloring
from repro.experiments.datasets import DATASET_KEYS, load_dataset
from repro.graph import (
    CSRGraph,
    complete_graph,
    erdos_renyi,
    rmat,
    road_grid,
    star_graph,
)
from repro.obs import Registry, use_registry
from repro.parallel import (
    DEFAULT_NUM_SHARDS,
    ParallelColoringResult,
    parallel_bitwise_coloring,
    resolve_workers,
)

GRAPHS = {
    "rmat": lambda: rmat(9, 6, seed=3, name="par-rmat"),
    "erdos": lambda: erdos_renyi(300, 0.05, seed=2, name="par-er"),
    "grid": lambda: road_grid(16, 16, seed=1, name="par-grid"),
    "star": lambda: star_graph(40),
    "complete": lambda: complete_graph(17, name="par-k17"),
}


@pytest.fixture(params=sorted(GRAPHS), ids=sorted(GRAPHS))
def graph(request):
    return GRAPHS[request.param]()


class TestValidity:
    def test_proper_coloring(self, graph):
        res = parallel_bitwise_coloring(graph)
        assert_proper_coloring(graph, res.colors)
        assert res.num_colors == np.unique(res.colors[res.colors != 0]).size

    @pytest.mark.parametrize("partition", ["range", "round_robin"])
    def test_partition_strategies(self, graph, partition):
        res = parallel_bitwise_coloring(graph, partition=partition)
        assert_proper_coloring(graph, res.colors)
        assert res.partition_strategy == partition

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 16])
    def test_shard_counts(self, graph, num_shards):
        res = parallel_bitwise_coloring(graph, num_shards=num_shards)
        assert_proper_coloring(graph, res.colors)
        assert res.num_shards == num_shards

    def test_single_shard_matches_vectorized(self, graph):
        """One shard means no cut edges — exactly the sequential coloring."""
        res = parallel_bitwise_coloring(graph, num_shards=1)
        ref = bitwise_greedy_coloring(graph, backend="vectorized")
        assert res.conflicts == 0
        assert res.cut_edges == 0
        assert np.array_equal(res.colors, ref.colors)

    def test_empty_graph(self):
        g = CSRGraph(
            offsets=np.zeros(1, dtype=np.int64),
            edges=np.zeros(0, dtype=np.int64),
            name="empty",
        )
        res = parallel_bitwise_coloring(g)
        assert res.colors.size == 0
        assert res.num_colors == 0

    def test_prune_uncolored_forwarded(self):
        g = rmat(8, 4, seed=9)
        res = parallel_bitwise_coloring(g, prune_uncolored=True)
        assert_proper_coloring(g, res.colors)


class TestDeterminism:
    def test_workers_do_not_change_colors(self, graph):
        base = parallel_bitwise_coloring(graph, workers=1).colors
        for workers in (2, 4):
            got = parallel_bitwise_coloring(graph, workers=workers).colors
            assert np.array_equal(base, got), f"workers={workers} diverged"

    def test_repeated_runs_identical(self, graph):
        a = parallel_bitwise_coloring(graph, workers=2)
        b = parallel_bitwise_coloring(graph, workers=2)
        assert np.array_equal(a.colors, b.colors)
        assert a.conflicts == b.conflicts
        assert a.repair_rounds == b.repair_rounds


class TestAccounting:
    def test_result_fields(self, graph):
        res = parallel_bitwise_coloring(graph, workers=2)
        assert isinstance(res, ParallelColoringResult)
        assert res.workers == 2
        assert res.num_shards == DEFAULT_NUM_SHARDS
        assert res.boundary_vertices >= 0
        assert res.cut_edges % 2 == 0  # symmetric graph, both directions
        assert 0 <= res.conflicts <= res.boundary_vertices
        if res.conflicts:
            assert res.repair_rounds >= 1
        else:
            assert res.repair_rounds == 0

    def test_n_colors_alias(self, graph):
        res = parallel_bitwise_coloring(graph)
        assert res.n_colors == res.num_colors

    def test_invalid_args(self, graph):
        with pytest.raises(ValueError):
            parallel_bitwise_coloring(graph, num_shards=0)
        with pytest.raises(ValueError):
            parallel_bitwise_coloring(graph, workers=0)
        with pytest.raises(ValueError):
            parallel_bitwise_coloring(graph, partition="metis")

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestFacadeIntegration:
    def test_color_backend_parallel(self, graph):
        out = repro.color(graph, backend="parallel", workers=2)
        assert isinstance(out, ParallelColoringResult)
        assert_proper_coloring(graph, out.colors)
        ref = parallel_bitwise_coloring(graph, workers=1)
        assert np.array_equal(out.colors, ref.colors)

    def test_backend_listed(self):
        from repro.coloring.registry import get_algorithm

        assert "parallel" in get_algorithm("bitwise").backends


class TestObservability:
    def test_shard_spans_merged(self, graph):
        reg = Registry()
        with use_registry(reg):
            parallel_bitwise_coloring(graph, workers=2)
        snap = reg.snapshot()
        names = [s["name"] for s in snap["spans"]]
        assert "coloring.parallel" in names
        shard_spans = [
            s for s in snap["spans"] if s["name"] == "coloring.parallel.shard"
        ]
        assert len(shard_spans) == DEFAULT_NUM_SHARDS
        assert sorted(s["attrs"]["shard"] for s in shard_spans) == list(
            range(DEFAULT_NUM_SHARDS)
        )
        assert "coloring.parallel.conflicts" in snap["counters"]
        assert "coloring.parallel.colors" in snap["gauges"]

    def test_disabled_registry_stays_silent(self, graph):
        res = parallel_bitwise_coloring(graph, workers=2)
        assert_proper_coloring(graph, res.colors)

    def test_facade_obs_artifact(self, graph, tmp_path):
        """repro.color(..., backend='parallel', obs=path) writes one file
        holding the parent span and every per-shard span."""
        import json

        path = tmp_path / "parallel.jsonl"
        repro.color(graph, backend="parallel", workers=2, obs=path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [r for r in records if r.get("type") == "span"]
        names = [s["name"] for s in spans]
        assert "repro.color" in names
        assert "coloring.parallel" in names
        shards = [s for s in spans if s["name"] == "coloring.parallel.shard"]
        assert sorted(s["attrs"]["shard"] for s in shards) == list(
            range(DEFAULT_NUM_SHARDS)
        )


class TestAllRegisteredDatasets:
    """Acceptance: valid colors on every stand-in, identical for any pool."""

    @pytest.mark.parametrize("key", DATASET_KEYS)
    def test_valid_and_worker_invariant(self, key):
        g = load_dataset(key, preprocessed=True)
        base = parallel_bitwise_coloring(g, workers=1)
        assert_proper_coloring(g, base.colors)
        for workers in (2, 4):
            got = parallel_bitwise_coloring(g, workers=workers)
            assert np.array_equal(base.colors, got.colors), (key, workers)
