"""End-to-end observability: one artifact, both clocks (acceptance test).

``repro.color(graph, "bitwise", backend="hw", trace=True, obs=path)``
must emit a JSON-lines file that carries wall-clock spans, simulated
cycle-clock spans from the accelerator trace, and the hw cycle/cache/DRAM
counters — and the file must parse back into a registry snapshot.
"""

import json

import numpy as np
import pytest

import repro
from repro.graph import powerlaw_cluster
from repro.obs import (
    Registry,
    read_jsonl,
    snapshot_from_records,
    use_registry,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, 4, 0.3, seed=9, name="obs-it")


def test_instrumented_hw_run_emits_dual_clock_artifact(graph, tmp_path):
    path = tmp_path / "run.jsonl"
    out = repro.color(
        graph, "bitwise", backend="hw", parallelism=4, trace=True, obs=path
    )
    assert out.n_colors > 0
    records = read_jsonl(path)

    spans = [r for r in records if r["type"] == "span"]
    counters = {r["name"]: r["value"] for r in records if r["type"] == "counter"}
    gauges = {r["name"]: r["value"] for r in records if r["type"] == "gauge"}

    # Wall-clock spans: the facade wraps the accelerator run.
    wall = {s["name"] for s in spans if s["clock"] == "wall"}
    assert {"repro.color", "hw.accelerator.run"} <= wall
    # Cycle-clock spans: one per vertex task from the execution trace.
    tasks = [s for s in spans if s["clock"] == "cycles" and s["name"] == "hw.task"]
    assert len(tasks) == graph.num_vertices
    assert all(s["end"] >= s["start"] for s in tasks)
    assert {"vertex", "pe", "stall", "queue_delay"} <= set(tasks[0]["attrs"])

    # hw counters: cycles, cache, DRAM all present and sane.
    for name in (
        "hw.cycles.compute",
        "hw.cycles.dram",
        "hw.cycles.stall",
        "hw.cache.reads",
        "hw.dram.reads",
        "hw.tasks.hdv",
    ):
        assert name in counters, f"missing counter {name}"
    assert counters["hw.cycles.compute"] > 0
    assert gauges["hw.colors"] == out.n_colors
    assert gauges["repro.color.n_colors"] == out.n_colors

    # Round trip: the artifact parses back into a full snapshot.
    snap = snapshot_from_records(records)
    assert snap["counters"] == counters
    assert len(snap["spans"]) == len(spans)


def test_artifact_round_trip_equals_live_registry(graph, tmp_path):
    """Registry → JSONL → snapshot is lossless for a real instrumented run."""
    from repro.obs import JsonlExporter

    reg = Registry()
    out = repro.color(
        graph, "bitwise", backend="hw", parallelism=4, trace=True, obs=reg
    )
    assert out.n_colors > 0
    path = JsonlExporter(tmp_path / "live.jsonl").export(reg)
    assert snapshot_from_records(read_jsonl(path)) == reg.snapshot()


def test_software_backends_share_counter_namespace(graph):
    """Kernel-layer counters appear under vectorized software runs too."""
    reg = Registry()
    repro.color(graph, "bitwise", obs=reg)  # default vectorized backend
    assert reg.counters["kernels.scatter_or.calls"] > 0
    assert reg.counters["kernels.first_free.rows"] == graph.num_vertices
    assert "kernels.batch_rows" in reg.histograms
    assert reg.counters["coloring.bitwise.stage1_scan_ops"] == graph.num_vertices


def test_jp_round_spans_nest_under_algorithm_span(graph):
    reg = Registry()
    repro.color(graph, "jp", seed=1, obs=reg)
    by_name = {}
    for s in reg.spans:
        by_name.setdefault(s.name, []).append(s)
    (jp,) = by_name["coloring.jp"]
    rounds = by_name["coloring.jp.round"]
    assert rounds and all(r.parent_id == jp.span_id for r in rounds)
    assert [r.attrs["round"] for r in rounds] == list(range(len(rounds)))
    assert reg.counters["coloring.jp.rounds"] == len(rounds)


def test_cycle_sim_counters(graph):
    from repro.hw import HWConfig
    from repro.hw.cycle_sim import CycleAccurateBWPE

    reg = Registry()
    with use_registry(reg):
        colors, stats = CycleAccurateBWPE(HWConfig(parallelism=1)).run(graph)
    assert int(reg.counters["hw.cycle_sim.cycles"]) == stats.cycles
    phase_total = sum(
        v for k, v in reg.counters.items() if k.startswith("hw.cycle_sim.phase.")
    )
    assert int(phase_total) == stats.cycles
    cyc = [s for s in reg.spans if s.name == "hw.cycle_sim.cycles"]
    assert cyc and cyc[0].clock == "cycles" and cyc[0].duration == stats.cycles


def test_trace_to_span_records_method(graph):
    from repro.hw import BitColorAccelerator, HWConfig

    res = BitColorAccelerator(HWConfig(parallelism=2)).run(graph, trace=True)
    records = res.trace.to_span_records()
    assert len(records) == graph.num_vertices
    assert all(r.clock == "cycles" for r in records)
    # Sorted by start time; json-safe attrs.
    starts = [r.start for r in records]
    assert starts == sorted(starts)
    json.dumps([r.to_dict() for r in records])


def test_cli_color_obs_flag(graph, tmp_path):
    from repro.cli import main
    from repro.graph import save_npz

    gpath = tmp_path / "g.npz"
    save_npz(graph, gpath)
    opath = tmp_path / "cli.jsonl"
    rc = main(
        [
            "color",
            "--input", str(gpath),
            "--algorithm", "bitwise",
            "--backend", "hw",
            "--obs", str(opath),
        ]
    )
    assert rc == 0
    records = read_jsonl(opath)
    kinds = {r["type"] for r in records}
    assert "span" in kinds and "counter" in kinds


def test_cli_simulate_obs_flag(graph, tmp_path):
    from repro.cli import main
    from repro.graph import save_npz

    gpath = tmp_path / "g.npz"
    save_npz(graph, gpath)
    opath = tmp_path / "sim.jsonl"
    rc = main(["simulate", "--input", str(gpath), "-p", "4", "--obs", str(opath)])
    assert rc == 0
    records = read_jsonl(opath)
    clocks = {r["clock"] for r in records if r["type"] == "span"}
    assert {"wall", "cycles"} <= clocks
