"""Core registry semantics: disabled no-op, span nesting, metrics."""

import threading

import pytest

from repro.obs import (
    CYCLE_CLOCK,
    WALL_CLOCK,
    Registry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.core import NULL_SPAN


class TestDisabledNoOp:
    def test_disabled_span_is_shared_null_singleton(self):
        reg = Registry(enabled=False)
        sp = reg.span("anything", key="value")
        assert sp is NULL_SPAN
        assert reg.span("other") is sp

    def test_null_span_context_and_set_are_inert(self):
        reg = Registry(enabled=False)
        with reg.span("outer") as sp:
            sp.set(attr=1)
            with reg.span("inner"):
                pass
        assert reg.spans == []

    def test_disabled_metrics_collect_nothing(self):
        reg = Registry(enabled=False)
        reg.add("c", 5)
        reg.gauge("g", 1.5)
        reg.observe("h", 3)
        assert reg.record_span("s", 0, 10) is None
        assert reg.counters == {}
        assert reg.gauges == {}
        assert reg.histograms == {}
        assert reg.spans == []

    def test_global_default_starts_disabled(self):
        assert get_registry().enabled is False


class TestSpans:
    def test_nesting_parent_ids_and_depth(self):
        reg = Registry()
        with reg.span("outer"):
            with reg.span("middle"):
                with reg.span("inner"):
                    pass
        by_name = {s.name: s for s in reg.spans}
        outer, middle, inner = by_name["outer"], by_name["middle"], by_name["inner"]
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2
        # Ids are assigned at entry: parents before children.
        assert outer.span_id < middle.span_id < inner.span_id

    def test_children_recorded_before_parents(self):
        reg = Registry()
        with reg.span("parent"):
            with reg.span("child"):
                pass
        assert [s.name for s in reg.spans] == ["child", "parent"]

    def test_siblings_share_parent(self):
        reg = Registry()
        with reg.span("parent"):
            with reg.span("a"):
                pass
            with reg.span("b"):
                pass
        by_name = {s.name: s for s in reg.spans}
        assert by_name["a"].parent_id == by_name["parent"].span_id
        assert by_name["b"].parent_id == by_name["parent"].span_id

    def test_span_times_monotonic(self):
        reg = Registry()
        with reg.span("t"):
            pass
        (s,) = reg.spans
        assert s.clock == WALL_CLOCK
        assert s.end >= s.start
        assert s.duration == s.end - s.start

    def test_span_attrs_and_set(self):
        reg = Registry()
        with reg.span("t", fixed=1) as sp:
            sp.set(late=2)
        (s,) = reg.spans
        assert s.attrs == {"fixed": 1, "late": 2}

    def test_span_error_attr_on_exception(self):
        reg = Registry()
        with pytest.raises(ValueError):
            with reg.span("boom"):
                raise ValueError("nope")
        (s,) = reg.spans
        assert s.attrs["error"] == "ValueError"

    def test_timed_decorator(self):
        reg = Registry()

        @reg.timed("named")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert [s.name for s in reg.spans] == ["named"]

    def test_timed_decorator_default_name(self):
        reg = Registry()

        @reg.timed()
        def g():
            return 7

        assert g() == 7
        assert reg.spans[0].name.endswith("g")

    def test_record_span_cycle_clock(self):
        reg = Registry()
        rec = reg.record_span("sim", 0, 1234, vertex=7)
        assert rec.clock == CYCLE_CLOCK
        assert rec.duration == 1234
        assert rec.attrs == {"vertex": 7}
        assert reg.spans == [rec]

    def test_thread_local_stacks_do_not_cross_nest(self):
        reg = Registry()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with reg.span("thread"):
                started.set()
                release.wait(timeout=5)

        t = threading.Thread(target=worker)
        with reg.span("main"):
            t.start()
            started.wait(timeout=5)
            release.set()
            t.join()
        by_name = {s.name: s for s in reg.spans}
        # The worker's span opened while "main" was live on another thread,
        # but must not have picked it up as a parent.
        assert by_name["thread"].parent_id is None
        assert by_name["main"].parent_id is None


class TestMetrics:
    def test_counters_accumulate(self):
        reg = Registry()
        reg.add("hits")
        reg.add("hits", 4)
        assert reg.counters == {"hits": 5}

    def test_gauge_keeps_last(self):
        reg = Registry()
        reg.gauge("level", 1)
        reg.gauge("level", 9)
        assert reg.gauges == {"level": 9}

    def test_histogram_summary(self):
        reg = Registry()
        for v in (2, 8, 5):
            reg.observe("h", v)
        h = reg.histograms["h"]
        assert (h.count, h.total, h.min, h.max) == (3, 15.0, 2.0, 8.0)
        assert h.mean == 5.0

    def test_clear_keeps_enabled_flag(self):
        reg = Registry()
        reg.add("c")
        with reg.span("s"):
            pass
        reg.clear()
        assert reg.spans == [] and reg.counters == {}
        assert reg.enabled is True


class TestGlobalRegistry:
    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        mine = Registry()
        with use_registry(mine):
            assert get_registry() is mine
        assert get_registry() is original

    def test_use_registry_restores_on_error(self):
        original = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(Registry()):
                raise RuntimeError
        assert get_registry() is original

    def test_set_enable_disable_roundtrip(self):
        original = get_registry()
        try:
            mine = set_registry(Registry(enabled=False))
            assert get_registry() is mine
            assert enable() is mine and mine.enabled
            assert disable() is mine and not mine.enabled
        finally:
            set_registry(original)
