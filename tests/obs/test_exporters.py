"""Exporter behaviour, pinned around the JSON-lines round-trip guarantee."""

import io
import json

import pytest

from repro.obs import (
    ConsoleExporter,
    JsonlExporter,
    MemoryExporter,
    Registry,
    read_jsonl,
    snapshot_from_records,
)


def populated_registry() -> Registry:
    reg = Registry()
    with reg.span("outer", graph="g"):
        with reg.span("inner") as sp:
            sp.set(rounds=3)
    reg.record_span("sim.task", 10, 250, vertex=4, pe=1)
    reg.add("edges", 120)
    reg.add("edges", 30)
    reg.gauge("colors", 7)
    reg.observe("batch", 16)
    reg.observe("batch", 48)
    return reg


def test_jsonl_round_trip_is_lossless(tmp_path):
    reg = populated_registry()
    path = JsonlExporter(tmp_path / "run.jsonl").export(reg)
    assert snapshot_from_records(read_jsonl(path)) == reg.snapshot()


def test_jsonl_lines_are_valid_typed_json(tmp_path):
    reg = populated_registry()
    path = JsonlExporter(tmp_path / "run.jsonl").export(reg)
    lines = path.read_text().splitlines()
    assert len(lines) == len(reg.to_records())
    for line in lines:
        rec = json.loads(line)
        assert rec["type"] in ("span", "counter", "gauge", "histogram")


def test_jsonl_empty_registry_writes_empty_file(tmp_path):
    path = JsonlExporter(tmp_path / "empty.jsonl").export(Registry())
    assert path.read_text() == ""
    assert read_jsonl(path) == []


def test_memory_exporter_matches_to_records():
    reg = populated_registry()
    sink = MemoryExporter()
    records = reg.export(sink)
    assert records is sink.records
    assert records == reg.to_records()


def test_console_exporter_renders_tree_and_metrics():
    reg = populated_registry()
    stream = io.StringIO()
    text = ConsoleExporter(stream).export(reg)
    assert stream.getvalue() == text
    assert "outer" in text and "  inner" in text  # indentation by depth
    assert "cycles" in text  # the cycle-clock span renders in cycles
    assert "edges" in text and "colors" in text and "batch" in text


def test_console_exporter_empty_registry():
    stream = io.StringIO()
    assert ConsoleExporter(stream).export(Registry()) == "(empty registry)\n"


def test_snapshot_from_records_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown record type"):
        snapshot_from_records([{"type": "mystery"}])
