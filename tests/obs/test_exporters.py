"""Exporter behaviour, pinned around the JSON-lines round-trip guarantee."""

import io
import json

import pytest

from repro.obs import (
    ConsoleExporter,
    JsonlExporter,
    MemoryExporter,
    Registry,
    read_jsonl,
    snapshot_from_records,
)


def populated_registry() -> Registry:
    reg = Registry()
    with reg.span("outer", graph="g"):
        with reg.span("inner") as sp:
            sp.set(rounds=3)
    reg.record_span("sim.task", 10, 250, vertex=4, pe=1)
    reg.add("edges", 120)
    reg.add("edges", 30)
    reg.gauge("colors", 7)
    reg.observe("batch", 16)
    reg.observe("batch", 48)
    return reg


def test_jsonl_round_trip_is_lossless(tmp_path):
    reg = populated_registry()
    path = JsonlExporter(tmp_path / "run.jsonl").export(reg)
    assert snapshot_from_records(read_jsonl(path)) == reg.snapshot()


def test_jsonl_lines_are_valid_typed_json(tmp_path):
    reg = populated_registry()
    path = JsonlExporter(tmp_path / "run.jsonl").export(reg)
    lines = path.read_text().splitlines()
    assert len(lines) == len(reg.to_records())
    for line in lines:
        rec = json.loads(line)
        assert rec["type"] in ("span", "counter", "gauge", "histogram")


def test_jsonl_empty_registry_writes_empty_file(tmp_path):
    path = JsonlExporter(tmp_path / "empty.jsonl").export(Registry())
    assert path.read_text() == ""
    assert read_jsonl(path) == []


def test_memory_exporter_matches_to_records():
    reg = populated_registry()
    sink = MemoryExporter()
    records = reg.export(sink)
    assert records is sink.records
    assert records == reg.to_records()


def test_console_exporter_renders_tree_and_metrics():
    reg = populated_registry()
    stream = io.StringIO()
    text = ConsoleExporter(stream).export(reg)
    assert stream.getvalue() == text
    assert "outer" in text and "  inner" in text  # indentation by depth
    assert "cycles" in text  # the cycle-clock span renders in cycles
    assert "edges" in text and "colors" in text and "batch" in text


def test_console_exporter_empty_registry():
    stream = io.StringIO()
    assert ConsoleExporter(stream).export(Registry()) == "(empty registry)\n"


def test_snapshot_from_records_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown record type"):
        snapshot_from_records([{"type": "mystery"}])


class TestJsonlFlushSafety:
    """The flush/close/atexit contract: no records lost on early exit."""

    def test_export_is_flushed_before_close(self, tmp_path):
        from repro.obs.exporters import JsonlExporter

        reg = populated_registry()
        exporter = JsonlExporter(tmp_path / "run.jsonl")
        path = exporter.export(reg)
        # No close() yet — the artifact must already be complete on disk.
        assert read_jsonl(path) == reg.to_records()
        exporter.close()

    def test_atexit_guard_closes_open_exporters(self, tmp_path):
        from repro.obs.exporters import (
            _OPEN_EXPORTERS, JsonlExporter, close_all_exporters,
        )

        reg = populated_registry()
        exporter = JsonlExporter(tmp_path / "worker.jsonl")
        exporter.export(reg)
        assert exporter in _OPEN_EXPORTERS
        # Simulate the interpreter going down with the handle still open.
        assert close_all_exporters() >= 1
        assert exporter not in _OPEN_EXPORTERS
        assert exporter._fh is None
        assert read_jsonl(tmp_path / "worker.jsonl") == reg.to_records()

    def test_close_is_idempotent(self, tmp_path):
        from repro.obs.exporters import JsonlExporter

        exporter = JsonlExporter(tmp_path / "x.jsonl")
        exporter.export(Registry())
        exporter.close()
        exporter.close()  # second close must not raise
        exporter.flush()  # nor flush after close

    def test_reexport_rewrites_not_duplicates(self, tmp_path):
        from repro.obs.exporters import JsonlExporter

        reg = Registry()
        reg.add("events", 1)
        with JsonlExporter(tmp_path / "r.jsonl") as exporter:
            exporter.export(reg)
            reg.add("events", 1)
            path = exporter.export(reg)
            records = read_jsonl(path)
        assert records == reg.to_records()
        assert sum(r["type"] == "counter" for r in records) == 1

    def test_append_mode_accumulates(self, tmp_path):
        from repro.obs.exporters import JsonlExporter

        path = tmp_path / "stream.jsonl"
        with JsonlExporter(path, append=True) as exporter:
            first = Registry()
            first.add("jobs", 1)
            exporter.export(first)
            second = Registry()
            second.add("jobs", 2)
            exporter.export(second)
        records = read_jsonl(path)
        counters = [r for r in records if r["type"] == "counter"]
        assert [c["value"] for c in counters] == [1, 2]

    def test_reopen_after_close_appends_fresh_handle(self, tmp_path):
        from repro.obs.exporters import JsonlExporter

        path = tmp_path / "again.jsonl"
        exporter = JsonlExporter(path, append=True)
        exporter.write_records([{"type": "counter", "name": "a", "value": 1}])
        exporter.close()
        exporter.write_records([{"type": "counter", "name": "b", "value": 2}])
        exporter.close()
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]
