"""Package-surface tests: exports stay importable and consistent."""

import importlib

import pytest

import repro


SUBPACKAGES = ["graph", "coloring", "hw", "perfmodel", "experiments"]


class TestSurface:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, name):
        """Every name a subpackage exports must actually exist."""
        mod = importlib.import_module(f"repro.{name}")
        for sym in mod.__all__:
            assert hasattr(mod, sym), f"repro.{name}.__all__ lists missing {sym!r}"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_no_private_exports(self, name):
        mod = importlib.import_module(f"repro.{name}")
        assert not [s for s in mod.__all__ if s.startswith("_")]

    def test_top_level_exports(self):
        for sym in repro.__all__:
            assert hasattr(repro, sym)

    def test_cli_importable(self):
        from repro.cli import build_parser

        assert build_parser() is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph.csr",
            "repro.graph.generators",
            "repro.graph.reorder",
            "repro.graph.stats",
            "repro.graph.partition",
            "repro.graph.degeneracy",
            "repro.graph.traversal",
            "repro.graph.io",
            "repro.coloring.greedy",
            "repro.coloring.bitwise",
            "repro.coloring.bitset",
            "repro.coloring.dsatur",
            "repro.coloring.jones_plassmann",
            "repro.coloring.gunrock",
            "repro.coloring.luby_mis",
            "repro.coloring.backtracking",
            "repro.coloring.ordering",
            "repro.coloring.balanced",
            "repro.coloring.incremental",
            "repro.coloring.recolor",
            "repro.coloring.verify",
            "repro.hw.config",
            "repro.hw.dram",
            "repro.hw.cache",
            "repro.hw.multiport",
            "repro.hw.conflict",
            "repro.hw.color_loader",
            "repro.hw.bwpe",
            "repro.hw.dispatcher",
            "repro.hw.writer",
            "repro.hw.accelerator",
            "repro.hw.resources",
            "repro.hw.energy",
            "repro.hw.trace",
            "repro.hw.cycle_sim",
            "repro.hw.mis_engine",
            "repro.perfmodel.cpu",
            "repro.perfmodel.gpu",
            "repro.perfmodel.metrics",
            "repro.experiments.datasets",
            "repro.experiments.runner",
            "repro.experiments.figures",
            "repro.experiments.tables",
            "repro.experiments.report",
            "repro.experiments.sensitivity",
            "repro.experiments.paper",
        ],
    )
    def test_module_has_docstring(self, module):
        """Every module documents itself."""
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 30, module
