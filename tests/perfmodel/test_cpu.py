"""Tests for the CPU performance model."""

import pytest

from repro.graph import erdos_renyi, rmat
from repro.perfmodel import CPUCostParams, CPUModel


@pytest.fixture
def model():
    return CPUModel()


@pytest.fixture
def graph():
    return rmat(9, 6, seed=21)


class TestMemoryModel:
    def test_l1_resident(self):
        p = CPUCostParams()
        assert p.random_read_cycles(1024) == p.l1_cycles

    def test_dram_dominated(self):
        p = CPUCostParams()
        big = p.random_read_cycles(1 << 30)
        assert big > 0.9 * p.dram_cycles

    def test_monotone_in_size(self):
        p = CPUCostParams()
        sizes = [1 << k for k in range(10, 31, 2)]
        costs = [p.random_read_cycles(s) for s in sizes]
        assert costs == sorted(costs)

    def test_mid_size_blend(self):
        """An array spanning L2+LLC lands between their latencies."""
        p = CPUCostParams()
        c = p.random_read_cycles(4 << 20)
        assert p.l2_cycles < c < p.dram_cycles


class TestRunModel:
    def test_breakdown_sums_to_one(self, model, graph):
        b = model.run(graph).breakdown()
        assert sum(b.values()) == pytest.approx(1.0)

    def test_stage1_dominates_low_degree(self, model):
        """The paper-literal 1024-entry clear makes Stage 1 the bottleneck
        on sparse graphs — the Fig 3(a) observation."""
        g = erdos_renyi(2000, 0.002, seed=1)
        b = model.run(g).breakdown()
        assert b["stage1"] > b["stage0"]

    def test_paper_scale_pricing_slows_run(self, model, graph):
        small = model.run(graph)
        big = model.run(graph, color_array_vertices=50_000_000)
        assert big.time_seconds > small.time_seconds

    def test_throughput(self, model, graph):
        r = model.run(graph)
        assert r.throughput_mcvs == pytest.approx(
            graph.num_vertices / r.time_seconds / 1e6
        )

    def test_cached_greedy_reused(self, model, graph):
        from repro.coloring import greedy_coloring

        gr = greedy_coloring(graph, clear_mode="paper")
        r = model.run(graph, greedy=gr)
        assert r.greedy is gr


class TestPreprocessing:
    def test_reorder_much_cheaper_than_coloring(self, model, graph):
        """Table 2's claim."""
        r = model.run(graph)
        pre = model.preprocessing_time_seconds(graph)
        assert pre < 0.5 * r.time_seconds

    def test_scales_with_edges(self, model):
        a = erdos_renyi(500, 0.01, seed=2)
        b = erdos_renyi(500, 0.08, seed=2)
        assert model.preprocessing_time_seconds(b) > model.preprocessing_time_seconds(a)
