"""Tests for the GPU performance model."""

import pytest

from repro.coloring import assert_proper_coloring, gunrock_coloring
from repro.graph import erdos_renyi, rmat, road_grid
from repro.perfmodel import GPUCostParams, GPUModel


@pytest.fixture
def model():
    return GPUModel()


class TestGPUModel:
    def test_time_positive_and_coloring_valid(self, model):
        g = rmat(8, 6, seed=30)
        r = model.run(g, seed=1)
        assert r.time_seconds > 0
        assert_proper_coloring(g, r.gunrock.colors)

    def test_reuses_precomputed_result(self, model):
        g = erdos_renyi(100, 0.1, seed=2)
        gk = gunrock_coloring(g, seed=3)
        r = model.run(g, result=gk)
        assert r.gunrock is gk
        assert r.rounds == gk.rounds

    def test_more_rounds_cost_more(self):
        """Frontier work is charged per round over the whole array."""
        g = rmat(8, 6, seed=31)
        fast = GPUModel(GPUCostParams(frontier_rate_per_s=1e12)).run(g)
        slow = GPUModel(GPUCostParams(frontier_rate_per_s=1e6)).run(g)
        assert slow.time_seconds > fast.time_seconds

    def test_road_converges_quickly(self, model):
        """Low-degree planar graphs finish in few hash rounds."""
        g = road_grid(30, 30, seed=4)
        r = model.run(g)
        assert r.rounds <= 8
        assert r.gunrock.tail_vertices == 0 or r.rounds == 8

    def test_throughput(self, model):
        g = erdos_renyi(200, 0.05, seed=5)
        r = model.run(g)
        assert r.throughput_mcvs == pytest.approx(
            g.num_vertices / r.time_seconds / 1e6
        )
