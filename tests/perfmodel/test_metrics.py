"""Tests for cross-platform metrics."""

import pytest

from repro.perfmodel import (
    ComparisonRow,
    PlatformMeasurement,
    arith_mean,
    geomean,
    kcvj,
    mcvs,
    speedup,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_denominator(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestMeans:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([7]) == pytest.approx(7.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_arith_mean(self):
        assert arith_mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            arith_mean([])


class TestThroughputEnergy:
    def test_mcvs(self):
        assert mcvs(2_000_000, 1.0) == 2.0
        assert mcvs(5, 0) == float("inf")

    def test_kcvj(self):
        assert kcvj(1_000_000, 1.0, 100.0) == pytest.approx(10.0)
        assert kcvj(5, 0, 10) == float("inf")


class TestRecords:
    def test_platform_measurement(self):
        m = PlatformMeasurement("cpu", "EF", 10**6, 1.0, 100.0)
        assert m.throughput_mcvs == 1.0
        assert m.energy_kcvj == pytest.approx(10.0)

    def test_comparison_row(self):
        r = ComparisonRow("EF", cpu_time_s=10.0, gpu_time_s=4.0, fpga_time_s=2.0)
        assert r.speedup_vs_cpu == 5.0
        assert r.speedup_vs_gpu == 2.0
