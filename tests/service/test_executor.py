"""Executor: retries, backoff, backend health, the degradation walk."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.graph import erdos_renyi
from repro.obs import Registry
from repro.service import BackendHealth, Executor, JobFailed, JobRequest, JobTimeout


def make_executor(registry=None, **kw) -> Executor:
    kw.setdefault("backoff_base_s", 0.001)
    kw.setdefault("backoff_cap_s", 0.002)
    return Executor(registry=registry or Registry(), **kw)


@pytest.fixture
def graph():
    return erdos_renyi(60, 0.1, seed=5, name="exec")


class TestBackendHealth:
    def test_threshold_marks_broken(self):
        health = BackendHealth(failure_threshold=2)
        assert not health.broken("parallel")
        health.record_failure("parallel")
        assert not health.broken("parallel")
        health.record_failure("parallel")
        assert health.broken("parallel")

    def test_success_heals(self):
        health = BackendHealth(failure_threshold=2)
        health.record_failure("parallel")
        health.record_success("parallel")
        health.record_failure("parallel")
        assert not health.broken("parallel")

    def test_effective_walks_ladder(self):
        health = BackendHealth(failure_threshold=1)
        health.record_failure("parallel")
        assert health.effective("parallel") == "vectorized"
        health.record_failure("vectorized")
        assert health.effective("parallel") == "python"
        assert health.effective(None) is None

    def test_floor_is_kept_even_when_broken(self):
        health = BackendHealth(failure_threshold=1)
        health.record_failure("python")
        assert health.effective("python") == "python"

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendHealth(failure_threshold=0)
        with pytest.raises(ValueError):
            make_executor(max_attempts=0)


class TestRetries:
    def test_transient_fault_retried_to_success(self, graph):
        reg = Registry()
        failures = {"left": 2}

        def chaos(request, attempt):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("worker died mid-job")

        ex = make_executor(reg, max_attempts=3, fault_hook=chaos)
        request = JobRequest(graph=graph)
        colors, n_colors, backend, engine, attempts = ex.run_request(
            request, graph, "vectorized", None
        )
        assert attempts == 3
        assert np.array_equal(colors, repro.color(graph).colors)
        assert reg.counters["service.retries"] == 2
        assert reg.counters["service.attempt_failures"] == 2

    def test_exhausted_attempts_raise_job_failed(self, graph):
        def chaos(request, attempt):
            raise RuntimeError("always down")

        ex = make_executor(max_attempts=2, fault_hook=chaos)
        with pytest.raises(JobFailed, match="after 2 attempts"):
            ex.run_request(JobRequest(graph=graph), graph, "vectorized", None)

    def test_backoff_grows_and_caps(self, graph):
        delays = []
        ex = make_executor(backoff_base_s=0.01, backoff_cap_s=0.02)
        real_sleep = time.sleep
        try:
            time.sleep = delays.append
            ex._backoff(1)
            ex._backoff(2)
            ex._backoff(3)
        finally:
            time.sleep = real_sleep
        assert delays == [0.01, 0.02, 0.02]

    def test_deadline_checked_between_attempts(self, graph):
        def chaos(request, attempt):
            raise RuntimeError("down")

        ex = make_executor(max_attempts=5, fault_hook=chaos)
        with pytest.raises((JobTimeout, JobFailed)):
            ex.run_request(
                JobRequest(graph=graph),
                graph,
                "vectorized",
                None,
                deadline=time.monotonic() - 1,
            )


class TestDegradation:
    def test_single_job_degrades_mid_retries(self, graph):
        """parallel fails twice -> broken -> the third attempt runs one
        rung down and succeeds; the walk is visible in obs counters."""
        reg = Registry()
        seen = []

        def chaos(request, attempt):
            seen.append(attempt)
            if attempt <= 2:
                raise RuntimeError("pool worker killed")

        ex = make_executor(
            reg, max_attempts=3, failure_threshold=2, fault_hook=chaos
        )
        colors, _, backend, _, attempts = ex.run_request(
            JobRequest(graph=graph, backend="parallel"),
            graph,
            "parallel",
            None,
        )
        assert attempts == 3
        assert backend == "vectorized"  # degraded off the broken rung
        assert np.array_equal(colors, repro.color(graph).colors)
        assert reg.counters["service.degraded"] >= 1
        assert reg.counters["service.degraded.parallel_to_vectorized"] >= 1

    def test_broken_backend_degrades_next_job_upfront(self, graph):
        reg = Registry()
        ex = make_executor(reg, failure_threshold=1)
        ex.health.record_failure("parallel")
        _, _, backend, _, attempts = ex.run_request(
            JobRequest(graph=graph, backend="parallel"),
            graph,
            "parallel",
            None,
        )
        assert backend == "vectorized"
        assert attempts == 1
        assert reg.counters["service.degraded.parallel_to_vectorized"] == 1

    def test_success_resets_health(self, graph):
        ex = make_executor(failure_threshold=2)
        ex.health.record_failure("vectorized")
        ex.run_request(JobRequest(graph=graph), graph, "vectorized", None)
        assert ex.health.snapshot() == {}

    def test_engine_dropped_when_degraded_off_hw(self, graph):
        """A job degraded off backend=hw must not leak engine= to the
        software backend (repro.color would reject it)."""
        ex = make_executor(failure_threshold=1)
        ex.health.record_failure("hw")
        _, _, backend, engine, _ = ex.run_request(
            JobRequest(graph=graph, backend="hw", engine="batched"),
            graph,
            "hw",
            "batched",
        )
        assert backend == "vectorized"
        assert engine is None
