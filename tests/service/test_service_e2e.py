"""End-to-end service contract: parity, robustness, lifecycle, obs.

The parity matrix is the acceptance test of PR 5: for every stand-in
dataset and every supported (algorithm, backend, engine) combination,
colors served by :class:`ColoringService` are byte-identical to a direct
:func:`repro.color` call with the same arguments.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
from repro.experiments import DATASET_KEYS, load_dataset
from repro.graph import erdos_renyi
from repro.service import (
    Client,
    JobFailed,
    JobRequest,
    JobTimeout,
    RetryAfter,
    ServiceClosed,
)

# (algorithm, backend, engine, opts) — every combination the service must
# serve byte-identically.  jp has no parallel/hw backend (registry
# capability flags), so its rows cover its full backend surface.
PARITY_COMBOS = [
    ("bitwise", "vectorized", None, {}),
    ("bitwise", "parallel", None, {"workers": 2}),
    ("bitwise", "hw", "batched", {"parallelism": 16}),
    ("jp", "vectorized", None, {"seed": 0}),
]


@pytest.fixture(scope="module")
def pool_teardown():
    yield
    from repro.parallel.pool import shutdown_pools

    shutdown_pools()


class TestParityMatrix:
    @pytest.mark.parametrize("dataset", DATASET_KEYS)
    def test_all_datasets_all_combos(
        self, dataset, service_factory, pool_teardown
    ):
        graph = load_dataset(dataset, preprocessed=True)
        svc = service_factory(executors=2, cache_capacity=0)
        client = Client(svc, client_id="parity")
        for algorithm, backend, engine, opts in PARITY_COMBOS:
            direct = repro.color(
                graph,
                algorithm,
                backend=backend,
                **({"engine": engine} if engine else {}),
                **opts,
            )
            served = client.color(
                graph,
                algorithm=algorithm,
                backend=backend,
                engine=engine,
                **opts,
            )
            label = f"{dataset}/{algorithm}/{backend}/{engine}"
            assert served.colors.tobytes() == direct.colors.tobytes(), label
            assert served.n_colors == direct.n_colors, label
        svc.close()

    def test_dataset_resolved_server_side(self, service_factory):
        svc = service_factory(executors=1)
        served = Client(svc).color(dataset="EF")
        direct = repro.color(load_dataset("EF", preprocessed=True))
        assert np.array_equal(served.colors, direct.colors)

    def test_batch_lane_parity(self, service_factory, small_graphs):
        """Jobs that ride a micro-batch still return solo-identical colors."""
        svc = service_factory(executors=2, batch_window_s=0.05)
        client = Client(svc)
        jobs = [
            svc.submit(JobRequest(graph=g, client_id="batch"))
            for g in small_graphs
        ]
        for g, job in zip(small_graphs, jobs):
            result = job.result_or_raise(timeout=30)
            assert np.array_equal(result.colors, repro.color(g).colors)


class TestMicroBatching:
    def test_concurrent_small_jobs_coalesce(self, service_factory, small_graphs):
        # A long linger window makes coalescing deterministic: the
        # dispatcher waits 0.5s for companions after the first small job,
        # and the submissions below land microseconds apart.
        svc = service_factory(
            executors=1, batch_window_s=0.5, batch_max_jobs=16
        )
        jobs = [svc.submit(JobRequest(graph=g)) for g in small_graphs]
        results = [job.result_or_raise(timeout=30) for job in jobs]
        assert max(r.batched for r in results) >= 2
        counters = svc.registry.counters
        assert counters["service.batch.jobs"] >= 2
        assert counters["service.batch.batches"] >= 1

    def test_batched_results_cached(self, service_factory, small_graphs):
        svc = service_factory(executors=1, batch_window_s=0.2)
        client = Client(svc)
        jobs = [svc.submit(JobRequest(graph=g)) for g in small_graphs[:3]]
        for job in jobs:
            job.result_or_raise(timeout=30)
        rerun = client.color(small_graphs[0])
        assert rerun.cache_hit


class TestRobustness:
    def test_killed_worker_is_retried_and_succeeds(self, service_factory):
        graph = erdos_renyi(120, 0.08, seed=42, name="chaos")
        died = {"count": 0}

        def kill_first_attempt(request, attempt):
            if attempt == 1:
                died["count"] += 1
                raise RuntimeError("worker killed mid-job")

        svc = service_factory(
            executors=1,
            fault_hook=kill_first_attempt,
            backoff_base_s=0.001,
            batching=False,
        )
        result = Client(svc).color(graph)
        assert died["count"] == 1
        assert result.attempts == 2
        assert np.array_equal(result.colors, repro.color(graph).colors)
        assert svc.registry.counters["service.retries"] >= 1

    def test_saturated_queue_sheds_not_hangs(self, service_factory):
        release = threading.Event()

        def block(request, attempt):
            release.wait(timeout=30)

        svc = service_factory(
            executors=1,
            max_queue_depth=2,
            batching=False,
            fault_hook=block,
        )
        graph = erdos_renyi(50, 0.1, seed=1)
        jobs = [svc.submit(JobRequest(graph=graph))]
        # The first job occupies the executor; these fill the queue.
        deadline = time.monotonic() + 10
        shed = None
        while time.monotonic() < deadline and shed is None:
            try:
                jobs.append(svc.submit(JobRequest(graph=graph)))
            except RetryAfter as exc:
                shed = exc
        assert shed is not None, "queue never shed"
        assert shed.retry_after_s > 0
        assert svc.registry.counters["service.shed"] >= 1
        release.set()
        for job in jobs:
            job.result_or_raise(timeout=30)

    def test_repeated_backend_failure_degrades(self, service_factory):
        """parallel keeps dying -> jobs finish on vectorized, and the
        degradation is visible in the obs counters."""
        graph = erdos_renyi(150, 0.06, seed=7, name="degrade")

        import repro.parallel as par

        def broken_parallel(*args, **kwargs):
            raise RuntimeError("shard pool lost its workers")

        original = par.parallel_bitwise_coloring
        par.parallel_bitwise_coloring = broken_parallel
        try:
            svc = service_factory(
                executors=1,
                failure_threshold=2,
                max_attempts=3,
                backoff_base_s=0.001,
                batching=False,
            )
            client = Client(svc)
            result = client.color(graph, backend="parallel", workers=2)
            # Degraded to the vectorized rung, still byte-identical.
            assert result.backend == "vectorized"
            assert np.array_equal(result.colors, repro.color(graph).colors)
            counters = svc.registry.counters
            assert counters["service.degraded"] >= 1
            assert counters["service.degraded.parallel_to_vectorized"] >= 1
            # The next parallel job degrades up front (backend is broken).
            again = client.color(graph, backend="parallel", workers=2)
            assert again.backend == "vectorized"
            assert again.attempts == 1
        finally:
            par.parallel_bitwise_coloring = original

    def test_exhausted_retries_fail_loudly(self, service_factory):
        def always_dies(request, attempt):
            raise RuntimeError("permanent failure")

        svc = service_factory(
            executors=1,
            max_attempts=2,
            backoff_base_s=0.001,
            batching=False,
            fault_hook=always_dies,
        )
        with pytest.raises(JobFailed, match="after 2 attempts"):
            Client(svc).color(erdos_renyi(40, 0.1, seed=3))
        assert svc.registry.counters["service.jobs.failed"] == 1

    def test_timeout_before_execution(self, service_factory):
        svc = service_factory(executors=1, batching=False)
        with pytest.raises(JobTimeout):
            Client(svc).color(
                erdos_renyi(40, 0.1, seed=3), timeout_s=0.0
            )
        assert svc.registry.counters["service.jobs.timed_out"] == 1


class TestLifecycle:
    def test_drain_on_close_finishes_everything(self, service_factory):
        svc = service_factory(executors=2)
        graphs = [erdos_renyi(60, 0.1, seed=i) for i in range(12)]
        jobs = [svc.submit(JobRequest(graph=g)) for g in graphs]
        svc.close(drain=True, timeout=60)
        for g, job in zip(graphs, jobs):
            assert job.done
            result = job.result_or_raise(timeout=0)
            assert np.array_equal(result.colors, repro.color(g).colors)

    def test_submit_after_close_rejected(self, service_factory):
        svc = service_factory(executors=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(JobRequest(graph=erdos_renyi(10, 0.2, seed=1)))

    def test_status_shape(self, service_factory):
        svc = service_factory(executors=1)
        Client(svc).color(erdos_renyi(30, 0.1, seed=1))
        status = svc.status()
        assert status["status"] == "ok"
        assert status["jobs"]["completed"] == 1
        assert status["queue_depth"] == 0
        assert "cache" in status and "backends" in status
        svc.close()
        assert svc.status()["status"] == "closed"

    def test_obs_export_on_close(self, service_factory, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "service.jsonl"
        svc = service_factory(executors=1, obs_path=path)
        Client(svc).color(erdos_renyi(30, 0.1, seed=2))
        svc.close()
        records = read_jsonl(path)
        names = {r.get("name") for r in records}
        assert "service.jobs.submitted" in names
        assert "service.latency.total_s" in names


class TestValidation:
    def test_unknown_algorithm_eager(self, service_factory):
        svc = service_factory(executors=1)
        with pytest.raises(KeyError, match="registered"):
            svc.submit(
                JobRequest(
                    graph=erdos_renyi(10, 0.2, seed=1), algorithm="nope"
                )
            )

    def test_unknown_dataset_eager(self, service_factory):
        svc = service_factory(executors=1)
        with pytest.raises(ValueError, match="unknown dataset"):
            svc.submit(JobRequest(dataset="NOPE"))

    def test_graph_xor_dataset(self, service_factory):
        svc = service_factory(executors=1)
        with pytest.raises(ValueError, match="exactly one"):
            svc.submit(JobRequest())
        with pytest.raises(ValueError, match="exactly one"):
            svc.submit(
                JobRequest(graph=erdos_renyi(10, 0.2, seed=1), dataset="EF")
            )

    def test_priority_respected_under_load(self, service_factory):
        release = threading.Event()

        def gate(request, attempt):
            release.wait(timeout=30)

        svc = service_factory(executors=1, batching=False, fault_hook=gate)
        g = erdos_renyi(30, 0.1, seed=9)
        # The plug occupies the only execution slot, so low and high wait
        # in the admission queue and must come out in priority order.
        plug = svc.submit(JobRequest(graph=g, priority=100))
        low = svc.submit(JobRequest(graph=g, priority=0))
        high = svc.submit(JobRequest(graph=g, priority=10))
        release.set()
        for job in (plug, low, high):
            job.result_or_raise(timeout=30)
        # The high-priority job must not have waited behind the low one.
        assert high.started_at <= low.started_at


class TestClientRetries:
    """`color(retries=)` and the deprecated `color_retrying` shim."""

    def test_retries_absorb_sheds(self, service_factory):
        release = threading.Event()

        def block(request, attempt):
            release.wait(timeout=30)

        svc = service_factory(
            executors=1, max_queue_depth=1, batching=False, fault_hook=block
        )
        client = Client(svc)
        g = erdos_renyi(40, 0.1, seed=3)
        # Saturate: one job in execution (blocked), one in the queue —
        # submissions race the dispatcher, so push until one sheds.
        jobs = [svc.submit(JobRequest(graph=g))]
        deadline = time.monotonic() + 10
        saturated = False
        while time.monotonic() < deadline and not saturated:
            try:
                jobs.append(svc.submit(JobRequest(graph=g)))
            except RetryAfter:
                saturated = True
        assert saturated, "queue never saturated"
        # color(retries=) must wait the sheds out once the plug lifts.
        threading.Timer(0.3, release.set).start()
        result = client.color(g, retries=64)
        assert np.array_equal(result.colors, repro.color(g).colors)
        for job in jobs:
            job.result_or_raise(timeout=30)

    def test_zero_retries_raises_immediately(self, service_factory):
        release = threading.Event()

        def block(request, attempt):
            release.wait(timeout=30)

        svc = service_factory(
            executors=1, max_queue_depth=1, batching=False, fault_hook=block
        )
        client = Client(svc)
        g = erdos_renyi(40, 0.1, seed=4)
        jobs = [svc.submit(JobRequest(graph=g))]
        deadline = time.monotonic() + 10
        shed = False
        while time.monotonic() < deadline and not shed:
            try:
                jobs.append(svc.submit(JobRequest(graph=g)))
            except RetryAfter:
                shed = True
        assert shed, "queue never saturated"
        with pytest.raises(RetryAfter):
            client.color(g)  # retries=0: the shed propagates
        release.set()
        for job in jobs:
            job.result_or_raise(timeout=30)

    def test_color_retrying_warns_and_forwards(self, service_factory):
        svc = service_factory(executors=1)
        client = Client(svc)
        g = erdos_renyi(40, 0.1, seed=5)
        with pytest.warns(DeprecationWarning, match="retries"):
            result = client.color_retrying(g, max_sheds=4)
        assert np.array_equal(result.colors, repro.color(g).colors)
