"""Wire protocol codec and the Unix-socket server round trip."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

import repro
from repro.experiments import load_dataset
from repro.graph import csr_fingerprint, erdos_renyi
from repro.service import Client, JobResult, RetryAfter, ServiceError, connect
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_colors,
    decode_graph,
    encode_colors,
    encode_graph,
    error_to_wire,
    read_frame,
    result_from_wire,
    result_to_wire,
    wire_to_error,
    write_frame,
)
from repro.service.jobs import (
    JobFailed,
    JobTimeout,
    ServiceClosed,
    SessionError,
    SessionNotFound,
)
from repro.service.server import ServiceServer


class TestCodec:
    def test_graph_roundtrip_preserves_fingerprint(self):
        g = erdos_renyi(200, 0.05, seed=11, name="wire")
        back = decode_graph(encode_graph(g))
        assert back.num_vertices == g.num_vertices
        assert np.array_equal(back.offsets, g.offsets)
        assert np.array_equal(back.edges, g.edges)
        assert back.name == "wire"
        # The cache contract survives the wire: identical fingerprint.
        assert csr_fingerprint(back) == csr_fingerprint(g)

    def test_graph_frame_consistency_checked(self):
        g = erdos_renyi(10, 0.3, seed=1)
        data = encode_graph(g)
        data["n"] = 99
        with pytest.raises(ServiceError, match="inconsistent"):
            decode_graph(data)

    def test_colors_roundtrip(self):
        colors = np.array([1, 5, 2, 7], dtype=np.int64)
        back = decode_colors(encode_colors(colors))
        assert np.array_equal(back, colors)
        assert back.dtype == np.int64

    def test_result_roundtrip(self):
        result = JobResult(
            colors=np.array([1, 2, 1], dtype=np.int64),
            n_colors=2,
            algorithm="bitwise",
            backend="vectorized",
            engine=None,
            route="batch (small)",
            cache_hit=True,
            batched=3,
            attempts=2,
            timings={"queue": 0.1, "execute": 0.2, "total": 0.3},
        )
        back = result_from_wire(result_to_wire(result))
        assert np.array_equal(back.colors, result.colors)
        for attr in (
            "n_colors",
            "algorithm",
            "backend",
            "engine",
            "route",
            "cache_hit",
            "batched",
            "attempts",
            "timings",
        ):
            assert getattr(back, attr) == getattr(result, attr)

    @pytest.mark.parametrize(
        "exc",
        [
            RetryAfter("queue full", 0.25),
            JobTimeout("too slow"),
            JobFailed("all attempts spent"),
            ServiceClosed("shutting down"),
            ServiceError("generic"),
            SessionError("bad delta batch"),
            SessionNotFound("unknown session 's9'"),
        ],
    )
    def test_error_roundtrip(self, exc):
        back = wire_to_error(error_to_wire(exc))
        assert type(back) is type(exc)
        assert str(back) == str(exc)
        if isinstance(exc, RetryAfter):
            assert back.retry_after_s == exc.retry_after_s

    def test_unknown_error_type_becomes_service_error(self):
        back = wire_to_error(error_to_wire(ValueError("surprise")))
        assert type(back) is ServiceError
        assert "surprise" in str(back)

    def test_error_wire_format_carries_stable_code(self):
        # The code field is the contract non-Python clients key on.
        assert error_to_wire(RetryAfter("shed", 0.1))["code"] == "retry_after"
        assert error_to_wire(JobTimeout("t"))["code"] == "job_timeout"
        assert error_to_wire(JobFailed("f"))["code"] == "job_failed"
        assert error_to_wire(ServiceClosed("c"))["code"] == "service_closed"
        assert error_to_wire(SessionError("s"))["code"] == "session_error"
        assert (
            error_to_wire(SessionNotFound("n"))["code"] == "session_not_found"
        )
        assert error_to_wire(ServiceError("g"))["code"] == "service_error"

    def test_error_decode_prefers_code_over_type_name(self):
        # A server whose class names were refactored still interoperates:
        # reconstruction keys on the stable code, not the type string.
        back = wire_to_error(
            {"code": "session_not_found", "type": "RenamedCls", "message": "x"}
        )
        assert type(back) is SessionNotFound

    def test_error_decode_falls_back_to_type_name(self):
        # Frames from a pre-code server (no "code" field) still decode.
        back = wire_to_error({"type": "JobTimeout", "message": "slow"})
        assert type(back) is JobTimeout

    def test_frames_over_plain_sockets(self):
        a, b = socket.socketpair()
        try:
            write_frame(a, {"op": "ping", "nested": {"x": [1, 2]}})
            assert read_frame(b) == {"op": "ping", "nested": {"x": [1, 2]}}
            a.close()
            assert read_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        import struct

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ServiceError, match="cap"):
                read_frame(b)
        finally:
            a.close()
            b.close()


@pytest.fixture
def served(service_factory, tmp_path):
    """A socket server on a background thread over a fresh service."""
    svc = service_factory(executors=2, batch_window_s=0.01)
    path = tmp_path / "svc.sock"
    server = ServiceServer(svc, path).run_in_thread()
    yield path, svc
    server.shutdown()


class TestSocketServer:
    def test_ping_and_status(self, served):
        path, _ = served
        with connect(path) as client:
            assert client.ping()
            status = client.status()
            assert status["status"] == "ok"
            assert "queue_depth" in status

    def test_inline_graph_parity(self, served):
        path, _ = served
        g = erdos_renyi(300, 0.03, seed=21, name="socket")
        with connect(path, client_id="t") as client:
            served_result = client.color(g)
        direct = repro.color(g)
        assert np.array_equal(served_result.colors, direct.colors)
        assert served_result.n_colors == direct.n_colors

    def test_dataset_hw_engine_over_wire(self, served):
        path, _ = served
        with connect(path) as client:
            result = client.color(
                dataset="GD", backend="hw", engine="batched", parallelism=16
            )
        direct = repro.color(
            load_dataset("GD", preprocessed=True),
            backend="hw",
            engine="batched",
            parallelism=16,
        )
        assert np.array_equal(result.colors, direct.colors)
        assert result.backend == "hw"
        assert result.engine == "batched"

    def test_error_propagates_as_typed_exception(self, served):
        # A server-side rejection (unknown algorithm -> KeyError) comes
        # back over the wire as a raised ServiceError with the message.
        path, _ = served
        with connect(path) as client:
            with pytest.raises(ServiceError, match="algorithm"):
                client.color(erdos_renyi(10, 0.3, seed=1), algorithm="nope")

    def test_timeout_over_wire(self, served):
        path, _ = served
        with connect(path) as client:
            with pytest.raises(JobTimeout):
                client.color(erdos_renyi(10, 0.3, seed=1), timeout_s=0.0)

    def test_bad_op_is_answered_not_fatal(self, served):
        path, _ = served
        with connect(path) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._roundtrip({"op": "frobnicate"})
            assert client.ping()  # connection survives the error

    def test_many_requests_one_connection(self, served):
        path, _ = served
        graphs = [erdos_renyi(60 + i, 0.1, seed=i) for i in range(8)]
        with connect(path) as client:
            for g in graphs:
                result = client.color(g)
                assert np.array_equal(result.colors, repro.color(g).colors)

    def test_concurrent_clients(self, served):
        path, _ = served
        errors = []

        def worker(idx):
            try:
                g = erdos_renyi(100 + idx, 0.05, seed=idx)
                with connect(path, client_id=f"w{idx}") as client:
                    result = client.color(g, retries=32)
                if not np.array_equal(result.colors, repro.color(g).colors):
                    errors.append(f"worker {idx}: colors differ")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(f"worker {idx}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []

    def test_connect_to_missing_socket_fails_loudly(self, tmp_path):
        with pytest.raises(ServiceError, match="cannot connect"):
            connect(tmp_path / "nothing.sock")

    def test_shutdown_unlinks_socket(self, service_factory, tmp_path):
        svc = service_factory(executors=1)
        path = tmp_path / "gone.sock"
        server = ServiceServer(svc, path).run_in_thread()
        assert path.exists()
        server.shutdown()
        assert not path.exists()

    def test_owned_service_drained_on_shutdown(self, tmp_path):
        from repro.obs import Registry
        from repro.service import ColoringService, ServiceConfig

        svc = ColoringService(ServiceConfig(executors=1, registry=Registry()))
        path = tmp_path / "owned.sock"
        server = ServiceServer(svc, path, owns_service=True).run_in_thread()
        with connect(path) as client:
            client.color(erdos_renyi(50, 0.1, seed=2))
        server.shutdown()
        assert svc.status()["status"] == "closed"


class TestClientValidation:
    def test_exactly_one_target(self, service_factory, tmp_path):
        svc = service_factory(executors=1)
        with pytest.raises(ValueError, match="exactly one"):
            Client()
        with pytest.raises(ValueError, match="exactly one"):
            Client(svc, socket_path=tmp_path / "x.sock")


class TestSocketSessions:
    """The session lane end-to-end over a real Unix socket."""

    def test_register_apply_verify_close_round_trip(self, served):
        path, svc = served
        g = erdos_renyi(90, 0.08, seed=21)
        direct = repro.color(g, algorithm="bitwise")
        with connect(path) as client:
            with client.register(g, algorithm="bitwise") as session:
                # Registration parity crossed the wire intact.
                assert np.array_equal(session.colors, direct.colors)
                rng = np.random.default_rng(4)
                for _ in range(3):
                    adds = rng.integers(0, g.num_vertices, size=(25, 2))
                    adds = adds[adds[:, 0] != adds[:, 1]]
                    rems = adds[:5][:, ::-1]
                    out = session.apply(adds, rems)
                    assert out.epoch >= 1
                    # The folded mirror equals a dense server resync.
                    assert np.array_equal(session.colors, session.resync())
                assert session.verify()["valid"]
                assert session.describe()["epoch"] == 3
        # The context exit closed the session server-side.
        assert svc.sessions.stats()["active"] == 0

    def test_session_not_found_is_typed_over_wire(self, served):
        path, _svc = served
        g = erdos_renyi(40, 0.1, seed=22)
        with connect(path) as client:
            session = client.register(g)
            session.close()
            with pytest.raises(SessionNotFound, match="unknown session"):
                session.apply([(0, 1)])

    def test_bad_batch_is_typed_over_wire(self, served):
        path, _svc = served
        g = erdos_renyi(40, 0.1, seed=23)
        with connect(path) as client:
            with client.register(g) as session:
                with pytest.raises(SessionError, match="bad delta batch"):
                    session.apply([(1, 1)])

    def test_status_reports_sessions(self, served):
        path, _svc = served
        g = erdos_renyi(40, 0.1, seed=24)
        with connect(path) as client:
            with client.register(g):
                status = client.status()
                assert status["sessions"]["active"] == 1
