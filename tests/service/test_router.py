"""Router: lane choice, size/skew heuristics, tiers, the degradation ladder."""

from __future__ import annotations

import math
import warnings

import pytest

from repro.graph import erdos_renyi, road_grid, star_graph
from repro.kernels import native as native_kernels
from repro.obs import Registry
from repro.service import (
    DEGRADATION_LADDER,
    MICROBATCH_CROSSOVER,
    JobRequest,
    Router,
    next_rung,
    preferred_software_tier,
)
from repro.service.decision import DecisionModel
from repro.service.stats import FEATURE_NAMES


def constant_model(seconds, *, size_ranges=None):
    """A decision model predicting fixed latency per backend."""
    return DecisionModel(
        feature_names=FEATURE_NAMES,
        backends=tuple(seconds),
        trees={b: {"leaf": math.log2(s)} for b, s in seconds.items()},
        size_ranges=(
            size_ranges
            if size_ranges is not None
            else {b: (2.0, 24.0) for b in seconds}
        ),
    )


def route(router, graph, **kw):
    kw.setdefault("graph", graph)
    return router.route(JobRequest(**kw), graph)


class TestLanes:
    def test_small_unpinned_goes_to_batch(self):
        router = Router(small_vertices=2048, software_tier="vectorized")
        g = erdos_renyi(100, 0.1, seed=1)
        decision = route(router, g)
        assert decision.lane == "batch"
        assert decision.backend == "vectorized"
        assert decision.batch_key is not None

    def test_small_pinned_software_still_batches(self):
        router = Router()
        g = erdos_renyi(100, 0.1, seed=1)
        decision = route(router, g, backend="python")
        assert decision.lane == "batch"
        assert decision.backend == "python"

    def test_pinned_hw_never_batches(self):
        router = Router()
        g = erdos_renyi(100, 0.1, seed=1)
        decision = route(router, g, backend="hw", engine="batched")
        assert decision.lane == "direct"
        assert decision.backend == "hw"
        assert decision.engine == "batched"

    def test_batching_disabled(self):
        router = Router(batching=False)
        g = erdos_renyi(100, 0.1, seed=1)
        assert route(router, g).lane == "direct"

    def test_seeded_algorithm_never_batches(self):
        router = Router()
        g = erdos_renyi(100, 0.1, seed=1)
        decision = route(router, g, algorithm="jp", opts={"seed": 0})
        assert decision.lane == "direct"


class TestSizeSkewHeuristics:
    def test_large_skewed_goes_parallel(self):
        # A star graph has max/mean degree ratio ~ n/2 — extreme skew.
        router = Router(
            small_vertices=64, large_vertices=1000, skew_threshold=8.0
        )
        g = star_graph(5000)
        decision = route(router, g)
        assert decision.lane == "direct"
        assert decision.backend == "parallel"
        assert "skewed" in decision.reason

    def test_large_regular_goes_hw_batched(self):
        # A road grid's degree is nearly uniform (max 4, mean ~4).
        router = Router(
            small_vertices=64, large_vertices=1000, skew_threshold=8.0
        )
        g = road_grid(40, 40, seed=1)
        decision = route(router, g)
        assert decision.lane == "direct"
        assert decision.backend == "hw"
        assert decision.engine == "batched"
        assert "regular" in decision.reason

    def test_midsize_takes_default_backend(self):
        router = Router(
            small_vertices=64, large_vertices=100_000,
            software_tier="vectorized",
        )
        g = erdos_renyi(500, 0.02, seed=2)
        decision = route(router, g)
        assert decision.lane == "direct"
        assert decision.backend == "vectorized"
        assert "default" in decision.reason

    def test_algorithm_without_parallel_backend_stays_default(self):
        router = Router(
            small_vertices=64, large_vertices=1000,
            software_tier="vectorized",
        )
        g = star_graph(5000)
        decision = route(router, g, algorithm="jp", opts={"seed": 0})
        assert decision.backend == "vectorized"

    def test_pinned_large_not_rerouted(self):
        router = Router(small_vertices=64, large_vertices=1000)
        g = star_graph(5000)
        decision = route(router, g, backend="vectorized")
        assert decision.backend == "vectorized"
        assert "pinned" in decision.reason


class TestSoftwareTier:
    """The per-tier micro-batch crossover and the native-tier upgrade."""

    def test_crossover_shape(self):
        assert MICROBATCH_CROSSOVER == {
            "python": 256,
            "vectorized": 2048,
            "native": 512,
        }

    def test_default_tier_follows_capability_probe(self):
        router = Router()
        assert router.software_tier == preferred_software_tier()
        assert (
            router.small_vertices
            == MICROBATCH_CROSSOVER[router.software_tier]
        )

    def test_pinned_tier_selects_its_crossover(self):
        assert Router(software_tier="python").small_vertices == 256
        assert Router(software_tier="vectorized").small_vertices == 2048
        assert Router(software_tier="native").small_vertices == 512

    def test_explicit_small_vertices_wins(self):
        router = Router(small_vertices=99, software_tier="native")
        assert router.small_vertices == 99

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown software tier"):
            Router(software_tier="fpga")

    def test_unpinned_small_job_rides_the_tier(self):
        router = Router(software_tier="native")
        g = erdos_renyi(100, 0.1, seed=1)
        decision = route(router, g)
        assert decision.lane == "batch"
        assert decision.backend == "native"
        assert decision.batch_key == ("bitwise", "native", ())

    def test_unpinned_midsize_job_rides_the_tier(self):
        router = Router(
            small_vertices=64, large_vertices=100_000, software_tier="native"
        )
        g = erdos_renyi(500, 0.02, seed=2)
        decision = route(router, g)
        assert decision.lane == "direct"
        assert decision.backend == "native"

    def test_pinned_backend_never_upgraded(self):
        router = Router(small_vertices=64, software_tier="native")
        g = erdos_renyi(500, 0.02, seed=2)
        decision = route(router, g, backend="vectorized")
        assert decision.backend == "vectorized"

    @pytest.mark.skipif(
        not native_kernels.available(),
        reason="native tier unavailable on this host",
    )
    def test_default_tier_is_native_when_available(self):
        assert preferred_software_tier() == "native"
        assert Router().small_vertices == MICROBATCH_CROSSOVER["native"]

    def test_default_tier_is_vectorized_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native_kernels.refresh()
        try:
            assert preferred_software_tier() == "vectorized"
            router = Router()
            assert router.software_tier == "vectorized"
            assert router.small_vertices == MICROBATCH_CROSSOVER["vectorized"]
        finally:
            native_kernels.refresh()


class TestDegradationLadder:
    def test_ladder_shape(self):
        assert DEGRADATION_LADDER == {
            "parallel": "vectorized",
            "hw": "vectorized",
            "native": "vectorized",
            "vectorized": "python",
        }

    def test_next_rung_walk(self):
        assert next_rung("parallel") == "vectorized"
        assert next_rung("hw") == "vectorized"
        assert next_rung("native") == "vectorized"
        assert next_rung("vectorized") == "python"
        assert next_rung("python") is None
        assert next_rung(None) is None

    def test_ladder_terminates(self):
        for start in DEGRADATION_LADDER:
            backend, hops = start, 0
            while backend is not None:
                backend = next_rung(backend)
                hops += 1
                assert hops < 10


class TestFittedRouting:
    """The fitted decision surface path and its documented fallback."""

    def test_unpinned_bitwise_takes_the_model_pick(self):
        model = constant_model(
            {"hw": 0.001, "vectorized": 1.0, "microbatch": 1.0}
        )
        reg = Registry()
        router = Router(
            software_tier="vectorized", decision=model, registry=reg
        )
        decision = route(router, erdos_renyi(100, 0.1, seed=1))
        assert decision.lane == "direct"
        assert decision.backend == "hw"
        assert decision.engine == "batched"
        assert decision.reason == "(fitted)"
        assert reg.counters["router.fitted"] == 1

    def test_model_pick_microbatch_rides_the_batch_lane(self):
        # The fitted surface, not the crossover constant, decides: this
        # graph is far above small_vertices yet still batches.
        model = constant_model({"microbatch": 0.001, "vectorized": 1.0})
        router = Router(
            software_tier="vectorized", decision=model, registry=Registry()
        )
        g = erdos_renyi(5000, 0.002, seed=3)
        assert g.num_vertices > router.small_vertices
        decision = route(router, g)
        assert decision.lane == "batch"
        assert decision.reason == "(fitted, microbatch)"
        assert decision.batch_key == ("bitwise", "vectorized", ())

    def test_pinned_job_ignores_the_model(self):
        model = constant_model({"hw": 0.001, "vectorized": 1.0})
        reg = Registry()
        router = Router(
            software_tier="vectorized", decision=model, registry=reg
        )
        decision = route(
            router, erdos_renyi(5000, 0.002, seed=3), backend="vectorized"
        )
        assert decision.backend == "vectorized"
        assert "pinned" in decision.reason
        assert "router.fitted" not in reg.counters

    def test_non_bitwise_algorithm_keeps_the_constant_policy(self):
        model = constant_model({"hw": 0.001, "vectorized": 1.0})
        reg = Registry()
        router = Router(
            small_vertices=64, software_tier="vectorized",
            decision=model, registry=reg,
        )
        decision = route(
            router, erdos_renyi(500, 0.02, seed=2),
            algorithm="jp", opts={"seed": 0},
        )
        assert decision.backend == "vectorized"
        assert "router.fitted" not in reg.counters

    def test_parallel_is_never_a_fitted_choice(self):
        # Even a model claiming parallel is instantly fast cannot route
        # an unpinned job there: parallel may legally produce a
        # different proper coloring, and fitted routing must never
        # change the colors.
        model = constant_model({"parallel": 1e-9, "vectorized": 1.0})
        router = Router(
            small_vertices=64, large_vertices=100_000,
            software_tier="vectorized", decision=model, registry=Registry(),
        )
        decision = route(router, erdos_renyi(500, 0.02, seed=2))
        assert decision.backend != "parallel"

    def test_model_without_usable_backend_falls_back_with_warn_once(self):
        model = constant_model({"parallel": 0.001})  # parity-divergent only
        reg = Registry()
        router = Router(
            software_tier="vectorized", decision=model, registry=reg
        )
        g = erdos_renyi(100, 0.1, seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = route(router, g)
            second = route(router, g)
        assert first.lane == "batch"  # the constant policy took over
        assert second.lane == "batch"
        assert reg.counters["router.fallback"] == 2
        fallback_warnings = [
            w for w in caught if "router.fallback" in str(w.message)
        ]
        assert len(fallback_warnings) == 1  # warn-once per reason

    def test_domain_guard_excludes_out_of_range_backend(self):
        # microbatch was only ever measured on tiny graphs; a model must
        # not extrapolate it onto a graph 10 doublings larger.
        model = constant_model(
            {"microbatch": 0.001, "vectorized": 1.0},
            size_ranges={
                "microbatch": (2.0, 4.0),
                "vectorized": (2.0, 24.0),
            },
        )
        router = Router(
            software_tier="vectorized", decision=model, registry=Registry()
        )
        decision = route(router, erdos_renyi(5000, 0.002, seed=3))
        assert decision.backend == "vectorized"

    def test_skew_path_routes_through_the_stats_cache(self):
        reg = Registry()
        router = Router(
            small_vertices=64, large_vertices=1000, skew_threshold=8.0,
            registry=reg,
        )
        g = star_graph(5000)
        assert route(router, g).backend == "parallel"
        assert route(router, g).backend == "parallel"
        assert reg.counters["router.stats_cache.misses"] == 1
        assert reg.counters["router.stats_cache.hits"] == 1


def test_decision_label_mentions_everything():
    router = Router()
    g = star_graph(5000)
    decision = route(router, g, backend="hw", engine="batched")
    assert "hw" in decision.label
    assert "batched" in decision.label
