"""The fitted routing decision surface: fit, choose, domains, parity.

Two of these are the ISSUE-9 acceptance properties:

* **monotone in size** — the fitted surface never picks a backend the
  model itself predicts strictly slower than an alternative, and along
  every measured size column of the checked-in matrix the pick for a
  larger graph is never a measured-slower backend than the smaller
  graph's pick (hypothesis over the feature space + a deterministic
  sweep over the checked-in grid);
* **parity** — fitted-vs-constant routing yields byte-identical
  colorings on the tier-1 stand-in dataset set.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.router_bench import DEFAULT_ROUTER_RESULT_PATH
from repro.service.decision import (
    DECISION_MODEL_VERSION,
    PARITY_NEUTRAL_BACKENDS,
    DecisionModel,
    constant_label,
    fit_decision_model,
    load_decision,
    training_agreement,
)
from repro.service.stats import FEATURE_NAMES, GraphFeatures

REPO_ROOT = Path(__file__).resolve().parents[2]


def features_for(num_vertices: int, mean_degree: float, skew: float) -> GraphFeatures:
    num_edges = max(1, int(num_vertices * mean_degree))
    return GraphFeatures(
        num_vertices=num_vertices,
        num_edges=num_edges,
        max_degree=max(1, int(mean_degree * skew)),
        mean_degree=mean_degree,
        degree_skew=skew,
        density=mean_degree / max(num_vertices - 1, 1),
    )


def synthetic_table():
    """A tiny hand-built sweep table with known fastest backends.

    ``microbatch`` wins below 1024 vertices (and is only measured
    there); ``native`` wins everywhere else; ``parallel`` is measured
    but never competitive.
    """
    points = []
    for size in (256, 1024, 4096, 16384):
        seconds = {
            "vectorized": size * 1.0e-6,
            "native": size * 2.5e-7,
            "hw": size * 5.0e-7,
            "parallel": size * 2.0e-6,
        }
        if size <= 1024:
            seconds["microbatch"] = size * 1.0e-7
        points.append(
            {
                "params": {"size": size, "skew": 0.3, "community": 0.0,
                           "density": 8, "seed": 0},
                "features": features_for(size, 8.0, 6.0).as_dict(),
                "seconds": seconds,
                "counters": {},
                "n_colors": 5,
                "n_colors_by_backend": {b: 5 for b in seconds},
                "fastest": min(seconds, key=seconds.get),
            }
        )
    return {
        "kind": "router-scenario-sweep",
        "version": 1,
        "backends": ["vectorized", "native", "parallel", "hw", "microbatch"],
        "software_tier": "native",
        "points": points,
    }


class TestFitAndChoose:
    def test_fit_reproduces_measured_winners(self):
        model = fit_decision_model(synthetic_table())
        assert model.choose(features_for(256, 8.0, 6.0)) == "microbatch"
        assert model.choose(features_for(16384, 8.0, 6.0)) == "native"
        assert model.meta["agreement"] == 1.0

    def test_domain_guard_keeps_microbatch_small(self):
        # microbatch was measured only up to 1024 vertices; one doubling
        # of margin is allowed, three are not — at 8192 vertices the
        # (extrapolated-fastest) microbatch surface is out of domain and
        # the in-domain native surface wins.
        model = fit_decision_model(synthetic_table())
        big = features_for(8192, 8.0, 6.0)
        assert not model.eligible(big, "microbatch")
        assert model.eligible(big, "native")
        assert model.choose(big) == "native"

    def test_far_beyond_every_domain_falls_back_to_all_candidates(self):
        # When no backend is in domain the guard cannot help; the model
        # still answers (extrapolating) rather than refusing to route.
        model = fit_decision_model(synthetic_table())
        huge = features_for(1 << 20, 8.0, 6.0)
        assert not any(model.eligible(huge, b) for b in model.backends)
        assert model.choose(huge) in model.backends

    def test_available_restricts_candidates(self):
        model = fit_decision_model(synthetic_table())
        pick = model.choose(
            features_for(256, 8.0, 6.0), available=["vectorized", "hw"]
        )
        assert pick == "hw"

    def test_choose_without_fitted_candidates_raises(self):
        model = fit_decision_model(synthetic_table())
        with pytest.raises(ValueError, match="no fitted backend"):
            model.choose(features_for(256, 8.0, 6.0), available=["gpu"])

    def test_predict_latency_matches_training_point(self):
        model = fit_decision_model(synthetic_table())
        predicted = model.predict_latency(features_for(4096, 8.0, 6.0), "native")
        assert predicted == pytest.approx(4096 * 2.5e-7, rel=0.05)

    def test_predict_unknown_backend_raises(self):
        model = fit_decision_model(synthetic_table())
        with pytest.raises(KeyError):
            model.predict_latency(features_for(256, 8.0, 6.0), "gpu")

    def test_training_agreement_scores_parity_neutral_pool(self):
        table = synthetic_table()
        model = fit_decision_model(table)
        assert training_agreement(model, table) == 1.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            fit_decision_model({"backends": ["vectorized"], "points": []})


class TestSerialisation:
    def test_round_trip(self):
        model = fit_decision_model(synthetic_table())
        clone = DecisionModel.from_dict(model.to_dict())
        f = features_for(777, 8.0, 6.0)
        assert clone.choose(f) == model.choose(f)
        assert clone.backends == model.backends
        assert clone.size_ranges == model.size_ranges

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a decision model"):
            DecisionModel.from_dict({"kind": "something-else"})

    def test_wrong_version_rejected(self):
        doc = fit_decision_model(synthetic_table()).to_dict()
        doc["version"] = DECISION_MODEL_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            DecisionModel.from_dict(doc)

    def test_load_decision_accepts_all_three_shapes(self, tmp_path):
        table = synthetic_table()
        model = fit_decision_model(table)
        f = features_for(256, 8.0, 6.0)

        model_path = tmp_path / "model.json"
        model.save(model_path)
        assert load_decision(model_path).choose(f) == model.choose(f)

        table_path = tmp_path / "table.json"
        table_path.write_text(json.dumps(table))
        assert load_decision(table_path).choose(f) == model.choose(f)

        bundle_path = tmp_path / "bench.json"
        bundle_path.write_text(json.dumps({"matrix": table}))
        assert load_decision(bundle_path).choose(f) == model.choose(f)

    def test_load_decision_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"kind": "mystery"}))
        with pytest.raises(ValueError):
            load_decision(path)


class TestConstantLabel:
    """The hand-set policy replicated on features (the bench reference)."""

    KW = dict(small_vertices=512, large_vertices=50_000,
              skew_threshold=8.0, software_tier="native")

    def test_small_batches(self):
        assert constant_label(features_for(256, 8.0, 2.0), **self.KW) == "microbatch"

    def test_large_skewed_goes_parallel(self):
        f = features_for(100_000, 8.0, 50.0)
        assert constant_label(f, **self.KW) == "parallel"

    def test_large_regular_goes_hw(self):
        f = features_for(100_000, 4.0, 1.5)
        assert constant_label(f, **self.KW) == "hw"

    def test_midsize_takes_the_tier(self):
        assert constant_label(features_for(5000, 8.0, 2.0), **self.KW) == "native"


# ----------------------------------------------------------------------
# The checked-in matrix (BENCH_router.json) and the fitted acceptance
# properties over it
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def checked_in_matrix():
    assert DEFAULT_ROUTER_RESULT_PATH == REPO_ROOT / "BENCH_router.json"
    assert DEFAULT_ROUTER_RESULT_PATH.exists(), (
        "run benchmarks/bench_router.py first"
    )
    return json.loads(DEFAULT_ROUTER_RESULT_PATH.read_text())["matrix"]


@pytest.fixture(scope="module")
def checked_in_model(checked_in_matrix):
    return fit_decision_model(checked_in_matrix)


feature_points = st.builds(
    features_for,
    st.integers(min_value=64, max_value=1 << 20),
    st.floats(min_value=1.0, max_value=32.0),
    st.floats(min_value=1.0, max_value=200.0),
)


class TestMonotoneInSize:
    @settings(max_examples=80, deadline=None)
    @given(f=feature_points)
    def test_choose_is_argmin_of_predicted_latency(self, checked_in_model, f):
        """The pick is never one the model predicts strictly slower."""
        model = checked_in_model
        pick = model.choose(f)
        pool = [b for b in model.backends if model.eligible(f, b)] or list(
            model.backends
        )
        best = min(pool, key=lambda b: model.predict_latency(f, b))
        assert model.predict_latency(f, pick) <= (
            model.predict_latency(f, best) * (1 + 1e-9)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        n_small=st.integers(min_value=64, max_value=1 << 19),
        growth=st.integers(min_value=2, max_value=32),
        degree=st.floats(min_value=1.0, max_value=32.0),
        skew=st.floats(min_value=1.0, max_value=200.0),
    )
    def test_larger_graph_never_picks_predicted_slower_backend(
        self, checked_in_model, n_small, growth, degree, skew
    ):
        """Monotone in size: with otherwise-equal features, the pick for
        the larger graph is never a backend the model predicts strictly
        slower than the smaller graph's pick at that larger size."""
        model = checked_in_model
        f_small = features_for(n_small, degree, skew)
        f_large = features_for(n_small * growth, degree, skew)
        pick_small = model.choose(f_small)
        pick_large = model.choose(f_large)
        if not model.eligible(f_large, pick_small):
            return  # the domain guard forbids it there, by design
        assert model.predict_latency(f_large, pick_large) <= (
            model.predict_latency(f_large, pick_small) * (1 + 1e-9)
        )

    def test_measured_size_columns_are_monotone(
        self, checked_in_matrix, checked_in_model
    ):
        """Deterministic version on real measurements: walking up every
        size column of the checked-in grid, the fitted pick is never a
        backend measured slower (beyond timing noise) than the previous
        pick at the same point."""
        model = checked_in_model
        columns = {}
        for p in checked_in_matrix["points"]:
            key = (p["params"]["skew"], p["params"]["community"],
                   p["params"]["density"])
            columns.setdefault(key, []).append(p)
        assert columns
        for column in columns.values():
            column.sort(key=lambda p: p["params"]["size"])
            previous_pick = None
            for p in column:
                seconds = p["seconds"]
                neutral = [
                    b for b in seconds if b in PARITY_NEUTRAL_BACKENDS
                ]
                pick = model.choose(
                    GraphFeatures.from_dict(p["features"]), available=neutral
                )
                if previous_pick in seconds:
                    assert seconds[pick] <= seconds[previous_pick] * 1.10, (
                        f"fitted pick {pick!r} measured slower than "
                        f"{previous_pick!r} at {p['params']}"
                    )
                previous_pick = pick


class TestTier1Parity:
    def test_fitted_vs_constant_identical_colorings_on_tier1_set(self):
        """Both routing policies must color every tier-1 stand-in
        byte-identically to a direct repro.color call."""
        from repro import color as direct_color
        from repro.experiments import DATASET_KEYS, load_dataset
        from repro.service import ColoringService, ServiceConfig

        graphs = [
            load_dataset(key, preprocessed=True) for key in DATASET_KEYS
        ]
        references = {
            g.name: direct_color(g, "bitwise").colors for g in graphs
        }
        for config in (
            ServiceConfig(
                router_table=DEFAULT_ROUTER_RESULT_PATH, cache_capacity=0
            ),
            ServiceConfig(cache_capacity=0),
        ):
            with ColoringService(config) as svc:
                fitted = config.router_table is not None
                assert (
                    svc.status()["routing"]["policy"]
                    == ("fitted" if fitted else "constant")
                )
                for g in graphs:
                    result = svc.color(g)
                    assert np.array_equal(
                        result.colors, references[g.name]
                    ), f"routing changed the colors of {g.name}"
                if fitted:
                    assert (
                        svc.status()["routing"]["fitted"] >= len(graphs)
                    )
