"""Placement-policy tests: consistent hashing, spill, min-coalesce.

The properties the mesh depends on, pinned directly on the pure
placement layer (no processes, no sockets):

* same fingerprint -> same worker, deterministically, across
  independently built rings;
* a worker's death moves only the keys it owned (~1/N of the space) —
  every other key keeps its warm home;
* spill under saturation goes to the least-loaded live worker, stably
  by name on ties;
* the micro-batcher's linger window only opens once the initial queue
  sweep gathered ``batch_min_fill`` jobs — the small-fleet fix.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import (
    HashRing,
    MeshPlacement,
    PlacementPolicy,
    WorkerLoad,
    least_loaded,
    placement_key,
)

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORKERS = ["w0", "w1", "w2", "w3"]

keys = st.text(min_size=1, max_size=24)


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
@common
@given(key=keys)
def test_same_key_same_worker(key):
    """Placement is a pure function of (key, live set) — two rings built
    from the same membership agree, and repeat lookups never move."""
    a = HashRing(WORKERS)
    b = HashRing(reversed(WORKERS))  # insertion order must not matter
    assert a.lookup(key) == b.lookup(key)
    assert a.lookup(key) == a.lookup(key)


@common
@given(key=keys, dead=st.sampled_from(WORKERS))
def test_death_moves_only_the_dead_workers_keys(key, dead):
    ring = HashRing(WORKERS)
    before = ring.lookup(key)
    ring.remove(dead)
    after = ring.lookup(key)
    if before != dead:
        assert after == before  # survivors' keys never move
    else:
        assert after != dead  # orphaned keys land on a survivor


def test_death_moves_about_one_nth_of_the_keyspace():
    ring = HashRing(WORKERS)
    sample = [f"graph-{i}" for i in range(2000)]
    before = {k: ring.lookup(k) for k in sample}
    ring.remove("w2")
    moved = sum(1 for k in sample if ring.lookup(k) != before[k])
    # Exactly the dead worker's keys moved...
    assert moved == sum(1 for k in sample if before[k] == "w2")
    # ...and with 64 virtual nodes that is roughly 1/4 of the space.
    assert 0.10 <= moved / len(sample) <= 0.45


def test_empty_ring_raises_and_membership_helpers():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.lookup("anything")
    ring.add("w0")
    assert "w0" in ring and len(ring) == 1
    ring.add("w0")  # idempotent
    assert len(ring) == 1
    ring.remove("w0")
    ring.remove("w0")  # idempotent
    with pytest.raises(LookupError):
        ring.lookup("anything")


def test_placement_key_content_addresses(small_graphs):
    g = small_graphs[0]
    request = SimpleNamespace(dataset=None)
    assert placement_key(request, g) == g.fingerprint()
    dataset_request = SimpleNamespace(dataset="EF")
    assert placement_key(dataset_request, None) == "dataset:EF"


# ----------------------------------------------------------------------
# Spill
# ----------------------------------------------------------------------
@common
@given(
    loads=st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 8)),
        min_size=len(WORKERS),
        max_size=len(WORKERS),
    ),
    key=keys,
)
def test_spill_goes_to_the_least_loaded_survivor(loads, key):
    placement = MeshPlacement(WORKERS)
    for worker, (depth, inflight) in zip(WORKERS, loads):
        placement.update_load(worker, depth, inflight)
    home = placement.home(key)
    target = placement.spill_target(key, exclude=[home])
    assert target is not None and target != home
    pressures = {
        w: load.pressure
        for w, load in placement.loads().items()
        if w != home
    }
    assert pressures[target] == min(pressures.values())
    # Stable on ties: the lexicographically first of the minimum.
    assert target == min(
        w for w, p in pressures.items() if p == pressures[target]
    )


def test_spill_returns_none_when_alone():
    placement = MeshPlacement(["only"])
    assert placement.spill_target("k", exclude=["only"]) is None


def test_least_loaded_excludes_and_breaks_ties_by_name():
    loads = {
        "b": WorkerLoad(queue_depth=1, inflight=0),
        "a": WorkerLoad(queue_depth=1, inflight=0),
        "c": WorkerLoad(queue_depth=0, inflight=0),
    }
    assert least_loaded(loads) == "c"
    assert least_loaded(loads, exclude=["c"]) == "a"
    assert least_loaded(loads, exclude=["a", "b", "c"]) is None


def test_mark_dead_rehashes_and_updates_stats():
    placement = MeshPlacement(WORKERS)
    assert placement.mark_dead("w1") is True
    assert placement.mark_dead("w1") is False  # already dead
    stats = placement.stats()
    assert stats["live"] == ["w0", "w2", "w3"]
    assert stats["dead"] == ["w1"]
    assert stats["rehashes"] == 1
    # Dead workers take no load updates and no placements.
    placement.update_load("w1", 9, 9)
    assert "w1" not in placement.loads()
    for i in range(50):
        assert placement.home(f"k{i}") != "w1"


# ----------------------------------------------------------------------
# Min-coalesce threshold (the small-fleet fix)
# ----------------------------------------------------------------------
class _StubRouter:
    """Routes everything to one batch lane."""

    def route(self, request, graph):
        return SimpleNamespace(lane="batch", batch_key="k")


class _StubQueue:
    """Yields scripted companion batches per drain_matching sweep."""

    def __init__(self, sweeps):
        self._sweeps = list(sweeps)

    def drain_matching(self, matches, limit):
        batch = self._sweeps.pop(0) if self._sweeps else []
        return [job for job in batch[:limit] if matches(job)]


def _jobs(n):
    return [
        SimpleNamespace(request=SimpleNamespace(), graph=None)
        for _ in range(n)
    ]


def _decision():
    return SimpleNamespace(lane="batch", batch_key="k")


def test_min_fill_defaults_to_batch_max_jobs():
    policy = PlacementPolicy(_StubRouter(), batch_max_jobs=8)
    assert policy.batch_min_fill == 8
    policy = PlacementPolicy(_StubRouter(), batch_max_jobs=8, batch_min_fill=3)
    assert policy.batch_min_fill == 3


def test_under_threshold_sweep_bypasses_the_window():
    """Fewer than batch_min_fill compatible jobs -> no linger at all."""
    policy = PlacementPolicy(
        _StubRouter(), batch_max_jobs=8, batch_min_fill=4
    )
    slept = []
    queue = _StubQueue([_jobs(2), _jobs(5)])  # second sweep must not happen
    leader = _jobs(1)[0]
    companions = policy.collect_companions(
        queue, _decision(), exclude=leader, sleep=slept.append
    )
    assert len(companions) == 2
    assert slept == []


def test_at_threshold_sweep_opens_the_window():
    policy = PlacementPolicy(
        _StubRouter(), batch_max_jobs=8, batch_min_fill=4
    )
    slept = []
    queue = _StubQueue([_jobs(3), _jobs(9)])  # 3 + leader meets min fill
    leader = _jobs(1)[0]
    companions = policy.collect_companions(
        queue, _decision(), exclude=leader, sleep=slept.append
    )
    assert slept  # the window lingered
    assert len(companions) == 7  # topped up to batch_max_jobs - 1


def test_leader_is_excluded_from_its_own_sweep():
    policy = PlacementPolicy(
        _StubRouter(), batch_max_jobs=4, batch_min_fill=1
    )
    leader = _jobs(1)[0]
    queue = _StubQueue([[leader] + _jobs(2)])
    companions = policy.collect_companions(
        queue, _decision(), exclude=leader, sleep=lambda s: None
    )
    assert all(c is not leader for c in companions)
    assert len(companions) == 2
