"""Session lane: registration, delta batches, churn fallback, dedup.

The lane's two contracts, tested here:

* **Sparse-diff coherence** — a client folding every `ApplyOutcome` diff
  into a local mirror always holds exactly the server's coloring;
* **Byte parity** — at registration and after every churn-triggered full
  recolor, the session's colors are byte-identical to a direct
  ``repro.color`` call on the equivalent snapshot graph.

The hypothesis test drives random interleavings of edge insertions,
expirations and vertex growth through a live session with a low churn
threshold (so fallback recolors actually happen) and asserts both
contracts plus server-side validity at every step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.coloring import assert_proper_coloring
from repro.graph import CSRGraph, erdos_renyi
from repro.obs import Registry
from repro.service import (
    Client,
    ColoringService,
    ServiceConfig,
    SessionError,
    SessionNotFound,
)


@pytest.fixture
def svc(service_factory):
    return service_factory(executors=2)


def _graph(seed=3, n=120, p=0.06):
    return erdos_renyi(n, p, seed=seed, name=f"sess-{seed}")


class TestRegister:
    def test_parity_with_direct_color(self, svc):
        g = _graph()
        info = svc.sessions.register(g, algorithm="bitwise")
        direct = repro.color(g, algorithm="bitwise")
        assert np.array_equal(info.colors, direct.colors)
        assert info.n_colors == direct.n_colors
        assert info.num_vertices == g.num_vertices
        assert info.fingerprint == g.fingerprint()

    def test_content_addressed_dedup(self, svc):
        g = _graph(seed=5)
        # The same structure built twice is stored once server-side.
        twin = CSRGraph.from_arrays(
            g.num_vertices, *g.edge_array().T, symmetrize=False,
            dedup=False, name="twin",
        )
        a = svc.sessions.register(g)
        b = svc.sessions.register(twin)
        assert not a.graph_reused
        assert b.graph_reused
        assert a.fingerprint == b.fingerprint
        assert svc.sessions.stats()["registered_graphs"] == 1
        svc.sessions.close(a.session_id)
        assert svc.sessions.stats()["registered_graphs"] == 1  # refcounted
        svc.sessions.close(b.session_id)
        assert svc.sessions.stats()["registered_graphs"] == 0

    def test_session_cap(self, service_factory):
        svc = service_factory(executors=1, max_sessions=2)
        g = _graph(seed=6, n=40)
        svc.sessions.register(g)
        svc.sessions.register(g)
        with pytest.raises(SessionError, match="session limit"):
            svc.sessions.register(g)

    def test_unknown_session_everywhere(self, svc):
        for fn in (svc.sessions.verify, svc.sessions.colors,
                   svc.sessions.describe, svc.sessions.close):
            with pytest.raises(SessionNotFound, match="nope"):
                fn("nope")
        with pytest.raises(SessionNotFound):
            svc.sessions.apply("nope", [(0, 1)])


class TestApply:
    def test_sparse_diff_folds_to_server_colors(self, svc):
        g = _graph(seed=7)
        info = svc.sessions.register(g)
        mirror = info.colors.copy()
        rng = np.random.default_rng(0)
        for _ in range(5):
            adds = rng.integers(0, g.num_vertices, size=(40, 2))
            adds = adds[adds[:, 0] != adds[:, 1]]
            out = svc.sessions.apply(info.session_id, adds)
            mirror[out.changed] = out.colors
            assert np.array_equal(mirror, svc.sessions.colors(info.session_id))
        assert svc.sessions.verify(info.session_id)["valid"]

    def test_bad_batch_is_session_error(self, svc):
        info = svc.sessions.register(_graph(seed=8, n=30))
        with pytest.raises(SessionError, match="bad delta batch"):
            svc.sessions.apply(info.session_id, [(2, 2)])  # self loop
        with pytest.raises(SessionError, match="bad delta batch"):
            svc.sessions.apply(info.session_id, [(0, 999)])  # out of range
        # The failed batches left the session consistent.
        assert svc.sessions.verify(info.session_id)["valid"]

    def test_churn_fallback_full_recolor_parity(self, service_factory):
        svc = service_factory(executors=2, session_churn_threshold=0.01)
        g = _graph(seed=9)
        info = svc.sessions.register(g, algorithm="bitwise")
        mirror = info.colors.copy()
        rng = np.random.default_rng(1)
        modes = []
        for _ in range(4):
            adds = rng.integers(0, g.num_vertices, size=(60, 2))
            adds = adds[adds[:, 0] != adds[:, 1]]
            out = svc.sessions.apply(info.session_id, adds)
            modes.append(out.mode)
            mirror[out.changed] = out.colors
            server = svc.sessions.colors(info.session_id)
            assert np.array_equal(mirror, server)
            if out.mode == "full":
                # Byte parity with a one-shot color of the snapshot.
                snap = svc.sessions._sessions[info.session_id].inc.to_graph()
                assert np.array_equal(
                    server, repro.color(snap, algorithm="bitwise").colors
                )
        assert "full" in modes  # the threshold really tripped

    def test_cache_invalidation_is_scoped(self, service_factory):
        svc = service_factory(executors=1, cache_capacity=16)
        g = _graph(seed=10)
        other = _graph(seed=11)
        client = Client(svc)
        client.color(g)      # cache entry for g's fingerprint
        client.color(other)  # ... and an unrelated one
        info = svc.sessions.register(g)
        out = svc.sessions.apply(info.session_id, [(0, 1), (2, 3)])
        assert out.cache_invalidated >= 1
        # Only the mutated structure's entries were evicted.
        assert len(svc.cache) >= 1
        # A later batch does not re-invalidate (already dirty).
        out2 = svc.sessions.apply(info.session_id, [(4, 5)])
        assert out2.cache_invalidated == 0

    def test_grow_vertices_color_one(self, svc):
        info = svc.sessions.register(_graph(seed=12, n=30))
        out = svc.sessions.apply(info.session_id, add_vertices=3)
        assert out.num_vertices == 33
        assert np.array_equal(
            svc.sessions.colors(info.session_id)[30:], [1, 1, 1]
        )


class TestSessionHandle:
    def test_client_mirror_and_context_manager(self, svc):
        g = _graph(seed=13)
        client = Client(svc)
        with client.register(g) as session:
            rng = np.random.default_rng(2)
            for _ in range(3):
                adds = rng.integers(0, g.num_vertices, size=(30, 2))
                adds = adds[adds[:, 0] != adds[:, 1]]
                session.apply(adds, add_vertices=1)
                assert np.array_equal(session.colors, session.resync())
            session.verify()
            sid = session.info.session_id
        with pytest.raises(SessionNotFound):
            svc.sessions.describe(sid)  # context exit closed it

    def test_close_idempotent(self, svc):
        session = Client(svc).register(_graph(seed=14, n=30))
        session.close()
        session.close()  # second close is a no-op, not an error


# ----------------------------------------------------------------------
# Property: random interleavings keep every contract intact.
# ----------------------------------------------------------------------
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 11), st.integers(0, 11)),
        st.tuples(st.just("remove"), st.integers(0, 11), st.integers(0, 11)),
        st.tuples(st.just("grow"), st.integers(1, 2), st.just(0)),
    ),
    min_size=1,
    max_size=24,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=_ops, seed=st.integers(0, 7))
def test_session_interleavings_stay_coherent(ops, seed):
    base = erdos_renyi(12, 0.25, seed=seed, name="prop")
    svc = ColoringService(
        ServiceConfig(
            executors=1,
            cache_capacity=0,
            session_churn_threshold=0.05,  # low: force fallback recolors
            registry=Registry(enabled=False),
        )
    )
    try:
        info = svc.sessions.register(base, algorithm="bitwise")
        mirror = info.colors.copy()
        edges = {tuple(sorted(p)) for p in base.edge_array().tolist()}
        n = base.num_vertices
        for op, a, b in ops:
            adds, rems, grow = [], [], 0
            if op == "add" and a != b and a < n and b < n:
                adds = [(a, b)]
                edges.add((min(a, b), max(a, b)))
            elif op == "remove" and a != b and a < n and b < n:
                rems = [(a, b)]
                edges.discard((min(a, b), max(a, b)))
            elif op == "grow":
                grow = a
                n += a
            else:
                continue
            out = svc.sessions.apply(
                info.session_id, adds, rems, add_vertices=grow
            )
            # New vertices join the mirror at color 1 (the convention).
            if grow:
                mirror = np.concatenate(
                    [mirror, np.ones(grow, dtype=np.int64)]
                )
            mirror[out.changed] = out.colors
            # 1. The folded mirror is exactly the server's coloring.
            server = svc.sessions.colors(info.session_id)
            assert np.array_equal(mirror, server)
            # 2. The maintained coloring stays proper.
            assert svc.sessions.verify(info.session_id)["valid"]
            # 3. The maintained coloring is proper on an independently
            #    rebuilt snapshot, and after every fallback recolor it is
            #    byte-equal to coloring that snapshot directly.
            snapshot = CSRGraph.from_edge_list(n, sorted(edges))
            assert_proper_coloring(snapshot, server)
            if out.mode == "full":
                direct = repro.color(snapshot, algorithm="bitwise")
                assert np.array_equal(server, direct.colors)
    finally:
        svc.close(drain=False)
