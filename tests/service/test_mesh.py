"""End-to-end mesh tests: routing, failover, shard path, one engine.

Everything here runs real worker processes (fork) over real Unix
sockets; the pure placement policy is covered separately in
``test_placement.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import color as direct_color
from repro.graph import erdos_renyi
from repro.obs import Registry
from repro.service import (
    ColoringMesh,
    ColoringService,
    JobRequest,
    MeshConfig,
    MeshServer,
    ServiceConfig,
    SessionNotFound,
    connect,
)


def _mesh_config(**overrides) -> MeshConfig:
    overrides.setdefault("workers", 2)
    overrides.setdefault(
        "service",
        ServiceConfig(executors=1, registry=Registry(enabled=False)),
    )
    overrides.setdefault("shard_threshold_vertices", None)
    return MeshConfig(**overrides)


@pytest.fixture(scope="module")
def mesh():
    with ColoringMesh(_mesh_config()) as m:
        yield m


# ----------------------------------------------------------------------
# Forward path
# ----------------------------------------------------------------------
def test_forward_parity_and_cache_affinity(mesh):
    g = erdos_renyi(150, 0.08, seed=41, name="mesh-fwd")
    served = mesh.color(g, retries=8)
    assert np.array_equal(served.colors, direct_color(g).colors)
    assert not served.cache_hit
    # Consistent hashing sends the byte-identical graph back to the same
    # worker, whose result cache still holds it.
    again = mesh.color(g, retries=8)
    assert again.cache_hit
    assert np.array_equal(again.colors, served.colors)


def test_dataset_jobs_forward(mesh):
    from repro.experiments import load_dataset

    expected = direct_color(load_dataset("EF", preprocessed=True))
    served = mesh.color(dataset="EF", retries=8)
    assert np.array_equal(served.colors, expected.colors)


def test_status_aggregates_workers(mesh):
    snapshot = mesh.status()
    assert snapshot["mode"] == "mesh"
    assert snapshot["status"] == "ok"
    assert snapshot["placement"]["live"] == ["w0", "w1"]
    assert set(snapshot["workers"]) == {"w0", "w1"}
    for worker_snapshot in snapshot["workers"].values():
        assert "queue_depth" in worker_snapshot


def test_distinct_graphs_spread_over_workers(mesh):
    graphs = [
        erdos_renyi(90 + 5 * i, 0.08, seed=500 + i, name=f"spread{i}")
        for i in range(12)
    ]
    homes = {
        mesh.placement.home(g.fingerprint()) for g in graphs
    }
    assert homes == {"w0", "w1"}


# ----------------------------------------------------------------------
# Shard path
# ----------------------------------------------------------------------
def test_shard_path_matches_parallel_backend():
    g = erdos_renyi(900, 0.01, seed=42, name="mesh-shard")
    expected = direct_color(g, "bitwise", backend="parallel")
    with ColoringMesh(_mesh_config(shard_threshold_vertices=100)) as m:
        served = m.color(g)
        assert served.route.startswith("mesh-shard")
        assert np.array_equal(served.colors, expected.colors)
        assert served.n_colors == expected.n_colors
        # Below the threshold the same mesh forwards instead.
        small = erdos_renyi(60, 0.1, seed=43, name="mesh-small")
        forwarded = m.color(small, retries=8)
        assert not forwarded.route.startswith("mesh-shard")
        assert np.array_equal(
            forwarded.colors, direct_color(small).colors
        )


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
def test_worker_death_rehashes_and_fails_over():
    with ColoringMesh(_mesh_config()) as m:
        victim = m._workers["w1"]
        victim.process.kill()
        victim.process.join(timeout=10)
        m.check_workers()
        assert m.placement.dead_workers == ["w1"]
        assert m.placement.live_workers == ["w0"]
        assert m.placement.stats()["rehashes"] == 1
        # Every key now lands on the survivor; jobs keep completing.
        for i in range(4):
            g = erdos_renyi(80 + i, 0.1, seed=600 + i, name=f"fo{i}")
            served = m.color(g, retries=8)
            assert np.array_equal(served.colors, direct_color(g).colors)
        assert m.status()["status"] == "ok"


def test_sessions_on_a_dead_worker_are_lost_loudly():
    with ColoringMesh(_mesh_config()) as m:
        register = {
            "op": "session.register",
            "dataset": "EF",
            "algorithm": "bitwise",
            "client_id": "t",
        }
        response = m.forward_session(register)
        assert response["ok"], response
        session_id = response["session"]["session_id"]
        home = m._session_homes[session_id]
        m._workers[home].process.kill()
        m._workers[home].process.join(timeout=10)
        m.check_workers()
        followup = m.forward_session(
            {"op": "session.verify", "session_id": session_id}
        )
        assert not followup["ok"]
        assert followup["error"]["code"] == "session_not_found"


# ----------------------------------------------------------------------
# Router socket (MeshServer)
# ----------------------------------------------------------------------
def test_mesh_server_serves_the_service_protocol():
    socket_path = Path(tempfile.mkdtemp(prefix="repro-mesh-test-")) / "r.sock"
    with ColoringMesh(_mesh_config()) as m:
        server = MeshServer(m, socket_path).run_in_thread()
        try:
            with connect(socket_path, client_id="t") as client:
                assert client.ping()
                g = erdos_renyi(120, 0.08, seed=77, name="via-socket")
                served = client.color(g, retries=8)
                assert np.array_equal(
                    served.colors, direct_color(g).colors
                )
                # The mesh-status op aggregates the fleet.
                frame = client.call({"op": "mesh.status"})
                assert frame["ok"]
                assert frame["status"]["mode"] == "mesh"
                # The session lane round-trips through the router too.
                with client.register(dataset="EF") as handle:
                    out = handle.apply(additions=[(0, 5)])
                    assert out.epoch == 1
                    summary = handle.verify()
                    assert summary["n_colors"] >= 1
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# One execution path
# ----------------------------------------------------------------------
def test_service_and_mesh_share_the_execution_engine(monkeypatch):
    """The dispatcher hands every unit to ExecutionEngine — placement
    decides, the engine executes, and the mesh (whose workers run this
    exact service) therefore produces identical colors."""
    g = erdos_renyi(140, 0.08, seed=99, name="engine-parity")
    ran = []
    with ColoringService(
        ServiceConfig(executors=1, registry=Registry(enabled=False))
    ) as svc:
        real_single = svc.engine.run_single
        real_batch = svc.engine.run_batch

        def spy_single(job, decision):
            ran.append("single")
            return real_single(job, decision)

        def spy_batch(batch, decision):
            ran.append("batch")
            return real_batch(batch, decision)

        monkeypatch.setattr(svc.engine, "run_single", spy_single)
        monkeypatch.setattr(svc.engine, "run_batch", spy_batch)
        job = svc.submit(JobRequest(graph=g))
        in_process = job.result_or_raise(timeout=60)
    assert ran, "service dispatch bypassed the ExecutionEngine"
    with ColoringMesh(_mesh_config()) as m:
        meshed = m.color(g, retries=8)
    assert np.array_equal(in_process.colors, meshed.colors)
    assert np.array_equal(in_process.colors, direct_color(g).colors)
