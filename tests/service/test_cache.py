"""ResultCache: content addressing, determinism gating, LRU eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, complete_graph, erdos_renyi
from repro.service import JobRequest, ResultCache


def request(**kw) -> JobRequest:
    kw.setdefault("graph", complete_graph(3))
    return JobRequest(**kw)


def colors(n: int = 3) -> np.ndarray:
    return np.arange(1, n + 1, dtype=np.int64)


class TestContentAddressing:
    def test_hit_across_equal_graphs(self):
        """Two separately-built but identical graphs share one entry."""
        cache = ResultCache(8)
        a = CSRGraph.from_edge_list(4, [(0, 1), (1, 2)])
        b = CSRGraph.from_edge_list(4, [(0, 1), (1, 2)])
        req = request()
        cache.put(req, a, colors(), 3)
        hit = cache.get(req, b)
        assert hit is not None
        assert np.array_equal(hit[0], colors())

    def test_miss_on_different_structure(self):
        cache = ResultCache(8)
        req = request()
        cache.put(req, complete_graph(3), colors(), 3)
        assert cache.get(req, complete_graph(4)) is None

    def test_key_includes_execution_choice(self):
        cache = ResultCache(8)
        g = complete_graph(3)
        cache.put(request(backend="vectorized"), g, colors(), 3)
        assert cache.get(request(backend="python"), g) is None
        assert cache.get(request(algorithm="greedy"), g) is None
        assert (
            cache.get(request(backend="hw", engine="batched"), g) is None
        )
        assert cache.get(request(backend="vectorized"), g) is not None

    def test_opts_in_key(self):
        cache = ResultCache(8)
        g = complete_graph(3)
        cache.put(request(opts={"prune_uncolored": True}), g, colors(), 3)
        assert cache.get(request(), g) is None
        assert (
            cache.get(request(opts={"prune_uncolored": True}), g) is not None
        )


class TestDeterminismGate:
    def test_unseeded_randomized_never_cached(self):
        cache = ResultCache(8)
        g = complete_graph(3)
        req = request(algorithm="jp")
        assert not ResultCache.cacheable(req)
        assert cache.put(req, g, colors(), 3) is False
        assert cache.get(req, g) is None
        assert len(cache) == 0

    def test_seeded_randomized_cached(self):
        cache = ResultCache(8)
        g = complete_graph(3)
        req = request(algorithm="jp", opts={"seed": 7})
        assert ResultCache.cacheable(req)
        assert cache.put(req, g, colors(), 3) is True
        assert cache.get(req, g) is not None


class TestLRU:
    def test_eviction_order(self):
        cache = ResultCache(2)
        graphs = [erdos_renyi(10 + i, 0.3, seed=i) for i in range(3)]
        req = request()
        cache.put(req, graphs[0], colors(), 3)
        cache.put(req, graphs[1], colors(), 3)
        cache.get(req, graphs[0])  # refresh 0 -> 1 is now the oldest
        cache.put(req, graphs[2], colors(), 3)
        assert cache.get(req, graphs[0]) is not None
        assert cache.get(req, graphs[1]) is None
        assert cache.get(req, graphs[2]) is not None

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        g = complete_graph(3)
        assert cache.put(request(), g, colors(), 3) is False
        assert cache.get(request(), g) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestSafety:
    def test_stored_array_is_readonly_copy(self):
        cache = ResultCache(4)
        g = complete_graph(3)
        mine = colors()
        cache.put(request(), g, mine, 3)
        mine[0] = 99  # caller mutating their buffer must not corrupt cache
        stored, _ = cache.get(request(), g)
        assert stored[0] == 1
        with pytest.raises(ValueError):
            stored[0] = 5

    def test_stats(self):
        cache = ResultCache(4)
        g = complete_graph(3)
        cache.get(request(), g)
        cache.put(request(), g, colors(), 3)
        cache.get(request(), g)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
