"""The fingerprint-keyed graph stats cache behind routing decisions."""

import numpy as np
import pytest

from repro.graph import erdos_renyi, rmat
from repro.obs import Registry
from repro.service.stats import FEATURE_NAMES, GraphFeatures, GraphStatsCache


class TestGraphFeatures:
    def test_compute_matches_graph(self):
        g = rmat(8, 4, seed=3)
        f = GraphFeatures.compute(g)
        assert f.num_vertices == g.num_vertices
        assert f.num_edges == g.num_edges
        assert f.max_degree == g.max_degree()
        assert f.mean_degree == pytest.approx(g.num_edges / g.num_vertices)
        assert f.degree_skew == pytest.approx(
            g.max_degree() / (g.num_edges / g.num_vertices)
        )
        assert f.density == pytest.approx(
            f.mean_degree / (g.num_vertices - 1)
        )

    def test_edgeless_graph_is_all_zeros(self):
        g = erdos_renyi(10, 0.0, seed=0)
        f = GraphFeatures.compute(g)
        assert (f.degree_skew, f.density, f.mean_degree) == (0.0, 0.0, 0.0)

    def test_vector_layout_matches_feature_names(self):
        g = erdos_renyi(50, 0.2, seed=1)
        f = GraphFeatures.compute(g)
        v = f.vector()
        assert v.shape == (len(FEATURE_NAMES),)
        assert v[FEATURE_NAMES.index("log2_vertices")] == pytest.approx(
            np.log2(f.num_vertices + 1)
        )
        assert v[FEATURE_NAMES.index("log2_edges")] == pytest.approx(
            np.log2(f.num_edges + 1)
        )
        assert v[FEATURE_NAMES.index("degree_skew")] == pytest.approx(f.degree_skew)
        assert v[FEATURE_NAMES.index("density")] == pytest.approx(f.density)

    def test_dict_round_trip(self):
        f = GraphFeatures.compute(rmat(7, 3, seed=9))
        assert GraphFeatures.from_dict(f.as_dict()) == f


class TestGraphStatsCache:
    def test_hit_after_miss_with_counters(self):
        reg = Registry()
        cache = GraphStatsCache()
        g = erdos_renyi(60, 0.1, seed=2)
        first = cache.get(g, registry=reg)
        second = cache.get(g, registry=reg)
        assert first == second
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        assert reg.counters["router.stats_cache.misses"] == 1
        assert reg.counters["router.stats_cache.hits"] == 1

    def test_byte_identical_graph_objects_share_one_entry(self):
        cache = GraphStatsCache()
        a = erdos_renyi(40, 0.2, seed=5)
        b = erdos_renyi(40, 0.2, seed=5)
        assert a is not b
        cache.get(a, registry=Registry())
        cache.get(b, registry=Registry())
        assert len(cache) == 1
        assert cache.stats()["hits"] == 1

    def test_lru_eviction_at_capacity(self):
        cache = GraphStatsCache(capacity=2)
        graphs = [erdos_renyi(30 + i, 0.2, seed=i) for i in range(3)]
        reg = Registry()
        for g in graphs:
            cache.get(g, registry=reg)
        assert len(cache) == 2
        # graphs[0] was evicted: re-fetching misses again.
        cache.get(graphs[0], registry=reg)
        assert cache.stats()["misses"] == 4

    def test_invalidate_fingerprint(self):
        cache = GraphStatsCache()
        g = erdos_renyi(25, 0.3, seed=7)
        cache.get(g, registry=Registry())
        assert cache.invalidate_fingerprint(g.fingerprint()) == 1
        assert cache.invalidate_fingerprint(g.fingerprint()) == 0
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GraphStatsCache(capacity=0)
