"""Micro-batcher: disjoint-union construction and byte-exact parity."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.graph import CSRGraph, complete_graph, erdos_renyi, star_graph
from repro.service import JobRequest, batch_key, disjoint_union, run_microbatch
from repro.service.batcher import BATCHABLE_BACKENDS


class TestDisjointUnion:
    def test_structure(self):
        a = complete_graph(3)
        b = star_graph(4)
        union, spans = disjoint_union([a, b])
        assert spans == [(0, 3), (3, 7)]
        assert union.num_vertices == 7
        assert union.num_edges == a.num_edges + b.num_edges
        # Block 0 adjacency is verbatim; block 1 is shifted by 3.
        assert union.neighbors(0).tolist() == a.neighbors(0).tolist()
        assert union.neighbors(3).tolist() == (b.neighbors(0) + 3).tolist()

    def test_single_graph_is_identity(self):
        g = erdos_renyi(40, 0.1, seed=2)
        union, spans = disjoint_union([g])
        assert spans == [(0, 40)]
        assert np.array_equal(union.offsets, g.offsets)
        assert np.array_equal(union.edges, g.edges)

    def test_empty_and_edgeless_blocks(self):
        empty = CSRGraph.empty(0)
        lonely = CSRGraph.empty(3)
        g = complete_graph(2)
        union, spans = disjoint_union([empty, lonely, g])
        assert spans == [(0, 0), (0, 3), (3, 5)]
        assert union.num_vertices == 5
        assert union.num_edges == 2

    def test_requires_graphs(self):
        with pytest.raises(ValueError):
            disjoint_union([])


class TestBatchKey:
    def request(self, **kw):
        kw.setdefault("graph", complete_graph(3))
        return JobRequest(**kw)

    def test_default_bitwise_is_batchable(self):
        key = batch_key(self.request(), complete_graph(3))
        assert key == ("bitwise", "vectorized", ())

    def test_default_backend_fills_unpinned_key(self):
        # The router passes its software tier; unpinned jobs key on it,
        # pinned jobs keep their own backend.
        g = complete_graph(3)
        key = batch_key(self.request(), g, default_backend="native")
        assert key == ("bitwise", "native", ())
        pinned = batch_key(
            self.request(backend="python"), g, default_backend="native"
        )
        assert pinned == ("bitwise", "python", ())

    @pytest.mark.parametrize("backend", BATCHABLE_BACKENDS)
    def test_software_backends_batchable(self, backend):
        key = batch_key(self.request(backend=backend), complete_graph(3))
        assert key[1] == backend

    def test_ineligible_requests(self):
        g = complete_graph(3)
        assert batch_key(self.request(algorithm="jp"), g) is None
        assert batch_key(self.request(backend="parallel"), g) is None
        assert batch_key(self.request(backend="hw"), g) is None
        assert (
            batch_key(
                self.request(backend="hw", engine="batched"), g
            )
            is None
        )
        assert batch_key(self.request(opts={"order": "degree"}), g) is None

    def test_prune_option_kept_in_key(self):
        key = batch_key(
            self.request(opts={"prune_uncolored": False}), complete_graph(3)
        )
        assert key == ("bitwise", "vectorized", (("prune_uncolored", False),))


class TestMicrobatchParity:
    """The load-bearing claim: union coloring == solo coloring, byte-exact."""

    @pytest.mark.parametrize("backend", BATCHABLE_BACKENDS)
    def test_random_mix(self, backend):
        graphs = [
            erdos_renyi(50 + 13 * i, 0.1, seed=20 + i) for i in range(5)
        ] + [complete_graph(6), star_graph(9)]
        key = ("bitwise", backend, ())
        results = run_microbatch(graphs, key)
        assert len(results) == len(graphs)
        for g, (colors, n_colors) in zip(graphs, results):
            solo = repro.color(g, "bitwise", backend=backend)
            assert np.array_equal(colors, solo.colors), g.name
            assert n_colors == solo.n_colors

    def test_prune_uncolored_survives_union(self):
        graphs = [erdos_renyi(60, 0.12, seed=i) for i in range(3)]
        key = ("bitwise", "vectorized", (("prune_uncolored", True),))
        for g, (colors, _) in zip(graphs, run_microbatch(graphs, key)):
            solo = repro.color(g, "bitwise", prune_uncolored=True)
            assert np.array_equal(colors, solo.colors)

    def test_result_arrays_are_independent_copies(self):
        graphs = [complete_graph(4), complete_graph(4)]
        (c1, _), (c2, _) = run_microbatch(graphs, ("bitwise", "vectorized", ()))
        c1[0] = 999
        assert c2[0] != 999
