"""Shared fixtures for the service test suite."""

from __future__ import annotations

import pytest

from repro.graph import erdos_renyi
from repro.obs import Registry
from repro.service import ColoringService, ServiceConfig


@pytest.fixture
def small_graphs():
    """A handful of distinct small graphs (all under the batch threshold)."""
    return [
        erdos_renyi(80 + 17 * i, 0.08, seed=100 + i, name=f"small{i}")
        for i in range(6)
    ]


@pytest.fixture
def service_factory():
    """Build services that are always torn down, even on test failure."""
    created = []

    def make(**overrides) -> ColoringService:
        overrides.setdefault("registry", Registry())
        svc = ColoringService(ServiceConfig(**overrides))
        created.append(svc)
        return svc

    yield make
    for svc in created:
        svc.close(drain=False, timeout=5)
