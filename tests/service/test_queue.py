"""AdmissionQueue: priority order, bounded depth, quotas, shedding."""

from __future__ import annotations

import threading

import pytest

from repro.graph import path_graph
from repro.obs import Registry
from repro.service import AdmissionQueue, Job, JobRequest, RetryAfter


def make_job(priority: int = 0, client_id: str = "anon") -> Job:
    req = JobRequest(
        graph=path_graph(4), priority=priority, client_id=client_id
    )
    return Job(req)


class TestOrdering:
    def test_priority_pops_first(self):
        q = AdmissionQueue(max_depth=10)
        low = make_job(priority=0)
        high = make_job(priority=5)
        q.push(low)
        q.push(high)
        assert q.pop(timeout=0) is high
        assert q.pop(timeout=0) is low

    def test_ties_break_fifo(self):
        q = AdmissionQueue(max_depth=10)
        jobs = [make_job(priority=1) for _ in range(5)]
        for job in jobs:
            q.push(job)
        assert [q.pop(timeout=0) for _ in jobs] == jobs

    def test_pop_empty_times_out(self):
        q = AdmissionQueue(max_depth=4)
        assert q.pop(timeout=0.01) is None

    def test_pop_blocks_until_push(self):
        q = AdmissionQueue(max_depth=4)
        job = make_job()
        got = []

        def consumer():
            got.append(q.pop(timeout=5))

        t = threading.Thread(target=consumer)
        t.start()
        q.push(job)
        t.join(timeout=5)
        assert got == [job]


class TestAdmission:
    def test_shed_on_depth(self):
        reg = Registry()
        q = AdmissionQueue(max_depth=2, registry=reg)
        q.push(make_job())
        q.push(make_job())
        with pytest.raises(RetryAfter) as exc:
            q.push(make_job())
        assert exc.value.retry_after_s > 0
        assert reg.counters["service.shed"] == 1
        assert reg.counters["service.shed.queue_full"] == 1
        assert q.depth == 2  # the shed job never entered

    def test_shed_on_client_quota(self):
        reg = Registry()
        q = AdmissionQueue(max_depth=10, client_quota=2, registry=reg)
        q.push(make_job(client_id="a"))
        q.push(make_job(client_id="a"))
        q.push(make_job(client_id="b"))  # other clients unaffected
        with pytest.raises(RetryAfter, match="quota"):
            q.push(make_job(client_id="a"))
        assert reg.counters["service.shed.client_quota"] == 1

    def test_quota_released_on_pop(self):
        q = AdmissionQueue(max_depth=10, client_quota=1)
        q.push(make_job(client_id="a"))
        q.pop(timeout=0)
        q.push(make_job(client_id="a"))  # must not shed
        assert q.client_queued("a") == 1

    def test_depth_gauge_tracks(self):
        reg = Registry()
        q = AdmissionQueue(max_depth=10, registry=reg)
        q.push(make_job())
        assert reg.gauges["service.queue_depth"] == 1
        q.pop(timeout=0)
        assert reg.gauges["service.queue_depth"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=1, client_quota=0)


class TestDrainMatching:
    def test_takes_matches_in_order_keeps_rest(self):
        q = AdmissionQueue(max_depth=10)
        wanted = [make_job(client_id="x") for _ in range(3)]
        other = [make_job(client_id="y") for _ in range(2)]
        for job in [wanted[0], other[0], wanted[1], other[1], wanted[2]]:
            q.push(job)
        taken = q.drain_matching(
            lambda j: j.request.client_id == "x", limit=10
        )
        assert taken == wanted
        assert q.depth == 2
        assert q.pop(timeout=0) is other[0]

    def test_limit_respected(self):
        q = AdmissionQueue(max_depth=10)
        for _ in range(5):
            q.push(make_job())
        taken = q.drain_matching(lambda j: True, limit=2)
        assert len(taken) == 2
        assert q.depth == 3

    def test_quota_released_for_taken(self):
        q = AdmissionQueue(max_depth=10, client_quota=2)
        q.push(make_job(client_id="a"))
        q.drain_matching(lambda j: True, limit=1)
        assert q.client_queued("a") == 0


def test_close_wakes_blocked_pop():
    q = AdmissionQueue(max_depth=4)
    out = []

    def consumer():
        out.append(q.pop(timeout=10))

    t = threading.Thread(target=consumer)
    t.start()
    q.close()
    t.join(timeout=5)
    assert out == [None]
