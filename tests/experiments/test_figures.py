"""Integration tests for the per-figure/table experiment entry points.

These run the real pipeline on a 2–3 dataset subset (the full suite is
the benchmark harness's job) and check structural invariants plus the
direction of each paper claim.
"""

import pytest

from repro.experiments import (
    fig3a_breakdown,
    fig3b_overlap,
    fig11_ablation,
    fig12_scaling,
    fig13_comparison,
    fig14_resources,
    report,
    table2_preprocessing,
    table3_datasets,
    table4_colors,
)

SUBSET = ["EF", "RC"]


class TestFig3:
    def test_breakdown_rows(self):
        rows = fig3a_breakdown(SUBSET)
        assert set(rows) == {"EF", "RC", "average", "aggregate"}
        for v in rows.values():
            assert sum(v.values()) == pytest.approx(1.0)

    def test_stage1_heavy(self):
        rows = fig3a_breakdown(SUBSET)
        assert rows["average"]["stage1"] > rows["average"]["stage2"]

    def test_overlap_low(self):
        rows = fig3b_overlap(SUBSET, intervals=(1, 4), sample=300)
        # The paper's claim: overlap mostly under 10 %.
        assert rows["average"][1] < 0.25
        assert rows["average"][4] >= rows["average"][1]


class TestFig11:
    def test_cumulative_improvement(self):
        result = fig11_ablation(["EF"])
        steps = result["EF"]
        assert [s.label for s in steps] == ["BSL", "+HDC", "+BWC", "+MGR", "+PUV"]
        totals = [s.total_norm for s in steps]
        # Each cumulative step is no slower than the previous one.
        assert all(b <= a + 1e-9 for a, b in zip(totals, totals[1:]))
        # The BSL row is the normalization anchor.
        assert totals[0] == 1.0
        # Final reduction is substantial (paper: 82.91 % total).
        assert totals[-1] < 0.5

    def test_hdc_cuts_dram(self):
        steps = fig11_ablation(["EF"])["EF"]
        assert steps[1].dram_norm < 0.6  # EF fits on chip entirely

    def test_bwc_cuts_compute(self):
        steps = fig11_ablation(["EF"])["EF"]
        assert steps[2].compute_norm < steps[1].compute_norm


class TestFig12:
    def test_speedup_shape(self):
        result = fig12_scaling(["EF"], parallelisms=(1, 2, 4))
        s = result["EF"]
        assert s[1] == pytest.approx(1.0)
        assert 1.0 < s[2] <= 2.6
        assert s[2] < s[4] <= 4.8


class TestFig13:
    def test_bands(self):
        result = fig13_comparison(SUBSET, parallelism=8)
        for row in result.rows:
            assert row.speedup_vs_cpu > 5
            assert row.speedup_vs_gpu > 0.5
            assert row.fpga_time_s < row.cpu_time_s


class TestFig14:
    def test_reports(self):
        reports = fig14_resources((1, 16))
        assert reports[0].parallelism == 1
        assert reports[1].bram_blocks > reports[0].bram_blocks


class TestTables:
    def test_table2(self):
        rows = table2_preprocessing(SUBSET)
        for r in rows:
            assert r.reorder_ms < r.coloring_ms

    def test_table3(self):
        rows = table3_datasets(SUBSET)
        assert rows[0].dataset == "EF"
        assert rows[0].standin_nodes > 0

    def test_table4(self):
        rows = table4_colors(SUBSET)
        for r in rows:
            assert r.colors_sorted <= r.colors_bsl


class TestReportRendering:
    def test_fig3a(self):
        out = report.render_fig3a(fig3a_breakdown(SUBSET))
        assert "Stage1" in out and "EF" in out

    def test_fig12(self):
        out = report.render_fig12(fig12_scaling(["EF"], parallelisms=(1, 2)))
        assert "P=2" in out and "paper" in out

    def test_fig13(self):
        out = report.render_fig13(fig13_comparison(SUBSET, parallelism=8))
        assert "vs CPU" in out and "KCV/J" in out

    def test_fig14(self):
        out = report.render_fig14(fig14_resources((1, 2)))
        assert "BRAM" in out

    def test_table_renderers(self):
        assert "Reorder" in report.render_table2(table2_preprocessing(SUBSET))
        assert "Stand-in" in report.render_table3(table3_datasets(SUBSET))
        assert "Sorted colors" in report.render_table4(table4_colors(SUBSET))

    def test_fig11_render(self):
        assert "BSL" in report.render_fig11(fig11_ablation(["EF"]))

    def test_fig3b_render(self):
        assert "k=1" in report.render_fig3b(fig3b_overlap(["EF"], intervals=(1,), sample=100))

    def test_generic_table(self):
        out = report.render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
