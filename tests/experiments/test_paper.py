"""Tests for the centralized paper-numbers record."""

import pytest

from repro.experiments import PAPER


class TestPaperNumbers:
    def test_fig3a_breakdown_sums_to_one(self):
        assert sum(PAPER.fig3a_stage_breakdown) == pytest.approx(1.0)

    def test_bands_ordered(self):
        lo, hi = PAPER.fig13_cpu_speedup_range
        assert lo < PAPER.fig13_cpu_speedup_avg < hi
        lo, hi = PAPER.fig13_gpu_speedup_range
        assert lo < PAPER.fig13_gpu_speedup_avg < hi
        lo, hi = PAPER.fig12_speedup_range
        assert lo < hi

    def test_throughput_and_energy_consistent(self):
        """The paper's own throughput/energy figures imply the platform
        powers the energy model encodes."""
        t = PAPER.throughput_mcvs
        e = PAPER.energy_kcvj
        # implied watts = MCV/S * 1e6 / (KCV/J * 1e3)
        cpu_w = t["cpu"] * 1e6 / (e["cpu"] * 1e3)
        gpu_w = t["gpu"] * 1e6 / (e["gpu"] * 1e3)
        fpga_w = t["bitcolor"] * 1e6 / (e["bitcolor"] * 1e3)
        assert cpu_w == pytest.approx(73.3, rel=0.02)
        assert gpu_w == pytest.approx(805, rel=0.02)
        assert fpga_w == pytest.approx(267, rel=0.02)

    def test_energy_ratios_match_kcvj(self):
        e = PAPER.energy_kcvj
        assert e["bitcolor"] / e["cpu"] == pytest.approx(
            PAPER.energy_ratio_vs_cpu, abs=0.2
        )
        assert e["bitcolor"] / e["gpu"] == pytest.approx(
            PAPER.energy_ratio_vs_gpu, abs=0.2
        )

    def test_reduction_fractions_in_range(self):
        for frac in (
            PAPER.fig11_dram_reduction,
            PAPER.fig11_compute_reduction,
            PAPER.fig11_total_reduction,
            PAPER.table4_avg_reduction,
            PAPER.fig3b_average_overlap,
        ):
            assert 0.0 < frac < 1.0
