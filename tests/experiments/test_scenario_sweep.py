"""The scenario sweep: generator, table shape, persistence, slow regions."""

import json

import numpy as np
import pytest

from repro.coloring.verify import assert_proper_coloring
from repro.experiments.scenario_sweep import (
    FULL_AXES,
    MICROBATCH_MAX_VERTICES,
    MINI_AXES,
    SWEEP_TABLE_VERSION,
    default_backends,
    load_sweep_table,
    run_scenario_sweep,
    scenario_graph,
    slow_regions,
    sweep_report,
    write_sweep_table,
)
from repro.service.decision import PARITY_NEUTRAL_BACKENDS


class TestScenarioGraph:
    def test_deterministic_given_knobs(self):
        a = scenario_graph(300, 0.45, 0.5, 6, seed=3)
        b = scenario_graph(300, 0.45, 0.5, 6, seed=3)
        assert a.fingerprint() == b.fingerprint()

    def test_seed_changes_the_graph(self):
        a = scenario_graph(300, 0.45, 0.5, 6, seed=3)
        b = scenario_graph(300, 0.45, 0.5, 6, seed=4)
        assert a.fingerprint() != b.fingerprint()

    def test_density_knob_moves_realised_density(self):
        sparse = scenario_graph(1000, 0.3, 0.0, 2)
        dense = scenario_graph(1000, 0.3, 0.0, 16)
        assert dense.num_edges > 3 * sparse.num_edges

    def test_skew_knob_moves_degree_skew(self):
        # Home-quadrant probability 0.25 is uniform; 0.9 is a heavy tail.
        flat = scenario_graph(2048, 0.25, 0.0, 8)
        skewed = scenario_graph(2048, 0.9, 0.0, 8)
        ratio = lambda g: g.max_degree() / (g.num_edges / g.num_vertices)
        assert ratio(skewed) > 2 * ratio(flat)

    def test_community_knob_concentrates_edges(self):
        # With community=1.0 every edge lives inside a sqrt(n) block, so
        # endpoints are never more than one block apart.
        g = scenario_graph(900, 0.3, 1.0, 6)
        csize = max(4, int(np.sqrt(900)))
        for u in range(g.num_vertices):
            for v in g.neighbors(u):
                assert abs(int(u) // csize - int(v) // csize) <= 1

    def test_colorable(self):
        from repro import color

        g = scenario_graph(500, 0.6, 0.4, 8, seed=1)
        result = color(g, "bitwise")
        assert_proper_coloring(g, result.colors)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size=1, skew=0.3, community=0.0, density=4),
            dict(size=100, skew=0.1, community=0.0, density=4),
            dict(size=100, skew=0.3, community=1.5, density=4),
            dict(size=100, skew=0.3, community=0.0, density=0),
        ],
    )
    def test_knob_validation(self, kwargs):
        with pytest.raises(ValueError):
            scenario_graph(**kwargs)


@pytest.fixture(scope="module")
def mini_table():
    return run_scenario_sweep(
        sizes=(128, 256),
        skews=(0.3,),
        communities=(0.0, 0.5),
        densities=(4,),
        repeats=1,
        obs_counters=False,
    )


class TestSweepTable:
    def test_axes_defaults_are_grids(self):
        assert len(FULL_AXES["sizes"]) * len(FULL_AXES["skews"]) * len(
            FULL_AXES["communities"]
        ) * len(FULL_AXES["densities"]) == 48
        assert max(MINI_AXES["sizes"]) <= MICROBATCH_MAX_VERTICES

    def test_table_shape(self, mini_table):
        assert mini_table["kind"] == "router-scenario-sweep"
        assert mini_table["version"] == SWEEP_TABLE_VERSION
        assert mini_table["software_tier"] in ("native", "vectorized")
        assert len(mini_table["points"]) == 4
        for p in mini_table["points"]:
            assert set(p["params"]) == {
                "size", "skew", "community", "density", "seed",
            }
            assert p["seconds"]
            assert all(s > 0 for s in p["seconds"].values())
            assert p["fastest"] in p["seconds"]
            assert p["fastest"] == min(p["seconds"], key=p["seconds"].get)
            assert p["n_colors"] > 0
            assert set(p["n_colors_by_backend"]) == set(p["seconds"])
            # Parity-neutral backends all report the reference width.
            neutral_widths = {
                w for b, w in p["n_colors_by_backend"].items()
                if b in PARITY_NEUTRAL_BACKENDS
            }
            assert neutral_widths == {p["n_colors"]}

    def test_measured_features_recorded(self, mini_table):
        for p in mini_table["points"]:
            f = p["features"]
            assert f["num_vertices"] == p["params"]["size"]
            assert f["num_edges"] > 0
            assert f["degree_skew"] > 0

    def test_every_default_backend_measured_in_range(self, mini_table):
        for p in mini_table["points"]:
            assert set(p["seconds"]) == set(default_backends())

    def test_microbatch_skipped_above_its_ceiling(self):
        table = run_scenario_sweep(
            sizes=(MICROBATCH_MAX_VERTICES * 2,),
            skews=(0.3,),
            communities=(0.0,),
            densities=(2,),
            backends=("vectorized", "microbatch"),
            repeats=1,
            obs_counters=False,
        )
        (point,) = table["points"]
        assert "microbatch" not in point["seconds"]
        assert "vectorized" in point["seconds"]

    def test_round_trip(self, mini_table, tmp_path):
        path = write_sweep_table(mini_table, tmp_path / "table.json")
        loaded = load_sweep_table(path)
        assert loaded == json.loads(json.dumps(mini_table))

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a scenario sweep"):
            load_sweep_table(path)

    def test_load_rejects_wrong_version(self, mini_table, tmp_path):
        doc = dict(mini_table)
        doc["version"] = SWEEP_TABLE_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="version"):
            load_sweep_table(path)


class TestSlowRegions:
    def _table(self, costs_ns_per_edge):
        points = []
        for i, cost in enumerate(costs_ns_per_edge):
            edges = 1000
            points.append(
                {
                    "params": {"size": 100 * (i + 1), "skew": 0.3,
                               "community": 0.0, "density": 4, "seed": 0},
                    "features": {"num_edges": edges},
                    "seconds": {"vectorized": cost * 1e-9 * edges},
                    "fastest": "vectorized",
                }
            )
        return {"backends": ["vectorized"], "points": points}

    def test_flags_outliers_descending(self):
        flagged = slow_regions(
            self._table([10, 10, 10, 10, 100, 50]), factor=3.0
        )
        assert [r["slowdown_vs_median"] for r in flagged] == sorted(
            (r["slowdown_vs_median"] for r in flagged), reverse=True
        )
        assert len(flagged) == 2
        assert flagged[0]["params"]["size"] == 500

    def test_quiet_when_uniform(self):
        assert slow_regions(self._table([10, 10, 10, 10]), factor=3.0) == []

    def test_empty_table(self):
        assert slow_regions({"points": []}) == []

    def test_report_mentions_wins_and_regions(self, mini_table):
        text = sweep_report(mini_table)
        assert "4 points" in text
        assert "fastest on" in text
        assert ("slow regions" in text) or ("no slow regions" in text)
