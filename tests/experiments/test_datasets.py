"""Tests for the dataset registry."""

import pytest

from repro.experiments import (
    DATASET_KEYS,
    REGISTRY,
    load_dataset,
    paper_hdv_fraction,
)
from repro.graph import is_descending_degree_order


class TestRegistry:
    def test_ten_datasets(self):
        assert len(DATASET_KEYS) == 10
        assert set(DATASET_KEYS) == {
            "EF", "GD", "CD", "CA", "CL", "RC", "RP", "RT", "CO", "CF"
        }

    def test_paper_stats_match_table3(self):
        assert REGISTRY["EF"].paper_nodes == 4_100
        assert REGISTRY["CF"].paper_edges == 1_806_100_000
        assert REGISTRY["RC"].category == "Road network"

    def test_hdv_fractions(self):
        """Small graphs fit entirely; Friendster caches under 1 %."""
        assert paper_hdv_fraction(4_100) == 1.0
        assert REGISTRY["CD"].hdv_fraction == 1.0
        assert REGISTRY["CF"].hdv_fraction < 0.01
        assert 0.1 < REGISTRY["CL"].hdv_fraction < 0.2

    def test_avg_degree(self):
        assert REGISTRY["EF"].paper_avg_degree == pytest.approx(43.0, rel=0.01)


class TestLoading:
    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown"):
            load_dataset("XX")

    def test_memoised(self):
        a = load_dataset("EF")
        b = load_dataset("EF")
        assert a is b

    def test_preprocessed_properties(self):
        g = load_dataset("EF")
        assert is_descending_degree_order(g)
        assert g.meta.get("edges_sorted")
        assert g.is_symmetric()

    def test_raw_differs(self):
        raw = load_dataset("EF", preprocessed=False)
        pre = load_dataset("EF")
        assert raw.num_edges == pre.num_edges
        assert not raw.meta.get("edges_sorted")

    def test_config_scaling(self):
        spec = REGISTRY["CL"]
        cfg = spec.config_for(parallelism=4, standin_vertices=10_000)
        cached = cfg.cache_capacity_vertices
        assert cached == pytest.approx(spec.hdv_fraction * 10_000, abs=1)
        assert cfg.parallelism == 4

    def test_config_full_coverage(self):
        spec = REGISTRY["EF"]
        cfg = spec.config_for(parallelism=2, standin_vertices=4000)
        assert cfg.cache_capacity_vertices >= 4000
