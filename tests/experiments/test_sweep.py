"""Tests for the pooled dataset × algorithm sweep."""

import pytest

from repro.experiments.runner import SweepRun, run_sweep
from repro.obs import Registry, use_registry


class TestRunSweep:
    def test_cartesian_order(self):
        runs = run_sweep(["EF"], ["bitwise", "dsatur"], workers=1)
        assert [(r.dataset, r.algorithm) for r in runs] == [
            ("EF", "bitwise"),
            ("EF", "dsatur"),
        ]
        for r in runs:
            assert isinstance(r, SweepRun)
            assert r.n_colors >= 1
            assert r.seconds >= 0.0

    def test_workers_do_not_change_results(self):
        serial = run_sweep(["EF"], ["bitwise", "greedy"], workers=1)
        pooled = run_sweep(["EF"], ["bitwise", "greedy"], workers=2)
        assert [(r.dataset, r.algorithm, r.n_colors) for r in serial] == [
            (r.dataset, r.algorithm, r.n_colors) for r in pooled
        ]

    def test_unknown_dataset_fails_fast(self):
        with pytest.raises(KeyError):
            run_sweep(["NOPE"], ["bitwise"], workers=1)

    def test_obs_cells_attributed(self):
        reg = Registry()
        with use_registry(reg):
            run_sweep(["EF"], ["bitwise"], workers=2)
        snap = reg.snapshot()
        sweep_spans = [s for s in snap["spans"] if s["name"] == "experiment.sweep"]
        assert len(sweep_spans) == 1
        attributed = [
            s
            for s in snap["spans"]
            if s["attrs"].get("dataset") == "EF"
            and s["attrs"].get("algorithm") == "bitwise"
        ]
        assert attributed, "worker spans must come home stamped with the cell"
