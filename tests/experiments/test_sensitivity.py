"""Tests for the calibration-sensitivity sweeps."""

import pytest

from repro.experiments import (
    sweep_cpu_memory,
    sweep_dram_occupancy,
    sweep_gpu_frontier_rate,
    sweep_physical_channels,
)

KEYS = ("EF", "RC")


class TestSweeps:
    def test_dram_occupancy_direction(self):
        rows = sweep_dram_occupancy(values=(5, 20), keys=KEYS)
        # Costlier accelerator DRAM -> smaller speedups.
        assert rows[0].avg_speedup_vs_cpu > rows[1].avg_speedup_vs_cpu
        # But BitColor still wins clearly even at doubled DRAM cost.
        assert rows[1].avg_speedup_vs_cpu > 15

    def test_channels_direction(self):
        rows = sweep_physical_channels(values=(2, 8), keys=KEYS)
        assert rows[1].avg_speedup_vs_cpu >= rows[0].avg_speedup_vs_cpu

    def test_cpu_memory_direction(self):
        rows = sweep_cpu_memory(scales=(0.5, 2.0), keys=KEYS)
        # A slower CPU memory system inflates only the CPU ratio.
        assert rows[1].avg_speedup_vs_cpu > rows[0].avg_speedup_vs_cpu
        assert rows[0].avg_speedup_vs_gpu == pytest.approx(
            rows[1].avg_speedup_vs_gpu
        )

    def test_gpu_rate_direction(self):
        rows = sweep_gpu_frontier_rate(scales=(0.5, 2.0), keys=KEYS)
        # A faster GPU shrinks only the GPU ratio.
        assert rows[0].avg_speedup_vs_gpu > rows[1].avg_speedup_vs_gpu
        assert rows[0].avg_speedup_vs_cpu == pytest.approx(
            rows[1].avg_speedup_vs_cpu
        )

    def test_conclusion_robust(self):
        """The headline direction (FPGA > GPU > CPU) survives halving or
        doubling every perturbed constant."""
        for rows in (
            sweep_dram_occupancy(values=(5, 20), keys=KEYS),
            sweep_cpu_memory(scales=(0.5, 2.0), keys=KEYS),
            sweep_gpu_frontier_rate(scales=(0.5, 2.0), keys=KEYS),
        ):
            for r in rows:
                assert r.avg_speedup_vs_cpu > 10
                assert r.avg_speedup_vs_gpu > 0.8
