"""``repro.color`` facade: parity with direct calls, option validation.

The facade must be a pure front — same colors and the same instrumented
stage counters as calling each algorithm directly — plus the argument
validation the registry's capability flags promise.
"""

import numpy as np
import pytest

import repro
from repro.coloring import (
    ALGORITHMS,
    IncrementalColoring,
    bitwise_greedy_coloring,
    dsatur_coloring,
    greedy_coloring,
    gunrock_coloring,
    jones_plassmann_coloring,
    mis_coloring,
)
from repro.graph import powerlaw_cluster
from repro.obs import Registry, use_registry


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(400, 5, 0.3, seed=11, name="facade")


SEED = 3

DIRECT = {
    "bitwise": lambda g: bitwise_greedy_coloring(g, backend="vectorized"),
    "greedy": lambda g: greedy_coloring(g),
    "dsatur": lambda g: dsatur_coloring(g),
    "jp": lambda g: jones_plassmann_coloring(g, seed=SEED, backend="vectorized"),
    "luby": lambda g: mis_coloring(g, seed=SEED, backend="vectorized"),
    "gunrock": lambda g: gunrock_coloring(g, seed=SEED),
    "incremental": lambda g: IncrementalColoring.from_graph(g).outcome(),
}

FACADE_OPTS = {
    "jp": {"seed": SEED},
    "luby": {"seed": SEED},
    "gunrock": {"seed": SEED},
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_facade_matches_direct_call(graph, name):
    """Same colors AND same instrumented counters, algorithm by algorithm."""
    direct_reg = Registry()
    with use_registry(direct_reg):
        direct = DIRECT[name](graph)
    direct_colors = direct if isinstance(direct, np.ndarray) else direct.colors

    facade_reg = Registry()
    out = repro.color(graph, name, obs=facade_reg, **FACADE_OPTS.get(name, {}))

    assert np.array_equal(out.colors, direct_colors)
    assert out.n_colors > 0
    # The facade adds its own gauge; the algorithm-level counters must match.
    facade_counters = dict(facade_reg.counters)
    assert facade_counters == dict(direct_reg.counters)
    assert facade_reg.gauges["repro.color.n_colors"] == out.n_colors
    # The outer span wraps the run.
    assert facade_reg.spans[-1].name == "repro.color"
    assert facade_reg.spans[-1].attrs["algorithm"] == name


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_facade_returns_outcome_surface(graph, name):
    from repro.coloring import ColoringOutcome

    out = repro.color(graph, name, **FACADE_OPTS.get(name, {}))
    assert isinstance(out, ColoringOutcome)
    d = out.as_dict()
    assert d["n_colors"] == out.n_colors
    assert d["colors"] == list(out.colors)


def test_unknown_algorithm_lists_registered_names(graph):
    with pytest.raises(KeyError, match="bitwise"):
        repro.color(graph, "nope")


def test_invalid_backend_rejected(graph):
    with pytest.raises(ValueError, match="does not support backend"):
        repro.color(graph, "greedy", backend="vectorized")
    with pytest.raises(ValueError, match="allowed"):
        repro.color(graph, "jp", backend="hw")


def test_seed_rejected_for_deterministic_algorithms(graph):
    with pytest.raises(TypeError, match="deterministic"):
        repro.color(graph, "bitwise", seed=1)


def test_hw_backend_rejects_unknown_opts(graph):
    with pytest.raises(TypeError, match="backend='hw'"):
        repro.color(graph, "bitwise", backend="hw", order=[1, 2])


def test_hw_backend_matches_software(graph):
    sw = repro.color(graph, "bitwise")
    hw = repro.color(graph, "bitwise", backend="hw", parallelism=4)
    assert np.array_equal(sw.colors, hw.colors)
    assert hw.n_colors == sw.n_colors


def test_facade_does_not_touch_ambient_registry(graph):
    from repro.obs import get_registry

    ambient = get_registry()
    before = dict(ambient.counters)
    repro.color(graph, "bitwise", obs=Registry())
    assert get_registry() is ambient
    assert dict(ambient.counters) == before


def test_recolor_num_colors_deprecated(graph):
    from repro.coloring import greedy_coloring_fast, kempe_reduce

    res = kempe_reduce(graph, greedy_coloring_fast(graph))
    with pytest.warns(DeprecationWarning, match="num_colors"):
        assert res.num_colors == res.colors_after
    # The canonical spellings stay silent.
    assert res.n_colors == res.colors_after


def test_unknown_engine_rejected_eagerly(graph):
    """A typo'd engine fails before dispatch, listing the registered options."""
    with pytest.raises(ValueError, match="event, batched"):
        repro.color(graph, "bitwise", backend="hw", engine="bogus")


def test_engine_requires_hw_backend(graph):
    with pytest.raises(ValueError, match="requires backend='hw'"):
        repro.color(graph, "bitwise", backend="vectorized", engine="batched")
    # Default backend is not hw either, so engine alone is rejected too.
    with pytest.raises(ValueError, match="requires backend='hw'"):
        repro.color(graph, "jp", engine="batched", seed=0)


def test_valid_engine_accepted(graph):
    out = repro.color(
        graph, "bitwise", backend="hw", engine="batched", parallelism=4
    )
    assert np.array_equal(out.colors, repro.color(graph, "bitwise").colors)
