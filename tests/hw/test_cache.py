"""Tests for the HDV color cache."""

import numpy as np
import pytest

from repro.hw import HDVColorCache, HWConfig


@pytest.fixture
def cfg():
    return HWConfig(parallelism=1, cache_bytes=1024)  # 512 vertices


class TestHDVCache:
    def test_covers(self, cfg):
        c = HDVColorCache(cfg, v_t=100)
        assert c.covers(0)
        assert c.covers(99)
        assert not c.covers(100)
        assert not c.covers(-1)

    def test_read_write(self, cfg):
        c = HDVColorCache(cfg, v_t=100)
        c.write(5, 7)
        assert c.read(5) == 7
        assert c.read(6) == 0
        assert c.stats.reads == 2
        assert c.stats.writes == 1

    def test_ldv_access_rejected(self, cfg):
        """Reading an LDV through the cache is a pipeline bug, not a miss."""
        c = HDVColorCache(cfg, v_t=100)
        with pytest.raises(IndexError, match="LDV"):
            c.read(100)
        with pytest.raises(IndexError):
            c.write(200, 1)

    def test_capacity_enforced(self, cfg):
        with pytest.raises(ValueError, match="capacity"):
            HDVColorCache(cfg, v_t=513)
        HDVColorCache(cfg, v_t=512)  # exactly at capacity is fine

    def test_color_range_enforced(self, cfg):
        c = HDVColorCache(cfg, v_t=10)
        with pytest.raises(ValueError):
            c.write(0, cfg.max_colors + 1)

    def test_read_many(self, cfg):
        c = HDVColorCache(cfg, v_t=50)
        c.write(1, 3)
        out = c.read_many(np.array([1, 2]))
        assert out.tolist() == [3, 0]
        assert c.stats.reads == 2

    def test_read_many_range_checked(self, cfg):
        c = HDVColorCache(cfg, v_t=50)
        with pytest.raises(IndexError):
            c.read_many(np.array([49, 50]))

    def test_snapshot(self, cfg):
        c = HDVColorCache(cfg, v_t=4)
        c.write(2, 9)
        snap = c.snapshot()
        assert snap.tolist() == [0, 0, 9, 0]
        c.write(2, 1)
        assert snap[2] == 9  # copy, not view
