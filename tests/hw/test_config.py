"""Tests for the hardware configuration."""

import pytest

from repro.hw import DEFAULT_CONFIG, HWConfig, OptimizationFlags


class TestHWConfig:
    def test_paper_defaults(self):
        """Section 5.1.1: 1 MB cache = 512 K colors, 1024 colors, 512-bit
        blocks holding 32 colors / 16 edges."""
        c = DEFAULT_CONFIG
        assert c.cache_capacity_vertices == 512 * 1024
        assert c.colors_per_block == 32
        assert c.edges_per_block == 16
        assert c.max_colors == 1024
        assert c.parallelism == 16

    def test_v_t_small_graph(self):
        assert DEFAULT_CONFIG.v_t(1000) == 1000

    def test_v_t_large_graph(self):
        assert DEFAULT_CONFIG.v_t(10**7) == 512 * 1024

    def test_with_parallelism(self):
        c = DEFAULT_CONFIG.with_parallelism(4)
        assert c.parallelism == 4
        assert DEFAULT_CONFIG.parallelism == 16  # original untouched

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            HWConfig(parallelism=0)
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_parallelism(-1)

    def test_color_width_must_divide_block(self):
        with pytest.raises(ValueError):
            HWConfig(color_bits=24)

    def test_invalid_max_colors(self):
        with pytest.raises(ValueError):
            HWConfig(max_colors=0)


class TestOptimizationFlags:
    def test_none(self):
        f = OptimizationFlags.none()
        assert not (f.hdc or f.bwc or f.mgr or f.puv)
        assert f.label() == "BSL"

    def test_all(self):
        f = OptimizationFlags.all()
        assert f.hdc and f.bwc and f.mgr and f.puv
        assert f.label() == "HDC+BWC+MGR+PUV"

    def test_partial_label(self):
        assert OptimizationFlags(hdc=True, bwc=False, mgr=False, puv=True).label() == "HDC+PUV"

    def test_hashable(self):
        assert len({OptimizationFlags.none(), OptimizationFlags.all()}) == 2
