"""Whole-system integration scenarios with cross-checked accounting.

Each scenario runs the full accelerator under a stressed configuration
and checks that every independently-counted statistic is mutually
consistent — the kind of invariant that catches double-counting or
dropped events in the event loop.
"""

import numpy as np
import pytest

from repro.coloring import greedy_coloring_fast
from repro.graph import degree_based_grouping, rmat, road_grid, sort_edges
from repro.hw import (
    BitColorAccelerator,
    HWConfig,
    OptimizationFlags,
    pe_utilization,
)


def preprocess(g):
    return sort_edges(degree_based_grouping(g).graph)


@pytest.fixture(scope="module")
def ldv_heavy_run():
    """Big-ish power-law graph, tiny cache, wide machine, traced."""
    g = preprocess(rmat(10, 7, seed=61))
    cfg = HWConfig(parallelism=8, cache_bytes=2 * (g.num_vertices // 20))
    res = BitColorAccelerator(cfg).run(g, trace=True)
    return g, cfg, res


class TestLDVHeavyScenario:
    def test_correct(self, ldv_heavy_run):
        g, _, res = ldv_heavy_run
        assert np.array_equal(res.colors, greedy_coloring_fast(g))

    def test_edge_slot_conservation(self, ldv_heavy_run):
        g, _, res = ldv_heavy_run
        s = res.stats
        assert (
            s.cache_reads + s.ldv_reads + s.pruned_edges + s.conflicts
            == g.num_edges
        )

    def test_write_routing_matches_task_split(self, ldv_heavy_run):
        g, cfg, res = ldv_heavy_run
        s = res.stats
        v_t = cfg.v_t(g.num_vertices)
        assert s.cache_writes == v_t
        assert s.dram_writes == g.num_vertices - v_t
        assert s.hdv_tasks == v_t
        assert s.ldv_tasks == g.num_vertices - v_t

    def test_merged_subset_of_ldv(self, ldv_heavy_run):
        _, _, res = ldv_heavy_run
        assert 0 < res.stats.merged_reads < res.stats.ldv_reads

    def test_trace_consistent_with_stats(self, ldv_heavy_run):
        _, _, res = ldv_heavy_run
        t = res.trace
        assert t.makespan == res.stats.makespan_cycles
        assert sum(x.stall for x in t.tasks) == res.stats.stall_cycles
        assert sum(x.queue_delay for x in t.tasks) == res.stats.dram_queue_cycles
        assert sum(len(x.deferred_on) for x in t.tasks) == res.stats.conflicts

    def test_busy_cycles_bounded_by_makespan(self, ldv_heavy_run):
        _, cfg, res = ldv_heavy_run
        util = pe_utilization(res.trace)
        assert all(0 < u <= 1.0 for u in util.values())

    def test_makespan_within_work_bounds(self, ldv_heavy_run):
        """Makespan sits between perfect scaling and serial execution."""
        _, cfg, res = ldv_heavy_run
        s = res.stats
        assert s.makespan_cycles >= s.total_task_cycles / cfg.parallelism
        assert s.makespan_cycles <= s.total_task_cycles + s.stall_cycles + (
            s.dram_queue_cycles
        ) + 3 * res.colors.size  # dispatch gaps


class TestRoadScenario:
    def test_mgr_dominates_on_roads(self):
        """Road graphs: the merge buffer serves a solid share of LDV reads
        (the Fig 11 'MGR matters on RC/RP/RT' claim)."""
        g = preprocess(road_grid(40, 40, seed=62))
        cfg = HWConfig(parallelism=1, cache_bytes=2 * (g.num_vertices // 4))
        res = BitColorAccelerator(cfg).run(g)
        assert res.stats.merged_reads / max(res.stats.ldv_reads, 1) > 0.1

    def test_prune_break_saves_edge_blocks(self):
        g = preprocess(rmat(9, 8, seed=63))
        res = BitColorAccelerator(
            HWConfig(parallelism=1, cache_bytes=2 * g.num_vertices)
        ).run(g)
        assert res.stats.edge_blocks_saved > 0


class TestBSLParallelScenario:
    def test_bsl_parallel_still_exact(self):
        """Even with every optimization off and heavy DRAM contention the
        parallel machine reproduces sequential greedy."""
        g = preprocess(rmat(8, 6, seed=64))
        res = BitColorAccelerator(
            HWConfig(parallelism=8), OptimizationFlags.none()
        ).run(g)
        assert np.array_equal(res.colors, greedy_coloring_fast(g))
        assert res.stats.dram_queue_cycles > 0  # contention actually bit
