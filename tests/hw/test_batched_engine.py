"""Parity suite: the batched engine must be indistinguishable from the
event engine — byte-identical colorings, exactly equal stats (the batched
engine replays the schedule, so even the timing-dependent fields match),
and matching traces.

Layers, cheap to expensive:

1. small fixtures × all 16 flag combinations × P ∈ {1, 4} — exact;
2. hypothesis: arbitrary graphs / flags / parallelism / cache sizes;
3. all ten registry stand-ins at the paper settings (flags.all, P=16)
   — exact, plus a few stand-ins × flag subsets;
4. opt-in exhaustive matrix (every stand-in × every flag combination)
   behind ``BITCOLOR_FULL_PARITY=1``.
"""

import dataclasses
import itertools
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import DATASET_KEYS, load_dataset
from repro.experiments.runner import get_spec
from repro.graph import (
    CSRGraph,
    degree_based_grouping,
    powerlaw_cluster,
    rmat,
    road_grid,
    sort_edges,
)
from repro.hw import (
    BitColorAccelerator,
    DEFAULT_EPOCH_TASKS,
    HWConfig,
    OptimizationFlags,
    run_batched,
)

ALL_FLAG_COMBOS = [
    OptimizationFlags(hdc=h, bwc=b, mgr=m, puv=p)
    for h, b, m, p in itertools.product([False, True], repeat=4)
]


def preprocessed(g):
    return sort_edges(degree_based_grouping(g).graph)


@pytest.fixture(scope="module")
def small_graphs():
    raw = powerlaw_cluster(250, 5, 0.3, seed=7, name="raw")
    return {
        "raw": raw,  # unsorted rows exercise the per-row sortedness path
        "pre": preprocessed(raw),
        "rmat": preprocessed(rmat(8, 8, seed=3)),
        "road": preprocessed(road_grid(18, 18, seed=5)),
    }


def assert_parity(graph, cfg, flags, *, trace=False, epoch_size=None):
    ev = BitColorAccelerator(cfg, flags).run(graph, trace=trace)
    ba = BitColorAccelerator(
        cfg, flags, engine="batched", epoch_size=epoch_size
    ).run(graph, trace=trace)
    np.testing.assert_array_equal(ev.colors, ba.colors)
    assert ev.num_colors == ba.num_colors
    assert dataclasses.asdict(ev.stats) == dataclasses.asdict(ba.stats)
    if trace:
        assert ev.trace.tasks == ba.trace.tasks
    return ev, ba


# ----------------------------------------------------------------------
# Layer 1: fixtures × all flag combinations × parallelism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS, ids=lambda f: f.label())
@pytest.mark.parametrize("parallelism", [1, 4])
def test_all_flag_combos_exact(small_graphs, flags, parallelism):
    cfg = HWConfig(parallelism=parallelism, cache_bytes=256)
    for g in small_graphs.values():
        assert_parity(g, cfg, flags)


def test_trace_parity(small_graphs):
    cfg = HWConfig(parallelism=4, cache_bytes=256)
    assert_parity(small_graphs["pre"], cfg, OptimizationFlags.all(), trace=True)


@pytest.mark.parametrize("epoch_size", [1, 7, 64, 100000])
def test_epoch_boundaries_do_not_matter(small_graphs, epoch_size):
    cfg = HWConfig(parallelism=8, cache_bytes=512)
    assert_parity(
        small_graphs["pre"], cfg, OptimizationFlags.all(), epoch_size=epoch_size
    )


def test_empty_and_singleton_graphs():
    cfg = HWConfig(parallelism=4)
    for g in (CSRGraph.from_edge_list(0, []), CSRGraph.from_edge_list(1, [])):
        assert_parity(g, cfg, OptimizationFlags.all())


def test_engine_knob_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        BitColorAccelerator(engine="warp")
    acc = BitColorAccelerator(engine="batched")
    assert acc.engine == "batched"
    assert BitColorAccelerator().engine == "event"


def test_degenerate_dram_config_rejected(small_graphs):
    g = small_graphs["pre"]
    for cfg in (
        HWConfig(dram_stream_cycles=1),
        HWConfig(dram_read_occupancy_cycles=1),
    ):
        with pytest.raises(ValueError, match="engine='event'"):
            BitColorAccelerator(cfg, engine="batched").run(g)
        BitColorAccelerator(cfg).run(g)  # the event engine still accepts it


def test_max_colors_overflow_raises(small_graphs):
    cfg = HWConfig(parallelism=4, max_colors=3)
    flags = OptimizationFlags(hdc=True, bwc=False, mgr=True, puv=True)
    g = small_graphs["pre"]
    with pytest.raises(ValueError, match="needs color"):
        BitColorAccelerator(cfg, flags).run(g)
    with pytest.raises(ValueError, match="needs color"):
        BitColorAccelerator(cfg, flags, engine="batched").run(g)


def test_run_batched_direct_api(small_graphs):
    res = run_batched(
        small_graphs["pre"], HWConfig(parallelism=4), OptimizationFlags.all(),
        epoch_size=DEFAULT_EPOCH_TASKS,
    )
    assert res.num_colors > 0
    with pytest.raises(ValueError, match="epoch_size"):
        run_batched(
            small_graphs["pre"], HWConfig(), OptimizationFlags.all(), epoch_size=0
        )


# ----------------------------------------------------------------------
# Layer 2: property-based
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_vertices=40):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=120,
        )
    )
    return CSRGraph.from_edge_list(n, edges)


@st.composite
def flag_sets(draw):
    return OptimizationFlags(
        hdc=draw(st.booleans()),
        bwc=draw(st.booleans()),
        mgr=draw(st.booleans()),
        puv=draw(st.booleans()),
    )


@given(
    graph=graphs(),
    flags=flag_sets(),
    parallelism=st.sampled_from([1, 2, 3, 4, 16]),
    cache_bytes=st.sampled_from([2, 64, 1024]),
    epoch_size=st.sampled_from([1, 5, 4096]),
)
@settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_property_parity(graph, flags, parallelism, cache_bytes, epoch_size):
    cfg = HWConfig(parallelism=parallelism, cache_bytes=cache_bytes)
    assert_parity(graph, cfg, flags, epoch_size=epoch_size)


# ----------------------------------------------------------------------
# Layer 3: the registry stand-ins
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", DATASET_KEYS)
def test_standins_paper_settings_exact(key):
    g = load_dataset(key)
    cfg = get_spec(key).config_for(16, g.num_vertices)
    assert_parity(g, cfg, OptimizationFlags.all())


@pytest.mark.parametrize("key", ["EF", "RC", "CD"])
@pytest.mark.parametrize(
    "flags",
    [
        OptimizationFlags.none(),
        OptimizationFlags(hdc=True, bwc=False, mgr=True, puv=False),
        OptimizationFlags(hdc=False, bwc=True, mgr=False, puv=True),
    ],
    ids=lambda f: f.label(),
)
def test_standins_flag_subsets_exact(key, flags):
    g = load_dataset(key)
    cfg = get_spec(key).config_for(8, g.num_vertices)
    assert_parity(g, cfg, flags)


# ----------------------------------------------------------------------
# Native replay tier (repro.kernels.native): same parity contract as the
# Python recurrence; skips cleanly where no compiled backend is usable.
# ----------------------------------------------------------------------
from repro.kernels import native as native_kernels  # noqa: E402

needs_native = pytest.mark.skipif(
    not native_kernels.available(),
    reason=f"native tier unavailable: {native_kernels.unavailable_reason()}",
)


def assert_replay_parity(graph, cfg, flags, *, epoch_size=None):
    """Native replay vs Python replay on the batched engine: exact."""
    py = BitColorAccelerator(
        cfg, flags, engine="batched", epoch_size=epoch_size, replay="python"
    ).run(graph)
    na = BitColorAccelerator(
        cfg, flags, engine="batched", epoch_size=epoch_size, replay="native"
    ).run(graph)
    np.testing.assert_array_equal(py.colors, na.colors)
    assert py.num_colors == na.num_colors
    assert dataclasses.asdict(py.stats) == dataclasses.asdict(na.stats)


def test_replay_knob_validation():
    with pytest.raises(ValueError, match="unknown replay"):
        BitColorAccelerator(replay="fortran")
    acc = BitColorAccelerator(engine="batched", replay="native")
    assert acc.replay == "native"
    assert BitColorAccelerator().replay == "auto"


def test_run_batched_replay_validation(small_graphs):
    with pytest.raises(ValueError, match="unknown replay"):
        run_batched(
            small_graphs["pre"], HWConfig(), OptimizationFlags.all(),
            replay="fortran",
        )


def test_trace_with_explicit_native_replay_rejected(small_graphs):
    with pytest.raises(ValueError, match="replay='python'"):
        BitColorAccelerator(
            HWConfig(parallelism=4), engine="batched", replay="native"
        ).run(small_graphs["pre"], trace=True)


def test_trace_with_auto_replay_falls_back_to_python(small_graphs):
    # trace=True forces the Python recurrence under replay="auto"; the
    # trace must still match the event engine's, native tier or not.
    cfg = HWConfig(parallelism=4, cache_bytes=256)
    ev = BitColorAccelerator(cfg).run(small_graphs["pre"], trace=True)
    ba = BitColorAccelerator(cfg, engine="batched").run(
        small_graphs["pre"], trace=True
    )
    assert ev.trace.tasks == ba.trace.tasks


def test_native_replay_unavailable_falls_back_silently(
    small_graphs, monkeypatch
):
    # With the tier disabled, replay="native" must produce the same
    # result via the Python recurrence — no error, no divergence.
    monkeypatch.setenv("REPRO_NATIVE", "0")
    native_kernels.refresh()
    try:
        cfg = HWConfig(parallelism=4, cache_bytes=256)
        assert_replay_parity(small_graphs["pre"], cfg, OptimizationFlags.all())
    finally:
        native_kernels.refresh()


@needs_native
@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS, ids=lambda f: f.label())
@pytest.mark.parametrize("parallelism", [1, 4])
def test_native_replay_all_flag_combos_exact(small_graphs, flags, parallelism):
    cfg = HWConfig(parallelism=parallelism, cache_bytes=256)
    for g in small_graphs.values():
        assert_replay_parity(g, cfg, flags)


@needs_native
@pytest.mark.parametrize("epoch_size", [1, 7, 57, 64, 100000])
def test_native_replay_epoch_boundaries(small_graphs, epoch_size):
    cfg = HWConfig(parallelism=8, cache_bytes=512)
    assert_replay_parity(
        small_graphs["pre"], cfg, OptimizationFlags.all(),
        epoch_size=epoch_size,
    )


@needs_native
def test_native_replay_empty_and_singleton():
    cfg = HWConfig(parallelism=4)
    for g in (CSRGraph.from_edge_list(0, []), CSRGraph.from_edge_list(1, [])):
        assert_replay_parity(g, cfg, OptimizationFlags.all())


@needs_native
@given(
    graph=graphs(),
    flags=flag_sets(),
    parallelism=st.sampled_from([1, 2, 3, 4, 16]),
    cache_bytes=st.sampled_from([2, 64, 1024]),
    epoch_size=st.sampled_from([1, 5, 4096]),
)
@settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_native_replay_property_parity(
    graph, flags, parallelism, cache_bytes, epoch_size
):
    cfg = HWConfig(parallelism=parallelism, cache_bytes=cache_bytes)
    assert_replay_parity(graph, cfg, flags, epoch_size=epoch_size)


@needs_native
@pytest.mark.parametrize("key", DATASET_KEYS)
def test_native_replay_standins_exact(key):
    g = load_dataset(key)
    cfg = get_spec(key).config_for(16, g.num_vertices)
    assert_replay_parity(g, cfg, OptimizationFlags.all())


@needs_native
@pytest.mark.parametrize("key", ["EF", "CD"])
def test_native_auto_equals_event_engine(key):
    # Under replay="auto" the batched engine silently uses the compiled
    # recurrence when available; its results must still equal the event
    # engine exactly — the full three-way contract.
    g = load_dataset(key)
    cfg = get_spec(key).config_for(8, g.num_vertices)
    ev = BitColorAccelerator(cfg, OptimizationFlags.all()).run(g)
    au = BitColorAccelerator(
        cfg, OptimizationFlags.all(), engine="batched"
    ).run(g)
    np.testing.assert_array_equal(ev.colors, au.colors)
    assert dataclasses.asdict(ev.stats) == dataclasses.asdict(au.stats)


# ----------------------------------------------------------------------
# Layer 4: opt-in exhaustive matrix (slow; run before release)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    os.environ.get("BITCOLOR_FULL_PARITY") != "1",
    reason="exhaustive 10-dataset x 16-flag matrix; set BITCOLOR_FULL_PARITY=1",
)
@pytest.mark.parametrize("key", DATASET_KEYS)
@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS, ids=lambda f: f.label())
def test_full_parity_matrix(key, flags):
    g = load_dataset(key)
    cfg = get_spec(key).config_for(16, g.num_vertices)
    assert_parity(g, cfg, flags)
