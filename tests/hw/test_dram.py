"""Tests for the DRAM channel and color memory models."""

import numpy as np
import pytest

from repro.hw import ColorMemory, DRAMChannel, DRAMStats, HWConfig


@pytest.fixture
def cfg():
    return HWConfig(parallelism=1)


class TestDRAMChannel:
    def test_random_read_cost(self, cfg):
        ch = DRAMChannel(cfg)
        assert ch.read_block(10) == cfg.dram_read_occupancy_cycles
        assert ch.stats.random_reads == 1

    def test_stream_read_cost(self, cfg):
        ch = DRAMChannel(cfg)
        ch.read_block(5)
        assert ch.read_block(6) == cfg.dram_stream_cycles
        assert ch.read_block(7) == cfg.dram_stream_cycles
        assert ch.stats.stream_reads == 2

    def test_stream_broken_by_jump(self, cfg):
        ch = DRAMChannel(cfg)
        ch.read_block(5)
        ch.read_block(6)
        assert ch.read_block(100) == cfg.dram_read_occupancy_cycles

    def test_same_block_is_random(self, cfg):
        """Re-reading the same block is not a stream continuation; merge
        avoidance is the Color Loader's job."""
        ch = DRAMChannel(cfg)
        ch.read_block(5)
        assert ch.read_block(5) == cfg.dram_read_occupancy_cycles

    def test_end_stream(self, cfg):
        ch = DRAMChannel(cfg)
        ch.read_block(5)
        ch.end_stream()
        assert ch.read_block(6) == cfg.dram_read_occupancy_cycles

    def test_write_breaks_stream(self, cfg):
        ch = DRAMChannel(cfg)
        ch.read_block(5)
        assert ch.write_block(9) == cfg.dram_write_cycles
        assert ch.read_block(6) == cfg.dram_read_occupancy_cycles
        assert ch.stats.writes == 1

    def test_negative_block(self, cfg):
        ch = DRAMChannel(cfg)
        with pytest.raises(ValueError):
            ch.read_block(-1)
        with pytest.raises(ValueError):
            ch.write_block(-1)

    def test_stats_merge(self):
        a = DRAMStats(random_reads=1, stream_reads=2, writes=3, read_cycles=4, write_cycles=5)
        b = DRAMStats(random_reads=10, stream_reads=20, writes=30, read_cycles=40, write_cycles=50)
        m = a.merge(b)
        assert (m.random_reads, m.stream_reads, m.writes) == (11, 22, 33)
        assert m.total_reads == 33

    def test_reset(self, cfg):
        ch = DRAMChannel(cfg)
        ch.read_block(1)
        ch.reset()
        assert ch.stats.total_reads == 0
        assert ch.read_block(2) == cfg.dram_read_occupancy_cycles


class TestColorMemory:
    def test_read_write(self, cfg):
        m = ColorMemory(100, cfg)
        m.write(7, 42)
        assert m.read(7) == 42
        assert m.read(8) == 0

    def test_color_width_enforced(self, cfg):
        m = ColorMemory(10, cfg)
        with pytest.raises(ValueError):
            m.write(0, cfg.max_colors + 1)
        with pytest.raises(ValueError):
            m.write(0, -1)

    def test_block_decode(self, cfg):
        m = ColorMemory(100, cfg)
        # 32 colors per 512-bit block with 16-bit colors.
        assert m.block_of(0) == 0
        assert m.block_of(31) == 0
        assert m.block_of(32) == 1
        assert m.offset_of(33) == 1

    def test_read_many(self, cfg):
        m = ColorMemory(10, cfg)
        m.write(2, 5)
        out = m.read_many(np.array([2, 3]))
        assert out.tolist() == [5, 0]

    def test_snapshot_is_copy(self, cfg):
        m = ColorMemory(4, cfg)
        snap = m.snapshot()
        m.write(0, 9)
        assert snap[0] == 0
