"""Property tests for the MIS engine and the cycle-stepped simulator."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_coloring_fast
from repro.graph import CSRGraph
from repro.hw import CycleAccurateBWPE, HWConfig, OptimizationFlags
from repro.hw.mis_engine import BitwiseMISAccelerator, greedy_mis


@st.composite
def graphs(draw, max_vertices=24):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=60,
        )
    )
    return CSRGraph.from_edge_list(n, edges)


@st.composite
def flag_sets(draw):
    return OptimizationFlags(
        hdc=draw(st.booleans()),
        bwc=draw(st.booleans()),
        mgr=draw(st.booleans()),
        puv=draw(st.booleans()),
    )


common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(graphs(), st.sampled_from([1, 2, 4]), flag_sets(), st.integers(1, 30))
def test_mis_engine_equals_reference(g, p, flags, cache_vertices):
    cfg = HWConfig(parallelism=p, cache_bytes=2 * cache_vertices)
    res = BitwiseMISAccelerator(cfg, flags).run(g)
    assert np.array_equal(res.members, greedy_mis(g))


@common
@given(graphs())
def test_mis_is_independent_and_maximal(g):
    m = greedy_mis(g)
    for u, w in g.iter_edges():
        assert not (m[u] and m[w])
    for v in range(g.num_vertices):
        if not m[v]:
            assert m[g.neighbors(v)].any()


@common
@given(graphs(), flag_sets(), st.integers(1, 30))
def test_cycle_sim_equals_greedy(g, flags, cache_vertices):
    cfg = HWConfig(parallelism=1, cache_bytes=2 * cache_vertices)
    colors, stats = CycleAccurateBWPE(cfg, flags).run(g)
    assert np.array_equal(colors, greedy_coloring_fast(g))
    assert stats.cycles == sum(stats.by_phase.values())
