"""Memory-profile registry, eager validation, and DRAM bulk accounting.

Three contracts pinned here:

* the ``ddr4-u200`` profile *is* the historical ``HWConfig`` defaults —
  the golden fixture (captured from the tree before the profile layer
  existed) must reproduce byte-for-byte through ``mem.profile_config``;
* unknown profile / layout names fail eagerly, at construction, with
  the capability list in the message — never deep inside a run;
* ``DRAMStats`` bulk accounting (``stream_run``) and the logical→
  physical channel-sharing divisor behave at the edges (zero-length
  streams, single blocks, P > physical channels) on *every* registered
  profile, not just the default.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.experiments.datasets import REGISTRY, load_dataset
from repro.hw import (
    BitColorAccelerator,
    DRAMChannel,
    HWConfig,
    OptimizationFlags,
    mem,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "standin_stats_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

# The two smallest stand-ins keep the event engine affordable; batched
# covers the full suite.
EVENT_GOLDEN_KEYS = ("EF", "GD")


def _golden_config():
    """The fixture was captured with the all-defaults ``HWConfig()``;
    ``profile_config("ddr4-u200")`` must be that exact config."""
    return mem.profile_config("ddr4-u200")


class TestRegistry:
    def test_names_and_default(self):
        assert mem.profiles() == ("ddr4-u200", "hbm2")
        assert mem.DEFAULT_PROFILE == "ddr4-u200"
        assert mem.PROFILE_NAMES == mem.profiles()

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown memory profile 'gddr6'"):
            mem.get_profile("gddr6")

    def test_ddr4_is_the_hwconfig_defaults(self):
        """The default profile reproduces every historical DRAM field."""
        defaults = HWConfig()
        cfg = mem.profile_config("ddr4-u200")
        for f in dataclasses.fields(HWConfig):
            assert getattr(cfg, f.name) == getattr(defaults, f.name), f.name

    def test_hbm2_shape(self):
        prof = mem.get_profile("hbm2")
        assert prof.physical_channels == 32
        assert prof.block_bits == 256
        # The batched engine requires stream/occupancy cycles > 1.
        assert prof.stream_cycles > 1
        assert prof.read_occupancy_cycles > 1

    def test_profile_config_overrides(self):
        cfg = mem.profile_config(
            "hbm2", dram_physical_channels=8, parallelism=4
        )
        assert cfg.dram_physical_channels == 8
        assert cfg.parallelism == 4
        assert cfg.mem_profile == "hbm2"
        assert cfg.dram_block_bits == 256

    def test_describe_lists_every_profile(self):
        text = "\n".join(mem.describe())
        for name in mem.PROFILE_NAMES:
            assert name in text

    def test_hwconfig_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown memory profile"):
            HWConfig(mem_profile="gddr6")


class TestEagerValidation:
    def test_accelerator_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown memory profile"):
            BitColorAccelerator(mem_profile="gddr6")

    def test_accelerator_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            BitColorAccelerator(layout="csr5")

    def test_accelerator_profile_config_conflict(self):
        cfg = mem.profile_config("ddr4-u200")
        with pytest.raises(ValueError, match="conflict"):
            BitColorAccelerator(cfg, mem_profile="hbm2")

    def test_facade_unknown_profile(self, triangle):
        with pytest.raises(ValueError, match="unknown memory profile"):
            repro.color(triangle, backend="hw", mem_profile="gddr6")

    def test_facade_unknown_layout(self, triangle):
        with pytest.raises(ValueError, match="unknown layout"):
            repro.color(triangle, backend="hw", layout="csr5")

    def test_facade_profile_requires_hw_backend(self, triangle):
        with pytest.raises(ValueError, match="requires backend='hw'"):
            repro.color(triangle, mem_profile="hbm2")

    def test_facade_layout_requires_hw_backend(self, triangle):
        with pytest.raises(ValueError, match="requires backend='hw'"):
            repro.color(triangle, layout="delta-compressed")


class TestSharingDivisor:
    @pytest.mark.parametrize(
        "parallelism,channels,want",
        [(1, 1, 1), (4, 4, 1), (16, 4, 4), (16, 32, 1), (33, 32, 2),
         (64, 32, 2), (5, 4, 2)],
    )
    def test_ceil_division(self, parallelism, channels, want):
        assert mem.sharing_divisor(parallelism, channels) == want

    @pytest.mark.parametrize("parallelism,channels", [(0, 4), (4, 0), (-1, 4)])
    def test_rejects_non_positive(self, parallelism, channels):
        with pytest.raises(ValueError):
            mem.sharing_divisor(parallelism, channels)


@pytest.fixture(params=mem.PROFILE_NAMES)
def profile_cfg(request):
    return mem.profile_config(request.param, parallelism=1)


class TestDRAMBulkAccounting:
    """``stream_run`` edge cases, on every registered profile."""

    def test_zero_length_stream_is_free(self, profile_cfg):
        ch = DRAMChannel(profile_cfg)
        assert ch.stream_run(0) == 0
        assert ch.stats.stream_reads == 0
        assert ch.stats.read_cycles == 0

    def test_single_block_run(self, profile_cfg):
        ch = DRAMChannel(profile_cfg)
        assert ch.stream_run(1) == profile_cfg.dram_stream_cycles
        assert ch.stats.stream_reads == 1

    def test_bulk_matches_repeated_singles(self, profile_cfg):
        bulk = DRAMChannel(profile_cfg)
        bulk.stream_run(7)
        singles = DRAMChannel(profile_cfg)
        for _ in range(7):
            singles.stream_run(1)
        assert dataclasses.asdict(bulk.stats) == dataclasses.asdict(
            singles.stats
        )

    def test_negative_raises(self, profile_cfg):
        with pytest.raises(ValueError):
            DRAMChannel(profile_cfg).stream_run(-1)


class TestChannelSharingKnee:
    """Figure 12's knee: queueing appears exactly when P exceeds the
    profile's physical channel count."""

    @pytest.mark.parametrize("profile", mem.PROFILE_NAMES)
    def test_queue_cycles_appear_past_the_knee(self, profile):
        graph = load_dataset("CO")
        spec = REGISTRY["CO"]
        # A deliberately small HDV cache keeps the LDV read stream alive
        # so the channels are actually contended.
        cache_vertices = max(
            1, int(round(spec.hdv_fraction * graph.num_vertices * 0.1))
        )
        prof = mem.get_profile(profile)
        queue = {}
        for parallelism in (prof.physical_channels,
                            prof.physical_channels * 2):
            cfg = mem.profile_config(
                profile,
                parallelism=parallelism,
                cache_bytes=cache_vertices * 2,
            )
            stats = BitColorAccelerator(
                cfg, OptimizationFlags.all(), engine="batched"
            ).run(graph).stats
            queue[parallelism] = stats.dram_queue_cycles
        at_knee, past_knee = queue.values()
        assert at_knee == 0
        assert past_knee > 0


class TestGoldenReproduction:
    """``ddr4-u200`` must reproduce the pre-refactor accelerator stats
    byte-for-byte on every stand-in (batched engine; event on the two
    smallest).  The fixture was captured before the memory subsystem
    existed, so any drift here is a broken reproduction contract."""

    @pytest.mark.parametrize("key", sorted(GOLDEN["datasets"]))
    def test_batched_byte_for_byte(self, key):
        graph = load_dataset(key)
        expected = GOLDEN["datasets"][key]
        res = BitColorAccelerator(
            _golden_config(), OptimizationFlags.all(), engine="batched"
        ).run(graph)
        assert dataclasses.asdict(res.stats) == expected["stats"]
        assert int(res.colors.sum()) == expected["colors_sum"]
        assert res.num_colors == expected["num_colors"]

    @pytest.mark.parametrize("key", EVENT_GOLDEN_KEYS)
    def test_event_byte_for_byte(self, key):
        graph = load_dataset(key)
        expected = GOLDEN["datasets"][key]
        res = BitColorAccelerator(
            _golden_config(), OptimizationFlags.all(), engine="event"
        ).run(graph)
        assert dataclasses.asdict(res.stats) == expected["stats"]
        assert int(res.colors.sum()) == expected["colors_sum"]


class TestProfileLayoutParityMatrix:
    """Exact event-vs-batched parity must hold on every (profile x
    layout) cell — the engine contract does not bend for new memory
    models or edge encodings."""

    @pytest.mark.parametrize("profile", mem.PROFILE_NAMES)
    @pytest.mark.parametrize(
        "layout", ("plain", "degree-sorted", "delta-compressed")
    )
    def test_engines_agree(self, profile, layout, preprocessed_powerlaw):
        cfg = mem.profile_config(profile, parallelism=4, cache_bytes=256)
        runs = {
            engine: BitColorAccelerator(
                cfg, OptimizationFlags.all(), engine=engine, layout=layout
            ).run(preprocessed_powerlaw)
            for engine in ("event", "batched")
        }
        ev, ba = runs["event"], runs["batched"]
        assert np.array_equal(ev.colors, ba.colors)
        assert dataclasses.asdict(ev.stats) == dataclasses.asdict(ba.stats)
        assert ev.layout == ba.layout == layout
