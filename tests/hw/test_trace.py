"""Tests for the execution tracer and its views."""

import pytest

from repro.graph import degree_based_grouping, rmat, sort_edges
from repro.hw import (
    BitColorAccelerator,
    ExecutionTrace,
    HWConfig,
    TaskTrace,
    critical_path,
    pe_utilization,
    render_gantt,
)


@pytest.fixture(scope="module")
def traced_run():
    g = sort_edges(degree_based_grouping(rmat(8, 6, seed=17)).graph)
    cfg = HWConfig(parallelism=4, cache_bytes=2 * g.num_vertices)
    return g, BitColorAccelerator(cfg).run(g, trace=True)


class TestTraceCapture:
    def test_disabled_by_default(self):
        g = sort_edges(degree_based_grouping(rmat(6, 4, seed=1)).graph)
        res = BitColorAccelerator(HWConfig(parallelism=2)).run(g)
        assert res.trace is None

    def test_one_task_per_vertex(self, traced_run):
        g, res = traced_run
        assert len(res.trace.tasks) == g.num_vertices
        assert sorted(t.vertex for t in res.trace.tasks) == list(range(g.num_vertices))

    def test_makespan_matches_stats(self, traced_run):
        _, res = traced_run
        assert res.trace.makespan == res.stats.makespan_cycles

    def test_ascending_starts(self, traced_run):
        """The dispatcher's invariant is visible in the trace."""
        _, res = traced_run
        tasks = sorted(res.trace.tasks, key=lambda t: t.vertex)
        starts = [t.start for t in tasks]
        assert starts == sorted(starts)

    def test_no_overlap_on_one_pe(self, traced_run):
        _, res = traced_run
        for pe, tasks in res.trace.by_pe().items():
            for a, b in zip(tasks, tasks[1:]):
                assert a.finish <= b.start, f"overlap on PE {pe}"

    def test_deferred_on_points_to_earlier_vertices(self, traced_run):
        _, res = traced_run
        for t in res.trace.tasks:
            for dep in t.deferred_on:
                assert dep < t.vertex

    def test_task_of(self, traced_run):
        _, res = traced_run
        assert res.trace.task_of(0).vertex == 0
        assert res.trace.task_of(10**9) is None


class TestViews:
    def test_utilization_range(self, traced_run):
        _, res = traced_run
        util = pe_utilization(res.trace)
        assert set(util) == {0, 1, 2, 3}
        assert all(0.0 < u <= 1.0 for u in util.values())

    def test_gantt_renders(self, traced_run):
        _, res = traced_run
        out = render_gantt(res.trace, width=40)
        lines = out.splitlines()
        assert len(lines) == 5  # 4 PEs + axis
        assert "#" in lines[0]
        assert "cycles" in lines[-1]

    def test_gantt_empty(self):
        assert "empty" in render_gantt(ExecutionTrace())

    def test_critical_path(self, traced_run):
        _, res = traced_run
        path = critical_path(res.trace)
        assert path
        assert path[-1].finish == res.trace.makespan
        # Finish times ascend along the path.
        finishes = [t.finish for t in path]
        assert finishes == sorted(finishes)

    def test_critical_path_empty(self):
        assert critical_path(ExecutionTrace()) == []
