"""Tests for the Task Dispatch Unit (Section 4.6)."""

import pytest

from repro.hw import HWConfig, PEStateTable, TaskDispatchUnit


def make_dispatcher(n=20, v_t=8, p=4):
    return TaskDispatchUnit(HWConfig(parallelism=p), n, v_t)


class TestDispatchOrder:
    def test_ascending_invariant(self):
        d = make_dispatcher()
        order = []
        while True:
            nxt = d.next_task()
            if nxt is None:
                break
            order.append(nxt[0])
        assert order == list(range(20))

    def test_hdv_port_binding(self):
        """HDVs (v < v_t) go to PE v % P — the multi-port cache pattern."""
        d = make_dispatcher(n=20, v_t=8, p=4)
        for _ in range(8):
            v, pe = d.next_task()
            assert v < 8
            assert pe == v % 4

    def test_ldv_unbound(self):
        d = make_dispatcher(n=20, v_t=8, p=4)
        for _ in range(8):
            d.next_task()
        for _ in range(12):
            v, pe = d.next_task()
            assert v >= 8
            assert pe == -1  # event loop picks the first idle PE

    def test_exhaustion(self):
        d = make_dispatcher(n=3, v_t=0, p=2)
        for _ in range(3):
            assert d.next_task() is not None
        assert d.next_task() is None
        assert d.exhausted

    def test_peek(self):
        d = make_dispatcher(n=5, v_t=5, p=2)
        assert d.peek_next_vertex() == 0
        d.next_task()
        assert d.peek_next_vertex() == 1

    def test_all_hdv(self):
        d = make_dispatcher(n=6, v_t=6, p=2)
        seen = [d.next_task() for _ in range(6)]
        assert [v for v, _ in seen] == list(range(6))
        assert all(pe == v % 2 for v, pe in seen)

    def test_stats(self):
        d = make_dispatcher(n=20, v_t=8, p=4)
        while d.next_task() is not None:
            pass
        assert d.stats.hdv_tasks == 8
        assert d.stats.ldv_tasks == 12
        assert d.stats.offset_fetches == 20


class TestPEStateTable:
    def test_start_complete_cycle(self):
        pst = PEStateTable(3)
        pst.start(1, vertex=7, seq=7)
        assert pst.running_tasks() == [(1, 7, 7)]
        assert pst.idle_pes() == [0, 2]
        pst.complete(1)
        assert pst.running_tasks() == []

    def test_double_start_rejected(self):
        pst = PEStateTable(2)
        pst.start(0, 1, 1)
        with pytest.raises(RuntimeError, match="already running"):
            pst.start(0, 2, 2)

    def test_complete_idle_rejected(self):
        pst = PEStateTable(2)
        with pytest.raises(RuntimeError, match="not running"):
            pst.complete(0)
