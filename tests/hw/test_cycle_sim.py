"""Cross-validation: cycle-stepped BWPE vs the task-level model."""

import numpy as np
import pytest

from repro.coloring import greedy_coloring_fast
from repro.graph import degree_based_grouping, rmat, road_grid, sort_edges
from repro.hw import BitColorAccelerator, HWConfig, OptimizationFlags
from repro.hw.cycle_sim import CycleAccurateBWPE, CyclePhase


def preprocess(g):
    return sort_edges(degree_based_grouping(g).graph)


@pytest.fixture(scope="module")
def graphs():
    return {
        "powerlaw": preprocess(rmat(8, 5, seed=51)),
        "road": preprocess(road_grid(16, 16, seed=52)),
    }


class TestFunctional:
    @pytest.mark.parametrize("name", ["powerlaw", "road"])
    def test_matches_sequential_greedy(self, graphs, name):
        g = graphs[name]
        colors, _ = CycleAccurateBWPE(HWConfig(parallelism=1)).run(g)
        assert np.array_equal(colors, greedy_coloring_fast(g))

    @pytest.mark.parametrize(
        "flags",
        [
            OptimizationFlags.none(),
            OptimizationFlags(hdc=True, bwc=True, mgr=False, puv=False),
            OptimizationFlags.all(),
        ],
        ids=lambda f: f.label(),
    )
    def test_flags_never_change_colors(self, graphs, flags):
        g = graphs["powerlaw"]
        colors, _ = CycleAccurateBWPE(HWConfig(parallelism=1), flags).run(g)
        assert np.array_equal(colors, greedy_coloring_fast(g))


class TestCrossValidation:
    @pytest.mark.parametrize("name", ["powerlaw", "road"])
    @pytest.mark.parametrize(
        "flags",
        [OptimizationFlags.none(), OptimizationFlags.all()],
        ids=lambda f: f.label(),
    )
    def test_cycle_counts_agree_with_task_model(self, graphs, name, flags):
        """The task-granular model and the cycle-stepped model must agree
        on total cycles within a band — they share constants but count
        completely independently."""
        g = graphs[name]
        cfg = HWConfig(parallelism=1, cache_bytes=2 * g.num_vertices)
        task_model = BitColorAccelerator(cfg, flags).run(g)
        _, cyc = CycleAccurateBWPE(cfg, flags).run(g)
        ratio = cyc.cycles / max(task_model.stats.makespan_cycles, 1)
        assert 0.6 < ratio < 1.7, (
            f"{name}/{flags.label()}: cycle-sim {cyc.cycles} vs "
            f"task model {task_model.stats.makespan_cycles}"
        )


class TestPhaseHistogram:
    def test_phases_partition_cycles(self, graphs):
        _, stats = CycleAccurateBWPE(HWConfig(parallelism=1)).run(graphs["powerlaw"])
        assert sum(stats.by_phase.values()) == stats.cycles

    def test_bsl_is_dram_bound(self, graphs):
        """Without any optimization, DRAM wait dominates — the Fig 11
        premise at cycle granularity."""
        _, stats = CycleAccurateBWPE(
            HWConfig(parallelism=1), OptimizationFlags.none()
        ).run(graphs["powerlaw"])
        assert stats.fraction(CyclePhase.DRAM_WAIT) > 0.4

    def test_optimized_is_not_dram_bound(self, graphs):
        """Fully optimized on a cache-resident graph: DRAM waits vanish."""
        g = graphs["powerlaw"]
        cfg = HWConfig(parallelism=1, cache_bytes=2 * g.num_vertices)
        _, stats = CycleAccurateBWPE(cfg).run(g)
        assert stats.fraction(CyclePhase.DRAM_WAIT) < 0.05
        assert stats.fraction(CyclePhase.PROCESS) > 0.2

    def test_bwc_shrinks_finalize(self, graphs):
        g = graphs["powerlaw"]
        cfg = HWConfig(parallelism=1, cache_bytes=2 * g.num_vertices)
        _, with_bwc = CycleAccurateBWPE(cfg).run(g)
        _, no_bwc = CycleAccurateBWPE(
            cfg, OptimizationFlags(hdc=True, bwc=False, mgr=True, puv=True)
        ).run(g)
        assert (
            with_bwc.by_phase.get(CyclePhase.FINALIZE, 0)
            < no_bwc.by_phase.get(CyclePhase.FINALIZE, 0)
        )
