"""Tests for the Writer module (result routing + DCT forwarding)."""

import numpy as np
import pytest

from repro.hw import (
    BWPE,
    BitSelectMultiPortCache,
    ColorLoader,
    ColorMemory,
    DataConflictTable,
    DRAMChannel,
    HDVColorCache,
    HWConfig,
    OptimizationFlags,
    Writer,
)
from repro.hw.bwpe import TaskExecution


def make_system(p=2, v_t=50, n=100, flags=None):
    cfg = HWConfig(parallelism=p, cache_bytes=4096)
    flags = flags or OptimizationFlags.all()
    channels = [DRAMChannel(cfg) for _ in range(p)]
    mem = ColorMemory(n, cfg)
    cache = HDVColorCache(cfg, v_t) if flags.hdc else None
    multiport = BitSelectMultiPortCache(v_t, p) if flags.hdc and p > 1 else None
    pes = [
        BWPE(
            i, cfg, flags,
            cache=cache,
            loader=ColorLoader(cfg, channels[i], mem, enable_merge=flags.mgr),
            channel=channels[i],
            dct=DataConflictTable(i, p),
        )
        for i in range(p)
    ]
    writer = Writer(
        cfg, flags, cache=cache, multiport=multiport, memory=mem,
        channels=channels, v_t=v_t,
    )
    return writer, pes, cache, mem, multiport


def task_for(v, color, seq=None):
    t = TaskExecution(v_src=v, seq=seq if seq is not None else v)
    t.color = color
    t.color_bits = 1 << (color - 1)
    return t


class TestRouting:
    def test_hdv_goes_to_cache(self):
        writer, pes, cache, mem, mp = make_system()
        cycles = writer.write_back(0, task_for(10, 3), pes)
        assert cache.read(10) == 3
        assert mem.read(10) == 0
        assert cycles == 1
        assert writer.stats.cache_writes == 1

    def test_ldv_goes_to_dram(self):
        writer, pes, cache, mem, mp = make_system()
        cycles = writer.write_back(1, task_for(75, 2), pes)
        assert mem.read(75) == 2
        assert cycles == writer.config.dram_write_cycles
        assert writer.stats.dram_writes == 1

    def test_hdc_off_everything_to_dram(self):
        writer, pes, cache, mem, mp = make_system(
            flags=OptimizationFlags(hdc=False, bwc=True, mgr=True, puv=True)
        )
        writer.write_back(0, task_for(10, 3), pes)
        assert mem.read(10) == 3

    def test_multiport_port_discipline_checked(self):
        """An HDV whose home PE doesn't match its residue class trips the
        physical model's port check — catching scheduler bugs."""
        writer, pes, cache, mem, mp = make_system(p=2)
        from repro.hw import PortViolation

        # Vertex 11 has residue 1; writing it is fine regardless of which
        # PE reports completion (the port is derived from the vertex).
        writer.write_back(0, task_for(11, 1), pes)
        assert mp.read(0, 11) == 1


class TestForwarding:
    def test_result_forwarded_to_waiting_peer(self):
        writer, pes, cache, mem, mp = make_system(p=2)
        # PE1 is coloring vertex 10; PE0's DCT snapshot knows that.
        pes[0].dct.set_peer_task(1, 10, seq=0)
        pes[0].dct.check(10, my_seq=5)
        writer.write_back(1, task_for(10, 2), pes)
        assert pes[0].dct.all_flagged_valid()
        assert pes[0].dct.gather_conflict_bits() == 0b10
        assert writer.stats.forwards == 1

    def test_no_forward_when_vertex_differs(self):
        writer, pes, cache, mem, mp = make_system(p=2)
        pes[0].dct.set_peer_task(1, 99, seq=0)
        writer.write_back(1, task_for(10, 2), pes)
        assert writer.stats.forwards == 0

    def test_ldv_write_invalidates_merge_buffers(self):
        writer, pes, cache, mem, mp = make_system()
        # PE0's loader holds the block of vertex 75.
        mem.write(74, 7)
        pes[0].loader.load(74)
        writer.write_back(1, task_for(75, 3), pes)
        color, cycles = pes[0].loader.load(75)
        assert color == 3
        assert cycles > 1  # stale block was dropped
