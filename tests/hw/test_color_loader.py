"""Tests for the Color Loader and DRAM read merging (Section 4.5)."""

import pytest

from repro.hw import ColorLoader, ColorMemory, DRAMChannel, HWConfig


@pytest.fixture
def cfg():
    return HWConfig(parallelism=1)


def make_loader(cfg, n=200, merge=True):
    ch = DRAMChannel(cfg)
    mem = ColorMemory(n, cfg)
    return ColorLoader(cfg, ch, mem, enable_merge=merge), ch, mem


class TestMerging:
    def test_same_block_merges(self, cfg):
        loader, ch, mem = make_loader(cfg)
        mem.write(70, 5)
        mem.write(76, 9)
        c1, cy1 = loader.load(70)  # block 2 (70 // 32)
        c2, cy2 = loader.load(76)  # same block -> merged
        assert (c1, c2) == (5, 9)
        assert cy1 > cy2 == 1
        assert loader.stats.merged == 1
        assert loader.stats.dram_reads == 1

    def test_paper_example_indices(self, cfg):
        """Figure 9's spirit: ascending indices 30, 70, 76 — the third
        access shares block 2 (70//32 == 76//32) and saves a DRAM read."""
        loader, ch, mem = make_loader(cfg)
        for v in (30, 70, 76):
            loader.load(v)
        assert loader.stats.requests == 3
        assert loader.stats.dram_reads == 2
        assert loader.stats.merged == 1

    def test_merge_persists_across_tasks(self, cfg):
        """The last-request buffer survives reset_stream (a new vertex)."""
        loader, ch, mem = make_loader(cfg)
        loader.load(70)
        loader.reset_stream()
        _, cy = loader.load(71)
        assert cy == 1

    def test_block_change_breaks_merge(self, cfg):
        loader, ch, mem = make_loader(cfg)
        loader.load(70)
        loader.load(150)
        _, cy = loader.load(70)
        assert cy > 1

    def test_merge_disabled(self, cfg):
        loader, ch, mem = make_loader(cfg, merge=False)
        loader.load(70)
        _, cy = loader.load(71)
        assert cy > 1
        assert loader.stats.merged == 0
        assert loader.stats.dram_reads == 2


class TestInvalidation:
    def test_stale_block_dropped_on_write(self, cfg):
        loader, ch, mem = make_loader(cfg)
        mem.write(70, 5)
        loader.load(70)
        mem.write(71, 8)       # writer updates a color in the merged block
        loader.invalidate(71)
        color, cy = loader.load(71)
        assert color == 8
        assert cy > 1  # re-fetched, not served stale

    def test_other_block_write_keeps_merge(self, cfg):
        loader, ch, mem = make_loader(cfg)
        loader.load(70)
        loader.invalidate(200)  # different block
        _, cy = loader.load(71)
        assert cy == 1


class TestStats:
    def test_request_accounting(self, cfg):
        loader, ch, mem = make_loader(cfg)
        for v in (0, 1, 2, 40, 41):
            loader.load(v)
        s = loader.stats
        assert s.requests == 5
        assert s.dram_reads + s.merged == 5

    def test_stats_merge(self, cfg):
        from repro.hw.color_loader import LoaderStats

        a = LoaderStats(requests=1, dram_reads=2, merged=3)
        b = LoaderStats(requests=10, dram_reads=20, merged=30)
        m = a.merge(b)
        assert (m.requests, m.dram_reads, m.merged) == (11, 22, 33)
