"""Tests for the bit-wise processing engine."""

import numpy as np
import pytest

from repro.hw import (
    BWPE,
    ColorLoader,
    ColorMemory,
    DataConflictTable,
    DRAMChannel,
    HDVColorCache,
    HWConfig,
    OptimizationFlags,
)


def make_engine(
    *,
    n=200,
    v_t=100,
    flags=None,
    parallelism=2,
    pe_id=0,
    cache_colors=None,
    mem_colors=None,
    max_colors=1024,
):
    cfg = HWConfig(parallelism=parallelism, cache_bytes=4096, max_colors=max_colors)
    flags = flags or OptimizationFlags.all()
    ch = DRAMChannel(cfg)
    mem = ColorMemory(n, cfg)
    cache = HDVColorCache(cfg, v_t) if flags.hdc else None
    loader = ColorLoader(cfg, ch, mem, enable_merge=flags.mgr)
    dct = DataConflictTable(pe_id, parallelism)
    pe = BWPE(pe_id, cfg, flags, cache=cache, loader=loader, channel=ch, dct=dct)
    for v, c in (cache_colors or {}).items():
        cache.write(v, c)
    for v, c in (mem_colors or {}).items():
        mem.write(v, c)
    return pe, cfg


def run_vertex(pe, v_src, neighbors, v_t=100, seq=None):
    task = pe.traverse(
        v_src, np.asarray(neighbors, dtype=np.int64), seq if seq is not None else v_src, v_t
    )
    return pe.finalize()


class TestFunctional:
    def test_first_free_from_cache(self):
        pe, _ = make_engine(cache_colors={1: 1, 2: 2, 3: 1})
        task = run_vertex(pe, 50, [1, 2, 3])
        assert task.color == 3
        assert task.color_bits == 0b100

    def test_no_colored_neighbors(self):
        pe, _ = make_engine()
        task = run_vertex(pe, 50, [1, 2])
        assert task.color == 1

    def test_isolated_vertex(self):
        pe, _ = make_engine()
        task = run_vertex(pe, 50, [])
        assert task.color == 1
        assert task.neighbors_total == 0

    def test_mixed_cache_and_dram(self):
        pe, _ = make_engine(cache_colors={10: 1}, mem_colors={150: 2})
        task = run_vertex(pe, 160, [10, 150])
        assert task.color == 3
        assert task.cache_reads == 1
        assert task.ldv_reads == 1

    def test_same_result_any_flag_combination(self):
        """Optimizations never change the color, only the work."""
        neighbor_colors = {1: 2, 2: 1, 3: 4}
        expected = 3
        for hdc in (False, True):
            for bwc in (False, True):
                for mgr in (False, True):
                    flags = OptimizationFlags(hdc=hdc, bwc=bwc, mgr=mgr, puv=False)
                    pe, _ = make_engine(
                        flags=flags,
                        cache_colors=neighbor_colors if hdc else None,
                        mem_colors=neighbor_colors,
                    )
                    task = run_vertex(pe, 50, [1, 2, 3])
                    assert task.color == expected, flags.label()


class TestPruning:
    def test_prune_skips_uncolored(self):
        pe, _ = make_engine(cache_colors={1: 1})
        task = run_vertex(pe, 50, [1, 60, 70])
        assert task.pruned == 2
        assert task.neighbors_processed == 1

    def test_sorted_break_saves_edge_blocks(self):
        """With ascending neighbours, the first pruned vertex prunes the
        rest without streaming their edge blocks."""
        pe, cfg = make_engine()
        nbrs = [1] + list(range(60, 60 + 64))  # 65 edges: 5 blocks of 16
        task = run_vertex(pe, 50, nbrs)
        assert task.pruned == 64
        assert task.edge_blocks_fetched == 1
        assert task.edge_blocks_saved > 0

    def test_unsorted_no_break(self):
        pe, _ = make_engine()
        task = run_vertex(pe, 50, [60, 1, 70, 2])
        # All four consumed; two pruned individually.
        assert task.pruned == 2
        assert task.edge_blocks_saved == 0

    def test_puv_off_processes_uncolored(self):
        pe, _ = make_engine(flags=OptimizationFlags(puv=False))
        task = run_vertex(pe, 50, [60, 70])
        assert task.pruned == 0
        assert task.neighbors_processed == 2


class TestConflicts:
    def test_deferred_peer_recorded(self):
        pe, _ = make_engine()
        pe.dct.set_peer_task(1, 30, seq=10)
        task = pe.traverse(40, np.array([30]), seq=20, v_t=100)
        assert task.deferred_peers == [1]
        # Not fetched from memory.
        assert task.cache_reads == 0 and task.ldv_reads == 0

    def test_finalize_without_delivery_raises(self):
        from repro.hw import ConflictProtocolError

        pe, _ = make_engine()
        pe.dct.set_peer_task(1, 30, seq=10)
        pe.traverse(40, np.array([30]), seq=20, v_t=100)
        with pytest.raises(ConflictProtocolError):
            pe.finalize()

    def test_conflict_bits_fold_into_color(self):
        pe, _ = make_engine(cache_colors={5: 1})
        pe.dct.set_peer_task(1, 30, seq=10)
        pe.traverse(40, np.array([5, 30]), seq=20, v_t=100)
        pe.dct.deliver_result(1, 0b10)  # peer took color 2
        task = pe.finalize()
        assert task.color == 3

    def test_later_peer_not_deferred(self):
        pe, _ = make_engine()
        pe.dct.set_peer_task(1, 30, seq=99)
        task = pe.traverse(40, np.array([30]), seq=20, v_t=100)
        assert task.deferred_peers == []
        fin = pe.finalize()
        assert fin.color == 1  # treated as uncolored


class TestCycleAccounting:
    def test_bwc_stage1_constant(self):
        """BWC: one AND-NOT cycle + the 3-cycle compressor, independent of
        how many colors are in play."""
        cost = {}
        for k in (2, 20):
            pe, cfg = make_engine(cache_colors={i: i for i in range(1, k + 1)})
            t0 = pe.traverse(50, np.arange(1, k + 1), seq=50, v_t=100)
            trav = t0.compute_cycles
            task = pe.finalize()
            cost[k] = task.compute_cycles - trav
        assert cost[2] == cost[20] == 1 + 3

    def test_bsl_stage1_scales_with_colors(self):
        flags = OptimizationFlags(hdc=True, bwc=False, mgr=False, puv=False)
        cost = {}
        for k in (2, 20):
            pe, _ = make_engine(flags=flags, cache_colors={i: i for i in range(1, k + 1)})
            t0 = pe.traverse(50, np.arange(1, k + 1), seq=50, v_t=100)
            trav = t0.compute_cycles
            task = pe.finalize()
            cost[k] = task.compute_cycles - trav
        assert cost[20] > cost[2]

    def test_cache_read_costs_one_cycle(self):
        pe, cfg = make_engine(cache_colors={1: 1})
        task = run_vertex(pe, 50, [1])
        assert task.dram_cycles == pytest.approx(
            task.edge_blocks_fetched * cfg.dram_stream_cycles
        )

    def test_ldv_read_adds_dram_cycles(self):
        pe, cfg = make_engine(mem_colors={150: 1})
        task = run_vertex(pe, 160, [150])
        assert task.dram_cycles > task.edge_blocks_fetched * cfg.dram_stream_cycles

    def test_setup_cost_charged(self):
        pe, cfg = make_engine()
        task = run_vertex(pe, 50, [])
        assert task.compute_cycles >= cfg.task_setup_cycles


class TestProtocol:
    def test_traverse_while_busy_raises(self):
        pe, _ = make_engine()
        pe.traverse(50, np.array([1]), seq=50, v_t=100)
        with pytest.raises(RuntimeError, match="in flight"):
            pe.traverse(51, np.array([1]), seq=51, v_t=100)

    def test_finalize_without_task_raises(self):
        pe, _ = make_engine()
        with pytest.raises(RuntimeError, match="no task"):
            pe.finalize()

    def test_busy_flag(self):
        pe, _ = make_engine()
        assert not pe.busy
        pe.traverse(50, np.array([]), seq=50, v_t=100)
        assert pe.busy
        pe.finalize()
        assert not pe.busy

    def test_color_overflow_raises(self):
        """Neighbours occupy all 16 colors; the 17th exceeds max_colors."""
        pe, _ = make_engine(
            max_colors=16, cache_colors={i: i for i in range(1, 17)}
        )
        pe.traverse(50, np.arange(1, 17), seq=50, v_t=100)
        with pytest.raises(ValueError, match="color"):
            pe.finalize()
