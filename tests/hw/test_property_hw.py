"""Property-based tests of the accelerator: for arbitrary graphs, cache
sizes, parallelism and flag settings, the parallel simulation equals
sequential greedy and stats stay consistent."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring import greedy_coloring_fast
from repro.graph import CSRGraph
from repro.hw import BitColorAccelerator, HWConfig, OptimizationFlags


@st.composite
def graphs(draw, max_vertices=30):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=80,
        )
    )
    return CSRGraph.from_edge_list(n, edges)


@st.composite
def flag_sets(draw):
    return OptimizationFlags(
        hdc=draw(st.booleans()),
        bwc=draw(st.booleans()),
        mgr=draw(st.booleans()),
        puv=draw(st.booleans()),
    )


common = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(graphs(), st.sampled_from([1, 2, 3, 4, 8]), flag_sets(), st.integers(1, 40))
def test_accelerator_equals_greedy(g, p, flags, cache_vertices):
    cfg = HWConfig(parallelism=p, cache_bytes=2 * cache_vertices)
    res = BitColorAccelerator(cfg, flags).run(g)
    assert np.array_equal(res.colors, greedy_coloring_fast(g))


@common
@given(graphs(), st.sampled_from([2, 4]))
def test_stats_consistency(g, p):
    cfg = HWConfig(parallelism=p, cache_bytes=2 * 16)
    res = BitColorAccelerator(cfg).run(g)
    s = res.stats
    assert s.hdv_tasks + s.ldv_tasks == g.num_vertices
    # Every edge slot is pruned, deferred, cached, or read from DRAM.
    processed = s.cache_reads + s.ldv_reads + s.pruned_edges + s.conflicts
    assert processed == g.num_edges
    assert s.merged_reads <= s.ldv_reads
    assert s.makespan_cycles >= 0
    assert s.compute_cycles > 0 or g.num_vertices == 0


@common
@given(graphs())
def test_parallelism_never_changes_colors(g):
    base = None
    for p in (1, 4):
        res = BitColorAccelerator(HWConfig(parallelism=p, cache_bytes=64)).run(g)
        if base is None:
            base = res.colors
        else:
            assert np.array_equal(base, res.colors)
