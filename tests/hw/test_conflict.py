"""Tests for the Data Conflict Table protocol (Section 4.3)."""

import pytest

from repro.hw import ConflictProtocolError, DataConflictTable


@pytest.fixture
def dct():
    return DataConflictTable(pe_id=1, num_pes=4)


class TestSetup:
    def test_entries_exclude_self(self, dct):
        assert set(dct.entries.keys()) == {0, 2, 3}

    def test_invalid_pe(self):
        with pytest.raises(ValueError):
            DataConflictTable(pe_id=4, num_pes=4)

    def test_untracked_peer(self, dct):
        with pytest.raises(ConflictProtocolError):
            dct.set_peer_task(1, 5, 0)  # own id is not a peer


class TestDetection:
    def test_no_conflict_when_vertex_not_running(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        assert not dct.check(11, my_seq=5)

    def test_conflict_detected_and_flagged(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        assert dct.check(10, my_seq=5)
        assert dct.entries[0].conflict_flag
        assert dct.conflicts_detected == 1

    def test_later_peer_ignored(self, dct):
        """A peer whose task was dispatched after ours is not deferred on —
        it will defer on us instead."""
        dct.set_peer_task(0, 10, seq=9)
        assert not dct.check(10, my_seq=5)

    def test_repeat_check_counts_once(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.check(10, my_seq=5)
        dct.check(10, my_seq=5)
        assert dct.conflicts_detected == 1


class TestGather:
    def test_gather_after_delivery(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.set_peer_task(2, 11, seq=1)
        dct.check(10, my_seq=5)
        dct.check(11, my_seq=5)
        dct.deliver_result(0, 0b001)
        dct.deliver_result(2, 0b100)
        assert dct.all_flagged_valid()
        assert dct.gather_conflict_bits() == 0b101

    def test_gather_before_valid_raises(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.check(10, my_seq=5)
        assert not dct.all_flagged_valid()
        with pytest.raises(ConflictProtocolError, match="before"):
            dct.gather_conflict_bits()

    def test_gather_ignores_unflagged(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.deliver_result(0, 0b111)
        assert dct.gather_conflict_bits() == 0  # never flagged

    def test_empty_gather(self, dct):
        assert dct.gather_conflict_bits() == 0


class TestLifecycle:
    def test_deliver_without_task_raises(self, dct):
        with pytest.raises(ConflictProtocolError, match="no task"):
            dct.deliver_result(0, 0b1)

    def test_clear_peer_task(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.clear_peer_task(0)
        assert not dct.check(10, my_seq=5)

    def test_reset_flags(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.check(10, my_seq=5)
        dct.reset_flags()
        assert dct.flagged() == []
        # Entry itself survives; re-check re-flags.
        assert dct.check(10, my_seq=5)

    def test_new_task_resets_entry(self, dct):
        dct.set_peer_task(0, 10, seq=0)
        dct.check(10, my_seq=5)
        dct.deliver_result(0, 0b1)
        dct.set_peer_task(0, 20, seq=7)
        e = dct.entries[0]
        assert e.vertex == 20 and not e.valid and e.color_bits == 0
        assert not e.conflict_flag

    def test_single_pe_has_empty_table(self):
        d = DataConflictTable(0, 1)
        assert d.entries == {}
        assert not d.check(5, my_seq=1)
