"""End-to-end tests for the BitColor accelerator simulator.

The load-bearing invariant: for every graph, parallelism and optimization
setting, the accelerator's coloring equals the sequential greedy coloring
in ascending vertex order, and is therefore proper.
"""

import numpy as np
import pytest

from repro.coloring import assert_proper_coloring, greedy_coloring_fast
from repro.graph import (
    complete_graph,
    cycle_graph,
    degree_based_grouping,
    erdos_renyi,
    rmat,
    road_grid,
    sort_edges,
    star_graph,
)
from repro.hw import BitColorAccelerator, HWConfig, OptimizationFlags


def preprocess(g):
    return sort_edges(degree_based_grouping(g).graph)


def small_cfg(p=4, cache_vertices=4096):
    return HWConfig(parallelism=p, cache_bytes=cache_vertices * 2)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_sequential_greedy(self, p, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(p)).run(preprocessed_powerlaw)
        assert np.array_equal(res.colors, greedy_coloring_fast(preprocessed_powerlaw))

    @pytest.mark.parametrize(
        "flags",
        [
            OptimizationFlags.none(),
            OptimizationFlags(hdc=True, bwc=False, mgr=False, puv=False),
            OptimizationFlags(hdc=True, bwc=True, mgr=False, puv=False),
            OptimizationFlags(hdc=True, bwc=True, mgr=True, puv=False),
            OptimizationFlags.all(),
        ],
        ids=lambda f: f.label(),
    )
    def test_every_flag_combination(self, flags, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(2), flags).run(preprocessed_powerlaw)
        assert np.array_equal(res.colors, greedy_coloring_fast(preprocessed_powerlaw))

    def test_road_graph(self, small_grid):
        g = preprocess(small_grid)
        res = BitColorAccelerator(small_cfg(4)).run(g)
        assert np.array_equal(res.colors, greedy_coloring_fast(g))

    def test_unpreprocessed_graph_still_correct(self, medium_powerlaw):
        """Without DBG the performance story changes but never correctness."""
        res = BitColorAccelerator(small_cfg(4)).run(medium_powerlaw)
        assert np.array_equal(res.colors, greedy_coloring_fast(medium_powerlaw))

    def test_partial_cache(self, preprocessed_powerlaw):
        """Cache covering only some vertices: HDV/LDV split is exercised."""
        cfg = HWConfig(parallelism=4, cache_bytes=2 * 64)  # 64 HDVs only
        res = BitColorAccelerator(cfg).run(preprocessed_powerlaw)
        assert np.array_equal(res.colors, greedy_coloring_fast(preprocessed_powerlaw))
        assert res.stats.ldv_reads > 0
        assert res.stats.cache_reads > 0

    def test_dense_conflict_storm(self):
        """Complete graph: every concurrent pair conflicts; the DCT chain
        must serialize them correctly."""
        g = preprocess(complete_graph(24))
        res = BitColorAccelerator(small_cfg(8)).run(g)
        assert res.num_colors == 24
        assert res.stats.conflicts > 0

    def test_star(self):
        g = preprocess(star_graph(40))
        res = BitColorAccelerator(small_cfg(4)).run(g)
        assert res.num_colors == 2

    def test_cycle(self):
        g = preprocess(cycle_graph(33))
        res = BitColorAccelerator(small_cfg(4)).run(g)
        assert_proper_coloring(g, res.colors)

    def test_empty_and_tiny(self):
        from repro.graph import CSRGraph

        res = BitColorAccelerator(small_cfg(2)).run(CSRGraph.empty(5))
        assert (res.colors == 1).all()
        res0 = BitColorAccelerator(small_cfg(2)).run(CSRGraph.empty(0))
        assert res0.colors.size == 0
        assert res0.stats.makespan_cycles == 0


class TestStats:
    def test_no_conflicts_single_pe(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        assert res.stats.conflicts == 0
        assert res.stats.stall_cycles == 0

    def test_makespan_equals_sum_at_p1(self, preprocessed_powerlaw):
        """A single PE serializes everything (up to dispatch gaps)."""
        res = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        assert res.stats.makespan_cycles >= res.stats.total_task_cycles

    def test_parallel_beats_serial(self, preprocessed_powerlaw):
        t1 = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        t8 = BitColorAccelerator(small_cfg(8)).run(preprocessed_powerlaw)
        assert t8.stats.makespan_cycles < t1.stats.makespan_cycles

    def test_speedup_at_most_parallelism_plus_forwarding(self, preprocessed_powerlaw):
        """Speedup can slightly exceed P only through conflict forwarding
        (deferred neighbours skip their memory reads)."""
        t1 = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        t4 = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        speedup = t1.stats.makespan_cycles / t4.stats.makespan_cycles
        assert speedup <= 4 * 1.5

    def test_task_counts(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        n = preprocessed_powerlaw.num_vertices
        assert res.stats.hdv_tasks + res.stats.ldv_tasks == n

    def test_hdc_eliminates_ldv_reads_when_everything_fits(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        assert res.stats.ldv_reads == 0  # whole graph cached

    def test_bsl_reads_everything_from_dram(self, preprocessed_powerlaw):
        res = BitColorAccelerator(
            small_cfg(1), OptimizationFlags.none()
        ).run(preprocessed_powerlaw)
        assert res.stats.cache_reads == 0
        assert res.stats.ldv_reads == preprocessed_powerlaw.num_edges

    def test_puv_prunes_half_the_slots(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        assert res.stats.pruned_edges == preprocessed_powerlaw.num_undirected_edges

    def test_mgr_reduces_dram_reads(self, small_grid):
        g = preprocess(small_grid)
        cfg = HWConfig(parallelism=1, cache_bytes=2)  # ~nothing cached
        no_mgr = BitColorAccelerator(
            cfg, OptimizationFlags(hdc=True, bwc=True, mgr=False, puv=True)
        ).run(g)
        with_mgr = BitColorAccelerator(cfg, OptimizationFlags.all()).run(g)
        assert with_mgr.stats.merged_reads > 0
        assert with_mgr.stats.dram_reads < no_mgr.stats.dram_reads

    def test_throughput_and_time(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        assert res.time_seconds > 0
        expected = preprocessed_powerlaw.num_vertices / res.time_seconds / 1e6
        assert res.throughput_mcvs == pytest.approx(expected)


class TestDRAMContention:
    def test_fewer_channels_slower(self, small_grid):
        """Memory-bound graphs slow down when physical channels shrink."""
        g = preprocess(small_grid)
        from dataclasses import replace

        base = HWConfig(parallelism=8, cache_bytes=2)
        wide = BitColorAccelerator(replace(base, dram_physical_channels=8)).run(g)
        narrow = BitColorAccelerator(replace(base, dram_physical_channels=1)).run(g)
        assert narrow.stats.makespan_cycles > wide.stats.makespan_cycles
        assert narrow.stats.dram_queue_cycles > wide.stats.dram_queue_cycles

    def test_queue_empty_at_p1(self, preprocessed_powerlaw):
        res = BitColorAccelerator(small_cfg(1)).run(preprocessed_powerlaw)
        assert res.stats.dram_queue_cycles == 0


class TestDeterminism:
    def test_repeat_runs_identical(self, preprocessed_powerlaw):
        a = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        b = BitColorAccelerator(small_cfg(4)).run(preprocessed_powerlaw)
        assert np.array_equal(a.colors, b.colors)
        assert a.stats.makespan_cycles == b.stats.makespan_cycles
