"""Tests for the multi-port cache constructions (Section 4.4)."""

import numpy as np
import pytest

from repro.hw import (
    BRAM_BLOCK_BITS,
    BitSelectMultiPortCache,
    LVTMultiPortCache,
    PortViolation,
    bram_blocks_needed,
    multiport_bram_comparison,
)


class TestBitSelect:
    def test_write_then_read_any_port(self):
        c = BitSelectMultiPortCache(depth=64, num_ports=8)
        # Port i writes vertices i, i+8, i+16 ... (the scheduler's pattern).
        for addr in range(64):
            c.write(addr % 8, addr, addr * 10)
        # Every port can read every address.
        for port in range(8):
            for addr in range(0, 64, 7):
                assert c.read(port, addr) == addr * 10

    def test_port_discipline_enforced(self):
        c = BitSelectMultiPortCache(depth=64, num_ports=8)
        with pytest.raises(PortViolation):
            c.write(0, 1, 5)  # addr % 8 == 1, not port 0

    def test_single_port_degenerate(self):
        c = BitSelectMultiPortCache(depth=16, num_ports=1)
        c.write(0, 7, 3)
        assert c.read(0, 7) == 3
        assert c.bram_words() == 16

    def test_address_range(self):
        c = BitSelectMultiPortCache(depth=8, num_ports=2)
        with pytest.raises(IndexError):
            c.read(0, 8)
        with pytest.raises(PortViolation):
            c.read(2, 0)

    def test_paper_bram_formula(self):
        """Physical words = P·D/2 for m = n = P (Section 4.4)."""
        d, p = 1024, 8
        c = BitSelectMultiPortCache(depth=d, num_ports=p)
        assert c.bram_words() == p * d // 2

    def test_read_latency(self):
        assert BitSelectMultiPortCache(16, 4).read_latency_cycles == 1

    def test_odd_port_count_rejected(self):
        with pytest.raises(ValueError):
            BitSelectMultiPortCache(16, 3)

    def test_group_routing_matches_formula(self):
        """Word placement follows addr//P and (addr%P)//2 exactly."""
        c = BitSelectMultiPortCache(depth=32, num_ports=4)
        group, word = c._locate(13)  # 13 % 4 = 1 -> group 0; word 3*2+1
        assert group == 0
        assert word == (13 // 4) * 2 + 1

    def test_port_stats(self):
        c = BitSelectMultiPortCache(16, 2)
        c.write(0, 0, 1)
        c.read(1, 0)
        assert c.port_stats[0].writes == 1
        assert c.port_stats[1].reads == 1


class TestLVT:
    def test_live_value_semantics(self):
        """A read returns the value of the *most recent* writer, whatever
        row it lives in — the LVT's whole job."""
        c = LVTMultiPortCache(depth=16, num_ports=4)
        c.write(0, 5, 100)
        c.write(3, 5, 200)  # later write from another port wins
        for port in range(4):
            assert c.read(port, 5) == 200
        c.write(1, 5, 300)
        assert c.read(2, 5) == 300

    def test_any_port_may_write_any_address(self):
        c = LVTMultiPortCache(depth=8, num_ports=2)
        c.write(0, 7, 1)
        c.write(1, 0, 2)
        assert c.read(0, 0) == 2

    def test_extra_read_latency(self):
        assert LVTMultiPortCache(8, 2).read_latency_cycles == 2

    def test_bram_cost_formula(self):
        d, p = 1024, 8
        c = LVTMultiPortCache(depth=d, num_ports=p)
        lvt_words = -(-d * 3 // 16)  # log2(8)=3 bits per entry, 16-bit words
        assert c.bram_words() == p * p * d // 4 + lvt_words


class TestComparison:
    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_paper_ratio(self, p):
        """Bit selection needs 2/P of the LVT design's storage (paper's
        claim), to within the LVT-table rounding."""
        cmp = multiport_bram_comparison(depth=4096, num_ports=p)
        # The LVT table itself adds a few % on top of the bank replicas,
        # so the measured ratio sits slightly below the paper's 2/P.
        assert cmp["ratio"] == pytest.approx(2.0 / p, rel=0.07)
        assert cmp["ratio"] <= 2.0 / p
        assert cmp["paper_ratio"] == 2.0 / p

    def test_advantage_grows_with_parallelism(self):
        r4 = multiport_bram_comparison(1024, 4)["ratio"]
        r16 = multiport_bram_comparison(1024, 16)["ratio"]
        assert r16 < r4

    def test_functional_equivalence_under_discipline(self):
        """Both caches return identical data when writes follow the
        scheduler's residue pattern."""
        gen = np.random.default_rng(3)
        bs = BitSelectMultiPortCache(depth=64, num_ports=4)
        lvt = LVTMultiPortCache(depth=64, num_ports=4)
        for _ in range(200):
            addr = int(gen.integers(64))
            val = int(gen.integers(1000))
            bs.write(addr % 4, addr, val)
            lvt.write(addr % 4, addr, val)
            probe = int(gen.integers(64))
            port = int(gen.integers(4))
            assert bs.read(port, probe) == lvt.read(port, probe)


class TestBramHelper:
    def test_blocks_needed(self):
        assert bram_blocks_needed(0, 16) == 0
        assert bram_blocks_needed(1, 16) == 1
        # Exactly one block: 36Kb / 16b = 2304 words.
        assert bram_blocks_needed(2304, 16) == 1
        assert bram_blocks_needed(2305, 16) == 2
        assert BRAM_BLOCK_BITS == 36 * 1024
