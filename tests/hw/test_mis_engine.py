"""Tests for the MIS engine (the Section 2.4 generality demonstration)."""

import numpy as np
import pytest

from repro.graph import (
    complete_graph,
    cycle_graph,
    degree_based_grouping,
    erdos_renyi,
    rmat,
    sort_edges,
    star_graph,
)
from repro.hw import HWConfig, OptimizationFlags
from repro.hw.mis_engine import BitwiseMISAccelerator, greedy_mis


def preprocess(g):
    return sort_edges(degree_based_grouping(g).graph)


class TestReference:
    def test_star(self):
        m = greedy_mis(star_graph(10))
        assert m[0] and not m[1:].any()

    def test_complete(self):
        m = greedy_mis(complete_graph(6))
        assert m.tolist() == [True] + [False] * 5

    def test_cycle(self):
        m = greedy_mis(cycle_graph(6))
        # 0 joins, 1 and 5 blocked, 2 joins, 3 blocked, 4 joins.
        assert m.tolist() == [True, False, True, False, True, False]

    @pytest.mark.parametrize("seed", range(4))
    def test_independent_and_maximal(self, seed):
        g = erdos_renyi(60, 0.12, seed=seed)
        m = greedy_mis(g)
        for u, w in g.iter_edges():
            assert not (m[u] and m[w])
        for v in range(g.num_vertices):
            if not m[v]:
                assert m[g.neighbors(v)].any()


class TestEngine:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_reference(self, p, preprocessed_powerlaw):
        cfg = HWConfig(parallelism=p, cache_bytes=2 * preprocessed_powerlaw.num_vertices)
        res = BitwiseMISAccelerator(cfg).run(preprocessed_powerlaw)
        assert np.array_equal(res.members, greedy_mis(preprocessed_powerlaw))

    @pytest.mark.parametrize(
        "flags",
        [
            OptimizationFlags.none(),
            OptimizationFlags(hdc=True, bwc=True, mgr=False, puv=False),
            OptimizationFlags.all(),
        ],
        ids=lambda f: f.label(),
    )
    def test_flags_never_change_result(self, flags, preprocessed_powerlaw):
        cfg = HWConfig(parallelism=4, cache_bytes=128)
        res = BitwiseMISAccelerator(cfg, flags).run(preprocessed_powerlaw)
        assert np.array_equal(res.members, greedy_mis(preprocessed_powerlaw))

    def test_stats_populated(self, preprocessed_powerlaw):
        cfg = HWConfig(parallelism=4, cache_bytes=128)
        res = BitwiseMISAccelerator(cfg).run(preprocessed_powerlaw)
        s = res.stats
        assert s.makespan_cycles > 0
        assert s.cache_reads + s.ldv_reads + s.pruned_edges + s.conflicts == (
            preprocessed_powerlaw.num_edges
        )
        assert res.set_size == int(np.count_nonzero(res.members))
        assert res.time_seconds > 0

    def test_same_optimizations_help(self):
        """HDC+MGR+PUV cut the MIS engine's DRAM traffic just like the
        coloring engine's — the generality claim, quantified."""
        g = preprocess(rmat(9, 6, seed=41))
        cfg = HWConfig(parallelism=1, cache_bytes=2 * (g.num_vertices // 8))
        bsl = BitwiseMISAccelerator(cfg, OptimizationFlags.none()).run(g)
        opt = BitwiseMISAccelerator(cfg, OptimizationFlags.all()).run(g)
        assert opt.stats.dram_cycles < 0.5 * bsl.stats.dram_cycles
        assert opt.stats.makespan_cycles < bsl.stats.makespan_cycles

    def test_parallel_speedup(self, preprocessed_powerlaw):
        cfg1 = HWConfig(parallelism=1, cache_bytes=2 * preprocessed_powerlaw.num_vertices)
        cfg8 = HWConfig(parallelism=8, cache_bytes=2 * preprocessed_powerlaw.num_vertices)
        t1 = BitwiseMISAccelerator(cfg1).run(preprocessed_powerlaw)
        t8 = BitwiseMISAccelerator(cfg8).run(preprocessed_powerlaw)
        assert t8.stats.makespan_cycles < t1.stats.makespan_cycles

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        res = BitwiseMISAccelerator(HWConfig(parallelism=2)).run(CSRGraph.empty(4))
        assert res.members.all()  # no edges: everyone joins
