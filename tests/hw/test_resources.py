"""Tests for the resource/frequency model (Figure 14) and energy model."""

import pytest

from repro.hw import (
    DEFAULT_POWER,
    HWConfig,
    PlatformPower,
    U200,
    deployed_cache_bytes,
    energy_joules,
    estimate_resources,
    kcv_per_joule,
    multiport_bram_comparison,
)


class TestResourceModel:
    def test_monotone_in_parallelism(self):
        reports = [estimate_resources(HWConfig(parallelism=p)) for p in (1, 2, 4, 8, 16)]
        for a, b in zip(reports, reports[1:]):
            assert b.luts > a.luts
            assert b.registers > a.registers
            assert b.bram_blocks > a.bram_blocks
            assert b.frequency_mhz < a.frequency_mhz

    def test_p16_matches_paper(self):
        """Paper: 47.79 % LUTs, 51.09 % FFs, 96.72 % BRAM at P = 16."""
        u = estimate_resources(HWConfig(parallelism=16)).utilization()
        assert u["lut_pct"] == pytest.approx(47.79, abs=3.0)
        assert u["register_pct"] == pytest.approx(51.09, abs=3.0)
        assert u["bram_pct"] == pytest.approx(96.72, abs=3.0)

    def test_frequency_above_200(self):
        for p in (1, 2, 4, 8, 16):
            assert estimate_resources(HWConfig(parallelism=p)).frequency_mhz > 200

    def test_fits_on_device(self):
        dev = U200()
        r = estimate_resources(HWConfig(parallelism=16))
        assert r.luts < dev.luts
        assert r.registers < dev.registers
        assert r.bram_blocks < dev.bram_blocks

    def test_superlinear_growth_at_16(self):
        """The paper: near-linear to P8, super-linear at P16."""
        l8 = estimate_resources(HWConfig(parallelism=8)).luts
        l16 = estimate_resources(HWConfig(parallelism=16)).luts
        l4 = estimate_resources(HWConfig(parallelism=4)).luts
        growth_4_8 = l8 / l4
        growth_8_16 = l16 / l8
        assert growth_8_16 > growth_4_8

    def test_deployed_cache_halved_at_p16(self):
        assert deployed_cache_bytes(HWConfig(parallelism=8)) == 1 << 20
        assert deployed_cache_bytes(HWConfig(parallelism=16)) == 1 << 19

    def test_multiport_comparison_fields(self):
        cmp = multiport_bram_comparison(1024, 8)
        assert cmp["bit_select_words"] < cmp["lvt_words"]
        assert cmp["bit_select_read_latency"] < cmp["lvt_read_latency"]


class TestEnergyModel:
    def test_energy(self):
        assert energy_joules(2.0, 10.0) == 20.0
        with pytest.raises(ValueError):
            energy_joules(-1, 10)

    def test_kcvj(self):
        # 1e6 vertices in 1 s at 100 W = 10 KCV/J.
        assert kcv_per_joule(10**6, 1.0, 100.0) == pytest.approx(10.0)
        assert kcv_per_joule(5, 0.0, 100.0) == float("inf")

    def test_fpga_power_scales(self):
        p = PlatformPower()
        assert p.fpga_watts(16) > p.fpga_watts(1)

    def test_paper_implied_powers(self):
        """The defaults encode the paper's implied wall powers:
        CPU 0.88 MCV/S at 12 KCV/J -> ~73 W; GPU 15.3 at 19 -> ~805 W;
        FPGA 41.6 at 156 -> ~266 W."""
        assert DEFAULT_POWER.cpu_watts == pytest.approx(0.88e6 / 12e3, rel=0.02)
        assert DEFAULT_POWER.gpu_watts == pytest.approx(15.3e6 / 19e3, rel=0.02)
        assert DEFAULT_POWER.fpga_watts(16) == pytest.approx(41.6e6 / 156e3, rel=0.02)
