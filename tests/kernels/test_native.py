"""The optional compiled kernel tier: probe, fallback, and bit-identity.

Two groups:

* **probe tests** run everywhere — they exercise detection state
  (``REPRO_NATIVE`` overrides, unavailability reasons, the transparent
  fallback of ``resolve_tier_kernels`` and ``repro.color``), which must
  behave identically whether or not a compiler exists;
* **bit-identity tests** run only where a backend is usable (skipped
  cleanly otherwise) — hypothesis equivalence of the compiled
  scatter-OR / first-free kernels against the vectorized reference,
  including dtype, validation order, exception types *and messages*, and
  observability counters.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.graph import CSRGraph, erdos_renyi
from repro.kernels import (
    NativeUnavailable,
    capabilities,
    preferred_tier,
    resolve_tier_kernels,
)
from repro.kernels import bitmatrix, native

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HAVE_NATIVE = native.available()
needs_native = pytest.mark.skipif(
    not HAVE_NATIVE,
    reason=f"native tier unavailable: {native.unavailable_reason()}",
)


@pytest.fixture
def native_env(monkeypatch):
    """Set ``REPRO_NATIVE`` and reset detection; re-probes on teardown."""

    def set_env(value):
        if value is None:
            monkeypatch.delenv("REPRO_NATIVE", raising=False)
        else:
            monkeypatch.setenv("REPRO_NATIVE", value)
        native.refresh()

    yield set_env
    native.refresh()  # next available() call re-probes the restored env


# ----------------------------------------------------------------------
# The capability probe (runs with or without a compiler)
# ----------------------------------------------------------------------


def test_disabled_via_env(native_env):
    native_env("0")
    assert not native.available()
    assert "REPRO_NATIVE" in native.unavailable_reason()
    assert native.backend_info() is None
    with pytest.raises(NativeUnavailable) as exc:
        native.require()
    # The error must say why and how to fix it.
    msg = str(exc.value)
    assert "REPRO_NATIVE" in msg
    assert "[native]" in msg
    assert "cc/gcc/clang" in msg


@pytest.mark.parametrize("value", ["off", "false", "none", "disabled"])
def test_disabled_spellings(native_env, value):
    native_env(value)
    assert not native.available()


def test_unknown_backend_name_is_unavailable(native_env):
    native_env("fpga")
    assert not native.available()
    assert "fpga" in native.unavailable_reason()
    assert "numba" in native.unavailable_reason()


def test_capabilities_shape(native_env):
    native_env("0")
    caps = capabilities()
    assert caps["tiers"] == ("vectorized", "python")
    assert caps["native_available"] is False
    assert caps["native_backend"] is None
    assert "REPRO_NATIVE" in caps["native_reason"]
    assert preferred_tier() == "vectorized"


def test_resolve_tier_falls_back_when_disabled(native_env):
    native_env("0")
    scatter, first_free = resolve_tier_kernels("native")
    assert scatter is bitmatrix.scatter_or_colors
    assert first_free is bitmatrix.first_free_colors_packed


def test_resolve_tier_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel tier"):
        resolve_tier_kernels("fpga")


def test_color_falls_back_silently_when_disabled(native_env):
    g = erdos_renyi(60, 0.1, seed=3)
    reference = repro.color(g, backend="vectorized")
    native_env("0")
    out = repro.color(g, backend="native")
    assert np.array_equal(out.colors, reference.colors)


def test_native_strict_raises_eagerly_when_disabled(native_env):
    g = erdos_renyi(20, 0.1, seed=3)
    native_env("0")
    with pytest.raises(NativeUnavailable, match="native kernel tier unavailable"):
        repro.color(g, backend="native", native_strict=True)


def test_native_strict_is_inert_on_other_backends(native_env):
    g = erdos_renyi(20, 0.1, seed=3)
    native_env("0")
    out = repro.color(g, backend="vectorized", native_strict=True)
    assert out.colors.shape == (20,)


def test_refresh_forgets_detection(native_env):
    native_env("0")
    assert not native.available()
    native_env(None)
    # After refresh the probe reruns under the new environment, so the
    # env-disabled verdict must be gone: either a backend is found, or
    # the reason is now about the toolchain, not the override.
    if native.available():
        assert native.unavailable_reason() is None
    else:
        assert "REPRO_NATIVE" not in native.unavailable_reason()


# ----------------------------------------------------------------------
# Bit-identity vs the vectorized reference (needs a usable backend)
# ----------------------------------------------------------------------


@needs_native
def test_backend_info_shape():
    info = native.backend_info()
    assert info["name"] in native.backend_order()
    assert info["version"]
    caps = capabilities()
    assert caps["tiers"][0] == "native"
    assert caps["native_backend"] == info
    assert preferred_tier() == "native"


@needs_native
@common
@given(data=st.data())
def test_scatter_or_bit_identity(data):
    num_rows = data.draw(st.integers(1, 12), label="num_rows")
    num_words = data.draw(st.integers(1, 3), label="num_words")
    n = data.draw(st.integers(0, 50), label="n_updates")
    # Negative rows exercise NumPy wraparound; color 0 is the dead slot.
    rows = np.array(
        data.draw(
            st.lists(
                st.integers(-num_rows, num_rows - 1), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    colors = np.array(
        data.draw(
            st.lists(
                st.integers(0, num_words * 64), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    ref = bitmatrix.scatter_or_colors(rows, colors, num_rows, num_words)
    got = native.scatter_or_colors(rows, colors, num_rows, num_words)
    assert got.dtype == ref.dtype
    assert np.array_equal(got, ref)


@needs_native
@common
@given(data=st.data())
def test_first_free_bit_identity(data):
    num_rows = data.draw(st.integers(1, 10), label="num_rows")
    num_words = data.draw(st.integers(1, 3), label="num_words")
    # Avoid the all-ones saturated row here (covered separately): keep the
    # last word below full.
    words = data.draw(
        st.lists(
            st.lists(
                st.integers(0, 2**64 - 1), min_size=num_words, max_size=num_words
            ),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    states = np.array(words, dtype=np.uint64)
    states[:, -1] &= np.uint64(2**63 - 1)  # keep one free bit per row
    ref = bitmatrix.first_free_colors_packed(states)
    got = native.first_free_colors_packed(states)
    assert got.dtype == ref.dtype
    assert np.array_equal(got, ref)


@needs_native
def test_scatter_error_message_parity():
    rows = np.array([0, 1], dtype=np.int64)
    for bad_colors, exc_type in [
        (np.array([1, 70], dtype=np.int64), ValueError),   # overflow word 1
        (np.array([1], dtype=np.int64), ValueError),       # shape mismatch
    ]:
        with pytest.raises(exc_type) as ref_exc:
            bitmatrix.scatter_or_colors(rows, bad_colors, 2, 1)
        with pytest.raises(exc_type) as nat_exc:
            native.scatter_or_colors(rows, bad_colors, 2, 1)
        assert str(nat_exc.value) == str(ref_exc.value)

    bad_rows = np.array([0, 7], dtype=np.int64)
    colors = np.array([1, 2], dtype=np.int64)
    with pytest.raises(IndexError) as ref_exc:
        bitmatrix.scatter_or_colors(bad_rows, colors, 2, 1)
    with pytest.raises(IndexError) as nat_exc:
        native.scatter_or_colors(bad_rows, colors, 2, 1)
    assert str(ref_exc.value) in str(nat_exc.value)


@needs_native
def test_scatter_overflow_checked_before_writes():
    # The overflow must be raised before any OR lands (two-pass contract):
    # a pre-filled out= buffer stays untouched on failure.
    out = np.zeros((2, 1), dtype=np.uint64)
    rows = np.array([0, 1], dtype=np.int64)
    colors = np.array([3, 65], dtype=np.int64)
    with pytest.raises(ValueError):
        native.scatter_or_colors(rows, colors, 2, 1, out=out)
    assert not out.any()


@needs_native
def test_first_free_saturation_message_parity():
    for num_words in (1, 2):
        states = np.full((2, num_words), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        with pytest.raises(OverflowError) as ref_exc:
            bitmatrix.first_free_colors_packed(states)
        with pytest.raises(OverflowError) as nat_exc:
            native.first_free_colors_packed(states)
        assert str(nat_exc.value) == str(ref_exc.value)


@needs_native
def test_first_free_rejects_1d():
    with pytest.raises(ValueError, match="matrix"):
        native.first_free_colors_packed(np.zeros(4, dtype=np.uint64))


@needs_native
def test_scatter_out_accumulates_contiguous():
    rows = np.array([0, 1], dtype=np.int64)
    out = np.zeros((2, 1), dtype=np.uint64)
    out[0, 0] = 0b1000
    result = native.scatter_or_colors(
        rows, np.array([1, 2], dtype=np.int64), 2, 1, out=out
    )
    assert result is out
    # color c sets bit c-1: 0b1000 | color1 -> 0b1001; color2 -> 0b0010
    assert out[0, 0] == 0b1001 and out[1, 0] == 0b0010


@needs_native
def test_scatter_out_accumulates_noncontiguous():
    # A strided view takes the fold-into-temp path; semantics must match
    # the vectorized kernel's in-place OR exactly.
    base_ref = np.zeros((4, 2), dtype=np.uint64)
    base_nat = np.zeros((4, 2), dtype=np.uint64)
    base_ref[::2, 0] = 0b1
    base_nat[::2, 0] = 0b1
    rows = np.array([0, 1, 1], dtype=np.int64)
    colors = np.array([2, 65, 3], dtype=np.int64)
    bitmatrix.scatter_or_colors(rows, colors, 2, 2, out=base_ref[::2])
    native.scatter_or_colors(rows, colors, 2, 2, out=base_nat[::2])
    assert np.array_equal(base_nat, base_ref)


@needs_native
def test_word_boundary_colors():
    # Colors 63/64/65 straddle the first word boundary.
    rows = np.zeros(3, dtype=np.int64)
    colors = np.array([63, 64, 65], dtype=np.int64)
    ref = bitmatrix.scatter_or_colors(rows, colors, 1, 2)
    got = native.scatter_or_colors(rows, colors, 1, 2)
    assert np.array_equal(got, ref)
    assert native.first_free_colors_packed(got)[0] == 1


@needs_native
def test_obs_counters_match_vectorized():
    from repro.obs import Registry, use_registry

    rows = np.array([0, 1, 2, 0], dtype=np.int64)
    colors = np.array([1, 2, 0, 3], dtype=np.int64)
    counters = {}
    for tier_name, scatter, first_free in [
        ("vectorized", bitmatrix.scatter_or_colors,
         bitmatrix.first_free_colors_packed),
        ("native", native.scatter_or_colors, native.first_free_colors_packed),
    ]:
        reg = Registry()
        with use_registry(reg):
            states = scatter(rows, colors, 3, 1)
            first_free(states)
        counters[tier_name] = dict(reg.counters)
    assert counters["native"] == counters["vectorized"]


@needs_native
def test_coloring_matches_on_dataset_standin():
    g = sorted_standin()
    a = repro.color(g, backend="vectorized")
    b = repro.color(g, backend="native", native_strict=True)
    assert np.array_equal(a.colors, b.colors)
    assert b.n_colors == a.n_colors


def sorted_standin():
    from repro.experiments import load_dataset

    return load_dataset("EF", preprocessed=True)


@needs_native
def test_microbatch_union_parity_on_native():
    # The batcher's provable-identity argument holds tier-independently;
    # pin it for the native tier the same way the service tests pin
    # vectorized.
    from repro.service.batcher import disjoint_union

    gs = [erdos_renyi(30, 0.2, seed=s) for s in range(3)]
    union, spans = disjoint_union(gs)
    out = repro.color(union, backend="native")
    for g, (lo, hi) in zip(gs, spans):
        solo = repro.color(g, backend="native")
        assert np.array_equal(out.colors[lo:hi], solo.colors)
