"""Schedule-validity tests for the dependency batching kernels.

Both schedules promise the same two properties — batch members are
mutually non-adjacent and every earlier-ordered neighbour of a member sits
in an earlier batch — which is exactly what makes the vectorized coloring
backends bit-identical to the sequential walk.  The tests check those
properties directly on random graphs and orderings.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph
from repro.kernels import (
    contiguous_independent_runs,
    dependency_levels,
    gather_ranges,
)

common = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs_and_orderings(draw, max_vertices=20, max_extra_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_extra_edges,
        )
    )
    g = CSRGraph.from_edge_list(n, edges)
    use_identity = draw(st.booleans())
    if use_identity:
        ordering = None
    else:
        ordering = draw(st.permutations(list(range(n)))) if n > 1 else [0]
    return g, ordering


def check_schedule(g, ordering, batches):
    """Assert validity of ``batches`` (a list of position arrays)."""
    n = g.num_vertices
    order = np.arange(n) if ordering is None else np.asarray(ordering)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    level_of = np.empty(n, dtype=np.int64)
    for k, batch in enumerate(batches):
        level_of[batch] = k
    seen = np.concatenate(batches) if batches else np.empty(0, dtype=np.int64)
    assert np.array_equal(np.sort(seen), np.arange(n))  # a permutation
    for v in range(n):
        pv = pos[v]
        for w in g.neighbors(v):
            pw = pos[int(w)]
            assert level_of[pv] != level_of[pw]  # never batched together
            if pw < pv:  # earlier-ordered neighbour: strictly earlier batch
                assert level_of[pw] < level_of[pv]


def test_gather_ranges():
    starts = np.array([5, 0, 9])
    lengths = np.array([3, 0, 2])
    assert gather_ranges(starts, lengths).tolist() == [5, 6, 7, 9, 10]
    assert gather_ranges(np.array([]), np.array([])).size == 0


@common
@given(graphs_and_orderings())
def test_dependency_levels_valid(args):
    g, ordering = args
    batch_pos, bounds = dependency_levels(g, ordering)
    assert bounds[0] == 0 and bounds[-1] == g.num_vertices
    batches = [batch_pos[s:e] for s, e in zip(bounds[:-1], bounds[1:])]
    assert all(b.size for b in batches)  # no empty levels
    check_schedule(g, ordering, batches)


@common
@given(graphs_and_orderings())
def test_contiguous_runs_valid(args):
    g, ordering = args
    bounds = contiguous_independent_runs(g, ordering)
    assert bounds[0] == 0 and bounds[-1] == g.num_vertices
    assert np.all(np.diff(bounds) > 0) or g.num_vertices == 0
    batches = [
        np.arange(s, e, dtype=np.int64) for s, e in zip(bounds[:-1], bounds[1:])
    ]
    check_schedule(g, ordering, batches)


def test_levels_small_examples():
    # A path in ID order is one long dependency chain: every edge points
    # forward, so each vertex sits one level above its predecessor.
    path = CSRGraph.from_edge_list(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    batch_pos, bounds = dependency_levels(path)
    assert bounds.tolist() == [0, 1, 2, 3, 4, 5]
    assert batch_pos.tolist() == [0, 1, 2, 3, 4]
    # A star from vertex 0: the centre is the only dependency, so all
    # leaves share level 1.
    star = CSRGraph.from_edge_list(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    batch_pos, bounds = dependency_levels(star)
    assert bounds.tolist() == [0, 1, 5]
    assert batch_pos.tolist() == [0, 1, 2, 3, 4]
    # Under the reversed ordering the star leaves come first.
    batch_pos, bounds = dependency_levels(star, ordering=[4, 3, 2, 1, 0])
    assert bounds.tolist() == [0, 4, 5]


def test_levels_empty_and_edgeless():
    g0 = CSRGraph.from_edge_list(0, [])
    batch_pos, bounds = dependency_levels(g0)
    assert batch_pos.size == 0 and bounds.tolist() == [0]
    assert contiguous_independent_runs(g0).tolist() == [0]
    g3 = CSRGraph.from_edge_list(3, [])
    batch_pos, bounds = dependency_levels(g3)
    assert bounds.tolist() == [0, 3]  # all independent -> one level
    assert contiguous_independent_runs(g3).tolist() == [0, 3]


def test_levels_identity_schedule_is_memoised():
    g = CSRGraph.from_edge_list(6, [(0, 1), (2, 3), (1, 4)])
    a = dependency_levels(g)
    b = dependency_levels(g)
    assert a[0] is b[0]  # cached, same array object
    assert not a[0].flags.writeable  # and safe to share
    with pytest.raises(ValueError):
        a[0][0] = 99
    # A non-identity ordering must not poison the cache.
    c = dependency_levels(g, ordering=[5, 4, 3, 2, 1, 0])
    assert c[0] is not a[0]
    assert dependency_levels(g)[0] is a[0]
