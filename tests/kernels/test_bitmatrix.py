"""Unit tests for the packed-bitset kernels against their scalar models."""

import numpy as np
import pytest

from repro.coloring.bitset import (
    bits_or,
    bits_to_num,
    first_free_bits,
    first_free_colors_u64,
    num_to_bits,
    popcount,
)
from repro.kernels import (
    WORD_BITS,
    bit_index_u64,
    colors_to_onehot,
    first_free_colors_packed,
    onehot_to_colors,
    popcount_u64,
    scatter_or_colors,
    words_for_colors,
)
from repro.kernels.bitmatrix import _popcount_swar

RNG = np.random.default_rng(42)


def random_words(size):
    return RNG.integers(0, 2**64, size=size, dtype=np.uint64)


# ----------------------------------------------------------------------
# words_for_colors / popcount
# ----------------------------------------------------------------------


def test_words_for_colors():
    assert words_for_colors(1) == 1
    assert words_for_colors(64) == 1
    assert words_for_colors(65) == 2
    assert words_for_colors(128) == 2
    assert words_for_colors(129) == 3
    with pytest.raises(ValueError):
        words_for_colors(0)


def test_popcount_u64_matches_scalar():
    words = np.concatenate(
        [
            np.array([0, 1, 2, 3, 2**63, 2**64 - 1], dtype=np.uint64),
            random_words(200),
        ]
    )
    expect = np.array([popcount(int(w)) for w in words], dtype=np.int64)
    assert np.array_equal(popcount_u64(words), expect)
    # The SWAR fallback must agree regardless of whether NumPy has
    # bitwise_count on this build.
    assert np.array_equal(_popcount_swar(words.copy()), expect)


def test_popcount_scalar_fallbacks():
    # popcount() itself: int.bit_count when available, bin().count otherwise;
    # both must agree on the same values.
    for v in (0, 1, (1 << 63) | 1, 2**64 - 1):
        assert popcount(v) == bin(v).count("1")


# ----------------------------------------------------------------------
# one-hot conversions
# ----------------------------------------------------------------------


def test_bit_index_u64():
    idx = np.arange(64, dtype=np.uint64)
    onehot = np.uint64(1) << idx
    assert np.array_equal(bit_index_u64(onehot), np.arange(64))
    with pytest.raises(ValueError):
        bit_index_u64(np.array([0], dtype=np.uint64))
    with pytest.raises(ValueError):
        bit_index_u64(np.array([3], dtype=np.uint64))


def test_onehot_roundtrip():
    colors = np.array([0, 1, 64, 65, 128, 100, 1, 0], dtype=np.int64)
    states = colors_to_onehot(colors, 2)
    assert states.shape == (colors.size, 2)
    assert np.array_equal(onehot_to_colors(states), colors)
    # Color 0 stays the all-zero row, exactly like scalar num_to_bits.
    assert not states[0].any()
    assert num_to_bits(0) == 0


def test_onehot_matches_scalar_num_to_bits():
    colors = np.arange(0, 129, dtype=np.int64)
    states = colors_to_onehot(colors, words_for_colors(129))
    for c, row in zip(colors, states):
        packed = int(row[0]) | (int(row[1]) << 64) | (int(row[2]) << 128)
        assert packed == num_to_bits(int(c))


def test_colors_to_onehot_validation():
    with pytest.raises(ValueError):
        colors_to_onehot(np.array([65]), 1)  # does not fit one word
    with pytest.raises(ValueError):
        colors_to_onehot(np.array([-1]), 1)
    with pytest.raises(ValueError):
        colors_to_onehot(np.zeros((2, 2), dtype=np.int64), 1)


def test_onehot_to_colors_rejects_multi_hot():
    bad = np.zeros((1, 2), dtype=np.uint64)
    bad[0, 0] = 1
    bad[0, 1] = 1
    with pytest.raises(ValueError):
        onehot_to_colors(bad)


# ----------------------------------------------------------------------
# scatter_or_colors vs the scalar OR-accumulation
# ----------------------------------------------------------------------


def test_scatter_or_matches_scalar_bits_or():
    rng = np.random.default_rng(7)
    num_rows, num_words = 17, 3
    rows = rng.integers(0, num_rows, size=400).astype(np.int64)
    colors = rng.integers(0, num_words * WORD_BITS + 1, size=400).astype(np.int64)
    out = scatter_or_colors(rows, colors, num_rows, num_words)
    for r in range(num_rows):
        state = bits_or(num_to_bits(int(c)) for c in colors[rows == r])
        packed = sum(int(w) << (64 * k) for k, w in enumerate(out[r]))
        assert packed == state


def test_scatter_or_single_word_fast_path():
    rows = np.array([0, 0, 1, 2, 2, 2], dtype=np.int64)
    colors = np.array([1, 3, 0, 2, 2, 64], dtype=np.int64)
    out = scatter_or_colors(rows, colors, 3, 1)
    assert out[:, 0].tolist() == [0b101, 0, (1 << 63) | 0b10]


def test_scatter_or_validation():
    with pytest.raises(ValueError):
        scatter_or_colors(np.array([0]), np.array([65]), 1, 1)
    with pytest.raises(ValueError):
        scatter_or_colors(np.array([0, 1]), np.array([1]), 2, 1)


def test_scatter_or_accumulates_into_out():
    out = np.zeros((2, 1), dtype=np.uint64)
    scatter_or_colors(np.array([0]), np.array([1]), 2, 1, out=out)
    scatter_or_colors(np.array([1]), np.array([2]), 2, 1, out=out)
    assert out[:, 0].tolist() == [1, 2]


# ----------------------------------------------------------------------
# first_free_colors_packed vs the scalar bit trick
# ----------------------------------------------------------------------


def test_first_free_packed_matches_scalar():
    rng = np.random.default_rng(11)
    for num_words in (1, 2, 4):
        states = rng.integers(0, 2**64, size=(64, num_words), dtype=np.uint64)
        states[:, -1] &= np.uint64(2**62 - 1)  # never fully saturated
        got = first_free_colors_packed(states)
        for row, g in zip(states, got):
            packed = sum(int(w) << (64 * k) for k, w in enumerate(row))
            assert int(g) == bits_to_num(first_free_bits(packed))


def test_first_free_packed_single_word_delegates():
    states = np.array([[0], [1], [0b111], [2**63 - 1]], dtype=np.uint64)
    assert np.array_equal(
        first_free_colors_packed(states),
        first_free_colors_u64(states[:, 0]),
    )


def test_first_free_packed_word_boundaries():
    full = np.uint64(2**64 - 1)
    states = np.array(
        [
            [full, 0],  # first word full -> color 65
            [full, full >> np.uint64(1)],  # only bit 127 free -> color 128
            [0, full],  # second word full but first open -> color 1
        ],
        dtype=np.uint64,
    )
    assert first_free_colors_packed(states).tolist() == [65, 128, 1]


def test_first_free_packed_saturation():
    full = np.uint64(2**64 - 1)
    with pytest.raises(OverflowError):
        first_free_colors_packed(np.array([[full, full]], dtype=np.uint64))
    with pytest.raises(ValueError):
        first_free_colors_packed(np.zeros(3, dtype=np.uint64))


# ----------------------------------------------------------------------
# first_free_colors_u64 — the single-word fast case, directly
# ----------------------------------------------------------------------


def test_first_free_u64_basic():
    states = np.array([0, 1, 0b1011, 0b111], dtype=np.uint64)
    assert first_free_colors_u64(states).tolist() == [1, 2, 3, 4]


def test_first_free_u64_near_63_bit_boundary():
    # Above 2**53 a float-log2 implementation would round; these states
    # exercise the exact high-bit region.
    states = np.array(
        [
            (1 << 62) - 1,  # colors 1..62 taken -> 63
            (1 << 63) - 1,  # colors 1..63 taken -> 64
            1 << 63,  # only color 64 taken -> 1
            ((1 << 63) - 1) & ~(1 << 52),  # hole exactly at 2**52 -> 53
        ],
        dtype=np.uint64,
    )
    assert first_free_colors_u64(states).tolist() == [63, 64, 1, 53]


def test_first_free_u64_saturation_raises():
    sat = np.uint64(2**64 - 1)
    with pytest.raises(OverflowError):
        first_free_colors_u64(np.array([sat], dtype=np.uint64))
    # A single saturated word poisons the batch even among valid ones.
    with pytest.raises(OverflowError):
        first_free_colors_u64(np.array([0, sat, 1], dtype=np.uint64))


def test_first_free_u64_matches_scalar_bit_trick():
    words = np.random.default_rng(3).integers(
        0, 2**63, size=500, dtype=np.uint64
    )
    got = first_free_colors_u64(words)
    for w, g in zip(words, got):
        assert int(g) == bits_to_num(first_free_bits(int(w)))
