"""Bridge from the accelerator's execution traces to the span format.

``BitColorAccelerator.run(..., trace=True)`` produces an
:class:`~repro.hw.trace.ExecutionTrace`: per-vertex task records in
simulated cycles.  This module converts those into
:class:`~repro.obs.core.SpanRecord` entries on the ``cycles`` clock, so
the same JSON-lines artifact that holds wall-clock spans and counters
also carries the simulated schedule — one format for both time bases.

The per-task attrs keep everything the Gantt/critical-path views need
(vertex, PE, stall, queue delay, conflict partners), so an exported
artifact can be re-analysed offline without the live trace object.
"""

from __future__ import annotations

from typing import List, Optional

from .core import CYCLE_CLOCK, Registry, SpanRecord, get_registry

__all__ = ["record_trace", "trace_to_records"]


def trace_to_records(trace, *, name: str = "hw.task") -> List[SpanRecord]:
    """Convert an ``ExecutionTrace`` into cycle-clock span records.

    ``trace`` is duck-typed (anything with a ``tasks`` list of objects
    carrying ``vertex``/``pe``/``start``/``finish``/``stall``/
    ``queue_delay``/``deferred_on``), so this module stays free of
    hardware-model imports.
    """
    records = []
    for i, t in enumerate(sorted(trace.tasks, key=lambda t: (t.start, t.vertex))):
        records.append(
            SpanRecord(
                name=name,
                start=float(t.start),
                end=float(t.finish),
                span_id=i + 1,
                parent_id=None,
                depth=0,
                clock=CYCLE_CLOCK,
                attrs={
                    "vertex": int(t.vertex),
                    "pe": int(t.pe),
                    "stall": int(t.stall),
                    "queue_delay": int(t.queue_delay),
                    "deferred_on": [int(v) for v in t.deferred_on],
                },
            )
        )
    return records


def record_trace(trace, registry: Optional[Registry] = None, *, name: str = "hw.task") -> int:
    """Record every task of ``trace`` into ``registry`` (default: global).

    Returns the number of spans recorded (0 when the registry is
    disabled).  Span ids are re-assigned by the registry so they nest
    consistently with whatever wall-clock spans it already holds.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        return 0
    count = 0
    for rec in trace_to_records(trace, name=name):
        reg.record_span(
            rec.name, rec.start, rec.end, clock=CYCLE_CLOCK, **rec.attrs
        )
        count += 1
    return count
