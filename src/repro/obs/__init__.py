"""Zero-dependency observability: spans, counters/gauges/histograms, exporters.

The instrumentation story in one example::

    from repro.obs import Registry, use_registry, ConsoleExporter

    reg = Registry()                  # fresh, enabled
    with use_registry(reg):           # route library instrumentation here
        repro.color(graph, algorithm="bitwise", backend="vectorized")
    reg.export(ConsoleExporter())     # or JsonlExporter("run.jsonl")

Library code is instrumented against the process-global default registry
(:func:`get_registry`), which starts **disabled** — a true no-op — so
nothing is paid until a caller opts in via :func:`enable`,
:func:`set_registry` or :func:`use_registry`.  ``repro.color(...,
obs=...)`` and the CLI ``--obs`` flag wrap this for the common cases.

Simulated-cycle data (accelerator traces, cycle_sim phases) shares the
span/counter formats through :mod:`repro.obs.bridge`, so one exported
JSON-lines artifact captures wall-clock and modelled cycles together.
"""

from .bridge import record_trace, trace_to_records
from .core import (
    CYCLE_CLOCK,
    WALL_CLOCK,
    HistogramStat,
    Registry,
    SpanRecord,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from .exporters import (
    ConsoleExporter,
    JsonlExporter,
    MemoryExporter,
    close_all_exporters,
    read_jsonl,
    snapshot_from_records,
)

__all__ = [
    "CYCLE_CLOCK",
    "WALL_CLOCK",
    "ConsoleExporter",
    "HistogramStat",
    "JsonlExporter",
    "MemoryExporter",
    "Registry",
    "SpanRecord",
    "close_all_exporters",
    "disable",
    "enable",
    "get_registry",
    "record_trace",
    "read_jsonl",
    "set_registry",
    "snapshot_from_records",
    "trace_to_records",
    "use_registry",
]
