"""Hierarchical spans and metric registries — the observability core.

A :class:`Registry` collects three kinds of signal from an instrumented
run:

* **spans** — named, nested time intervals.  Wall-clock spans come from
  the :meth:`Registry.span` context manager (or the :meth:`Registry.timed`
  decorator); externally-timed intervals — e.g. simulated cycle ranges
  from the accelerator model — enter through :meth:`Registry.record_span`
  with ``clock=CYCLE_CLOCK``.  Both land in the same
  :class:`SpanRecord` format, so one exported artifact can hold real
  wall-clock and simulated cycles side by side.
* **counters / gauges** — monotonic totals (:meth:`Registry.add`) and
  last-value measurements (:meth:`Registry.gauge`).
* **histograms** — running count/total/min/max summaries
  (:meth:`Registry.observe`).

The module keeps a **process-global default registry**, reachable via
:func:`get_registry`; library code is instrumented against whatever that
returns.  It starts *disabled*: every instrumentation point then reduces
to one attribute check (spans hand back a shared inert context manager,
metric calls return immediately), so the hot paths pay effectively
nothing — tier-1 enforces an overhead budget on the kernel benchmark.
Enable it with :func:`enable`, install a fresh collecting registry with
:func:`set_registry`, or scope one to a block with :func:`use_registry`.

Everything here is standard library only; exporters (JSON-lines file,
console table, in-memory sink) live in :mod:`repro.obs.exporters`.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "CYCLE_CLOCK",
    "WALL_CLOCK",
    "HistogramStat",
    "Registry",
    "SpanRecord",
    "disable",
    "enable",
    "get_registry",
    "set_registry",
    "use_registry",
]

WALL_CLOCK = "wall"
"""Clock tag for real elapsed time (``time.perf_counter`` seconds)."""

CYCLE_CLOCK = "cycles"
"""Clock tag for simulated accelerator cycles."""


@dataclass
class SpanRecord:
    """One completed span: a named interval on some clock.

    ``span_id``/``parent_id`` encode the nesting tree (ids are assigned
    at span *entry*, so a parent's id is always smaller than its
    children's); ``depth`` is the nesting level at entry.  Records are
    appended at span *exit*, so children precede their parent in a
    registry's span list — the conventional trace ordering.
    """

    name: str
    start: float
    end: float
    span_id: int
    parent_id: Optional[int] = None
    depth: int = 0
    clock: str = WALL_CLOCK
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "clock": self.clock,
            "attrs": dict(self.attrs),
        }


@dataclass
class HistogramStat:
    """Running summary of observed values (no buckets — count/total/extrema)."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else builtins_min(self.min, value)
        self.max = value if self.max is None else builtins_max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramStat") -> None:
        """Fold another summary into this one (count/total/extrema)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else builtins_min(self.min, other.min)
        self.max = other.max if self.max is None else builtins_max(self.max, other.max)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "HistogramStat":
        return cls(
            count=int(d.get("count", 0)),
            total=float(d.get("total", 0.0)),
            min=d.get("min"),
            max=d.get("max"),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


# ``min``/``max`` are shadowed by the dataclass fields inside methods above.
builtins_min = min
builtins_max = max


class _NullSpan:
    """The shared inert span handle returned while a registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """A live span handle; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_registry", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, registry: "Registry", name: str, attrs: Dict[str, object]):
        self._registry = registry
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        reg = self._registry
        stack = reg._stack()
        parent = stack[-1] if stack else None
        self.span_id = next(reg._ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(stack)
        stack.append(self)
        self._start = reg._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        reg = self._registry
        end = reg._clock()
        stack = reg._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        reg.spans.append(
            SpanRecord(
                name=self.name,
                start=self._start,
                end=end,
                span_id=self.span_id,
                parent_id=self.parent_id,
                depth=self.depth,
                clock=WALL_CLOCK,
                attrs=self.attrs,
            )
        )
        return False


class Registry:
    """A collector for spans, counters, gauges and histograms.

    A freshly constructed registry is enabled; the process-global default
    starts disabled so instrumented library code is a no-op until a
    caller opts in.
    """

    def __init__(self, *, enabled: bool = True, clock: Callable[[], float] = time.perf_counter):
        self.enabled = enabled
        self._clock = clock
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStat] = {}
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- spans ----------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """Open a wall-clock span as a context manager.

        Returns the shared :data:`NULL_SPAN` when disabled, so the call
        costs one branch and no allocation on the hot path.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def timed(self, name: Optional[str] = None, **attrs):
        """Decorator form of :meth:`span` (span named after the function)."""

        def deco(fn):
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        clock: str = CYCLE_CLOCK,
        parent_id: Optional[int] = None,
        depth: int = 0,
        **attrs,
    ) -> Optional[SpanRecord]:
        """Record an externally-timed interval (e.g. simulated cycles)."""
        if not self.enabled:
            return None
        rec = SpanRecord(
            name=name,
            start=float(start),
            end=float(end),
            span_id=next(self._ids),
            parent_id=parent_id,
            depth=depth,
            clock=clock,
            attrs=attrs,
        )
        self.spans.append(rec)
        return rec

    # -- metrics --------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        """Increment the counter ``name`` (created at zero on first use)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into the histogram ``name``."""
        if not self.enabled:
            return
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramStat()
        hist.observe(value)

    def merge_snapshot(self, snapshot: Dict[str, object], **attrs) -> int:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how the partition-parallel backend brings per-shard
        observability home: each worker collects into its own registry,
        ships ``snapshot()`` back (plain dicts cross process boundaries),
        and the parent merges every shard into the one registry the caller
        sees — the same single-artifact story as the ExecutionTrace bridge.

        Spans are re-recorded with fresh ids on their original clock (the
        child's wall-clock timestamps are kept verbatim; ``attrs`` —
        typically ``shard=k`` — is stamped onto every merged span).
        Counters add, gauges last-write-win, histograms fold their
        count/total/extrema.  Returns the number of spans merged; no-op
        (returning 0) while disabled.
        """
        if not self.enabled:
            return 0
        merged = 0
        for s in snapshot.get("spans", ()):
            self.record_span(
                s["name"],
                s["start"],
                s["end"],
                clock=s.get("clock", WALL_CLOCK),
                depth=int(s.get("depth", 0)),
                **{**s.get("attrs", {}), **attrs},
            )
            merged += 1
        for name, value in snapshot.get("counters", {}).items():
            self.add(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, d in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramStat()
            hist.merge(HistogramStat.from_dict(d))
        return merged

    # -- introspection / export ----------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The collected state as one JSON-safe dict."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
        }

    def to_records(self) -> List[Dict[str, object]]:
        """The collected state as a flat list of typed records (JSONL rows)."""
        records: List[Dict[str, object]] = []
        for s in self.spans:
            records.append({"type": "span", **s.to_dict()})
        for name in sorted(self.counters):
            records.append(
                {"type": "counter", "name": name, "value": self.counters[name]}
            )
        for name in sorted(self.gauges):
            records.append({"type": "gauge", "name": name, "value": self.gauges[name]})
        for name in sorted(self.histograms):
            records.append(
                {"type": "histogram", "name": name, **self.histograms[name].to_dict()}
            )
        return records

    def clear(self) -> None:
        """Drop all collected data (the enabled flag is untouched)."""
        self.spans.clear()
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def export(self, exporter) -> object:
        """Hand this registry to an exporter; returns whatever it returns."""
        return exporter.export(self)


_default = Registry(enabled=False)


def get_registry() -> Registry:
    """The process-global default registry (disabled until opted in)."""
    return _default


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the process-global default; returns it."""
    global _default
    _default = registry
    return registry


def enable() -> Registry:
    """Enable the current default registry and return it."""
    _default.enabled = True
    return _default


def disable() -> Registry:
    """Disable the current default registry and return it."""
    _default.enabled = False
    return _default


@contextmanager
def use_registry(registry: Registry) -> Iterator[Registry]:
    """Swap ``registry`` in as the process-global default for a block.

    The previous default is restored on exit, even on error.  This is
    how :func:`repro.color` scopes a per-call registry without touching
    ambient state.
    """
    global _default
    previous = _default
    _default = registry
    try:
        yield registry
    finally:
        _default = previous
