"""Pluggable sinks for a collected :class:`~repro.obs.core.Registry`.

Three exporters, one shared record schema (``Registry.to_records``):

* :class:`JsonlExporter` — one JSON object per line.  The artifact is
  self-describing: ``{"type": "span" | "counter" | "gauge" | "histogram",
  ...}``, with spans carrying their clock (``wall`` seconds or simulated
  ``cycles``) so one file holds both.  :func:`read_jsonl` and
  :func:`snapshot_from_records` invert it losslessly — the round trip is
  tested.
* :class:`ConsoleExporter` — a human-readable table: the span tree
  indented by depth, then counters/gauges/histograms aligned.
* :class:`MemoryExporter` — keeps the records in memory; the test sink.
"""

from __future__ import annotations

import atexit
import io
import json
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from .core import CYCLE_CLOCK, Registry

__all__ = [
    "ConsoleExporter",
    "JsonlExporter",
    "MemoryExporter",
    "close_all_exporters",
    "read_jsonl",
    "snapshot_from_records",
]


class MemoryExporter:
    """Collects the registry's records into ``self.records`` (for tests)."""

    def __init__(self):
        self.records: List[Dict[str, object]] = []

    def export(self, registry: Registry) -> List[Dict[str, object]]:
        self.records = registry.to_records()
        return self.records


# Every JsonlExporter with an open file handle, so the atexit hook can
# flush and close them all — a worker that exits mid-run (or a caller who
# never bothers with close()) must not lose buffered records.
_OPEN_EXPORTERS: "set[JsonlExporter]" = set()
_OPEN_LOCK = threading.Lock()


def close_all_exporters() -> int:
    """Flush and close every open :class:`JsonlExporter`; returns the count.

    Registered with :mod:`atexit`; also callable directly (the service
    calls it on drain, and the regression test calls it to simulate the
    interpreter going down with handles still open).
    """
    with _OPEN_LOCK:
        pending = list(_OPEN_EXPORTERS)
    for exporter in pending:
        exporter.close()
    return len(pending)


atexit.register(close_all_exporters)


class JsonlExporter:
    """Writes a registry as a JSON-lines file; ``export`` returns the path.

    The exporter keeps its file handle open across calls so incremental
    writers (the service's streaming use via :meth:`write_records`) pay one
    open, and **every write is flushed** — the artifact on disk is complete
    after each call even if the process dies before :meth:`close`.  An
    :mod:`atexit` guard closes any exporter left open.  One-shot callers
    (``JsonlExporter(p).export(reg)``) need not change: each ``export``
    rewrites the file in full (``append=True`` switches to append-only,
    for one artifact accumulating records from many exports).
    """

    def __init__(self, path: Union[str, Path], *, append: bool = False):
        self.path = Path(path)
        self.append = append
        self._fh: Optional[io.TextIOWrapper] = None

    def _handle(self) -> io.TextIOWrapper:
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a" if self.append else "w+")
            with _OPEN_LOCK:
                _OPEN_EXPORTERS.add(self)
        return self._fh

    def export(self, registry: Registry) -> Path:
        return self.write_records(registry.to_records())

    def write_records(self, records: List[Dict[str, object]]) -> Path:
        """Write ``records`` (rewriting the file unless ``append``) and flush."""
        fh = self._handle()
        if not self.append:
            fh.seek(0)
            fh.truncate()
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
        fh.flush()
        return self.path

    def flush(self) -> None:
        """Push any buffered lines to disk (no-op when nothing is open)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the handle; idempotent, safe to call from atexit."""
        with _OPEN_LOCK:
            _OPEN_EXPORTERS.discard(self)
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ConsoleExporter:
    """Renders the registry as an aligned text report.

    ``export`` writes to the configured stream (default stdout) and also
    returns the rendered string so callers and tests can inspect it.
    """

    def __init__(self, stream=None):
        self.stream = stream

    def export(self, registry: Registry) -> str:
        out = io.StringIO()
        spans = registry.spans
        if spans:
            out.write("spans:\n")
            width = max(len("  " * s.depth + s.name) for s in spans) + 2
            for s in sorted(spans, key=lambda s: s.span_id):
                label = "  " * s.depth + s.name
                if s.clock == CYCLE_CLOCK:
                    timing = f"{s.duration:12.0f} cycles"
                else:
                    timing = f"{s.duration * 1e3:12.3f} ms"
                attrs = (
                    " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items()))
                    if s.attrs
                    else ""
                )
                out.write(f"  {label:<{width}}{timing}  {attrs}".rstrip() + "\n")
        if registry.counters:
            out.write("counters:\n")
            width = max(len(k) for k in registry.counters) + 2
            for name in sorted(registry.counters):
                out.write(f"  {name:<{width}}{registry.counters[name]:>14}\n")
        if registry.gauges:
            out.write("gauges:\n")
            width = max(len(k) for k in registry.gauges) + 2
            for name in sorted(registry.gauges):
                out.write(f"  {name:<{width}}{registry.gauges[name]:>14}\n")
        if registry.histograms:
            out.write("histograms:\n")
            width = max(len(k) for k in registry.histograms) + 2
            for name in sorted(registry.histograms):
                h = registry.histograms[name]
                out.write(
                    f"  {name:<{width}}count={h.count} mean={h.mean:.2f} "
                    f"min={h.min} max={h.max}\n"
                )
        text = out.getvalue() or "(empty registry)\n"
        (self.stream or sys.stdout).write(text)
        return text


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a JSON-lines artifact back into its record dicts."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def snapshot_from_records(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Rebuild a ``Registry.snapshot()``-shaped dict from exported records.

    ``snapshot_from_records(read_jsonl(JsonlExporter(p).export(reg)))``
    equals ``reg.snapshot()`` — the round-trip guarantee the tests pin.
    """
    snapshot: Dict[str, object] = {
        "spans": [],
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for rec in records:
        kind = rec.get("type")
        if kind == "span":
            span = {k: v for k, v in rec.items() if k != "type"}
            snapshot["spans"].append(span)
        elif kind == "counter":
            snapshot["counters"][rec["name"]] = rec["value"]
        elif kind == "gauge":
            snapshot["gauges"][rec["name"]] = rec["value"]
        elif kind == "histogram":
            snapshot["histograms"][rec["name"]] = {
                "count": rec["count"],
                "total": rec["total"],
                "min": rec["min"],
                "max": rec["max"],
            }
        else:
            raise ValueError(f"unknown record type {kind!r}")
    return snapshot
