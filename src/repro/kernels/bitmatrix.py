"""Packed-bitset kernels over ``(rows, words)`` uint64 bit-matrices.

The paper's Observation 1 (Section 3.2.1) represents a vertex's neighbour
colors as a bit string so that the first free color is one expression,
``(~state) & (state + 1)``.  :mod:`repro.coloring.bitset` models that with
arbitrary-precision Python ints — exact, but one vertex at a time.  This
module is the batch counterpart: a color state is one *row* of a
``(rows, W)`` ``uint64`` matrix (``W`` words of 64 color bits each, so any
color budget works, not just the 63 colors of the single-word helper), and
every primitive operates on all rows at once:

* :func:`scatter_or_colors` — Stage 0 for a whole batch: OR the one-hot of
  each neighbour color into its owner's row (a segment reduction over CSR
  edge slots via ``np.bitwise_or.at``);
* :func:`first_free_colors_packed` — Stage 1 for a whole batch: the first
  word with a zero bit, then the single-word bit trick inside it
  (delegating to :func:`repro.coloring.bitset.first_free_colors_u64` in
  the one-word case);
* :func:`colors_to_onehot` / :func:`onehot_to_colors` — the batch
  decompress/compress pair (``Num2Bit`` table and cascaded-mux compressor
  of Figure 4, as data-parallel index arithmetic);
* :func:`popcount_u64` — vectorised set-bit counts.

Everything here is pure NumPy; the coloring algorithms select it via their
``backend="vectorized"`` parameter and are property-tested to produce
bit-identical results to the scalar Python paths.
"""

from __future__ import annotations

import numpy as np

from ..coloring.bitset import first_free_colors_u64
from ..obs import get_registry

__all__ = [
    "WORD_BITS",
    "words_for_colors",
    "popcount_u64",
    "bit_index_u64",
    "colors_to_onehot",
    "onehot_to_colors",
    "scatter_or_colors",
    "first_free_colors_packed",
]

WORD_BITS = 64
"""Bits per state word — one DRAM/engine word of color flags."""

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)


def words_for_colors(max_colors: int) -> int:
    """Number of 64-bit state words needed to track ``max_colors`` colors."""
    if max_colors < 1:
        raise ValueError("max_colors must be positive")
    return -(-max_colors // WORD_BITS)


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount for NumPy builds without ``bitwise_count``."""
    x = words.copy()
    x -= (x >> _ONE) & np.uint64(0x5555555555555555)
    x = (x & np.uint64(0x3333333333333333)) + (
        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
    )
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Set-bit count of each uint64 word (vectorised :func:`bitset.popcount`)."""
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    return _popcount_swar(words)  # pragma: no cover - exercised directly in tests


def bit_index_u64(onehot: np.ndarray) -> np.ndarray:
    """Index of the single set bit of each word (batch one-hot compression).

    ``popcount(x - 1)`` counts the zeros below the set bit — the bit index —
    without the float-log2 precision trap above 2**53.
    """
    onehot = np.asarray(onehot, dtype=np.uint64)
    if np.any(onehot == 0) or np.any((onehot & (onehot - _ONE)) != 0):
        raise ValueError("every word must be one-hot")
    return popcount_u64(onehot - _ONE)


def colors_to_onehot(colors: np.ndarray, num_words: int) -> np.ndarray:
    """Batch ``Num2Bit`` decompression: color numbers → one-hot rows.

    Color 0 (uncolored) stays the all-zero row, as in the scalar
    :func:`repro.coloring.bitset.num_to_bits`.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.ndim != 1:
        raise ValueError("colors must be one-dimensional")
    if colors.size and (colors.min() < 0 or colors.max() > num_words * WORD_BITS):
        raise ValueError(
            f"color numbers must lie in [0, {num_words * WORD_BITS}] "
            f"for {num_words} state words"
        )
    out = np.zeros((colors.size, num_words), dtype=np.uint64)
    rows = np.nonzero(colors > 0)[0]
    idx = colors[rows] - 1
    out[rows, idx >> 6] = _ONE << (idx & 63).astype(np.uint64)
    return out


def onehot_to_colors(states: np.ndarray) -> np.ndarray:
    """Batch cascaded-mux compression: one-hot rows → color numbers.

    The all-zero row compresses to 0; any row with more than one set bit
    raises, matching the scalar :func:`repro.coloring.bitset.bits_to_num`.
    """
    states = np.ascontiguousarray(states, dtype=np.uint64)
    if states.ndim != 2:
        raise ValueError("states must be a (rows, words) matrix")
    nonzero = states != 0
    if np.any(np.count_nonzero(nonzero, axis=1) > 1):
        raise ValueError("row has set bits in more than one word; not one-hot")
    word = np.argmax(nonzero, axis=1)
    vals = states[np.arange(states.shape[0]), word]
    out = np.zeros(states.shape[0], dtype=np.int64)
    hot = vals != 0
    out[hot] = word[hot] * WORD_BITS + bit_index_u64(vals[hot]) + 1
    return out


def scatter_or_colors(
    rows: np.ndarray,
    colors: np.ndarray,
    num_rows: int,
    num_words: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Stage 0 as a segment reduction: OR one-hot colors into state rows.

    ``rows[k]`` is the state row that edge slot ``k`` accumulates into and
    ``colors[k]`` the neighbour color read through that slot.  Uncolored
    neighbours (color 0) contribute nothing, exactly like the scalar OR of
    ``num_to_bits`` words.
    """
    rows = np.asarray(rows, dtype=np.int64)
    colors = np.asarray(colors, dtype=np.int64)
    if rows.shape != colors.shape:
        raise ValueError("rows and colors must have the same length")
    if out is None:
        out = np.zeros((num_rows, num_words), dtype=np.uint64)
    live = colors > 0
    words_ored = 0
    if live.any():
        idx = colors[live] - 1
        if idx.max() >= num_words * WORD_BITS:
            raise ValueError(
                f"color {int(idx.max()) + 1} does not fit in {num_words} state words"
            )
        onehot = _ONE << (idx & 63).astype(np.uint64)
        words_ored = int(onehot.size)
        if num_words == 1:
            np.bitwise_or.at(out[:, 0], rows[live], onehot)
        else:
            np.bitwise_or.at(out, (rows[live], idx >> 6), onehot)
    obs = get_registry()
    if obs.enabled:
        obs.add("kernels.scatter_or.calls")
        obs.add("kernels.scatter_or.words_ored", words_ored)
        obs.observe("kernels.batch_rows", num_rows)
    return out


def first_free_colors_packed(states: np.ndarray) -> np.ndarray:
    """Stage 1 for a whole batch: first free 1-based color per state row.

    For single-word states this is exactly
    :func:`repro.coloring.bitset.first_free_colors_u64`; for wider states
    the first non-saturated word is located per row and the one-word bit
    trick applied inside it.  Raises :class:`OverflowError` when a row has
    every word saturated — the batch equivalent of the scalar helper's
    saturation guard.
    """
    states = np.ascontiguousarray(states, dtype=np.uint64)
    if states.ndim != 2:
        raise ValueError("states must be a (rows, words) matrix")
    obs = get_registry()
    if obs.enabled:
        obs.add("kernels.first_free.rows", states.shape[0])
    if states.shape[1] == 1:
        return first_free_colors_u64(states[:, 0])
    open_word = states != _FULL_WORD
    if not np.all(open_word.any(axis=1)):
        raise OverflowError(
            f"state row saturated across all {states.shape[1]} words; "
            "need wider color state"
        )
    word = np.argmax(open_word, axis=1)
    w = states[np.arange(states.shape[0]), word]
    lowest_zero = (~w) & (w + _ONE)
    return word * WORD_BITS + popcount_u64(lowest_zero - _ONE) + 1
