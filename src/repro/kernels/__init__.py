"""Vectorized packed-bitset kernels for the coloring hot paths.

The batch counterpart of :mod:`repro.coloring.bitset`: color states live in
``(rows, words)`` uint64 bit-matrices and every primitive — scatter-OR
accumulation, batch first-free-color, one-hot conversion, popcount — runs
over all rows at once.  The coloring algorithms select this layer with
``backend="vectorized"``; see ``docs/performance.md``.
"""

from .batching import contiguous_independent_runs, dependency_levels, gather_ranges
from .bitmatrix import (
    WORD_BITS,
    bit_index_u64,
    colors_to_onehot,
    first_free_colors_packed,
    onehot_to_colors,
    popcount_u64,
    scatter_or_colors,
    words_for_colors,
)
from .segments import adjacent_pair_counts, rows_sorted, run_start_mask, segment_ids

__all__ = [
    "WORD_BITS",
    "adjacent_pair_counts",
    "bit_index_u64",
    "colors_to_onehot",
    "contiguous_independent_runs",
    "dependency_levels",
    "first_free_colors_packed",
    "gather_ranges",
    "onehot_to_colors",
    "popcount_u64",
    "rows_sorted",
    "run_start_mask",
    "scatter_or_colors",
    "segment_ids",
    "words_for_colors",
]
