"""Vectorized packed-bitset kernels for the coloring hot paths.

The batch counterpart of :mod:`repro.coloring.bitset`: color states live in
``(rows, words)`` uint64 bit-matrices and every primitive — scatter-OR
accumulation, batch first-free-color, one-hot conversion, popcount — runs
over all rows at once.  The coloring algorithms select this layer with
``backend="vectorized"``; see ``docs/performance.md``.

On top of the NumPy tier sits an opt-in **native tier**
(:mod:`repro.kernels.native`): compiled implementations of the two
hottest kernels (plus the batched accelerator engine's replay
recurrence) behind a capability probe.  :func:`capabilities` reports
what is available, :func:`preferred_tier` names the fastest usable
software tier, and :func:`resolve_tier_kernels` hands back the
``(scatter_or, first_free)`` pair for a tier with transparent fallback
to the vectorized kernels when no compiler backend works.
"""

from typing import Callable, Tuple

from .batching import contiguous_independent_runs, dependency_levels, gather_ranges
from .bitmatrix import (
    WORD_BITS,
    bit_index_u64,
    colors_to_onehot,
    first_free_colors_packed,
    onehot_to_colors,
    popcount_u64,
    scatter_or_colors,
    words_for_colors,
)
from .native import NativeUnavailable
from .segments import (
    adjacent_pair_counts,
    prefix_block_counts,
    rows_sorted,
    run_start_mask,
    segment_ids,
    segment_max,
)

__all__ = [
    "WORD_BITS",
    "NativeUnavailable",
    "adjacent_pair_counts",
    "bit_index_u64",
    "capabilities",
    "colors_to_onehot",
    "contiguous_independent_runs",
    "dependency_levels",
    "first_free_colors_packed",
    "gather_ranges",
    "onehot_to_colors",
    "popcount_u64",
    "preferred_tier",
    "prefix_block_counts",
    "resolve_tier_kernels",
    "rows_sorted",
    "run_start_mask",
    "scatter_or_colors",
    "segment_ids",
    "segment_max",
    "words_for_colors",
]


def capabilities() -> dict:
    """What kernel tiers this installation can run.

    Returns ``{"tiers", "native_available", "native_backend",
    "native_reason"}``: ``tiers`` lists the usable kernel tiers in
    preference order; ``native_backend`` is the selected compiled
    backend's ``{"name", "version", "compiler"}`` (None when
    unavailable, with ``native_reason`` saying why).  Detection is lazy
    and cached — the first call may compile.
    """
    from . import native

    ok = native.available()
    return {
        "tiers": ("native", "vectorized", "python") if ok else ("vectorized", "python"),
        "native_available": ok,
        "native_backend": native.backend_info(),
        "native_reason": native.unavailable_reason(),
    }


def preferred_tier() -> str:
    """The fastest usable software kernel tier (``native`` or ``vectorized``)."""
    from . import native

    return "native" if native.available() else "vectorized"


def resolve_tier_kernels(tier: str) -> Tuple[Callable, Callable]:
    """The ``(scatter_or_colors, first_free_colors_packed)`` pair of ``tier``.

    ``tier="native"`` resolves to the compiled kernels when the
    capability probe succeeds and **falls back to the vectorized pair
    transparently** otherwise — callers that must fail instead use
    ``repro.color(..., native_strict=True)`` or
    :func:`repro.kernels.native.require` directly.
    """
    if tier == "native":
        from . import native

        if native.available():
            return native.scatter_or_colors, native.first_free_colors_packed
        return scatter_or_colors, first_free_colors_packed
    if tier == "vectorized":
        return scatter_or_colors, first_free_colors_packed
    raise ValueError(
        f"unknown kernel tier {tier!r}; expected 'native' or 'vectorized'"
    )
