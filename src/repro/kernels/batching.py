"""Dependency-respecting batching of a sequential coloring order.

The scalar greedy algorithms walk the ordering one vertex at a time.  Under
the sequential semantics a vertex's color depends only on its
*earlier-ordered* neighbours, so the ordering induces a DAG; any batch
schedule that (a) keeps batch members mutually non-adjacent and (b) places
every earlier-ordered neighbour of a member in an earlier batch reproduces
the sequential coloring bit for bit when each batch is colored in one
data-parallel sweep.  This is the software analogue of the paper's BWPE
task window: the dispatcher hands out vertex groups and the conflict unit
defers exactly the vertices whose neighbours are still in flight.

Two schedules are provided:

* :func:`dependency_levels` — level scheduling (vectorised Kahn peeling of
  the order-DAG).  The batch count equals the longest dependency chain,
  typically ``O(log n)``–ish on the paper's graph classes, which is what
  makes the vectorized backend fast; this is what
  ``backend="vectorized"`` uses.
* :func:`contiguous_independent_runs` — maximal contiguous runs of the
  ordering with the same two properties.  Runs preserve the ordering's
  locality (each batch is a slice), matching the hardware's contiguous
  task windows, but power-law graphs cut them very short; exposed for
  analysis and as the simpler reference schedule.

:func:`gather_ranges` is the shared multi-range gather that turns a
batch's CSR slot ranges into one index array.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["contiguous_independent_runs", "dependency_levels", "gather_ranges"]


def _resolve_ordering(graph: CSRGraph, ordering) -> np.ndarray:
    if ordering is None:
        return np.arange(graph.num_vertices, dtype=np.int64)
    return np.asarray(ordering, dtype=np.int64)


def _order_positions(graph: CSRGraph, ordering: np.ndarray) -> np.ndarray:
    pos = np.empty(graph.num_vertices, dtype=np.int64)
    pos[ordering] = np.arange(graph.num_vertices, dtype=np.int64)
    return pos


def gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[k], starts[k] + lengths[k])`` index ranges.

    The standard repeat/cumsum trick: one output array addressing every
    CSR slot of a batch of vertices, with no Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_starts[1:])
    return np.repeat(starts - out_starts, lengths) + np.arange(total, dtype=np.int64)


def dependency_levels(
    graph: CSRGraph, ordering: Optional[Sequence[int]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Level schedule of the order-DAG (default ordering: ascending ID).

    Returns ``(batch_pos, bounds)``: ``batch_pos`` is a permutation of the
    ordering *positions* grouped by level and ascending within each level,
    and ``bounds`` delimits the levels — batch ``k`` is
    ``batch_pos[bounds[k]:bounds[k + 1]]``.  Level 0 holds the positions
    with no earlier-ordered neighbour; level ``L + 1`` the positions whose
    earlier-ordered neighbours all sit in levels ``<= L`` with at least one
    at ``L``.  Same-level positions are never adjacent (an edge between two
    vertices forces different levels), so each level is a valid
    data-parallel batch.
    """
    n = graph.num_vertices
    ordering = _resolve_ordering(graph, ordering)
    if n == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    identity = bool(np.array_equal(ordering, np.arange(n, dtype=np.int64)))
    if identity:
        # The schedule is a pure function of the immutable graph, so the
        # common ascending-ID case is memoised on the instance (repeated
        # colorings — benchmarks, recoloring sweeps — skip the peeling).
        cached = graph._cache.get("dependency_levels")
        if cached is not None:
            return cached
    if identity:
        src_pos = graph.source_of_edge_slots()
        dst_pos = graph.edges
    else:
        pos = _order_positions(graph, ordering)
        src_pos = pos[graph.source_of_edge_slots()]
        dst_pos = pos[graph.edges]
    fwd = src_pos < dst_pos
    fsrc, fdst = src_pos[fwd], dst_pos[fwd]
    # Forward adjacency grouped by source position, for the Kahn peeling.
    # Edge slots are already grouped by source vertex, so the identity
    # ordering needs no sort.
    if not identity:
        perm = np.argsort(fsrc, kind="stable")
        fsrc, fdst = fsrc[perm], fdst[perm]
    fcount = np.bincount(fsrc, minlength=n)
    fbounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(fcount, out=fbounds[1:])
    indeg = np.bincount(fdst, minlength=n)

    batch_pos = np.empty(n, dtype=np.int64)
    bounds = [0]
    fill = 0
    ready = np.nonzero(indeg == 0)[0]
    while ready.size:
        batch_pos[fill : fill + ready.size] = ready
        fill += ready.size
        bounds.append(fill)
        targets = fdst[gather_ranges(fbounds[ready], fcount[ready])]
        np.subtract.at(indeg, targets, 1)
        # A position's count hits zero exactly once, but it may appear
        # several times in this level's targets — dedup (and sort).
        ready = np.unique(targets[indeg[targets] == 0])
    # The order-DAG is acyclic by construction, so peeling always completes.
    assert fill == n
    batch_pos.setflags(write=False)
    result = (batch_pos, np.asarray(bounds, dtype=np.int64))
    if identity:
        graph._cache["dependency_levels"] = result
    return result


def contiguous_independent_runs(
    graph: CSRGraph, ordering: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Run boundaries over ``ordering`` (default: ascending vertex ID).

    Returns an int64 array ``b`` with ``b[0] == 0`` and ``b[-1] == n``; run
    ``k`` is ``ordering[b[k]:b[k+1]]``.  Each run is the maximal prefix of
    the remaining ordering whose members have all their earlier-ordered
    neighbours strictly before the run (which also makes the run an
    independent set).
    """
    n = graph.num_vertices
    ordering = _resolve_ordering(graph, ordering)
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    pos = _order_positions(graph, ordering)
    src_pos = pos[graph.source_of_edge_slots()]
    dst_pos = pos[graph.edges]
    # prev[i]: the latest ordering position < i holding a neighbour of the
    # vertex at position i (-1 when none).
    prev = np.full(n, -1, dtype=np.int64)
    back = dst_pos < src_pos
    np.maximum.at(prev, src_pos[back], dst_pos[back])
    # A run starting at `start` extends through every position whose latest
    # earlier neighbour is before `start`.  The boundary scan is sequential
    # by nature but O(n) over plain ints.
    bounds = [0]
    start = 0
    for i, p in enumerate(prev.tolist()):
        if p >= start:
            bounds.append(i)
            start = i
    bounds.append(n)
    return np.asarray(bounds, dtype=np.int64)
