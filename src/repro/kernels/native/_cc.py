"""System-C-compiler backend of the native kernel tier.

The lumos ``acc.pyx`` idiom — an optional compiled module behind a pure-
Python behaviour contract — without requiring Cython at all: the hot
loops are a single self-contained C translation unit embedded below,
compiled on first use with whatever ``cc``/``gcc``/``clang`` is on PATH
(``-O3 -shared -fPIC``) and loaded through :mod:`ctypes`.  The shared
object is cached on disk keyed by a hash of the source *and* the
compiler identity, so a source edit or toolchain swap rebuilds and an
unchanged tree pays the compile exactly once per machine.

Three entry points, mirroring the Python/NumPy reference semantics
bit for bit (the probe in :mod:`repro.kernels.native` golden-checks the
first two against the vectorized kernels before the backend is ever
selected):

* ``bc_scatter_or`` — Stage 0 scatter-OR with the same validation order
  as :func:`repro.kernels.bitmatrix.scatter_or_colors`: the color
  overflow check runs over the whole batch *before* any state word is
  written (and before any row-bounds error), and NumPy's negative-row
  wraparound is reproduced;
* ``bc_first_free`` — Stage 1 first-free-color via the paper's
  ``(~state) & (state + 1)`` bit trick and a hardware popcount, with the
  same all-words-saturated overflow contract;
* ``bc_replay_epoch`` — the batched accelerator engine's scalar replay
  recurrence (dispatch floor, first-idle-PE selection, merge-buffer
  carry + write-commit invalidation via a binary min-heap, conflict
  deferral, physical-channel queueing) over one epoch of precomputed
  per-task arrays.  The heap is keyed on finish time alone: the Python
  engine's ``(finish, block)`` tuple tie-break is unobservable because
  the commit loop drains *every* entry with ``finish <= t`` and carry
  invalidation commutes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

__all__ = ["load"]

_C_SOURCE = r"""
#include <stdint.h>

#define WORD_BITS 64LL
#define FULL_WORD 0xFFFFFFFFFFFFFFFFULL

typedef long long i64;
typedef unsigned long long u64;

/* Stage 0: OR one-hot colors into state rows.
 *
 * Returns the number of words ORed (live slots) on success;
 *   -1 = color overflow  (*detail = the offending color number);
 *   -2 = row out of range (*detail = the offending row index).
 * The whole batch is validated before any write, and the color check
 * outranks the row check — matching the vectorized kernel, which
 * raises its ValueError before np.bitwise_or.at touches (or bounds-
 * checks) anything.  Negative rows wrap like NumPy fancy indexing.
 */
i64 bc_scatter_or(const i64 *rows, const i64 *colors, i64 nnz,
                  u64 *out, i64 num_rows, i64 num_words, i64 *detail)
{
    i64 maxc = 0, words_ored = 0, bad_row = 0, has_bad_row = 0;
    for (i64 i = 0; i < nnz; i++) {
        i64 c = colors[i];
        if (c <= 0)
            continue;
        if (c > maxc)
            maxc = c;
        i64 r = rows[i];
        if ((r < -num_rows || r >= num_rows) && !has_bad_row) {
            has_bad_row = 1;
            bad_row = r;
        }
        words_ored++;
    }
    if (maxc > num_words * WORD_BITS) {
        *detail = maxc;
        return -1;
    }
    if (has_bad_row) {
        *detail = bad_row;
        return -2;
    }
    for (i64 i = 0; i < nnz; i++) {
        i64 c = colors[i];
        if (c <= 0)
            continue;
        i64 r = rows[i];
        if (r < 0)
            r += num_rows;
        i64 idx = c - 1;
        out[r * num_words + (idx >> 6)] |= 1ULL << (idx & 63);
    }
    return words_ored;
}

/* Stage 1: first free 1-based color per state row.
 *
 * Returns 0 on success, r+1 when row r has every word saturated (the
 * caller raises the tier's OverflowError).
 */
i64 bc_first_free(const u64 *states, i64 rows, i64 words, i64 *out)
{
    for (i64 r = 0; r < rows; r++) {
        const u64 *row = states + r * words;
        i64 w = 0;
        while (w < words && row[w] == FULL_WORD)
            w++;
        if (w == words)
            return r + 1;
        u64 x = row[w];
        u64 lz = (~x) & (x + 1ULL);
        out[r] = w * WORD_BITS + (i64)__builtin_popcountll(lz - 1ULL) + 1;
    }
    return 0;
}

/* Binary min-heap keyed on finish time (see module docstring on why the
 * Python engine's (finish, block) tie-break is unobservable). */
static void heap_push(i64 *hf, i64 *hb, i64 *size, i64 fin, i64 blk)
{
    i64 i = (*size)++;
    while (i > 0) {
        i64 par = (i - 1) >> 1;
        if (hf[par] <= fin)
            break;
        hf[i] = hf[par];
        hb[i] = hb[par];
        i = par;
    }
    hf[i] = fin;
    hb[i] = blk;
}

static i64 heap_pop(i64 *hf, i64 *hb, i64 *size)
{
    i64 blk = hb[0];
    i64 m = --(*size);
    i64 fin = hf[m], mb = hb[m];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1;
        if (l >= m)
            break;
        if (l + 1 < m && hf[l + 1] < hf[l])
            l++;
        if (hf[l] >= fin)
            break;
        hf[i] = hf[l];
        hb[i] = hb[l];
        i = l;
    }
    hf[i] = fin;
    hb[i] = mb;
    return blk;
}

/* Persistent scalar state shared across epochs, packed into state[]. */
#define S_FLOOR      0
#define S_MAXFIN     1
#define S_HEAP_SIZE  2
#define S_EP_FIRST   3
#define S_TOT_COMP   4
#define S_TOT_DRAM   5
#define S_TOT_WC     6
#define S_TOT_STALL  7
#define S_TOT_QUEUE  8
#define S_CONFLICTS  9
#define S_COUNT_A    10
#define S_CONF_MI    11
#define S_CONF_MERGED 12
#define S_CONF_K     13
#define S_CONF_MISSES 14
#define S_CONF_LDV_BASE 15
#define S_CONF_LDV_READS 16
#define S_CONF_HDV_OCC 17

/* One dispatch epoch of the batched engine's replay recurrence; a
 * line-for-line transliteration of the Python loop in hw/batched.py. */
i64 bc_replay_epoch(
    i64 lo, i64 nloc, i64 v_t, i64 p, i64 ns, i64 mgr, i64 bwc,
    i64 interval, i64 wc_ldv, i64 or_cyc, i64 hitx, i64 rc, i64 sc,
    i64 cpb, i64 fin_bwc,
    const i64 *comp_l, const i64 *dram_l, const i64 *da_l,
    const i64 *c0_l, const i64 *cl_l,
    const i64 *edge_dram, const i64 *mi_l, const i64 *k_l,
    const i64 *lptr, const i64 *ldst,
    const i64 *vptr, const i64 *vdst, const i64 *vblk,
    const i64 *pe_bind, const i64 *colors,
    i64 *pe_free, i64 *seen, i64 *carry, i64 *finish_v, i64 *servers,
    i64 *heap_fin, i64 *heap_blk, i64 *dlist, i64 *state)
{
    i64 floor_t = state[S_FLOOR];
    i64 maxfin = state[S_MAXFIN];
    i64 heap_size = state[S_HEAP_SIZE];
    i64 ep_first = state[S_EP_FIRST];

    for (i64 vl = 0; vl < nloc; vl++) {
        i64 v = lo + vl;

        /* dispatch: PE choice and start time */
        i64 pe = pe_bind[v];
        i64 fpe;
        if (pe < 0) {
            pe = 0;
            fpe = pe_free[0];
            for (i64 q = 1; q < p; q++)
                if (pe_free[q] < fpe) {
                    fpe = pe_free[q];
                    pe = q;
                }
        } else {
            fpe = pe_free[pe];
        }
        i64 t = fpe > floor_t ? fpe : floor_t;
        floor_t = t + interval;
        if (ep_first < 0)
            ep_first = t;

        /* commits due before this dispatch: merge-buffer invalidation */
        if (mgr) {
            while (heap_size > 0 && heap_fin[0] <= t) {
                i64 wb = heap_pop(heap_fin, heap_blk, &heap_size);
                for (i64 q = 0; q < p; q++)
                    if (carry[q] == wb)
                        carry[q] = -1;
            }
        }

        /* conflict deferral against in-flight lower neighbours */
        i64 dep = 0, nd = 0, d_hdv_occ = 0;
        if (maxfin > t) {
            for (i64 i = lptr[vl]; i < lptr[vl + 1]; i++) {
                i64 w = ldst[i];
                i64 fw = finish_v[w];
                if (fw > t) {
                    if (w < v_t)
                        d_hdv_occ++;
                    i64 dup = 0;
                    for (i64 j = 0; j < nd; j++)
                        if (dlist[j] == w) {
                            dup = 1;
                            break;
                        }
                    if (!dup) {
                        dlist[nd++] = w;
                        if (fw > dep)
                            dep = fw;
                    }
                }
            }
        }

        i64 ct = comp_l[vl];
        i64 dr = dram_l[vl];
        if (nd == 0) {
            if (mgr) {
                if (c0_l[vl] == carry[pe]) {
                    state[S_COUNT_A]++;
                    dr += da_l[vl];
                }
                i64 cl = cl_l[vl];
                if (cl >= 0)
                    carry[pe] = cl;
            }
        } else {
            /* correction path: replay the fetch sequence without the
             * deferred neighbours */
            state[S_CONFLICTS] += nd;
            i64 lp = vptr[vl], rp = vptr[vl + 1];
            i64 cur = carry[pe];
            i64 last_c = -1;
            i64 merged = 0, misses = 0, stream = 0, reads = 0;
            for (i64 i = lp; i < rp; i++) {
                i64 w = vdst[i];
                i64 def = 0;
                for (i64 j = 0; j < nd; j++)
                    if (dlist[j] == w) {
                        def = 1;
                        break;
                    }
                if (def)
                    continue;
                i64 b = vblk[i];
                reads++;
                if (mgr && b == cur) {
                    merged++;
                } else {
                    misses++;
                    if (last_c >= 0 && b == last_c + 1)
                        stream++;
                    last_c = b;
                    cur = b;
                }
            }
            if (mgr)
                carry[pe] = cur;
            dr = edge_dram[vl] + stream * sc + (misses - stream) * rc;
            ct -= hitx * d_hdv_occ;
            state[S_CONF_LDV_BASE] += rp - lp;
            state[S_CONF_LDV_READS] += reads;
            state[S_CONF_MERGED] += merged;
            state[S_CONF_MISSES] += misses;
            state[S_CONF_MI] += mi_l[vl];
            state[S_CONF_K] += k_l[vl];
            state[S_CONF_HDV_OCC] += d_hdv_occ;
        }

        /* finalize cycles (Steps 6-7) */
        i64 cf;
        if (bwc) {
            cf = fin_bwc;
        } else {
            i64 col = colors[v];
            i64 sm = seen[pe];
            cf = col + sm;
            if (col > sm)
                seen[pe] = col;
        }
        if (nd > 0)
            cf += or_cyc;

        /* write-back + physical DRAM channel queueing */
        i64 wc, dd;
        if (v < v_t) {
            wc = 1;
            dd = dr;
        } else {
            wc = wc_ldv;
            dd = dr + wc;
        }
        i64 qd = 0;
        if (dd > 0) {
            i64 si = 0, s0 = servers[0];
            for (i64 q = 1; q < ns; q++)
                if (servers[q] < s0) {
                    s0 = servers[q];
                    si = q;
                }
            if (s0 > t) {
                qd = s0 - t;
                servers[si] = s0 + dd;
            } else {
                servers[si] = t + dd;
            }
        }

        /* finish recurrence */
        i64 te = t + ct + qd + dr;
        i64 stall, fin;
        if (dep > te) {
            stall = dep - te;
            fin = dep + cf + wc;
        } else {
            stall = 0;
            fin = te + cf + wc;
        }

        pe_free[pe] = fin;
        finish_v[v] = fin;
        if (fin > maxfin)
            maxfin = fin;
        if (mgr && v >= v_t)
            heap_push(heap_fin, heap_blk, &heap_size, fin, v / cpb);

        state[S_TOT_COMP] += ct + cf;
        state[S_TOT_DRAM] += dr;
        state[S_TOT_WC] += wc;
        state[S_TOT_STALL] += stall;
        state[S_TOT_QUEUE] += qd;
    }

    state[S_FLOOR] = floor_t;
    state[S_MAXFIN] = maxfin;
    state[S_HEAP_SIZE] = heap_size;
    state[S_EP_FIRST] = ep_first;
    return 0;
}
"""

_I64 = ctypes.POINTER(ctypes.c_longlong)
_U64 = ctypes.POINTER(ctypes.c_ulonglong)

_LIB_CACHE: dict = {}


def _find_compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return shutil.which(cc)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compiler_version(cc: str) -> str:
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        first = (out.stdout or out.stderr).splitlines()
        return first[0].strip() if first else "unknown"
    except Exception:
        return "unknown"


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    home = Path.home() / ".cache" / "repro_native"
    try:
        home.mkdir(parents=True, exist_ok=True)
        return home
    except OSError:
        return Path(tempfile.gettempdir()) / "repro_native"


def _build(cc: str, version: str) -> Path:
    """Compile (or reuse) the shared object; returns its path."""
    key = hashlib.sha256(
        (_C_SOURCE + "\0" + cc + "\0" + version).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    so_path = cache / f"bitcolor_native_{key}.so"
    if so_path.exists():
        return so_path
    src_path = cache / f"bitcolor_native_{key}.c"
    src_path.write_text(_C_SOURCE)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O3", "-fPIC", "-shared", "-o", tmp, str(src_path)],
            check=True,
            capture_output=True,
            text=True,
            timeout=300,
        )
        os.replace(tmp, so_path)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path


def _as_i64(arr: np.ndarray):
    return arr.ctypes.data_as(_I64)


def _as_u64(arr: np.ndarray):
    return arr.ctypes.data_as(_U64)


class _CCKernels:
    """ctypes bindings over the compiled translation unit."""

    name = "cc"

    def __init__(self, lib: ctypes.CDLL, compiler: str, version: str, path: Path):
        self.version = version
        self.compiler = compiler
        self.library_path = str(path)
        self._lib = lib
        ll = ctypes.c_longlong
        lib.bc_scatter_or.restype = ll
        lib.bc_scatter_or.argtypes = [_I64, _I64, ll, _U64, ll, ll, _I64]
        lib.bc_first_free.restype = ll
        lib.bc_first_free.argtypes = [_U64, ll, ll, _I64]
        lib.bc_replay_epoch.restype = ll
        lib.bc_replay_epoch.argtypes = (
            [ll] * 15 + [_I64] * 15 + [_I64] * 8 + [_I64]
        )

    # -- raw kernels ---------------------------------------------------
    def scatter_or(
        self,
        rows: np.ndarray,
        colors: np.ndarray,
        out: np.ndarray,
        num_rows: int,
        num_words: int,
    ) -> Tuple[int, int]:
        """Returns ``(status, detail)``: status >= 0 is words_ored."""
        detail = ctypes.c_longlong(0)
        status = self._lib.bc_scatter_or(
            _as_i64(rows),
            _as_i64(colors),
            rows.size,
            _as_u64(out),
            num_rows,
            num_words,
            ctypes.byref(detail),
        )
        return int(status), int(detail.value)

    def first_free(self, states: np.ndarray, out: np.ndarray) -> int:
        """0 on success, ``row + 1`` when that row is saturated."""
        return int(
            self._lib.bc_first_free(
                _as_u64(states), states.shape[0], states.shape[1], _as_i64(out)
            )
        )

    def replay_epoch(self, scalars, epoch_arrays, persistent_arrays) -> None:
        """One epoch of the batched-engine recurrence (see hw/batched.py).

        ``scalars`` is the 15-tuple ``(lo, nloc, v_t, p, ns, mgr, bwc,
        interval, wc_ldv, or_cyc, hitx, rc, sc, cpb, fin_bwc)``;
        ``epoch_arrays`` the 13 per-epoch int64 arrays; and
        ``persistent_arrays`` the 9 cross-epoch int64 arrays ending in
        the packed ``state`` vector.
        """
        args = (
            [int(s) for s in scalars]
            + [_as_i64(a) for a in epoch_arrays]
            + [_as_i64(a) for a in persistent_arrays]
        )
        self._lib.bc_replay_epoch(*args)


def load() -> _CCKernels:
    """Build/load the compiled kernels; raises when no compiler works."""
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) found on PATH")
    version = _compiler_version(cc)
    so_path = _build(cc, version)
    key = str(so_path)
    if key not in _LIB_CACHE:
        _LIB_CACHE[key] = ctypes.CDLL(key)
    return _CCKernels(_LIB_CACHE[key], cc, version, so_path)
