"""Opt-in native (compiled) kernel tier behind a capability probe.

``backend="native"`` compiles the three hottest loops of the repo — the
Stage-0 scatter-OR, the Stage-1 batch first-free-color, and the batched
accelerator engine's scalar replay recurrence — and is **never a hard
dependency**: importing this package touches no compiler, and detection
only runs when a caller first asks (:func:`available`, :func:`require`,
or one of the drop-in kernels below).

Detection tries the backends in order — ``numba`` (jitted, used when the
optional ``[native]`` extra is installed) then ``cc`` (an embedded C
translation unit built with the system C compiler and loaded via
ctypes) — and **golden-checks** each candidate against the vectorized
kernels on a fixed input before selecting it, so a present-but-broken
toolchain is disqualified instead of corrupting results.  When nothing
works, the higher layers fall back to the vectorized tier transparently
(``repro.kernels.resolve_tier_kernels``), and :func:`unavailable_reason`
says why.

The ``REPRO_NATIVE`` environment variable overrides detection:
``0``/``off``/``false``/``none``/``disabled`` turns the tier off
entirely (the CI fallback leg uses this, since GitHub runners do have a
C compiler); a backend name (``numba``/``cc``) restricts the probe to
that backend; unset or ``auto`` probes the default order.

The drop-in wrappers :func:`scatter_or_colors` and
:func:`first_free_colors_packed` reproduce the vectorized kernels'
validation order, exception types/messages, and observability counters
exactly; bit-identity is property-tested in ``tests/kernels``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ...obs import get_registry

__all__ = [
    "NativeUnavailable",
    "available",
    "backend_info",
    "backend_order",
    "first_free_colors_packed",
    "refresh",
    "require",
    "scatter_or_colors",
    "unavailable_reason",
]

_BACKEND_ORDER = ("numba", "cc")
_DISABLED_VALUES = ("0", "off", "false", "none", "disabled")

_DETECTED = False
_IMPL = None
_REASON: Optional[str] = None


class NativeUnavailable(RuntimeError):
    """No native kernel backend could be loaded (see the message for why)."""


def backend_order() -> Tuple[str, ...]:
    """Detection order of the compiled backends."""
    return _BACKEND_ORDER


def _load_backend(name: str):
    if name == "numba":
        from . import _numba

        return _numba.load()
    if name == "cc":
        from . import _cc

        return _cc.load()
    raise ValueError(f"unknown native backend {name!r}; known: {_BACKEND_ORDER}")


def _self_check(impl) -> None:
    """Golden-check a candidate backend against the vectorized kernels.

    A tiny fixed input exercising the semantics corners that matter:
    dead slots (color 0), the word-boundary colors 64/65, duplicate rows,
    and NumPy's negative-row wraparound.  Any mismatch disqualifies the
    backend (the replay recurrence is covered by the batched-engine
    parity suite instead — it needs a whole engine run to exercise).
    """
    from ..bitmatrix import first_free_colors_packed as ff_ref
    from ..bitmatrix import scatter_or_colors as sc_ref

    rows = np.array([0, 2, 1, 2, 0, -1], dtype=np.int64)
    colors = np.array([1, 64, 65, 0, 3, 130], dtype=np.int64)
    ref = sc_ref(rows, colors, 3, 3)
    got = np.zeros((3, 3), dtype=np.uint64)
    status, _ = impl.scatter_or(rows, colors, got, 3, 3)
    if status != 5 or not np.array_equal(got, ref):
        raise RuntimeError("scatter-OR golden check failed")

    states = np.array(
        [[0, 0], [0xFFFFFFFFFFFFFFFF, 0b1011], [0b111, 1 << 63]],
        dtype=np.uint64,
    )
    expect = ff_ref(states)
    out = np.zeros(3, dtype=np.int64)
    if impl.first_free(states, out) != 0 or not np.array_equal(out, expect):
        raise RuntimeError("first-free golden check failed")


def _detect():
    global _DETECTED, _IMPL, _REASON
    if _DETECTED:
        return _IMPL
    env = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
    if env in _DISABLED_VALUES:
        _IMPL = None
        _REASON = f"disabled via REPRO_NATIVE={env!r}"
        _DETECTED = True
        return None
    if env in ("", "auto"):
        candidates = _BACKEND_ORDER
    elif env in _BACKEND_ORDER:
        candidates = (env,)
    else:
        _IMPL = None
        _REASON = (
            f"REPRO_NATIVE={env!r} names no known backend "
            f"(known: {', '.join(_BACKEND_ORDER)}, or 0/auto)"
        )
        _DETECTED = True
        return None
    failures = []
    for name in candidates:
        try:
            impl = _load_backend(name)
            _self_check(impl)
        except Exception as exc:  # any failure → try the next backend
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        _IMPL = impl
        _REASON = None
        _DETECTED = True
        return impl
    _IMPL = None
    _REASON = "no native backend usable — " + "; ".join(failures)
    _DETECTED = True
    return None


def refresh() -> None:
    """Forget the cached detection result (tests flip ``REPRO_NATIVE``)."""
    global _DETECTED, _IMPL, _REASON
    _DETECTED = False
    _IMPL = None
    _REASON = None


def available() -> bool:
    """Whether a compiled backend passed detection and the golden check."""
    return _detect() is not None


def unavailable_reason() -> Optional[str]:
    """Why the native tier is unavailable; None when it is available."""
    _detect()
    return _REASON


def backend_info() -> Optional[dict]:
    """``{"name", "version", "compiler"}`` of the selected backend."""
    impl = _detect()
    if impl is None:
        return None
    return {
        "name": impl.name,
        "version": impl.version,
        "compiler": impl.compiler,
    }


def require():
    """The selected backend object, or :class:`NativeUnavailable`."""
    impl = _detect()
    if impl is None:
        raise NativeUnavailable(
            "native kernel tier unavailable: "
            + (_REASON or "no backend detected")
            + ". Install the optional extra (pip install 'bitcolor-repro[native]') "
            "or ensure a system C compiler (cc/gcc/clang) is on PATH; "
            "or drop native_strict/backend='native' to fall back to the "
            "vectorized tier."
        )
    return impl


# ----------------------------------------------------------------------
# Drop-in kernels (the vectorized contract, compiled)
# ----------------------------------------------------------------------

def scatter_or_colors(
    rows: np.ndarray,
    colors: np.ndarray,
    num_rows: int,
    num_words: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Native Stage-0 scatter-OR; drop-in for the vectorized kernel."""
    impl = require()
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    colors = np.ascontiguousarray(colors, dtype=np.int64)
    if rows.shape != colors.shape:
        raise ValueError("rows and colors must have the same length")
    accumulate = None
    if out is None:
        buf = np.zeros((num_rows, num_words), dtype=np.uint64)
    elif (
        out.dtype == np.uint64
        and out.flags["C_CONTIGUOUS"]
        and out.shape == (num_rows, num_words)
    ):
        buf = out
    else:
        # OR into a fresh buffer, then fold into the caller's view so
        # non-contiguous/odd-layout outputs still accumulate in place.
        accumulate = out
        buf = np.zeros((num_rows, num_words), dtype=np.uint64)
    status, detail = impl.scatter_or(rows, colors, buf, num_rows, num_words)
    if status == -1:
        raise ValueError(
            f"color {detail} does not fit in {num_words} state words"
        )
    if status == -2:
        raise IndexError(
            f"index {detail} is out of bounds for axis 0 with size {num_rows}"
        )
    if accumulate is not None:
        np.bitwise_or(accumulate, buf, out=accumulate)
        buf = accumulate
    obs = get_registry()
    if obs.enabled:
        obs.add("kernels.scatter_or.calls")
        obs.add("kernels.scatter_or.words_ored", status)
        obs.observe("kernels.batch_rows", num_rows)
    return out if out is not None else buf


def first_free_colors_packed(states: np.ndarray) -> np.ndarray:
    """Native Stage-1 batch first-free-color; drop-in for the vectorized kernel."""
    impl = require()
    states = np.ascontiguousarray(states, dtype=np.uint64)
    if states.ndim != 2:
        raise ValueError("states must be a (rows, words) matrix")
    obs = get_registry()
    if obs.enabled:
        obs.add("kernels.first_free.rows", states.shape[0])
    result = np.empty(states.shape[0], dtype=np.int64)
    bad = impl.first_free(states, result)
    if bad:
        if states.shape[1] == 1:
            raise OverflowError("state word saturated; need wider color state")
        raise OverflowError(
            f"state row saturated across all {states.shape[1]} words; "
            "need wider color state"
        )
    return result
