"""Numba backend of the native kernel tier.

Importing this module requires :mod:`numba`; the capability probe in
:mod:`repro.kernels.native` imports it inside a ``try`` and treats any
failure (missing package, broken LLVM, typing error during the warm-up
compile) as "backend unavailable", falling through to the C-compiler
backend.  The jitted functions are exact transliterations of the same
loops the C translation unit in ``_cc.py`` implements — one behaviour
contract, two compilers — and both are golden-checked against the
vectorized kernels before selection.
"""

from __future__ import annotations

import numba
import numpy as np
from numba import njit

__all__ = ["load"]

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)


@njit(cache=True)
def _scatter_or(rows, colors, out, num_rows, num_words):
    maxc = np.int64(0)
    words_ored = np.int64(0)
    bad_row = np.int64(0)
    has_bad = False
    for i in range(rows.size):
        c = colors[i]
        if c <= 0:
            continue
        if c > maxc:
            maxc = c
        r = rows[i]
        if (r < -num_rows or r >= num_rows) and not has_bad:
            has_bad = True
            bad_row = r
        words_ored += 1
    if maxc > num_words * 64:
        return np.int64(-1), maxc
    if has_bad:
        return np.int64(-2), bad_row
    for i in range(rows.size):
        c = colors[i]
        if c <= 0:
            continue
        r = rows[i]
        if r < 0:
            r += num_rows
        idx = c - 1
        out[r, idx >> 6] |= _ONE << np.uint64(idx & 63)
    return words_ored, np.int64(0)


@njit(cache=True)
def _first_free(states, out):
    rows, words = states.shape
    for r in range(rows):
        w = 0
        while w < words and states[r, w] == _FULL:
            w += 1
        if w == words:
            return np.int64(r + 1)
        x = states[r, w]
        v = ((~x) & (x + _ONE)) - _ONE
        cnt = np.int64(0)
        while v != np.uint64(0):
            v &= v - _ONE
            cnt += 1
        out[r] = w * 64 + cnt + 1
    return np.int64(0)


@njit(cache=True)
def _heap_push(hf, hb, size, fin, blk):
    i = size
    while i > 0:
        par = (i - 1) >> 1
        if hf[par] <= fin:
            break
        hf[i] = hf[par]
        hb[i] = hb[par]
        i = par
    hf[i] = fin
    hb[i] = blk
    return size + 1


@njit(cache=True)
def _heap_pop(hf, hb, size):
    blk = hb[0]
    m = size - 1
    fin = hf[m]
    mb = hb[m]
    i = 0
    while True:
        child = 2 * i + 1
        if child >= m:
            break
        if child + 1 < m and hf[child + 1] < hf[child]:
            child += 1
        if hf[child] >= fin:
            break
        hf[i] = hf[child]
        hb[i] = hb[child]
        i = child
    hf[i] = fin
    hb[i] = mb
    return blk, m


@njit(cache=True)
def _replay_epoch(
    lo, nloc, v_t, p, ns, mgr, bwc,
    interval, wc_ldv, or_cyc, hitx, rc, sc, cpb, fin_bwc,
    comp_l, dram_l, da_l, c0_l, cl_l, edge_dram, mi_l, k_l,
    lptr, ldst, vptr, vdst, vblk,
    pe_bind, colors,
    pe_free, seen, carry, finish_v, servers,
    heap_fin, heap_blk, dlist, state,
):
    floor_t = state[0]
    maxfin = state[1]
    heap_size = state[2]
    ep_first = state[3]

    for vl in range(nloc):
        v = lo + vl

        # dispatch: PE choice and start time
        pe = pe_bind[v]
        if pe < 0:
            pe = 0
            fpe = pe_free[0]
            for q in range(1, p):
                if pe_free[q] < fpe:
                    fpe = pe_free[q]
                    pe = q
        else:
            fpe = pe_free[pe]
        t = fpe if fpe > floor_t else floor_t
        floor_t = t + interval
        if ep_first < 0:
            ep_first = t

        # commits due before this dispatch: merge-buffer invalidation
        if mgr:
            while heap_size > 0 and heap_fin[0] <= t:
                wb, heap_size = _heap_pop(heap_fin, heap_blk, heap_size)
                for q in range(p):
                    if carry[q] == wb:
                        carry[q] = -1

        # conflict deferral against in-flight lower neighbours
        dep = np.int64(0)
        nd = 0
        d_hdv_occ = np.int64(0)
        if maxfin > t:
            for i in range(lptr[vl], lptr[vl + 1]):
                w = ldst[i]
                fw = finish_v[w]
                if fw > t:
                    if w < v_t:
                        d_hdv_occ += 1
                    dup = False
                    for j in range(nd):
                        if dlist[j] == w:
                            dup = True
                            break
                    if not dup:
                        dlist[nd] = w
                        nd += 1
                        if fw > dep:
                            dep = fw

        ct = comp_l[vl]
        dr = dram_l[vl]
        if nd == 0:
            if mgr:
                if c0_l[vl] == carry[pe]:
                    state[10] += 1
                    dr += da_l[vl]
                cl = cl_l[vl]
                if cl >= 0:
                    carry[pe] = cl
        else:
            # correction path: replay the fetch sequence without the
            # deferred neighbours
            state[9] += nd
            lp = vptr[vl]
            rp = vptr[vl + 1]
            cur = carry[pe]
            last_c = np.int64(-1)
            merged = np.int64(0)
            misses = np.int64(0)
            stream = np.int64(0)
            reads = np.int64(0)
            for i in range(lp, rp):
                w = vdst[i]
                deferred = False
                for j in range(nd):
                    if dlist[j] == w:
                        deferred = True
                        break
                if deferred:
                    continue
                b = vblk[i]
                reads += 1
                if mgr and b == cur:
                    merged += 1
                else:
                    misses += 1
                    if last_c >= 0 and b == last_c + 1:
                        stream += 1
                    last_c = b
                    cur = b
            if mgr:
                carry[pe] = cur
            dr = edge_dram[vl] + stream * sc + (misses - stream) * rc
            ct -= hitx * d_hdv_occ
            state[15] += rp - lp
            state[16] += reads
            state[12] += merged
            state[14] += misses
            state[11] += mi_l[vl]
            state[13] += k_l[vl]
            state[17] += d_hdv_occ

        # finalize cycles (Steps 6-7)
        if bwc:
            cf = fin_bwc
        else:
            col = colors[v]
            sm = seen[pe]
            cf = col + sm
            if col > sm:
                seen[pe] = col
        if nd > 0:
            cf += or_cyc

        # write-back + physical DRAM channel queueing
        if v < v_t:
            wc = np.int64(1)
            dd = dr
        else:
            wc = wc_ldv
            dd = dr + wc_ldv
        qd = np.int64(0)
        if dd > 0:
            si = 0
            s0 = servers[0]
            for q in range(1, ns):
                if servers[q] < s0:
                    s0 = servers[q]
                    si = q
            if s0 > t:
                qd = s0 - t
                servers[si] = s0 + dd
            else:
                servers[si] = t + dd

        # finish recurrence
        te = t + ct + qd + dr
        if dep > te:
            stall = dep - te
            fin = dep + cf + wc
        else:
            stall = np.int64(0)
            fin = te + cf + wc

        pe_free[pe] = fin
        finish_v[v] = fin
        if fin > maxfin:
            maxfin = fin
        if mgr and v >= v_t:
            heap_size = _heap_push(heap_fin, heap_blk, heap_size, fin, v // cpb)

        state[4] += ct + cf
        state[5] += dr
        state[6] += wc
        state[7] += stall
        state[8] += qd

    state[0] = floor_t
    state[1] = maxfin
    state[2] = heap_size
    state[3] = ep_first
    return np.int64(0)


class _NumbaKernels:
    """The jitted entry points behind the shared backend protocol."""

    name = "numba"
    compiler = "numba"
    library_path = None

    def __init__(self):
        self.version = numba.__version__

    def scatter_or(self, rows, colors, out, num_rows, num_words):
        status, detail = _scatter_or(
            rows, colors, out, np.int64(num_rows), np.int64(num_words)
        )
        return int(status), int(detail)

    def first_free(self, states, out):
        return int(_first_free(states, out))

    def replay_epoch(self, scalars, epoch_arrays, persistent_arrays):
        args = [np.int64(s) for s in scalars]
        args.extend(epoch_arrays)
        args.extend(persistent_arrays)
        _replay_epoch(*args)


def _warm(impl: _NumbaKernels) -> None:
    """Force compilation of every jitted function at probe time.

    A typing or LLVM failure must disqualify the backend during
    detection (where the probe catches it), not on the first real call.
    """
    out = np.zeros((1, 1), dtype=np.uint64)
    impl.scatter_or(
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), out, 1, 1
    )
    impl.first_free(out, np.zeros(1, dtype=np.int64))
    z = np.zeros(1, dtype=np.int64)
    e = np.zeros(2, dtype=np.int64)
    impl.replay_epoch(
        (0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 1, 1, 0),
        [z, z, z, z, z, z, z, z, e, z, e, z, z],
        [z, z, z.copy(), z.copy(), z.copy(), z.copy(), z.copy(),
         z.copy(), z.copy(), z.copy(), np.zeros(18, dtype=np.int64)],
    )


def load() -> _NumbaKernels:
    """Compile-warm the jitted kernels; raises when numba cannot."""
    impl = _NumbaKernels()
    _warm(impl)
    return impl
