"""Segmented (per-CSR-row) array primitives for batched accounting.

The batched accelerator engine (:mod:`repro.hw.batched`) models per-task
quantities — prune boundaries, DRAM-block run lengths, stream continuity
— as reductions over *segments* of one flat edge array, where a segment
is the CSR row of one vertex task.  These helpers are the shared
vocabulary for that style: every function takes flat arrays plus either
an ``offsets`` array (CSR convention: segment ``i`` is
``values[offsets[i]:offsets[i+1]]``) or a precomputed per-element
segment-id array, and returns per-segment or per-element results without
any Python-level loop over segments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_ids",
    "rows_sorted",
    "run_start_mask",
    "adjacent_pair_counts",
    "segment_max",
    "prefix_block_counts",
]


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Per-element segment id for a CSR ``offsets`` array.

    ``segment_ids([0, 2, 2, 5]) == [0, 0, 2, 2, 2]``.
    """
    offsets = np.asarray(offsets)
    counts = np.diff(offsets)
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


def rows_sorted(offsets: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-segment flag: is the segment non-decreasing?

    Matches the per-task check the event-driven BWPE performs on each
    neighbour list (``size < 2`` counts as sorted).  Vectorized as one
    pass over adjacent pairs: a pair only disqualifies the row that
    contains *both* its elements.
    """
    offsets = np.asarray(offsets)
    values = np.asarray(values)
    n = offsets.size - 1
    ok = np.ones(n, dtype=bool)
    if values.size >= 2:
        seg = segment_ids(offsets)
        bad = (values[1:] < values[:-1]) & (seg[1:] == seg[:-1])
        ok[seg[1:][bad]] = False
    return ok


def run_start_mask(seg: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Mask selecting the first element of each run of equal values.

    A run never crosses a segment boundary: the first element of every
    segment always starts a run.  ``seg`` must be non-decreasing (CSR
    order).  This is the collapse step of the MGR model — consecutive
    equal DRAM-block indices within one task merge into one request.
    """
    seg = np.asarray(seg)
    values = np.asarray(values)
    starts = np.ones(values.size, dtype=bool)
    if values.size >= 2:
        starts[1:] = (values[1:] != values[:-1]) | (seg[1:] != seg[:-1])
    return starts


def segment_max(
    offsets: np.ndarray, values: np.ndarray, *, initial: int = 0
) -> np.ndarray:
    """Per-segment maximum, with ``initial`` for empty segments.

    The compressed-layout builder (:mod:`repro.graph.layout`) uses this
    to size per-row entry widths: max neighbour ID per row for the
    degree-sorted encoding, max adjacent delta per row for the
    delta-compressed one.
    """
    offsets = np.asarray(offsets)
    values = np.asarray(values)
    n = offsets.size - 1
    counts = np.diff(offsets)
    out = np.full(n, initial, dtype=np.int64)
    if values.size == 0 or n == 0:
        return out
    # reduceat misbehaves on empty segments (returns values[start]) and
    # rejects start == len(values); clamp, then overwrite empties.
    starts = np.minimum(offsets[:-1], values.size - 1)
    reduced = np.maximum.reduceat(values.astype(np.int64), starts)
    nonempty = counts > 0
    out[nonempty] = np.maximum(reduced[nonempty], initial)
    return out


def prefix_block_counts(
    header_bits: np.ndarray,
    entry_bits: np.ndarray,
    counts: np.ndarray,
    block_bits: int,
) -> np.ndarray:
    """Blocks fetched for a ``counts``-entry prefix of each encoded row.

    The layout layer's cost model: row ``i`` is stored as a
    ``header_bits[i]``-bit first entry followed by ``entry_bits[i]``-bit
    entries, packed tight and block-aligned per row.  Reading the first
    ``counts[i]`` entries therefore touches
    ``ceil((header + (counts-1) * entry) / block_bits)`` sequential
    blocks; a zero-count prefix touches none.  With header = entry =
    ``edge_index_bits`` this reduces exactly to the plain-CSR
    ``ceil(counts / edges_per_block)`` the engines used before layouts
    existed.
    """
    if block_bits < 1:
        raise ValueError("block_bits must be positive")
    header_bits = np.asarray(header_bits, dtype=np.int64)
    entry_bits = np.asarray(entry_bits, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    bits = header_bits + np.maximum(counts - 1, 0) * entry_bits
    blocks = -(-bits // block_bits)
    return np.where(counts > 0, blocks, 0)


def adjacent_pair_counts(
    seg: np.ndarray, pair_flags: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment count of flagged *adjacent pairs*.

    ``pair_flags`` has ``len(seg) - 1`` entries, one per adjacent element
    pair; pairs spanning two segments are ignored.  Used to count stream
    continuations (``block[j] == block[j-1] + 1``) per task.
    """
    seg = np.asarray(seg)
    pair_flags = np.asarray(pair_flags)
    if seg.size < 2:
        return np.zeros(num_segments, dtype=np.int64)
    inside = pair_flags & (seg[1:] == seg[:-1])
    return np.bincount(seg[1:][inside], minlength=num_segments)
