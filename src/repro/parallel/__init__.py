"""Partition-parallel execution layer — the software analogue of the PE array.

BitColor's scale-out story is vertices sharded across parallel bit-wise
engines with conflicts deferred to a small table.  This package is that
story in multiprocessing form:

* :mod:`repro.parallel.shm` — zero-copy CSR transport over
  ``multiprocessing.shared_memory`` (no per-task graph pickling);
* :mod:`repro.parallel.pool` — ordered pool mapping with a true-serial
  ``workers=1`` reference path;
* :mod:`repro.parallel.coloring` — speculative per-shard coloring plus
  the boundary-repair pass, reachable as ``repro.color(graph,
  backend="parallel", workers=N)``.

The shard count, not the worker count, determines the answer: results
are byte-identical for any pool size.
"""

from .coloring import (
    DEFAULT_NUM_SHARDS,
    ParallelColoringResult,
    parallel_bitwise_coloring,
)
from .pool import pool_map, resolve_workers
from .shm import CSRSpec, SharedCSR, attach_graph, mp_context

__all__ = [
    "CSRSpec",
    "DEFAULT_NUM_SHARDS",
    "ParallelColoringResult",
    "SharedCSR",
    "attach_graph",
    "mp_context",
    "parallel_bitwise_coloring",
    "pool_map",
    "resolve_workers",
]
