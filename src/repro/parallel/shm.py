"""Zero-copy CSR transport via ``multiprocessing.shared_memory``.

Pickling a multi-hundred-thousand-slot CSR graph into every pool worker
would copy the whole structure per task — the software equivalent of
funnelling every BWPE through one DRAM channel.  Instead the parent
exports ``offsets`` and ``edges`` into two named shared-memory blocks
once (:class:`SharedCSR`), ships only the tiny :class:`CSRSpec` handle,
and each worker maps the blocks into a read-only :class:`CSRGraph` view
(:func:`attach_graph`) — no per-task serialization at all.

Lifecycle: the parent owns the blocks (``close`` + ``unlink`` via the
context manager); workers only ``close`` their attachments.  On spawn
start methods the attachment is unregistered from the per-process
resource tracker so a worker's exit cannot reap blocks the parent still
owns (a well-known CPython < 3.13 footgun; fork workers share the
parent's tracker and need no such dance).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "CSRSpec",
    "SharedCSR",
    "SharedI64Array",
    "attach_array",
    "attach_graph",
    "detach_all",
    "mp_context",
]


def mp_context():
    """The preferred multiprocessing context: ``fork`` where available.

    Fork keeps worker start-up at milliseconds and shares the parent's
    resource tracker; platforms without it (Windows, macOS default) fall
    back to ``spawn``, which :func:`attach_graph` also supports.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class CSRSpec:
    """Everything a worker needs to re-materialise the shared graph."""

    offsets_name: str
    edges_name: str
    num_vertices: int
    num_edges: int
    graph_name: str
    meta: Tuple[Tuple[str, object], ...] = ()


class SharedCSR:
    """Parent-side owner of a graph's shared-memory blocks.

    Create one per graph (``SharedCSR.for_graph`` memoises on the graph
    instance so repeated parallel colorings export exactly once) and ship
    ``spec`` to workers.  Blocks are unlinked on :meth:`close` or when
    the owner is garbage-collected — mapped workers keep the memory alive
    until they drop their attachments (POSIX unlink semantics).
    """

    def __init__(self, graph: CSRGraph):
        self._offsets_shm = self._export(graph.offsets)
        self._edges_shm = self._export(graph.edges)
        self.spec = CSRSpec(
            offsets_name=self._offsets_shm.name,
            edges_name=self._edges_shm.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            graph_name=graph.name,
            meta=tuple(sorted(graph.meta.items())),
        )

    @classmethod
    def for_graph(cls, graph: CSRGraph) -> "SharedCSR":
        """The graph's shared export, created on first use and memoised.

        Lives in the graph's per-instance cache, so it is destroyed (and
        the blocks unlinked) together with the graph.
        """
        shared = graph._cache.get("parallel.shared_csr")
        if shared is None:
            shared = graph._cache["parallel.shared_csr"] = cls(graph)
        return shared

    @staticmethod
    def _export(arr: np.ndarray) -> shared_memory.SharedMemory:
        # SharedMemory refuses size 0; an empty array still gets one byte.
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        view = np.ndarray(arr.shape, dtype=np.int64, buffer=shm.buf)
        view[:] = arr
        return shm

    def close(self) -> None:
        """Release this process's mapping and destroy the blocks."""
        for shm in (self._offsets_shm, self._edges_shm):
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# Worker-side attachment cache: one mapping per (block name, process) —
# the value pairs the materialised view (a CSRGraph, with its memoised
# slot sources / dependency levels, or a bare ndarray) with the
# SharedMemory objects keeping its buffers alive.
_ATTACHED: Dict[str, Tuple[object, list]] = {}


def attach_graph(spec: CSRSpec) -> CSRGraph:
    """Map the shared blocks into a read-only :class:`CSRGraph` view.

    Idempotent per process: repeated calls with the same spec return the
    cached instance, so per-graph memos (slot sources, dependency-level
    schedules) survive across tasks within a worker.
    """
    cached = _ATTACHED.get(spec.offsets_name)
    if cached is not None:
        return cached[0]
    offsets_shm = _attach_block(spec.offsets_name)
    edges_shm = _attach_block(spec.edges_name)
    offsets = np.ndarray(spec.num_vertices + 1, dtype=np.int64, buffer=offsets_shm.buf)
    edges = np.ndarray(spec.num_edges, dtype=np.int64, buffer=edges_shm.buf)
    graph = CSRGraph(offsets=offsets, edges=edges, name=spec.graph_name)
    graph.meta.update(dict(spec.meta))
    # Keep the SharedMemory objects referenced for as long as the view
    # lives — dropping them would invalidate the buffers.
    _ATTACHED[spec.offsets_name] = (graph, [offsets_shm, edges_shm])
    return graph


def detach_all() -> int:
    """Drop every cached attachment this process holds; returns the count.

    Long-lived processes (mesh workers) attach graphs as jobs arrive;
    without an explicit release the mappings — and, on POSIX, the
    underlying pages of since-unlinked blocks — live until process exit.
    The mesh's ``shard.release`` op calls this between shard jobs.
    """
    released = len(_ATTACHED)
    for _graph, blocks in _ATTACHED.values():
        for shm in blocks:
            try:
                shm.close()
            except Exception:  # pragma: no cover - platform dependent
                pass
    _ATTACHED.clear()
    return released


class SharedI64Array:
    """Parent-side owner of one named, *writable* int64 shared array.

    The mesh's cross-worker shard protocol uses one of these as the
    colors vector: the router creates it, every worker attaches the same
    block (:func:`attach_array`) and writes its own shard's slots in
    place — results travel by memory, not by wire.  Safe because shard
    vertex sets are disjoint and repair-round ready sets are mutually
    non-adjacent; no two processes ever write the same slot in a phase.

    Same ownership rules as :class:`SharedCSR`: the creator unlinks on
    :meth:`close`, attachments only close their own mapping.
    """

    def __init__(self, size: int, *, fill: Optional[int] = None):
        self.size = int(size)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, self.size * 8)
        )
        self.array = np.ndarray(self.size, dtype=np.int64, buffer=self._shm.buf)
        if fill is not None:
            self.array[:] = fill

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping and destroy the block."""
        try:
            self.array = None
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SharedI64Array":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def attach_array(name: str, size: int) -> np.ndarray:
    """Map a :class:`SharedI64Array` block into a writable ndarray view.

    Cached per process like :func:`attach_graph`, and released together
    with graph attachments by :func:`detach_all`.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[0]
    shm = _attach_block(name)
    array = np.ndarray(int(size), dtype=np.int64, buffer=shm.buf)
    _ATTACHED[name] = (array, [shm])
    return array


def _attach_block(name: str) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(name=name)
    # Attaching registers the block with the resource tracker again
    # (CPython < 3.13 has no track=False): under spawn that lets a worker
    # exit unlink blocks the parent still owns, under fork it leaves
    # duplicate stale entries the shared tracker warns about at exit.
    # The owner's own registration is the one that matters — drop the
    # attachment's.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - platform dependent
        pass
    return shm
