"""Persistent worker pools shared by the parallel backend and sweep fan-out.

The PE-array analogy matters here: hardware engines exist once and tasks
stream through them, so the software pool is *persistent* too — created
on first use per worker count, reused by every later parallel call, and
reaped at interpreter exit.  Re-forking a pool per coloring would bury
millisecond-scale shard work under process start-up.

One entry point, :func:`pool_map`: run ``fn`` over ``items`` on a
``workers``-wide pool, falling back to a plain inline map when a pool
cannot help (one worker, zero/one item, or already inside a pool worker
— daemonic children cannot fork grandchildren).  The inline path is not
an optimisation detail: it is what makes ``workers=1`` a true serial
reference run, which the determinism tests compare the pooled runs
against.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from .shm import mp_context

__all__ = ["pool_map", "resolve_workers", "shutdown_pools"]

T = TypeVar("T")
R = TypeVar("R")

_POOLS: Dict[int, object] = {}


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None`` → CPU count, floor 1."""
    if workers is None:
        import os

        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _shared_pool(workers: int):
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = mp_context().Pool(processes=workers)
    return pool


def shutdown_pools() -> None:
    """Terminate every persistent pool (normally run at interpreter exit)."""
    for pool in _POOLS.values():
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown best effort
            pass
    _POOLS.clear()


atexit.register(shutdown_pools)


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving item order.

    Results come back in item order regardless of completion order, so
    callers see identical output for any ``workers`` value.  ``chunksize``
    is pinned to 1: shard/sweep tasks are few and coarse, and eager
    hand-out keeps the pool busy when task costs are skewed.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1 or multiprocessing.current_process().daemon:
        return [fn(item) for item in items]
    return _shared_pool(workers).map(fn, items, chunksize=1)
