"""Partition-parallel bit-wise coloring — the software PE array.

BitColor scales by sharding vertices across parallel bit-wise engines,
letting each engine color its own slice against its own DRAM channel and
deferring the handful of cross-engine collisions to the Data Conflict
Table.  This module is that scheme as a multi-process backend:

1. **Shard** — an edge-cut partition of the vertex set
   (:func:`repro.graph.partition.partition_vertex_ranges`); the shard
   count is a *fixed algorithm parameter*, not the worker count.
2. **Speculative shard coloring** — each worker colors the induced
   subgraph of its shard with the vectorized bit-wise kernels, reading
   the CSR arrays zero-copy out of shared memory.  Interior vertices are
   final; boundary vertices are tentative because cross-shard edges were
   invisible.
3. **Boundary repair** — cross-shard edges whose endpoints drew the same
   color are resolved exactly like the DCT resolves in-flight conflicts:
   the smaller vertex ID keeps its color, the larger is re-colored
   first-free against its *full* neighbourhood, in dependency order.

Determinism: the coloring is a pure function of
``(graph, num_shards, partition strategy, prune_uncolored)``.  Workers
only change which process colors which shard, never the shard contents
or the repair order — so any ``workers`` value yields byte-identical
colors, which the tests pin across ``workers ∈ {1, 2, 4}``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..coloring.bitwise import bitwise_greedy_coloring
from ..coloring.outcome import OutcomeMixin
from ..coloring.verify import UNCOLORED
from ..graph.csr import CSRGraph
from ..graph.partition import (
    ShardPlan,
    partition_round_robin,
    partition_vertex_ranges,
)
from ..obs import Registry, get_registry, use_registry
from .pool import pool_map, resolve_workers
from .shm import CSRSpec, SharedCSR, attach_graph

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "ParallelColoringResult",
    "color_shard",
    "find_cross_shard_conflicts",
    "parallel_bitwise_coloring",
    "partitioner_for",
    "recolor_first_free",
    "split_ready",
]

DEFAULT_NUM_SHARDS = 8
"""Default shard count — mirrors a small BWPE array and, crucially, is
independent of ``workers`` so the answer never depends on the pool size."""

_PARTITIONERS = {
    "range": partition_vertex_ranges,
    "round_robin": partition_round_robin,
}


def partitioner_for(strategy: str):
    """The partition function for ``strategy`` (raises listing options)."""
    try:
        return _PARTITIONERS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; "
            f"options: {sorted(_PARTITIONERS)}"
        ) from None


@dataclass
class ParallelColoringResult(OutcomeMixin):
    """Coloring plus scale-out accounting for the parallel backend."""

    colors: np.ndarray
    num_colors: int
    num_shards: int
    workers: int
    partition_strategy: str
    boundary_vertices: int
    """Vertices with at least one cross-shard neighbour."""
    cut_edges: int
    """Directed edge slots crossing shard boundaries."""
    conflicts: int
    """Boundary vertices whose speculative color collided and was redone."""
    repair_rounds: int
    """Dependency rounds the boundary-repair pass needed."""


def parallel_bitwise_coloring(
    graph: CSRGraph,
    *,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    partition: str = "range",
    prune_uncolored: bool = False,
) -> ParallelColoringResult:
    """Color ``graph`` with the partition-parallel bit-wise scheme.

    Parameters
    ----------
    workers:
        Pool width (default: CPU count).  ``workers=1`` runs the identical
        shard schedule inline — same colors, no pool.
    num_shards:
        Number of vertex shards (default :data:`DEFAULT_NUM_SHARDS`).
        This — not ``workers`` — is what the result depends on.
    partition:
        ``"range"`` (contiguous vertex ranges, ID-order preserving) or
        ``"round_robin"``.
    prune_uncolored:
        Forwarded to the per-shard bit-wise coloring (the paper's PUV
        rule, applied within each shard's ascending-ID walk).
    """
    workers = resolve_workers(workers)
    if num_shards is None:
        num_shards = DEFAULT_NUM_SHARDS
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    partitioner = partitioner_for(partition)

    reg = get_registry()
    with reg.span(
        "coloring.parallel",
        workers=workers,
        num_shards=num_shards,
        partition=partition,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
    ) as span:
        plan = partitioner(graph, num_shards)
        colors = _color_shards(
            graph, plan, workers, prune_uncolored, reg
        )
        conflicted = find_cross_shard_conflicts(graph, plan, colors)
        repair_rounds = _repair_conflicts(graph, colors, conflicted)
        used = np.unique(colors[colors != UNCOLORED])
        span.set(conflicts=int(conflicted.size), repair_rounds=repair_rounds)

    result = ParallelColoringResult(
        colors=colors,
        num_colors=int(used.size),
        num_shards=num_shards,
        workers=workers,
        partition_strategy=partition,
        boundary_vertices=plan.num_boundary,
        cut_edges=plan.cut_edges,
        conflicts=int(conflicted.size),
        repair_rounds=repair_rounds,
    )
    if reg.enabled:
        reg.add("coloring.parallel.cut_edges", plan.cut_edges)
        reg.add("coloring.parallel.boundary_vertices", plan.num_boundary)
        reg.add("coloring.parallel.conflicts", result.conflicts)
        reg.add("coloring.parallel.repair_rounds", repair_rounds)
        reg.gauge("coloring.parallel.colors", result.num_colors)
    return result


# ----------------------------------------------------------------------
# Phase 1 — speculative shard coloring (the pool fan-out)
# ----------------------------------------------------------------------
def _color_shards(
    graph: CSRGraph,
    plan: ShardPlan,
    workers: int,
    prune_uncolored: bool,
    reg: Registry,
) -> np.ndarray:
    colors = np.zeros(graph.num_vertices, dtype=np.int64)
    if graph.num_vertices == 0:
        return colors
    pooled = workers > 1 and plan.num_shards > 1
    spec = SharedCSR.for_graph(graph).spec if pooled else None
    tasks = [
        (spec, shard, plan.num_shards, plan.strategy, prune_uncolored, reg.enabled)
        for shard in range(plan.num_shards)
    ]
    if pooled:
        shard_results = pool_map(_shard_task, tasks, workers)
    else:
        shard_results = [_color_one_shard(graph, task) for task in tasks]
    for shard, vertices, shard_colors, snapshot in shard_results:
        colors[vertices] = shard_colors
        if snapshot is not None:
            reg.merge_snapshot(snapshot, shard=shard)
    return colors


def _shard_task(task: Tuple) -> Tuple[int, np.ndarray, np.ndarray, Optional[Dict]]:
    """Pool-side entry: attach the shared CSR (cached per process) and color.

    The task payload is the tiny :class:`CSRSpec` plus four scalars —
    nothing graph-sized crosses the process boundary except through
    shared memory.
    """
    return _color_one_shard(attach_graph(task[0]), task)


def _shard_vertices(n: int, shard: int, num_shards: int, strategy: str) -> np.ndarray:
    """The ascending vertex IDs of one shard, recomputed locally."""
    if strategy == "range":
        base, extra = divmod(n, num_shards)
        lo = shard * base + min(shard, extra)
        hi = lo + base + (1 if shard < extra else 0)
        return np.arange(lo, hi, dtype=np.int64)
    return np.arange(shard, n, num_shards, dtype=np.int64)


def _shard_subgraph(
    graph: CSRGraph, shard: int, num_shards: int, strategy: str
) -> Tuple[np.ndarray, CSRGraph]:
    """The shard's vertex IDs and induced subgraph, memoised on the graph.

    A pure function of the immutable graph and the shard parameters, so
    repeated colorings (benchmarks, sweeps) skip re-slicing; worker
    processes get the same effect through their cached attachment.
    """
    key = ("parallel.shard_subgraph", num_shards, strategy, shard)
    cached = graph._cache.get(key)
    if cached is None:
        vertices = _shard_vertices(graph.num_vertices, shard, num_shards, strategy)
        sub = graph.subgraph(vertices, name=f"{graph.name}-shard{shard}")
        cached = graph._cache[key] = (vertices, sub)
    return cached


def _color_one_shard(
    graph: CSRGraph, task: Tuple
) -> Tuple[int, np.ndarray, np.ndarray, Optional[Dict]]:
    _, shard, num_shards, strategy, prune_uncolored, obs_enabled = task
    shard_reg = Registry() if obs_enabled else None
    scope = use_registry(shard_reg) if shard_reg is not None else nullcontext()
    with scope:
        local_reg = get_registry()
        vertices, sub = _shard_subgraph(graph, shard, num_shards, strategy)
        with local_reg.span(
            "coloring.parallel.shard", shard=shard, vertices=int(vertices.size)
        ):
            if vertices.size == 0:
                local_colors = np.zeros(0, dtype=np.int64)
            else:
                local_colors = bitwise_greedy_coloring(
                    sub, prune_uncolored=prune_uncolored, backend="vectorized"
                ).colors
    snapshot = shard_reg.snapshot() if shard_reg is not None else None
    return shard, vertices, local_colors, snapshot


# ----------------------------------------------------------------------
# Phase 2 — conflict detection and boundary repair (the DCT's job)
# ----------------------------------------------------------------------
def find_cross_shard_conflicts(
    graph: CSRGraph, plan: ShardPlan, colors: np.ndarray
) -> np.ndarray:
    """Vertices that must recolor: the larger endpoint of each clashing cut edge.

    Smaller-ID-wins mirrors the paper's resolution rule (the BWPE with
    the smaller index completes first; the later task defers).
    """
    src = graph.source_of_edge_slots()
    dst = graph.edges
    clash = (
        (plan.owner[src] != plan.owner[dst])
        & (src < dst)
        & (colors[src] == colors[dst])
        & (colors[src] != UNCOLORED)
    )
    return np.unique(dst[clash])


def color_shard(
    graph: CSRGraph,
    shard: int,
    num_shards: int,
    *,
    strategy: str = "range",
    prune_uncolored: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Speculatively color one shard; returns ``(vertices, colors)``.

    The per-shard half of the parallel scheme as a standalone step, so a
    remote executor (a mesh worker holding a shared-memory attachment of
    the graph) can run exactly the shard coloring the in-process pool
    would — same induced subgraph, same vectorized kernel, byte-identical
    speculative colors.
    """
    vertices, sub = _shard_subgraph(graph, shard, num_shards, strategy)
    if vertices.size == 0:
        return vertices, np.zeros(0, dtype=np.int64)
    return vertices, bitwise_greedy_coloring(
        sub, prune_uncolored=prune_uncolored, backend="vectorized"
    ).colors


def split_ready(
    graph: CSRGraph, todo: np.ndarray, pending: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One repair round's partition of ``todo`` into ``(ready, blocked)``.

    A vertex is ready when no smaller-ID neighbour is still pending.
    Ready vertices are mutually non-adjacent — for adjacent ``u < v``,
    pending ``u`` blocks ``v`` — which is the property that makes both
    the batched serial repair and the mesh's distributed per-owner
    repair exact: every ready vertex sees final neighbour colors, and no
    two writers of one round ever touch adjacent slots.
    """
    from ..kernels import gather_ranges

    deg = graph.degrees()
    lens = deg[todo]
    dst = graph.edges[gather_ranges(graph.offsets[todo], lens)]
    rows = np.repeat(np.arange(todo.size, dtype=np.int64), lens)
    blocked = np.zeros(todo.size, dtype=bool)
    blocked[rows[pending[dst] & (dst < todo[rows])]] = True
    return todo[~blocked], todo[blocked]


def recolor_first_free(
    graph: CSRGraph, colors: np.ndarray, ready: np.ndarray
) -> None:
    """Recolor ``ready`` first-free against full neighbourhoods, in place.

    Only valid on a mutually non-adjacent set (one :func:`split_ready`
    round, or any owner-subset of one — first-free results depend only
    on neighbour colors, never on other ready vertices, so splitting a
    round across processes writing one shared colors array stays
    byte-identical to the serial sweep).
    """
    if ready.size == 0:
        return
    from ..kernels import (
        first_free_colors_packed,
        gather_ranges,
        scatter_or_colors,
        words_for_colors,
    )

    # A round's first-free results never exceed the current max color
    # plus one, but later rounds see the new colors — recompute the
    # state width per call so a repair cascade can keep growing.  Extra
    # width (a concurrent owner already wrote a new max) only pads the
    # bitmap; the smallest free color is unchanged.
    num_words = words_for_colors(int(colors.max()) + 1)
    rlens = graph.degrees()[ready]
    rdst = graph.edges[gather_ranges(graph.offsets[ready], rlens)]
    rrows = np.repeat(np.arange(ready.size, dtype=np.int64), rlens)
    state = scatter_or_colors(rrows, colors[rdst], ready.size, num_words)
    colors[ready] = first_free_colors_packed(state)


def _repair_conflicts(
    graph: CSRGraph, colors: np.ndarray, conflicted: np.ndarray
) -> int:
    """Recolor ``conflicted`` first-free against full neighbourhoods.

    Equivalent to walking the conflicted set in ascending ID order and
    recoloring sequentially, but batched: each round colors every
    conflicted vertex with no smaller-ID conflicted neighbour still
    pending (:func:`split_ready` proves round members mutually
    non-adjacent, so one scatter-OR + first-free sweep per round —
    :func:`recolor_first_free` — is exact).  Mutates ``colors``; returns
    the round count.
    """
    if conflicted.size == 0:
        return 0
    pending = np.zeros(graph.num_vertices, dtype=bool)
    pending[conflicted] = True
    colors[conflicted] = UNCOLORED
    todo = conflicted
    rounds = 0
    while todo.size:
        rounds += 1
        ready, todo = split_ready(graph, todo, pending)
        recolor_first_free(graph, colors, ready)
        pending[ready] = False
    return rounds
