"""Graph I/O: SNAP edge-list text, binary ``.npz``, and DIMACS export.

The SNAP parser accepts the format of the datasets in the paper's Table 3
(``# comment`` lines followed by whitespace-separated ``src dst`` pairs)
so a user with the real downloads can feed them straight in.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "load_snap_edge_list",
    "parse_snap_text",
    "save_npz",
    "load_npz",
    "write_dimacs",
    "write_edge_list",
]

PathLike = Union[str, os.PathLike]


def parse_snap_text(text: str, *, name: str = "snap", symmetrize: bool = True) -> CSRGraph:
    """Parse SNAP edge-list text (``# comments`` + ``src dst`` lines).

    Vertex IDs are compacted to ``0..n-1`` preserving numeric order, since
    SNAP files often have sparse ID spaces.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected 'src dst', got {line!r}")
        try:
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer vertex id") from exc
    if not srcs:
        return CSRGraph.empty(0, name=name)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    ids = np.unique(np.concatenate([src, dst]))
    remap = {int(v): i for i, v in enumerate(ids)}
    src = np.asarray([remap[int(v)] for v in src], dtype=np.int64)
    dst = np.asarray([remap[int(v)] for v in dst], dtype=np.int64)
    return CSRGraph.from_arrays(ids.size, src, dst, symmetrize=symmetrize, name=name)


def load_snap_edge_list(path: PathLike, *, symmetrize: bool = True) -> CSRGraph:
    """Load a SNAP-format edge-list text file."""
    p = Path(path)
    return parse_snap_text(p.read_text(), name=p.stem, symmetrize=symmetrize)


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        offsets=graph.offsets,
        edges=graph.edges,
        name=np.asarray(graph.name),
        edges_sorted=np.asarray(bool(graph.meta.get("edges_sorted", False))),
        dbg_reordered=np.asarray(bool(graph.meta.get("dbg_reordered", False))),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        g = CSRGraph(
            offsets=data["offsets"],
            edges=data["edges"],
            name=str(data["name"]),
        )
        if bool(data.get("edges_sorted", False)):
            g.meta["edges_sorted"] = True
        if bool(data.get("dbg_reordered", False)):
            g.meta["dbg_reordered"] = True
        return g


def write_dimacs(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph in DIMACS ``.col`` format (1-based, undirected)."""
    lines = [f"p edge {graph.num_vertices} {graph.num_undirected_edges}"]
    for u, v in graph.iter_edges():
        if u < v:
            lines.append(f"e {u + 1} {v + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write a SNAP-style edge list (each undirected edge once)."""
    lines = [f"# {graph.name}: {graph.num_vertices} vertices"]
    for u, v in graph.iter_edges():
        if u < v:
            lines.append(f"{u}\t{v}")
    Path(path).write_text("\n".join(lines) + "\n")
