"""Degeneracy (k-core) decomposition.

The degeneracy ``d`` of a graph is the smallest number such that every
subgraph has a vertex of degree ≤ d.  It matters to coloring twice:

* greedy coloring in *smallest-last* order (the reverse of the
  degeneracy-removal order, Matula & Beck) uses at most ``d + 1``
  colors — often far below the max-degree bound and a strong
  alternative to the paper's descending-degree (DBG) order;
* ``d + 1`` is also an upper bound certificate that the exact solver
  and the ordering ablations check against.

The implementation is the standard linear-time bucket algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["CoreDecomposition", "core_decomposition", "degeneracy", "degeneracy_order"]


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of the k-core peeling.

    Attributes
    ----------
    core_numbers:
        ``core_numbers[v]`` — the largest k such that v belongs to the
        k-core.
    removal_order:
        Vertices in the order peeled (always a minimum-degree vertex of
        the remaining graph).
    degeneracy:
        ``max(core_numbers)`` (0 for edgeless graphs).
    """

    core_numbers: np.ndarray
    removal_order: np.ndarray

    @property
    def degeneracy(self) -> int:
        return int(self.core_numbers.max()) if self.core_numbers.size else 0

    def k_core_vertices(self, k: int) -> np.ndarray:
        """Vertices of the k-core (possibly empty)."""
        return np.nonzero(self.core_numbers >= k)[0]


def core_decomposition(graph: CSRGraph) -> CoreDecomposition:
    """Linear-time k-core peeling (bucket queue by current degree)."""
    n = graph.num_vertices
    if n == 0:
        return CoreDecomposition(
            core_numbers=np.zeros(0, dtype=np.int64),
            removal_order=np.zeros(0, dtype=np.int64),
        )
    deg = graph.degrees().copy()
    max_deg = int(deg.max()) if deg.size else 0
    # Bucket sort vertices by degree: pos/vert/bucket-start arrays (the
    # classic Batagelj–Zaveršnik layout).
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(deg, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_start[1:])
    vert = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[vert] = np.arange(n)
    curr_bin = bin_start[:-1].copy()

    core = deg.copy()
    removal = np.empty(n, dtype=np.int64)
    for i in range(n):
        v = int(vert[i])
        removal[i] = v
        for w in graph.neighbors(v):
            w = int(w)
            if core[w] > core[v]:
                # Move w one bucket down: swap with the first vertex of
                # its current bucket, then shrink that bucket.
                dw = core[w]
                pw = pos[w]
                start = curr_bin[dw]
                u = int(vert[start])
                if u != w:
                    vert[start], vert[pw] = w, u
                    pos[w], pos[u] = start, pw
                curr_bin[dw] += 1
                core[w] -= 1
    return CoreDecomposition(core_numbers=core, removal_order=removal)


def degeneracy(graph: CSRGraph) -> int:
    """The graph's degeneracy (max core number)."""
    return core_decomposition(graph).degeneracy


def degeneracy_order(graph: CSRGraph) -> np.ndarray:
    """Smallest-last vertex order: reverse of the peeling order.

    Greedy coloring in this order needs at most ``degeneracy + 1`` colors.
    """
    return core_decomposition(graph).removal_order[::-1].copy()
