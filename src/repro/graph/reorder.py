"""Graph reordering — degree-based grouping (DBG) and edge sorting.

BitColor preprocesses every graph with two steps (Sections 3.2.2 and 5.1.2):

1. **Degree-based grouping (DBG)** [Faldu et al., IISWC'19]: vertices are
   reordered in *descending* order of in-degree and renamed, so a smaller
   vertex index implies a higher degree.  This makes the HDV/LDV split a
   simple threshold comparison (``v < v_t``), guarantees that LDV
   neighbours of a vertex being colored have higher indices (enabling the
   prune-uncolored-vertices optimization), and balances the work assigned
   to parallel BWPEs.

2. **Edge sorting**: each vertex's neighbour list is sorted ascending so
   that off-chip color reads of LDVs become near-sequential, enabling the
   Color Loader's DRAM read merging.

Both return a new :class:`~repro.graph.csr.CSRGraph` plus (for reordering)
the permutation applied, so colorings can be mapped back to original IDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "ReorderResult",
    "descending_degree_order",
    "degree_based_grouping",
    "sort_edges",
    "apply_permutation",
    "invert_permutation",
    "random_permutation",
    "is_descending_degree_order",
]


def descending_degree_order(degrees: np.ndarray, *, stable: bool = True) -> np.ndarray:
    """Permutation sorting vertices by descending degree, ties by ID.

    The single implementation behind every "largest first" order in the
    codebase: DBG reordering (on in-degrees), the ``largest_first``
    coloring ordering (on out-degrees), and the degree-sorted compressed
    layout (:mod:`repro.graph.layout`).  ``stable=True`` keeps the
    original-ID tie-break the paper's preprocessing relies on.
    """
    degrees = np.asarray(degrees)
    kind = "stable" if stable else "quicksort"
    # argsort ascending on negated degree == descending on degree, stable on ID.
    return np.argsort(-degrees, kind=kind).astype(np.int64)


@dataclass(frozen=True)
class ReorderResult:
    """Outcome of a reordering pass.

    Attributes
    ----------
    graph:
        The reordered graph.
    new_to_old:
        ``new_to_old[i]`` is the original ID of the vertex now numbered ``i``.
    old_to_new:
        Inverse permutation.
    """

    graph: CSRGraph
    new_to_old: np.ndarray
    old_to_new: np.ndarray

    def map_coloring_to_original(self, colors: np.ndarray) -> np.ndarray:
        """Translate a coloring of the reordered graph back to original IDs."""
        colors = np.asarray(colors)
        if colors.shape[0] != self.graph.num_vertices:
            raise GraphError("coloring length does not match graph")
        out = np.empty_like(colors)
        out[self.new_to_old] = colors
        return out


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse of a permutation given as an index array."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def apply_permutation(graph: CSRGraph, new_to_old: np.ndarray) -> CSRGraph:
    """Renumber ``graph`` so that new vertex ``i`` is old ``new_to_old[i]``.

    Edge lists keep their relative order per (new) vertex; callers wanting
    ascending neighbours should compose with :func:`sort_edges`.
    """
    new_to_old = np.asarray(new_to_old, dtype=np.int64)
    n = graph.num_vertices
    if new_to_old.size != n or np.unique(new_to_old).size != n:
        raise GraphError("new_to_old must be a permutation of all vertices")
    old_to_new = invert_permutation(new_to_old)
    degs = graph.degrees()
    new_degs = degs[new_to_old]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_degs, out=offsets[1:])
    edges = np.empty(graph.num_edges, dtype=np.int64)
    for new_v in range(n):
        old_v = new_to_old[new_v]
        s, e = graph.offsets[old_v], graph.offsets[old_v + 1]
        edges[offsets[new_v] : offsets[new_v + 1]] = old_to_new[graph.edges[s:e]]
    out = CSRGraph(offsets=offsets, edges=edges, name=graph.name)
    out.meta.update(graph.meta)
    out.meta.pop("edges_sorted", None)  # renaming invalidates sortedness
    return out


def degree_based_grouping(graph: CSRGraph, *, stable: bool = True) -> ReorderResult:
    """DBG reordering: descending in-degree, ties broken by original ID.

    After this pass, vertex 0 has the highest in-degree and the HDV cache
    can hold exactly the color data of vertices ``[0, v_t)``.
    """
    new_to_old = descending_degree_order(graph.in_degrees(), stable=stable)
    g = apply_permutation(graph, new_to_old)
    g.meta["dbg_reordered"] = True
    return ReorderResult(
        graph=g,
        new_to_old=new_to_old,
        old_to_new=invert_permutation(new_to_old),
    )


def sort_edges(graph: CSRGraph) -> CSRGraph:
    """Edge-sorting preprocessing (ascending destination per vertex)."""
    return graph.with_sorted_edges()


def random_permutation(graph: CSRGraph, seed: Optional[int] = None) -> ReorderResult:
    """Random renumbering — used in tests/ablations to destroy DBG ordering."""
    gen = np.random.default_rng(seed)
    new_to_old = gen.permutation(graph.num_vertices).astype(np.int64)
    g = apply_permutation(graph, new_to_old)
    g.meta.pop("dbg_reordered", None)
    return ReorderResult(
        graph=g,
        new_to_old=new_to_old,
        old_to_new=invert_permutation(new_to_old),
    )


def is_descending_degree_order(graph: CSRGraph) -> bool:
    """True when in-degrees are non-increasing in vertex-ID order."""
    in_degs = graph.in_degrees()
    return bool(np.all(np.diff(in_degs) <= 0)) if in_degs.size else True
