"""Synthetic graph generators.

The paper evaluates on ten SNAP datasets (Table 3) which are not shipped with
this offline reproduction.  Each generator here produces a graph of the same
*topology class* as one of the paper's categories:

* social networks (ego-Facebook, Deezer, LiveJournal, Orkut, Friendster) —
  heavy-tailed degree distributions: :func:`rmat`, :func:`barabasi_albert`,
  :func:`powerlaw_cluster`;
* road networks (roadNet-CA/PA/TX) — near-planar, bounded degree, high
  spatial locality: :func:`road_grid`;
* collaboration / product networks (com-DBLP, com-Amazon) — community
  structure with moderate skew: :func:`community_graph`.

All generators are deterministic given ``seed`` and return
:class:`~repro.graph.csr.CSRGraph` instances.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "rmat",
    "barabasi_albert",
    "powerlaw_cluster",
    "road_grid",
    "community_graph",
    "erdos_renyi",
    "random_regular",
    "complete_graph",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "random_bipartite",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Heavy-tailed generators (social networks)
# ----------------------------------------------------------------------

def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-MATrix (R-MAT) power-law graph.

    ``2**scale`` vertices and roughly ``edge_factor * 2**scale`` undirected
    edges (duplicates and self loops are removed, so slightly fewer).  The
    default ``(a, b, c)`` are the Graph500 parameters, giving a degree skew
    comparable to the paper's large social graphs (LiveJournal, Orkut,
    Friendster).
    """
    if scale < 0:
        raise GraphError("scale must be non-negative")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise GraphError("RMAT probabilities must be non-negative and sum <= 1")
    n = 1 << scale
    m = edge_factor * n
    gen = _rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Each recursion level picks one of the four quadrants independently for
    # every edge; vectorised over the whole edge batch.
    for level in range(scale):
        r = gen.random(m)
        bit = np.int64(1 << (scale - 1 - level))
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src += bit * go_down.astype(np.int64)
        dst += bit * go_right.astype(np.int64)
    return CSRGraph.from_arrays(n, src, dst, name=name)


def barabasi_albert(
    n: int,
    m: int,
    *,
    seed: Optional[int] = None,
    name: str = "ba",
) -> CSRGraph:
    """Barabási–Albert preferential attachment (``m`` edges per new vertex).

    Produces a power-law degree distribution with exponent ≈ 3; a good
    stand-in for moderate social networks (ego-Facebook, Deezer).
    """
    if m < 1 or n < m + 1:
        raise GraphError("need n >= m + 1 and m >= 1")
    gen = _rng(seed)
    # Repeated-nodes trick: sample attachment targets from a list where each
    # vertex appears once per incident edge (classic BA implementation).
    targets = list(range(m))
    repeated: list[int] = []
    src_list: list[int] = []
    dst_list: list[int] = []
    for v in range(m, n):
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
        repeated.extend(targets)
        repeated.extend([v] * m)
        # Choose m distinct targets for the next vertex.
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(repeated[gen.integers(len(repeated))])
        targets = list(chosen)
    return CSRGraph.from_arrays(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        name=name,
    )


def powerlaw_cluster(
    n: int,
    m: int,
    p: float,
    *,
    seed: Optional[int] = None,
    name: str = "plc",
) -> CSRGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but after each preferential attachment a
    triad is closed with probability ``p``, raising the clustering
    coefficient — closer to real ego networks, where the paper observes a
    non-zero (but small) neighbourhood overlap ratio.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    if m < 1 or n < m + 1:
        raise GraphError("need n >= m + 1 and m >= 1")
    gen = _rng(seed)
    repeated: list[int] = list(range(m))
    adj: list[set[int]] = [set() for _ in range(n)]
    src_list: list[int] = []
    dst_list: list[int] = []

    def add_edge(u: int, w: int) -> None:
        if u != w and w not in adj[u]:
            adj[u].add(w)
            adj[w].add(u)
            src_list.append(u)
            dst_list.append(w)
            repeated.append(u)
            repeated.append(w)

    for v in range(m, n):
        added = 0
        last_target = -1
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            if last_target >= 0 and gen.random() < p and adj[last_target]:
                # Triad formation: connect to a neighbour of the last target.
                cand = list(adj[last_target])
                w = cand[gen.integers(len(cand))]
            else:
                w = repeated[gen.integers(len(repeated))]
            if w != v and w not in adj[v]:
                add_edge(v, w)
                last_target = w
                added += 1
        if added == 0:
            add_edge(v, int(gen.integers(v)))
    return CSRGraph.from_arrays(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        name=name,
    )


# ----------------------------------------------------------------------
# Road networks
# ----------------------------------------------------------------------

def road_grid(
    rows: int,
    cols: int,
    *,
    diag_prob: float = 0.05,
    removal_prob: float = 0.05,
    seed: Optional[int] = None,
    name: str = "road",
) -> CSRGraph:
    """Perturbed 2-D grid mimicking a road network.

    Base 4-connected grid, a few diagonal "shortcut" edges (interchanges)
    and a few removed edges (dead ends).  Matches the roadNet-* profile:
    max degree ≤ ~8, avg degree ≈ 2.5–3, very high spatial locality, tiny
    chromatic number — exactly why the paper reports only 5 colors for the
    road graphs in Table 4.
    """
    if rows < 1 or cols < 1:
        raise GraphError("rows and cols must be positive")
    gen = _rng(seed)
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    src_list: list[int] = []
    dst_list: list[int] = []
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            if c + 1 < cols and gen.random() >= removal_prob:
                src_list.append(v)
                dst_list.append(vid(r, c + 1))
            if r + 1 < rows and gen.random() >= removal_prob:
                src_list.append(v)
                dst_list.append(vid(r + 1, c))
            if r + 1 < rows and c + 1 < cols and gen.random() < diag_prob:
                src_list.append(v)
                dst_list.append(vid(r + 1, c + 1))
    return CSRGraph.from_arrays(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        name=name,
    )


# ----------------------------------------------------------------------
# Community graphs (collaboration / product)
# ----------------------------------------------------------------------

def community_graph(
    num_communities: int,
    community_size: int,
    *,
    p_in: float = 0.08,
    p_out: float = 0.0005,
    seed: Optional[int] = None,
    name: str = "community",
) -> CSRGraph:
    """Planted-partition graph: dense communities, sparse cross edges.

    Stand-in for com-DBLP / com-Amazon, whose structure is dominated by
    small dense communities (author groups, co-purchased product sets).
    """
    if num_communities < 1 or community_size < 1:
        raise GraphError("community counts must be positive")
    gen = _rng(seed)
    n = num_communities * community_size
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Intra-community edges: sample Bernoulli(p_in) per pair, per community.
    for k in range(num_communities):
        base = k * community_size
        iu = np.triu_indices(community_size, k=1)
        mask = gen.random(iu[0].size) < p_in
        src_parts.append(base + iu[0][mask])
        dst_parts.append(base + iu[1][mask])
    # Inter-community edges: sample a Binomial number of random pairs.
    total_cross_pairs = n * (n - 1) // 2 - num_communities * (
        community_size * (community_size - 1) // 2
    )
    n_cross = gen.binomial(max(total_cross_pairs, 0), p_out) if total_cross_pairs else 0
    if n_cross:
        cs = gen.integers(0, n, size=n_cross)
        cd = gen.integers(0, n, size=n_cross)
        keep = (cs // community_size) != (cd // community_size)
        src_parts.append(cs[keep])
        dst_parts.append(cd[keep])
    src = np.concatenate(src_parts) if src_parts else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.zeros(0, dtype=np.int64)
    return CSRGraph.from_arrays(n, src, dst, name=name)


# ----------------------------------------------------------------------
# Reference / test generators
# ----------------------------------------------------------------------

def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: Optional[int] = None,
    name: str = "er",
) -> CSRGraph:
    """G(n, p) random graph (vectorised pair sampling)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    gen = _rng(seed)
    total_pairs = n * (n - 1) // 2
    m = gen.binomial(total_pairs, p) if total_pairs else 0
    if m == 0:
        return CSRGraph.empty(n, name=name)
    # Rejection-free: sample pair indices without replacement, decode to (i, j).
    idx = gen.choice(total_pairs, size=m, replace=False)
    # Pair index k maps to the k-th entry of the upper triangle enumerated
    # row by row; invert the triangular-number formula.
    i = (n - 2 - np.floor(np.sqrt(-8.0 * idx + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(np.int64)
    j = (idx + i + 1 - i * (2 * n - i - 1) // 2).astype(np.int64)
    return CSRGraph.from_arrays(n, i, j, name=name)


def random_regular(
    n: int,
    d: int,
    *,
    seed: Optional[int] = None,
    name: str = "regular",
) -> CSRGraph:
    """Approximately d-regular graph via the configuration model.

    Multi-edges and self loops from stub pairing are dropped, so degrees can
    fall slightly below ``d``; for testing load-balance behaviour that is
    fine and far cheaper than exact uniform sampling.
    """
    if d < 0 or d >= n:
        raise GraphError("need 0 <= d < n")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even")
    gen = _rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    gen.shuffle(stubs)
    half = stubs.size // 2
    return CSRGraph.from_arrays(n, stubs[:half], stubs[half:], name=name)


def complete_graph(n: int, name: str = "complete") -> CSRGraph:
    iu = np.triu_indices(n, k=1)
    return CSRGraph.from_arrays(n, iu[0].astype(np.int64), iu[1].astype(np.int64), name=name)


def star_graph(n: int, name: str = "star") -> CSRGraph:
    """Vertex 0 connected to all others — the extreme HDV case."""
    if n < 1:
        raise GraphError("star graph needs at least one vertex")
    hub = np.zeros(n - 1, dtype=np.int64)
    leaves = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_arrays(n, hub, leaves, name=name)


def path_graph(n: int, name: str = "path") -> CSRGraph:
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_arrays(n, src, src + 1, name=name)


def cycle_graph(n: int, name: str = "cycle") -> CSRGraph:
    if n < 3:
        raise GraphError("cycle graph needs at least three vertices")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return CSRGraph.from_arrays(n, src, dst, name=name)


def random_bipartite(
    n_left: int,
    n_right: int,
    p: float,
    *,
    seed: Optional[int] = None,
    name: str = "bipartite",
) -> CSRGraph:
    """Random bipartite graph — chromatic number 2 whenever an edge exists.

    Useful as a coloring-correctness fixture: any proper coloring algorithm
    must 2-color it (greedy on bipartite graphs can use more, but the exact
    backtracking solver must find 2).
    """
    gen = _rng(seed)
    mask = gen.random((n_left, n_right)) < p
    li, ri = np.nonzero(mask)
    return CSRGraph.from_arrays(
        n_left + n_right,
        li.astype(np.int64),
        (ri + n_left).astype(np.int64),
        name=name,
    )
