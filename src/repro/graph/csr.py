"""Compressed Sparse Row (CSR) graph representation.

BitColor (and this reproduction) stores graphs in the standard CSR format
described in Section 2.1 of the paper: two numpy arrays, ``offsets`` and
``edges``.  ``offsets[i]`` is the index in ``edges`` of the first neighbour
of vertex ``i``; ``offsets[i + 1]`` is one past its last neighbour.  The
values in ``edges`` are destination vertex indices.

The class is deliberately immutable after construction: preprocessing steps
(reordering, edge sorting) return *new* :class:`CSRGraph` instances so that
experiments can hold both the raw and the preprocessed graph at once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph", "GraphError", "csr_fingerprint"]

FINGERPRINT_VERSION = "csr-v1"
"""Domain tag mixed into every fingerprint; bump when the hashed layout
changes so old cached identities can never alias new ones."""


def csr_fingerprint(graph: "CSRGraph") -> str:
    """Stable content hash of a CSR graph's structure.

    SHA-256 over ``(version tag, num_vertices, offsets bytes, edges
    bytes)`` — nothing else.  Two graphs fingerprint equal iff they have
    identical vertex counts and identical CSR arrays, regardless of
    ``name``/``meta``, which makes the digest usable as a content
    address: the service result cache keys on it, and BENCH files can
    record it as a dataset identity.  Returns a 64-char hex string.
    """
    h = hashlib.sha256()
    h.update(FINGERPRINT_VERSION.encode())
    h.update(np.int64(graph.num_vertices).tobytes())
    # ascontiguousarray: views (e.g. sliced arrays) hash like their copies.
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(np.ascontiguousarray(graph.edges).tobytes())
    return h.hexdigest()


class GraphError(ValueError):
    """Raised when a graph is malformed or an operation's preconditions fail."""


MAX_KEY_ENCODABLE_VERTICES = 3_037_000_499
"""Largest ``num_vertices`` whose ``src * n + dst`` edge keys fit in int64
(``floor(sqrt(2**63))``); beyond it key encoding would silently wrap."""


def _edge_keys(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Encode edges as ``src * n + dst`` int64 keys, guarding against wrap.

    The largest key is ``(n - 1) * n + (n - 1) == n**2 - 1``, which
    overflows int64 once ``n`` exceeds ``floor(sqrt(2**63))`` — silently,
    because NumPy wraps.  A wrapped key would merge unrelated edges in
    dedup/duplicate checks, so refuse loudly instead.
    """
    if num_vertices > MAX_KEY_ENCODABLE_VERTICES:
        raise GraphError(
            f"num_vertices={num_vertices} exceeds the edge-key encoding limit "
            f"of {MAX_KEY_ENCODABLE_VERTICES}: src * num_vertices + dst would "
            "overflow int64 and silently merge distinct edges"
        )
    return src * np.int64(num_vertices) + dst


def _as_index_array(values: Sequence[int], name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise GraphError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class CSRGraph:
    """An unweighted directed graph in CSR format.

    Undirected graphs (the only kind the paper evaluates) are stored with
    both edge directions present; :meth:`from_edge_list` with
    ``symmetrize=True`` (the default) takes care of that.

    Attributes
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``.  Monotone
        non-decreasing, ``offsets[0] == 0`` and
        ``offsets[-1] == num_edges``.
    edges:
        ``int64`` array of destination vertex indices, grouped by source.
    """

    offsets: np.ndarray
    edges: np.ndarray
    name: str = "graph"
    meta: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # Construction & validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        offsets = _as_index_array(self.offsets, "offsets")
        edges = _as_index_array(self.edges, "edges")
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "edges", edges)
        if offsets.size == 0:
            raise GraphError("offsets must contain at least one entry")
        if offsets[0] != 0:
            raise GraphError("offsets[0] must be 0")
        if offsets[-1] != edges.size:
            raise GraphError(
                f"offsets[-1] ({offsets[-1]}) must equal len(edges) ({edges.size})"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphError("offsets must be monotone non-decreasing")
        n = offsets.size - 1
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise GraphError("edge destination out of range")
        # Make the arrays read-only so accidental in-place mutation by a
        # simulator component is an error rather than silent corruption.
        offsets.setflags(write=False)
        edges.setflags(write=False)
        # Per-instance memo for derived arrays (slot sources, kernel batch
        # schedules).  Deliberately not a dataclass field: it never leaks
        # into equality, repr, or copied ``meta`` dicts.
        object.__setattr__(self, "_cache", {})

    @classmethod
    def from_edge_list(
        cls,
        num_vertices: int,
        edge_list: Iterable[Tuple[int, int]],
        *,
        symmetrize: bool = True,
        dedup: bool = True,
        drop_self_loops: bool = True,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from ``(src, dst)`` pairs.

        Parameters
        ----------
        symmetrize:
            Store both ``(u, v)`` and ``(v, u)`` — required for undirected
            coloring semantics.
        dedup:
            Remove duplicate edges.
        drop_self_loops:
            Remove ``(v, v)`` edges; a self loop would make the vertex
            uncolorable under proper-coloring rules.
        """
        pairs = np.asarray(list(edge_list), dtype=np.int64)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphError("edge_list must contain (src, dst) pairs")
        return cls.from_arrays(
            num_vertices,
            pairs[:, 0],
            pairs[:, 1],
            symmetrize=symmetrize,
            dedup=dedup,
            drop_self_loops=drop_self_loops,
            name=name,
        )

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        symmetrize: bool = True,
        dedup: bool = True,
        drop_self_loops: bool = True,
        name: str = "graph",
    ) -> "CSRGraph":
        """Vectorised construction from parallel ``src``/``dst`` arrays."""
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.size != dst.size:
            raise GraphError("src and dst must have the same length")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphError("edge endpoint out of range")
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if dedup and src.size:
            # Encode each edge as a single integer key for a fast unique pass.
            keys = _edge_keys(num_vertices, src, dst)
            _, idx = np.unique(keys, return_index=True)
            src, dst = src[idx], dst[idx]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets=offsets, edges=dst, name=name)

    @classmethod
    def empty(cls, num_vertices: int, name: str = "empty") -> "CSRGraph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(
            offsets=np.zeros(num_vertices + 1, dtype=np.int64),
            edges=np.zeros(0, dtype=np.int64),
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edge slots (twice the undirected edge count)."""
        return int(self.edges.size)

    @property
    def num_undirected_edges(self) -> int:
        return self.num_edges // 2

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== in-degree for symmetric graphs)."""
        return np.diff(self.offsets)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (counts of appearances in ``edges``)."""
        return np.bincount(self.edges, minlength=self.num_vertices)

    def max_degree(self) -> int:
        degs = self.degrees()
        return int(degs.max()) if degs.size else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of ``v``'s neighbour list."""
        self._check_vertex(v)
        return self.edges[self.offsets[v] : self.offsets[v + 1]]

    def edge_range(self, v: int) -> Tuple[int, int]:
        """``(s_e, d_e)`` — start and end indices of ``v``'s edges.

        These are exactly the values the Task Dispatch Unit sends to a BWPE.
        """
        self._check_vertex(v)
        return int(self.offsets[v]), int(self.offsets[v + 1])

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        if nbrs.size == 0:
            return False
        if self.meta.get("edges_sorted"):
            i = np.searchsorted(nbrs, v)
            return bool(i < nbrs.size and nbrs[i] == v)
        return bool(np.any(nbrs == v))

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield every directed ``(src, dst)`` pair."""
        for v in range(self.num_vertices):
            for w in self.neighbors(v):
                yield v, int(w)

    def edge_array(self) -> np.ndarray:
        """``(num_edges, 2)`` array of directed edges."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        return np.column_stack([src, self.edges])

    def source_of_edge_slots(self) -> np.ndarray:
        """For each slot in ``edges``, the source vertex of that slot.

        Memoised (read-only) per instance: the array depends only on
        ``offsets``, which is immutable, and the vectorized kernels ask for
        it on every sweep.
        """
        cached = self._cache.get("slot_sources")
        if cached is None:
            cached = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees()
            )
            cached.setflags(write=False)
            self._cache["slot_sources"] = cached
        return cached

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True when every edge has its reverse present (undirected graph)."""
        fwd = self.edge_array()
        if fwd.size == 0:
            return True
        keys = np.sort(_edge_keys(self.num_vertices, fwd[:, 0], fwd[:, 1]))
        rkeys = np.sort(_edge_keys(self.num_vertices, fwd[:, 1], fwd[:, 0]))
        return bool(np.array_equal(keys, rkeys))

    def has_sorted_edges(self) -> bool:
        """True when each vertex's neighbour list is ascending (MGR precondition).

        One vectorised diff over the whole edge array; descents that fall on
        a vertex boundary (where a new neighbour list starts) are ignored.
        """
        if self.edges.size < 2:
            return True
        descent = np.diff(self.edges) < 0
        boundary = self.offsets[1:-1] - 1
        boundary = boundary[(boundary >= 0) & (boundary < descent.size)]
        descent[boundary] = False
        return not bool(descent.any())

    def has_duplicate_edges(self) -> bool:
        fwd = self.edge_array()
        if fwd.size == 0:
            return False
        keys = _edge_keys(self.num_vertices, fwd[:, 0], fwd[:, 1])
        return bool(np.unique(keys).size != keys.size)

    def has_self_loops(self) -> bool:
        return bool(np.any(self.source_of_edge_slots() == self.edges))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_sorted_edges(self) -> "CSRGraph":
        """Return a copy whose per-vertex neighbour lists are ascending.

        This is the paper's "edge sorting" preprocessing step (Section
        3.2.2, strategy 2) that enables DRAM read merging and early pruning.

        One ``np.lexsort`` over (source, destination): sources are already
        grouped, so the stable sort leaves each group in place and orders
        destinations within it.
        """
        order = np.lexsort((self.edges, self.source_of_edge_slots()))
        g = CSRGraph(
            offsets=self.offsets.copy(), edges=self.edges[order], name=self.name
        )
        g.meta.update(self.meta)
        g.meta["edges_sorted"] = True
        return g

    def subgraph(self, vertices: Sequence[int], name: Optional[str] = None) -> "CSRGraph":
        """Induced subgraph on ``vertices``, renumbered ``0..len(vertices)-1``."""
        vertices = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if vertices.size:
            # Sorted, so the extremes are the only candidates out of range.
            self._check_vertex(int(vertices[0]))
            self._check_vertex(int(vertices[-1]))
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size)
        slot_src = self.source_of_edge_slots()
        keep = (remap[slot_src] >= 0) & (remap[self.edges] >= 0)
        src = remap[slot_src[keep]]
        dst = remap[self.edges[keep]]
        return CSRGraph.from_arrays(
            vertices.size, src, dst, symmetrize=False, dedup=False,
            name=name or f"{self.name}-sub",
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (undirected)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from((u, v) for u, v in self.iter_edges() if u < v)
        return g

    @classmethod
    def from_networkx(cls, g, name: str = "nx") -> "CSRGraph":
        nodes = sorted(g.nodes())
        remap = {v: i for i, v in enumerate(nodes)}
        edges = [(remap[u], remap[v]) for u, v in g.edges()]
        return cls.from_edge_list(len(nodes), edges, symmetrize=True, name=name)

    def fingerprint(self) -> str:
        """This graph's :func:`csr_fingerprint`, memoised (arrays are immutable)."""
        cached = self._cache.get("fingerprint")
        if cached is None:
            cached = self._cache["fingerprint"] = csr_fingerprint(self)
        return cached

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"directed_edges={self.num_edges})"
        )
