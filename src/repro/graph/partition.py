"""Vertex partitioning: the HDV/LDV cache split and the shard planner.

Two unrelated-but-cohabiting notions of "partition" live here:

* **HDV/LDV split** (:class:`Partition`) — after DBG reordering, the
  high-degree vertices are exactly ``[0, v_t)``.  BitColor's on-chip
  color cache holds the color of every HDV, so ``v_t`` is set by cache
  capacity: with a 1 MB cache and 16-bit colors, ``v_t`` = 512 K vertices
  (Section 5.1.1).  For graphs smaller than the cache, all vertices are
  HDVs and off-chip color traffic disappears — which is why the paper
  sees "almost all DRAM accesses eliminated" on com-DBLP in Fig 11.

* **Shard plan** (:class:`ShardPlan`) — an edge-cut split of the vertex
  set into ``num_shards`` disjoint owner classes, the software analogue
  of the paper's vertex distribution across BWPEs with per-PE DRAM
  channels.  A vertex with at least one neighbour owned by another shard
  is a **boundary** vertex; everything else is **interior** and can be
  colored entirely within its shard.  The partition-parallel backend
  (:mod:`repro.parallel`) colors shard interiors concurrently and defers
  boundary conflicts to a repair pass — the Data Conflict Table's role.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .stats import hdv_coverage

__all__ = [
    "Partition",
    "ShardPlan",
    "partition_by_cache_capacity",
    "partition_by_degree",
    "partition_round_robin",
    "partition_vertex_ranges",
]


@dataclass(frozen=True)
class Partition:
    """HDV/LDV split of a DBG-reordered graph.

    Attributes
    ----------
    v_t:
        The vertex threshold: vertices ``< v_t`` are HDVs (cached on chip),
        the rest are LDVs (colors stored in DRAM).
    num_hdv / num_ldv:
        Cardinality of each class.
    hdv_edge_coverage:
        Fraction of neighbour color reads served by the HDV cache.
    """

    v_t: int
    num_hdv: int
    num_ldv: int
    hdv_edge_coverage: float

    def is_hdv(self, v: int) -> bool:
        return v < self.v_t


def partition_by_cache_capacity(
    graph: CSRGraph,
    cache_bytes: int,
    color_bytes: int = 2,
) -> Partition:
    """Split by cache capacity: cache as many of the hottest vertices as fit.

    This is BitColor's deployed policy — the paper's 1 MB single cache with
    16-bit colors caches 512 K vertices.
    """
    if cache_bytes < 0 or color_bytes <= 0:
        raise ValueError("capacities must be positive")
    capacity_vertices = cache_bytes // color_bytes
    v_t = int(min(graph.num_vertices, capacity_vertices))
    return _make(graph, v_t)


def partition_by_degree(graph: CSRGraph, min_degree: int) -> Partition:
    """Split at the first vertex whose in-degree falls below ``min_degree``.

    Requires DBG ordering (descending degree); used by ablations that study
    coverage as a function of the degree cut rather than cache size.
    """
    in_degs = graph.in_degrees()
    below = np.nonzero(in_degs < min_degree)[0]
    v_t = int(below[0]) if below.size else graph.num_vertices
    return _make(graph, v_t)


def _make(graph: CSRGraph, v_t: int) -> Partition:
    return Partition(
        v_t=v_t,
        num_hdv=v_t,
        num_ldv=graph.num_vertices - v_t,
        hdv_edge_coverage=hdv_coverage(graph, v_t),
    )


# ----------------------------------------------------------------------
# Edge-cut shard planning (the partition-parallel backend's input)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """An edge-cut vertex partition with boundary tracking.

    Attributes
    ----------
    owner:
        ``int64`` array of length ``num_vertices``; ``owner[v]`` is the
        shard that colors ``v``.
    boundary:
        Boolean mask; ``boundary[v]`` is True when ``v`` has at least one
        neighbour owned by a different shard.  Only boundary vertices can
        end up in cross-shard conflicts.
    cut_edges:
        Number of directed edge slots whose endpoints live in different
        shards (each undirected cut edge counts twice).
    strategy:
        ``"range"`` or ``"round_robin"`` — how ``owner`` was assigned.
    """

    num_shards: int
    owner: np.ndarray
    boundary: np.ndarray
    cut_edges: int
    strategy: str = "range"

    def __post_init__(self) -> None:
        self.owner.setflags(write=False)
        self.boundary.setflags(write=False)

    @property
    def num_vertices(self) -> int:
        return int(self.owner.size)

    @property
    def num_boundary(self) -> int:
        return int(np.count_nonzero(self.boundary))

    @property
    def num_interior(self) -> int:
        return self.num_vertices - self.num_boundary

    def shard_vertices(self, shard: int) -> np.ndarray:
        """All vertices owned by ``shard``, ascending."""
        self._check_shard(shard)
        return np.nonzero(self.owner == shard)[0].astype(np.int64)

    def interior_vertices(self, shard: int) -> np.ndarray:
        """Owned vertices with no cross-shard edge, ascending."""
        self._check_shard(shard)
        return np.nonzero((self.owner == shard) & ~self.boundary)[0].astype(np.int64)

    def boundary_vertices(self) -> np.ndarray:
        """Every boundary vertex across all shards, ascending."""
        return np.nonzero(self.boundary)[0].astype(np.int64)

    def shard_sizes(self) -> np.ndarray:
        """Vertex count per shard (length ``num_shards``)."""
        return np.bincount(self.owner, minlength=self.num_shards)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")


def partition_vertex_ranges(graph: CSRGraph, num_shards: int) -> ShardPlan:
    """Split ``[0, n)`` into ``num_shards`` contiguous near-equal ranges.

    Contiguous ranges preserve the ascending-ID processing order inside
    each shard, which is what keeps the per-shard coloring identical to a
    sequential walk of the shard.  With ``num_shards > num_vertices`` the
    trailing shards are simply empty.
    """
    owner = _range_owner(graph.num_vertices, _check_shards(num_shards))
    return _plan(graph, num_shards, owner, "range")


def partition_round_robin(graph: CSRGraph, num_shards: int) -> ShardPlan:
    """Deal vertices to shards in round-robin order (``owner[v] = v % k``).

    Balances shard sizes exactly but cuts far more edges than ranges on
    locality-ordered graphs; exposed for cut-cost comparisons.
    """
    _check_shards(num_shards)
    owner = (
        np.arange(graph.num_vertices, dtype=np.int64) % num_shards
        if graph.num_vertices
        else np.zeros(0, dtype=np.int64)
    )
    return _plan(graph, num_shards, owner, "round_robin")


def _check_shards(num_shards: int) -> int:
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return num_shards


def _range_owner(n: int, num_shards: int) -> np.ndarray:
    # First n % k shards get one extra vertex, like np.array_split.
    sizes = np.full(num_shards, n // num_shards, dtype=np.int64)
    sizes[: n % num_shards] += 1
    return np.repeat(np.arange(num_shards, dtype=np.int64), sizes)


def _plan(
    graph: CSRGraph, num_shards: int, owner: np.ndarray, strategy: str
) -> ShardPlan:
    src = graph.source_of_edge_slots()
    cross = owner[src] != owner[graph.edges]
    boundary = np.zeros(graph.num_vertices, dtype=bool)
    boundary[src[cross]] = True
    boundary[graph.edges[cross]] = True
    return ShardPlan(
        num_shards=num_shards,
        owner=owner,
        boundary=boundary,
        cut_edges=int(np.count_nonzero(cross)),
        strategy=strategy,
    )
