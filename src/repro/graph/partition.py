"""HDV/LDV partitioning — choosing the vertex threshold ``v_t``.

After DBG reordering, the high-degree vertices are exactly ``[0, v_t)``.
BitColor's on-chip color cache holds the color of every HDV, so ``v_t`` is
set by cache capacity: with a 1 MB cache and 16-bit colors, ``v_t`` =
512 K vertices (Section 5.1.1).  For graphs smaller than the cache, all
vertices are HDVs and off-chip color traffic disappears — which is why the
paper sees "almost all DRAM accesses eliminated" on com-DBLP in Fig 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .stats import hdv_coverage

__all__ = ["Partition", "partition_by_cache_capacity", "partition_by_degree"]


@dataclass(frozen=True)
class Partition:
    """HDV/LDV split of a DBG-reordered graph.

    Attributes
    ----------
    v_t:
        The vertex threshold: vertices ``< v_t`` are HDVs (cached on chip),
        the rest are LDVs (colors stored in DRAM).
    num_hdv / num_ldv:
        Cardinality of each class.
    hdv_edge_coverage:
        Fraction of neighbour color reads served by the HDV cache.
    """

    v_t: int
    num_hdv: int
    num_ldv: int
    hdv_edge_coverage: float

    def is_hdv(self, v: int) -> bool:
        return v < self.v_t


def partition_by_cache_capacity(
    graph: CSRGraph,
    cache_bytes: int,
    color_bytes: int = 2,
) -> Partition:
    """Split by cache capacity: cache as many of the hottest vertices as fit.

    This is BitColor's deployed policy — the paper's 1 MB single cache with
    16-bit colors caches 512 K vertices.
    """
    if cache_bytes < 0 or color_bytes <= 0:
        raise ValueError("capacities must be positive")
    capacity_vertices = cache_bytes // color_bytes
    v_t = int(min(graph.num_vertices, capacity_vertices))
    return _make(graph, v_t)


def partition_by_degree(graph: CSRGraph, min_degree: int) -> Partition:
    """Split at the first vertex whose in-degree falls below ``min_degree``.

    Requires DBG ordering (descending degree); used by ablations that study
    coverage as a function of the degree cut rather than cache size.
    """
    in_degs = graph.in_degrees()
    below = np.nonzero(in_degs < min_degree)[0]
    v_t = int(below[0]) if below.size else graph.num_vertices
    return _make(graph, v_t)


def _make(graph: CSRGraph, v_t: int) -> Partition:
    return Partition(
        v_t=v_t,
        num_hdv=v_t,
        num_ldv=graph.num_vertices - v_t,
        hdv_edge_coverage=hdv_coverage(graph, v_t),
    )
