"""Graph statistics used by the paper's motivation study (Section 3.1).

The key quantity is the **neighbourhood overlap ratio** of Figure 3(b):
for each vertex ``v`` and an *iteration interval* ``k``, collect the
neighbour sets of the ``k`` vertices processed immediately before ``v``
(``v-1 .. v-k``) and compute

    overlap = |N(v) ∩ (N(v-1) ∪ … ∪ N(v-k))| / |N(v)|

averaged over all vertices.  The paper measures this to show color-array
reuse is tiny (≤ 10 %, average 4.96 %), which motivates the HDV cache over
a conventional temporal-locality cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "DegreeStats",
    "degree_stats",
    "degree_histogram",
    "neighborhood_overlap_ratio",
    "overlap_ratio_sweep",
    "hdv_coverage",
    "gini_coefficient",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    num_vertices: int
    num_directed_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    median_degree: float
    std_degree: float
    gini: float


def degree_stats(graph: CSRGraph) -> DegreeStats:
    degs = graph.degrees()
    if degs.size == 0:
        return DegreeStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    return DegreeStats(
        num_vertices=graph.num_vertices,
        num_directed_edges=graph.num_edges,
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
        mean_degree=float(degs.mean()),
        median_degree=float(np.median(degs)),
        std_degree=float(degs.std()),
        gini=gini_coefficient(degs),
    )


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array — degree-skew summary.

    0 = perfectly uniform degrees (e.g. a regular grid), → 1 = extreme skew
    (e.g. a star).  Social graphs in the paper sit around 0.5–0.7.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    degs = graph.degrees()
    if degs.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs)


def neighborhood_overlap_ratio(
    graph: CSRGraph,
    interval: int,
    *,
    sample: int | None = None,
    seed: int = 0,
) -> float:
    """Average neighbourhood overlap ratio at a given iteration interval.

    Parameters
    ----------
    interval:
        How many immediately-preceding vertices contribute their neighbour
        sets (the paper's "iteration interval").
    sample:
        If set, only this many uniformly-sampled vertices are measured —
        the ratio converges quickly and full sweeps on big graphs are
        unnecessary.
    """
    if interval < 1:
        raise ValueError("interval must be >= 1")
    n = graph.num_vertices
    if n <= interval:
        return 0.0
    if sample is not None and sample < n - interval:
        gen = np.random.default_rng(seed)
        candidates = gen.choice(np.arange(interval, n), size=sample, replace=False)
    else:
        candidates = np.arange(interval, n)
    total = 0.0
    counted = 0
    for v in candidates:
        nbrs = graph.neighbors(int(v))
        if nbrs.size == 0:
            continue
        prev: List[np.ndarray] = [
            graph.neighbors(int(v) - j) for j in range(1, interval + 1)
        ]
        window = np.unique(np.concatenate(prev)) if prev else np.zeros(0, dtype=np.int64)
        if window.size == 0:
            counted += 1
            continue
        overlap = np.intersect1d(nbrs, window, assume_unique=False).size
        total += overlap / nbrs.size
        counted += 1
    return total / counted if counted else 0.0


def overlap_ratio_sweep(
    graph: CSRGraph,
    intervals: Sequence[int] = (1, 2, 4, 8, 16, 32),
    *,
    sample: int | None = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """Figure 3(b): overlap ratio for several iteration intervals."""
    return {
        k: neighborhood_overlap_ratio(graph, k, sample=sample, seed=seed)
        for k in intervals
    }


def hdv_coverage(graph: CSRGraph, v_t: int) -> float:
    """Fraction of edge endpoints that land on high-degree vertices.

    Given a DBG-reordered graph and HDV threshold ``v_t`` (vertices
    ``< v_t`` are cached on chip), this is the fraction of neighbour color
    reads that the HDV cache can serve — the paper's rationale for HDC.
    """
    if graph.num_edges == 0:
        return 0.0
    return float(np.count_nonzero(graph.edges < v_t) / graph.num_edges)
