"""Bandwidth-efficient edge-array layouts (GraphScale-style).

The accelerator streams each task's neighbour row from off-chip memory.
With the **plain** CSR layout every edge index occupies a fixed
``edge_index_bits`` word, so a row of ``d`` edges costs
``ceil(d / edges_per_block)`` block fetches.  FPGA graph engines
(GraphScale in PAPERS.md) pack rows tighter and spend the saved
bandwidth on more vertices per second; this module models two such
encodings and exposes the one number the engines need: *how many blocks
does a prefix of this row occupy?*

A layout is an **encoding, never a reordering** — vertex IDs, neighbour
order and the processing schedule are untouched, so the produced
coloring is byte-identical across layouts by construction; only the
modeled edge-fetch traffic changes.

Three layouts are registered:

* ``plain`` — fixed ``edge_index_bits`` per entry.  Reproduces the
  original ``ceil(consumed / edges_per_block)`` accounting bit-for-bit.
* ``degree-sorted`` — per-row fixed-width IDs: each row stores its
  neighbours in the narrowest of {8, 16, 32} bits that fits the row's
  largest neighbour ID.  This exploits degree-based grouping (the
  paper's own preprocessing, :func:`repro.graph.reorder.descending_degree_order`):
  after DBG the hubs — which dominate edge endpoints in skewed graphs —
  carry the *smallest* IDs, so most rows fit 8- or 16-bit entries.
* ``delta-compressed`` — first neighbour at full width, then
  delta-encoded gaps at the narrowest of {4, 8, 16, 32} bits that fits
  the row's largest gap.  Requires sorted rows (the paper's edge-sorting
  pass); unsorted rows fall back to the plain encoding, so the layout is
  safe on any graph.

Rows stay individually block-aligned (each task's burst starts on a
block boundary), which is why the per-row cost is a pure function of
``(header_bits, entry_bits, prefix_length)`` and composes with the PUV
prune: a pruned row fetches only the blocks its consumed prefix
occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..kernels import prefix_block_counts, rows_sorted, segment_ids, segment_max
from .csr import CSRGraph
from .reorder import is_descending_degree_order

__all__ = [
    "LAYOUTS",
    "DEFAULT_LAYOUT",
    "EdgeLayout",
    "build_layout",
    "validate_layout",
]

LAYOUTS: Tuple[str, ...] = ("plain", "degree-sorted", "delta-compressed")
DEFAULT_LAYOUT = "plain"

_ID_WIDTHS = (8, 16, 32)
_DELTA_WIDTHS = (4, 8, 16, 32)


def validate_layout(name: str) -> str:
    if name not in LAYOUTS:
        raise ValueError(f"unknown layout {name!r}; expected one of {LAYOUTS}")
    return name


def _fit_widths(row_max: np.ndarray, choices: Tuple[int, ...]) -> np.ndarray:
    """Narrowest width in ``choices`` that holds each row's max value."""
    widths = np.full(row_max.shape, choices[-1], dtype=np.int64)
    for w in reversed(choices[:-1]):
        widths[row_max < (1 << w)] = w
    return widths


@dataclass(frozen=True)
class EdgeLayout:
    """Per-row encoded widths of one graph under one layout.

    Row ``v`` is stored as one ``header_bits[v]``-bit entry (the first
    neighbour) followed by ``entry_bits[v]``-bit entries, packed tight
    and block-aligned per row.  All fetch-cost questions reduce to
    :meth:`prefix_blocks`, which both accelerator engines use — the
    event engine scalar per task, the batched engine vectorized over an
    epoch via :func:`repro.kernels.prefix_block_counts` (same integer
    math, hence the parity contract survives every layout).
    """

    name: str
    edge_index_bits: int
    header_bits: np.ndarray
    entry_bits: np.ndarray
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return int(self.header_bits.shape[0])

    def prefix_bits(self, vertex: int, count: int) -> int:
        """Encoded bits occupied by the first ``count`` entries of a row."""
        if count <= 0:
            return 0
        return int(self.header_bits[vertex]) + (count - 1) * int(self.entry_bits[vertex])

    def prefix_blocks(self, vertex: int, count: int, block_bits: int) -> int:
        """Blocks fetched for a ``count``-entry prefix of row ``vertex``."""
        bits = self.prefix_bits(vertex, count)
        return -(-bits // block_bits) if bits else 0

    def row_bits(self, degrees: np.ndarray) -> np.ndarray:
        """Encoded size in bits of every full row."""
        degrees = np.asarray(degrees, dtype=np.int64)
        bits = self.header_bits + np.maximum(degrees - 1, 0) * self.entry_bits
        return np.where(degrees > 0, bits, 0)

    def total_bits(self, degrees: np.ndarray) -> int:
        return int(self.row_bits(degrees).sum())

    def compression_ratio(self, degrees: np.ndarray) -> float:
        """Encoded size relative to plain CSR (1.0 = no saving)."""
        plain = int(np.asarray(degrees, dtype=np.int64).sum()) * self.edge_index_bits
        if plain == 0:
            return 1.0
        return self.total_bits(degrees) / plain


def build_layout(
    graph: CSRGraph, name: str = DEFAULT_LAYOUT, *, edge_index_bits: int = 32
) -> EdgeLayout:
    """Encode ``graph``'s edge array under the named layout.

    ``edge_index_bits`` is the plain entry width (``HWConfig.edge_index_bits``);
    compressed widths never exceed it.
    """
    validate_layout(name)
    n = graph.num_vertices
    offsets = np.asarray(graph.offsets, dtype=np.int64)
    edges = np.asarray(graph.edges, dtype=np.int64)
    meta: Dict[str, object] = {
        "ids_degree_sorted": bool(is_descending_degree_order(graph)),
    }

    if name == "plain":
        header = np.full(n, edge_index_bits, dtype=np.int64)
        entry = header.copy()
        return EdgeLayout(name, edge_index_bits, header, entry, meta)

    if name == "degree-sorted":
        row_max = segment_max(offsets, edges, initial=0)
        widths = np.minimum(_fit_widths(row_max, _ID_WIDTHS), edge_index_bits)
        return EdgeLayout(name, edge_index_bits, widths, widths.copy(), meta)

    # delta-compressed
    sorted_rows = rows_sorted(offsets, edges)
    header = np.full(n, edge_index_bits, dtype=np.int64)
    if edges.size >= 2:
        seg = segment_ids(offsets)
        deltas = edges[1:] - edges[:-1]
        # Pairs crossing a row boundary are not deltas; neutralise them.
        deltas = np.where(seg[1:] == seg[:-1], deltas, 0)
        # Per-row max delta via segment_max over the pair array: row r's
        # pairs are deltas[offsets[r]-1 : offsets[r+1]-1], which includes
        # its (zeroed) leading cross-boundary pair — harmless under max.
        pair_offsets = np.clip(offsets - 1, 0, deltas.size)
        row_max_delta = segment_max(pair_offsets, deltas, initial=0)
        widths = np.minimum(_fit_widths(row_max_delta, _DELTA_WIDTHS), edge_index_bits)
        entry = np.where(sorted_rows, widths, edge_index_bits)
    else:
        # Degenerate graph: every row has at most one edge, so the entry
        # width is unused; keep the minimal delta width for sorted rows.
        entry = np.where(sorted_rows, _DELTA_WIDTHS[0], edge_index_bits)
    meta["rows_delta_encoded"] = int(np.count_nonzero(sorted_rows))
    meta["rows_fallback_plain"] = int(n - np.count_nonzero(sorted_rows))
    return EdgeLayout(name, edge_index_bits, header, entry, meta)
