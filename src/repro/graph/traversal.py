"""Graph traversal utilities: BFS, connected components, distance probes.

Support routines for the examples and ablations — e.g. validating that a
road stand-in is connected before scheduling over it, or measuring how
BFS levels relate to the iteration counts of round-based coloring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "connected_components",
    "ComponentSummary",
    "component_summary",
    "is_connected",
    "eccentricity_estimate",
]


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS distance from ``source`` (-1 for unreachable vertices)."""
    graph._check_vertex(source)
    n = graph.num_vertices
    level = -np.ones(n, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nxt: List[int] = []
        for v in frontier:
            for w in graph.neighbors(int(v)):
                w = int(w)
                if level[w] < 0:
                    level[w] = d
                    nxt.append(w)
        frontier = np.asarray(nxt, dtype=np.int64)
    return level


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex (ids are 0-based, in discovery order)."""
    n = graph.num_vertices
    comp = -np.ones(n, dtype=np.int64)
    cid = 0
    for s in range(n):
        if comp[s] >= 0:
            continue
        comp[s] = cid
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                w = int(w)
                if comp[w] < 0:
                    comp[w] = cid
                    queue.append(w)
        cid += 1
    return comp


@dataclass(frozen=True)
class ComponentSummary:
    num_components: int
    largest_size: int
    largest_fraction: float
    sizes: Tuple[int, ...]


def component_summary(graph: CSRGraph) -> ComponentSummary:
    comp = connected_components(graph)
    if comp.size == 0:
        return ComponentSummary(0, 0, 0.0, ())
    sizes = np.bincount(comp)
    order = np.sort(sizes)[::-1]
    return ComponentSummary(
        num_components=int(sizes.size),
        largest_size=int(order[0]),
        largest_fraction=float(order[0] / comp.size),
        sizes=tuple(int(s) for s in order),
    )


def is_connected(graph: CSRGraph) -> bool:
    if graph.num_vertices == 0:
        return True
    return bool((bfs_levels(graph, 0) >= 0).all())


def eccentricity_estimate(
    graph: CSRGraph, *, probes: int = 4, seed: int = 0
) -> int:
    """Lower bound on the diameter via double-sweep BFS probes.

    Each probe BFSes from a random vertex, then from the farthest vertex
    found; the max distance seen is a classic tight diameter lower bound.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    gen = np.random.default_rng(seed)
    best = 0
    for _ in range(max(probes, 1)):
        s = int(gen.integers(n))
        lv = bfs_levels(graph, s)
        reach = np.nonzero(lv >= 0)[0]
        far = int(reach[np.argmax(lv[reach])])
        lv2 = bfs_levels(graph, far)
        best = max(best, int(lv2.max()))
    return best
