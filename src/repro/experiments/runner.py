"""Uniform experiment harness.

Each paper experiment needs some subset of: the preprocessed stand-in
graph, a BitColor simulation at some parallelism/flag setting, the CPU
model run and the GPU model run.  This module provides those as memoised
single calls so the per-figure entry points in :mod:`repro.experiments.figures`
and :mod:`repro.experiments.tables` stay declarative and cheap to combine.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from ..coloring.greedy import GreedyResult, greedy_coloring
from ..graph.csr import CSRGraph
from ..hw.accelerator import AcceleratorResult, BitColorAccelerator
from ..hw.config import HWConfig, OptimizationFlags
from ..obs import get_registry
from ..perfmodel.cpu import CPUModel, CPURunResult
from ..perfmodel.gpu import GPUModel, GPURunResult
from .datasets import REGISTRY, DatasetSpec, load_dataset

__all__ = [
    "get_spec",
    "get_graph",
    "run_bitcolor",
    "run_cpu",
    "run_gpu",
    "run_greedy",
]


def get_spec(key: str) -> DatasetSpec:
    try:
        return REGISTRY[key]
    except KeyError:
        raise KeyError(f"unknown dataset {key!r}") from None


def get_graph(key: str, *, preprocessed: bool = True) -> CSRGraph:
    with get_registry().span(
        "experiment.load_graph", dataset=key, preprocessed=preprocessed
    ) as sp:
        graph = load_dataset(key, preprocessed=preprocessed)
        sp.set(vertices=graph.num_vertices, edges=graph.num_edges)
    return graph


@lru_cache(maxsize=None)
def run_bitcolor(
    key: str,
    parallelism: int = 16,
    flags: OptimizationFlags = OptimizationFlags.all(),
) -> AcceleratorResult:
    """Simulate BitColor on a stand-in with paper-faithful cache scaling."""
    spec = get_spec(key)
    with get_registry().span(
        "experiment.bitcolor", dataset=key, parallelism=parallelism
    ):
        graph = get_graph(key)
        config = spec.config_for(parallelism, graph.num_vertices)
        return BitColorAccelerator(config, flags).run(graph)


@lru_cache(maxsize=None)
def run_greedy(
    key: str, *, preprocessed: bool = True, clear_mode: str = "touched"
) -> GreedyResult:
    """Sequential Algorithm 1 with counters on a stand-in."""
    with get_registry().span(
        "experiment.greedy", dataset=key, clear_mode=clear_mode
    ):
        return greedy_coloring(
            get_graph(key, preprocessed=preprocessed), clear_mode=clear_mode
        )


@lru_cache(maxsize=None)
def run_cpu(key: str) -> CPURunResult:
    """CPU-model run (Algorithm 1 work converted to Xeon time).

    Uses the paper-literal flag clear (Algorithm 1 lines 17–19) and
    prices memory at the paper graph's scale — see CPUModel.run.
    """
    with get_registry().span("experiment.cpu", dataset=key):
        return CPUModel().run(
            get_graph(key),
            greedy=run_greedy(key, clear_mode="paper"),
            color_array_vertices=get_spec(key).paper_nodes,
        )


@lru_cache(maxsize=None)
def run_gpu(key: str, seed: int = 0) -> GPURunResult:
    """GPU-model run (Jones–Plassmann work converted to Titan V time)."""
    with get_registry().span("experiment.gpu", dataset=key, seed=seed):
        return GPUModel().run(get_graph(key), seed=seed)
