"""Uniform experiment harness.

Each paper experiment needs some subset of: the preprocessed stand-in
graph, a BitColor simulation at some parallelism/flag setting, the CPU
model run and the GPU model run.  This module provides those as memoised
single calls so the per-figure entry points in :mod:`repro.experiments.figures`
and :mod:`repro.experiments.tables` stay declarative and cheap to combine.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from ..coloring.greedy import GreedyResult, greedy_coloring
from ..graph.csr import CSRGraph
from ..hw.accelerator import AcceleratorResult, BitColorAccelerator
from ..hw.config import HWConfig, OptimizationFlags
from ..obs import Registry, get_registry, use_registry
from ..perfmodel.cpu import CPUModel, CPURunResult
from ..perfmodel.gpu import GPUModel, GPURunResult
from .datasets import REGISTRY, DatasetSpec, load_dataset

__all__ = [
    "SweepRun",
    "get_spec",
    "get_graph",
    "run_bitcolor",
    "run_cpu",
    "run_gpu",
    "run_greedy",
    "run_sweep",
]


def get_spec(key: str) -> DatasetSpec:
    try:
        return REGISTRY[key]
    except KeyError:
        raise KeyError(f"unknown dataset {key!r}") from None


def get_graph(key: str, *, preprocessed: bool = True, tier: str = "standin") -> CSRGraph:
    with get_registry().span(
        "experiment.load_graph", dataset=key, preprocessed=preprocessed, tier=tier
    ) as sp:
        graph = load_dataset(key, preprocessed=preprocessed, tier=tier)
        sp.set(vertices=graph.num_vertices, edges=graph.num_edges)
    return graph


@lru_cache(maxsize=None)
def run_bitcolor(
    key: str,
    parallelism: int = 16,
    flags: OptimizationFlags = OptimizationFlags.all(),
    engine: str = "event",
    tier: str = "standin",
) -> AcceleratorResult:
    """Simulate BitColor on a stand-in with paper-faithful cache scaling.

    ``engine="batched"`` routes through the epoch-vectorized fast path
    (identical results); ``tier="paper"`` runs the ~10× stand-in size
    tier, which is only practical together with the batched engine.
    """
    spec = get_spec(key)
    with get_registry().span(
        "experiment.bitcolor", dataset=key, parallelism=parallelism,
        engine=engine, tier=tier,
    ):
        graph = get_graph(key, tier=tier)
        config = spec.config_for(parallelism, graph.num_vertices)
        return BitColorAccelerator(config, flags, engine=engine).run(graph)


@lru_cache(maxsize=None)
def run_greedy(
    key: str, *, preprocessed: bool = True, clear_mode: str = "touched"
) -> GreedyResult:
    """Sequential Algorithm 1 with counters on a stand-in."""
    with get_registry().span(
        "experiment.greedy", dataset=key, clear_mode=clear_mode
    ):
        return greedy_coloring(
            get_graph(key, preprocessed=preprocessed), clear_mode=clear_mode
        )


@lru_cache(maxsize=None)
def run_cpu(key: str) -> CPURunResult:
    """CPU-model run (Algorithm 1 work converted to Xeon time).

    Uses the paper-literal flag clear (Algorithm 1 lines 17–19) and
    prices memory at the paper graph's scale — see CPUModel.run.
    """
    with get_registry().span("experiment.cpu", dataset=key):
        return CPUModel().run(
            get_graph(key),
            greedy=run_greedy(key, clear_mode="paper"),
            color_array_vertices=get_spec(key).paper_nodes,
        )


@lru_cache(maxsize=None)
def run_gpu(key: str, seed: int = 0) -> GPURunResult:
    """GPU-model run (Jones–Plassmann work converted to Titan V time)."""
    with get_registry().span("experiment.gpu", dataset=key, seed=seed):
        return GPUModel().run(get_graph(key), seed=seed)


# ----------------------------------------------------------------------
# Dataset × algorithm sweeps over the shared process pool
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRun:
    """One (dataset, algorithm) cell of a sweep."""

    dataset: str
    algorithm: str
    backend: Optional[str]
    n_colors: int
    seconds: float


def _sweep_task(task: Tuple) -> Tuple[str, str, Optional[str], int, float, Optional[dict]]:
    """Pool-side entry: load the dataset (memoised per worker) and color it.

    Datasets are synthetic and regenerate from their registry seeds, so
    each worker materialises its own copy via the ``lru_cache`` on
    :func:`load_dataset` — no graph crosses the process boundary.
    """
    from .. import color as repro_color
    from ..coloring.registry import get_algorithm

    key, algorithm, seed, preprocessed, obs_enabled = task
    spec = get_algorithm(algorithm)
    opts = {}
    if spec.supports_seed:
        opts["seed"] = seed
    backend = spec.default_backend if spec.backends else None
    reg = Registry() if obs_enabled else None
    scope = use_registry(reg) if reg is not None else nullcontext()
    start = time.perf_counter()
    with scope:
        out = repro_color(
            load_dataset(key, preprocessed=preprocessed), algorithm, **opts
        )
    seconds = time.perf_counter() - start
    snapshot = reg.snapshot() if reg is not None else None
    return key, algorithm, backend, int(out.n_colors), seconds, snapshot


def run_sweep(
    datasets: Sequence[str],
    algorithms: Sequence[str],
    *,
    workers: Optional[int] = None,
    seed: int = 0,
    preprocessed: bool = True,
) -> List[SweepRun]:
    """Color every dataset with every algorithm, fanned over the shared pool.

    The cell list is the Cartesian product in ``(dataset, algorithm)``
    order, and results come back in that same order for any ``workers``
    value (:func:`repro.parallel.pool.pool_map` preserves item order).
    Per-cell spans and counters recorded in workers are merged into the
    ambient registry, stamped with ``dataset=``/``algorithm=`` so the
    flat artifact stays attributable.
    """
    from ..parallel.pool import pool_map, resolve_workers

    for key in datasets:
        get_spec(key)  # fail fast on typos before forking anything
    reg = get_registry()
    workers = resolve_workers(workers)
    tasks = [
        (key, algorithm, seed, preprocessed, reg.enabled)
        for key in datasets
        for algorithm in algorithms
    ]
    with reg.span(
        "experiment.sweep",
        datasets=len(datasets),
        algorithms=len(algorithms),
        workers=workers,
    ):
        rows = pool_map(_sweep_task, tasks, workers)
        runs = []
        for key, algorithm, backend, n_colors, seconds, snapshot in rows:
            if snapshot is not None:
                reg.merge_snapshot(snapshot, dataset=key, algorithm=algorithm)
            runs.append(
                SweepRun(
                    dataset=key,
                    algorithm=algorithm,
                    backend=backend,
                    n_colors=n_colors,
                    seconds=seconds,
                )
            )
    return runs
