"""Experiment harness: dataset registry plus one entry point per paper table/figure."""

from .datasets import DATASET_KEYS, REGISTRY, DatasetSpec, load_dataset, paper_hdv_fraction
from .figures import (
    AblationStep,
    Fig13Result,
    Fig13Row,
    PARALLELISM_SWEEP,
    fig3a_breakdown,
    fig3b_overlap,
    fig11_ablation,
    fig12_scaling,
    fig13_comparison,
    fig14_resources,
)
from .kernel_bench import (
    check_obs_overhead,
    check_smoke,
    load_results,
    run_kernel_bench,
    run_obs_overhead,
    run_smoke,
    smoke_graph,
    write_results,
)
from .runner import get_graph, get_spec, run_bitcolor, run_cpu, run_gpu, run_greedy
from .tables import (
    Table2Row,
    Table3Row,
    Table4Row,
    table2_preprocessing,
    table3_datasets,
    table4_colors,
)
from . import report
from .paper import PAPER
from .sensitivity import (
    SensitivityRow,
    sweep_cpu_memory,
    sweep_dram_occupancy,
    sweep_gpu_frontier_rate,
    sweep_physical_channels,
)

__all__ = [
    "DATASET_KEYS",
    "REGISTRY",
    "DatasetSpec",
    "load_dataset",
    "paper_hdv_fraction",
    "AblationStep",
    "Fig13Result",
    "Fig13Row",
    "PARALLELISM_SWEEP",
    "fig3a_breakdown",
    "fig3b_overlap",
    "fig11_ablation",
    "fig12_scaling",
    "fig13_comparison",
    "fig14_resources",
    "check_obs_overhead",
    "check_smoke",
    "load_results",
    "run_kernel_bench",
    "run_obs_overhead",
    "run_smoke",
    "smoke_graph",
    "write_results",
    "get_graph",
    "get_spec",
    "run_bitcolor",
    "run_cpu",
    "run_gpu",
    "run_greedy",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "table2_preprocessing",
    "table3_datasets",
    "table4_colors",
    "report",
    "PAPER",
    "SensitivityRow",
    "sweep_cpu_memory",
    "sweep_dram_occupancy",
    "sweep_gpu_frontier_rate",
    "sweep_physical_channels",
]
