"""Mesh throughput benchmark — N worker processes vs one (wall clock).

The mesh (:mod:`repro.service.mesh`) runs N full coloring services as
separate processes behind a consistent-hash router, which is the only
way past the single process's GIL-bound dispatch loop.  Whether that
actually buys throughput is host-dependent — on a 1-CPU container the
extra processes just time-slice — so this module measures it: the same
closed-loop fleet of small jobs pushed through meshes of 1, 2, and 4
workers, best-of-repeats, written to ``BENCH_mesh.json`` at the repo
root with ``host_cpus`` recorded alongside (the same honesty rule as
the kernel bench's worker-scaling block).

Before any timing is kept, byte parity with direct ``repro.color`` is
asserted across **all ten** registry stand-ins on both mesh data paths:
the forward path (dataset jobs consistent-hashed to one worker) and the
cross-worker shared-memory shard path.

Entry points mirror :mod:`repro.experiments.service_bench`:

* :func:`run_mesh_bench` — the worker-count sweep, driven by
  ``benchmarks/bench_mesh.py``;
* :func:`run_mesh_smoke` / :func:`check_mesh_smoke` — the fixed
  2-vs-1-worker workload behind ``scripts/bench_smoke.py`` gate 8,
  which **auto-skips with a recorded reason** on single-CPU hosts where
  process scaling is not measurable.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph import erdos_renyi
from ..obs import Registry
from .datasets import DATASET_KEYS, load_dataset
from .kernel_bench import _best_of

__all__ = [
    "DEFAULT_MESH_RESULT_PATH",
    "MESH_SMOKE_SPEC",
    "check_mesh_smoke",
    "load_mesh_results",
    "run_mesh_bench",
    "run_mesh_parity",
    "run_mesh_smoke",
    "write_mesh_results",
]

DEFAULT_MESH_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_mesh.json"
)
"""Checked-in mesh benchmark results at the repo root."""

MESH_SMOKE_SPEC = (
    "64 x erdos_renyi(~120, p=0.08), closed loop via 16 client threads, "
    "workers 1 vs 2 (executors=2 each, caching off)"
)

_SMOKE_JOBS = 64
_CLIENT_THREADS = 16
MESH_SCALING_FLOOR = 1.3
"""Gate 8's default floor: 2 workers must beat 1 by this much on
multi-CPU hosts."""


def _mesh_fleet(count: int) -> List:
    """Distinct small graphs — distinct fingerprints spread them over
    the hash ring, and caching is off so every job pays a kernel run."""
    return [
        erdos_renyi(100 + 7 * (i % 11), 0.08, seed=900 + i, name=f"mesh{i}")
        for i in range(count)
    ]


def _build_mesh(workers: int, *, queue_depth: int = 512, threshold=None):
    from ..service import ColoringMesh, MeshConfig, ServiceConfig

    return ColoringMesh(
        MeshConfig(
            workers=workers,
            service=ServiceConfig(
                executors=2,
                cache_capacity=0,
                max_queue_depth=queue_depth,
                registry=Registry(enabled=False),
            ),
            shard_threshold_vertices=threshold,
            health_interval_s=0.25,
        )
    )


def _closed_loop_mesh_s(graphs, *, workers: int) -> float:
    """Push every graph through a fresh N-worker mesh; seconds.

    Closed loop like the service bench: all jobs submitted up front from
    a pool of client threads, clock stops when the last completes.  Mesh
    construction (process spawn) happens before the clock starts — the
    sweep measures steady-state throughput, not cold start.
    """
    from concurrent.futures import ThreadPoolExecutor

    mesh = _build_mesh(workers, queue_depth=max(4 * len(graphs), 64))
    try:
        # Warm each worker's kernels/route before the timed pass.
        for g in graphs[: 2 * workers]:
            mesh.color(g, retries=64)
        with ThreadPoolExecutor(max_workers=_CLIENT_THREADS) as pool:
            start = time.perf_counter()
            futures = [
                pool.submit(mesh.color, g, retries=64) for g in graphs
            ]
            for f in futures:
                f.result()
            elapsed = time.perf_counter() - start
    finally:
        mesh.close()
    return elapsed


def run_mesh_parity() -> Dict[str, object]:
    """Assert mesh colors equal direct ``repro.color`` on every stand-in.

    Two meshes, two data paths, all ten registry stand-ins, byte-exact:

    * **forward** path (2-worker mesh, shard path off): dataset jobs
      hashed to one worker must equal plain ``repro.color(graph)``;
    * **cross-worker shard** path (``shard_threshold_vertices=1``
      forces every inline graph onto it): must equal
      ``repro.color(graph, "bitwise", backend="parallel")`` — the
      partition-parallel scheme it distributes, whose speculative
      shard + repair order legitimately differs from the sequential
      default.

    Any mismatch raises.
    """
    from .. import color as direct_color

    checked: List[str] = []
    with _build_mesh(2, threshold=None) as mesh:
        for key in DATASET_KEYS:
            expected = direct_color(load_dataset(key, preprocessed=True))
            served = mesh.color(dataset=key, retries=64)
            if not np.array_equal(served.colors, expected.colors):
                raise AssertionError(
                    f"mesh forward-path colors diverged from direct "
                    f"repro.color on {key}"
                )
            checked.append(key)
    with _build_mesh(2, threshold=1) as mesh:
        for key in DATASET_KEYS:
            graph = load_dataset(key, preprocessed=True)
            expected = direct_color(graph, "bitwise", backend="parallel")
            served = mesh.color(graph, retries=64)
            if not served.route.startswith("mesh-shard"):
                raise AssertionError(
                    f"shard path not taken for {key}: route {served.route!r}"
                )
            if not np.array_equal(served.colors, expected.colors):
                raise AssertionError(
                    f"mesh shard-path colors diverged from direct "
                    f"repro.color on {key}"
                )
    return {
        "datasets": checked,
        "forward_path_exact": True,
        "shard_path_exact": True,
    }


def run_mesh_bench(
    worker_counts: Iterable[int] = (1, 2, 4),
    *,
    fleet: int = _SMOKE_JOBS,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the closed-loop fleet behind 1/2/4-worker meshes.

    Parity across all stand-ins is asserted before any timing is kept.
    ``host_cpus`` is recorded because worker counts beyond the physical
    core count cannot help — on a 1-CPU host every multi-worker entry
    measures pure routing overhead, and the scaling gate records itself
    as skipped rather than asserting a floor the host cannot meet.
    """
    host_cpus = os.cpu_count() or 1
    parity = run_mesh_parity()
    graphs = _mesh_fleet(fleet)
    entries: List[Dict[str, object]] = []
    for n in worker_counts:
        seconds = _best_of(
            lambda n=n: _closed_loop_mesh_s(graphs, workers=n), repeats
        )
        entries.append(
            {
                "workers": n,
                "seconds": seconds,
                "jobs_per_s": fleet / seconds if seconds else 0.0,
            }
        )
    base_s = float(entries[0]["seconds"])
    for e in entries:
        e["scaling_vs_1"] = base_s / float(e["seconds"]) if e["seconds"] else 0.0
    if host_cpus >= 2:
        scaling_gate: Dict[str, object] = {
            "skipped": False,
            "floor": MESH_SCALING_FLOOR,
        }
    else:
        scaling_gate = {
            "skipped": True,
            "reason": (
                f"host has {host_cpus} CPU(s); N processes time-slice one "
                "core, so the workers=2 >= 1.3x workers=1 floor is not "
                "measurable here"
            ),
            "floor": MESH_SCALING_FLOOR,
        }
    return {
        "unit": "seconds, best of repeats (closed-loop fleet wall clock)",
        "repeats": repeats,
        "fleet": fleet,
        "client_threads": _CLIENT_THREADS,
        "host_cpus": host_cpus,
        "parity": parity,
        "entries": entries,
        "scaling_gate": scaling_gate,
        "smoke": run_mesh_smoke(repeats=repeats),
    }


def run_mesh_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """The fixed 2-vs-1-worker workload (see ``MESH_SMOKE_SPEC``).

    ``baseline_speedup`` (workers=2 over workers=1 throughput) is what
    :func:`check_mesh_smoke` compares future runs against on hosts with
    enough cores to make the comparison meaningful.
    """
    graphs = _mesh_fleet(_SMOKE_JOBS)
    one_s = _best_of(lambda: _closed_loop_mesh_s(graphs, workers=1), repeats)
    two_s = _best_of(lambda: _closed_loop_mesh_s(graphs, workers=2), repeats)
    return {
        "workload": MESH_SMOKE_SPEC,
        "jobs": _SMOKE_JOBS,
        "workers1_s": one_s,
        "workers2_s": two_s,
        "host_cpus": os.cpu_count() or 1,
        "baseline_speedup": one_s / two_s if two_s > 0 else float("inf"),
    }


def check_mesh_smoke(
    *, floor: float = MESH_SCALING_FLOOR, repeats: int = 3
) -> Tuple[Optional[bool], float, float]:
    """Re-run the mesh smoke workload against the absolute scaling floor.

    Returns ``(ok, current_speedup, floor)`` — an absolute floor like the
    native gates, because the failure mode is the mesh silently
    serializing (router bottleneck, workers sharing one lock), which
    reads as ~1x regardless of host speed.  ``ok`` is ``None`` when the
    host has fewer than 2 CPUs: N processes time-slicing one core cannot
    scale, so the gate **auto-skips** (mirroring the kernel bench's
    worker-scaling honesty rule) and the caller reports the reason.
    """
    host_cpus = os.cpu_count() or 1
    if host_cpus < 2:
        return None, float(host_cpus), floor
    current = float(run_mesh_smoke(repeats=repeats)["baseline_speedup"])
    return current >= floor, current, floor


def write_mesh_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_MESH_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_mesh_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_MESH_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
