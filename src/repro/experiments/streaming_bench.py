"""Streaming-lane benchmark: sustained deltas/sec vs naive full recolor.

The session lane's claim is economic: absorbing an edge-delta batch with
vectorized incremental repair (:meth:`SessionManager.apply`) is far
cheaper than what a session-less service must do — re-submit the whole
mutated graph and recolor it from scratch per batch.  This module
measures that on an **RMAT stream**: register a prefix of a power-law
graph, then stream the remaining edges (plus random expirations) in
fixed-size batches.

Correctness is asserted before any timing is kept: a separate untimed
pass replays the same stream, validates the coloring is proper after
**every** batch, and checks the maintained structure fingerprints
identically to a from-scratch replay of the deltas.  The timed passes
then compare:

* **session** — one :meth:`apply` per batch on a live session;
* **naive** — per batch, rebuild the mutated snapshot and run a full
  :func:`repro.color` on it (the cost a one-shot service pays).

Entry points mirror :mod:`repro.experiments.service_bench`:

* :func:`run_streaming_bench` — the stream-size sweep, driven by
  ``benchmarks/bench_streaming.py``;
* :func:`run_streaming_smoke` / :func:`check_streaming_smoke` — one
  fixed scenario for ``scripts/bench_smoke.py`` (gate 7).  The gate is
  an **absolute floor** (default ≥ 10x): the failure mode is the
  incremental path silently degrading to per-batch full recolors, which
  reads as ~1x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph.generators import rmat
from .kernel_bench import _best_of

__all__ = [
    "DEFAULT_STREAMING_RESULT_PATH",
    "STREAMING_FLOOR_SPEEDUP",
    "STREAMING_SMOKE_SPEC",
    "check_streaming_smoke",
    "load_streaming_results",
    "run_streaming_bench",
    "run_streaming_smoke",
    "write_streaming_results",
]

DEFAULT_STREAMING_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_streaming.json"
)
"""Checked-in streaming benchmark results at the repo root."""

STREAMING_FLOOR_SPEEDUP = 10.0
"""Acceptance floor: the session lane must sustain at least this many
times the naive per-batch full-recolor delta rate."""

STREAMING_SMOKE_SPEC = (
    "rmat(scale=14, epv=8) stream: 90% registered, then 10 batches of "
    "160 held-out additions + 40 random expirations each"
)

_SMOKE = dict(scale=14, epv=8, batches=10, adds_per_batch=160, seed=11)


def _rmat_stream(
    *, scale: int, epv: int, batches: int, seed: int,
    adds_per_batch: Optional[int] = None,
) -> Tuple[object, List[Tuple[np.ndarray, np.ndarray]]]:
    """Build the scenario: a registered prefix graph plus delta batches.

    The full RMAT edge set is split 90/10; the held-out 10% streams in as
    additions, and each batch also expires a few random resident edges —
    the arrive/expire mix of a temporal graph.  ``adds_per_batch`` pins
    the batch size regardless of graph scale: a real stream's batch size
    is set by arrival rate and latency budget, not by graph size, and the
    economics of the session lane hinge on exactly that decoupling
    (apply cost tracks the batch, full-recolor cost tracks the graph).
    """
    full = rmat(scale, epv, seed=seed)
    pairs = full.edge_array()
    keep = pairs[:, 0] < pairs[:, 1]  # one orientation per undirected edge
    src, dst = pairs[keep, 0], pairs[keep, 1]
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(src.size)
    src, dst = src[order], dst[order]
    cut = int(src.size * 0.9)
    from ..graph.csr import CSRGraph

    prefix = CSRGraph.from_arrays(
        full.num_vertices, src[:cut], dst[:cut],
        symmetrize=True, name=f"rmat{scale}-prefix",
    )
    tail = np.stack([src[cut:], dst[cut:]], axis=1)
    per_batch = max(1, tail.shape[0] // batches)
    if adds_per_batch is not None:
        per_batch = min(per_batch, adds_per_batch)
    deltas: List[Tuple[np.ndarray, np.ndarray]] = []
    for b in range(batches):
        adds = tail[b * per_batch : (b + 1) * per_batch]
        n_rem = max(1, per_batch // 4)
        # Expire random registered-prefix edges (misses are no-ops).
        pick = rng.integers(0, cut, size=n_rem)
        removals = np.stack([src[pick], dst[pick]], axis=1)
        deltas.append((adds, removals))
    return prefix, deltas


def _verified_stream(prefix, deltas) -> Dict[str, object]:
    """Untimed correctness pass: validity after every batch + parity."""
    from .. import color as direct_color
    from ..coloring.incremental import IncrementalColoring

    inc = IncrementalColoring.from_graph(
        prefix, colors=direct_color(prefix).colors
    )
    inc.validate()
    recolored = 0
    for adds, removals in deltas:
        diff = inc.apply_batch(adds, removals)
        inc.validate()  # proper after every batch, or this raises
        recolored += int(diff.changed.size)
    # The maintained structure must equal the naive replay's structure.
    snapshot = inc.to_graph()
    naive = _naive_structure(prefix, deltas)
    if snapshot.fingerprint() != naive.fingerprint():
        raise AssertionError(
            "incremental structure diverged from the naive replay"
        )
    return {
        "final_n_colors": inc.n_colors,
        "vertices_recolored": recolored,
        "validated_batches": len(deltas),
    }


def _naive_structure(prefix, deltas):
    """The mutated snapshot built the one-shot way (structure only)."""
    from ..coloring.incremental import IncrementalColoring

    struct = IncrementalColoring.from_graph(
        prefix, colors=np.zeros(prefix.num_vertices, dtype=np.int64)
    )
    for adds, removals in deltas:
        struct.apply_batch(adds, removals)
    return struct.to_graph()


def _session_stream_s(prefix, deltas, *, churn_threshold: float) -> float:
    """Wall clock of the whole stream through a live service session."""
    from ..obs import Registry
    from ..service import ColoringService, ServiceConfig

    svc = ColoringService(
        ServiceConfig(
            executors=2,
            cache_capacity=0,
            session_churn_threshold=churn_threshold,
            registry=Registry(enabled=False),
        )
    )
    try:
        info = svc.sessions.register(prefix)
        start = time.perf_counter()
        for adds, removals in deltas:
            svc.sessions.apply(info.session_id, adds, removals)
        elapsed = time.perf_counter() - start
    finally:
        svc.close(drain=False)
    return elapsed


def _naive_stream_s(prefix, deltas) -> float:
    """Wall clock of the one-shot answer: full recolor per batch."""
    from .. import color as direct_color
    from ..coloring.incremental import IncrementalColoring

    struct = IncrementalColoring.from_graph(
        prefix, colors=np.zeros(prefix.num_vertices, dtype=np.int64)
    )
    start = time.perf_counter()
    for adds, removals in deltas:
        struct.apply_batch(adds, removals)
        direct_color(struct.to_graph())
    return time.perf_counter() - start


def _scenario_entry(
    *, scale: int, epv: int, batches: int, seed: int,
    repeats: int, churn_threshold: float = 0.25,
    adds_per_batch: Optional[int] = None,
) -> Dict[str, object]:
    prefix, deltas = _rmat_stream(
        scale=scale, epv=epv, batches=batches, seed=seed,
        adds_per_batch=adds_per_batch,
    )
    checks = _verified_stream(prefix, deltas)
    n_deltas = sum(a.shape[0] + r.shape[0] for a, r in deltas)
    session_s = _best_of(
        lambda: _session_stream_s(prefix, deltas, churn_threshold=churn_threshold),
        repeats,
    )
    naive_s = _best_of(lambda: _naive_stream_s(prefix, deltas), repeats)
    return {
        "scale": scale,
        "edges_per_vertex": epv,
        "num_vertices": prefix.num_vertices,
        "registered_edges": prefix.num_undirected_edges,
        "batches": batches,
        "deltas": n_deltas,
        "session_s": session_s,
        "naive_s": naive_s,
        "session_deltas_per_s": n_deltas / session_s if session_s > 0 else float("inf"),
        "naive_deltas_per_s": n_deltas / naive_s if naive_s > 0 else float("inf"),
        "speedup": naive_s / session_s if session_s > 0 else float("inf"),
        **checks,
    }


def run_streaming_bench(
    scales: Iterable[int] = (11, 12, 13, 14),
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """The RMAT stream at several sizes; JSON-ready document.

    Each entry re-asserts validity after every batch (untimed) before
    timing the session lane against the naive per-batch full recolor.
    Batch size is held fixed across scales, so the sweep shows the
    session lane's advantage *growing* with graph size — the naive side
    pays a full recolor of an ever-larger graph for the same deltas.
    """
    entries = [
        _scenario_entry(
            scale=scale, epv=8, batches=10, seed=11 + scale,
            repeats=repeats, adds_per_batch=160,
        )
        for scale in scales
    ]
    return {
        "unit": "seconds, best of repeats (whole-stream wall clock)",
        "repeats": repeats,
        "floor_speedup": STREAMING_FLOOR_SPEEDUP,
        "entries": entries,
        "smoke": run_streaming_smoke(repeats=repeats),
    }


def run_streaming_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """The fixed scenario (see ``STREAMING_SMOKE_SPEC``), timed both ways."""
    entry = _scenario_entry(**_SMOKE, repeats=repeats)
    return {
        "workload": STREAMING_SMOKE_SPEC,
        **{
            k: entry[k]
            for k in (
                "deltas", "session_s", "naive_s",
                "session_deltas_per_s", "naive_deltas_per_s",
                "validated_batches", "final_n_colors",
            )
        },
        "baseline_speedup": entry["speedup"],
    }


def check_streaming_smoke(
    baseline: Optional[Dict[str, object]] = None,
    *,
    floor: float = STREAMING_FLOOR_SPEEDUP,
    repeats: int = 3,
) -> Tuple[bool, float, float]:
    """Re-run the streaming smoke; ``(ok, current_speedup, threshold)``.

    The threshold is the absolute ``floor`` (≥ 10x by default), not a
    ratio against the baseline: the regression this gate exists to catch
    is the incremental path silently degrading to per-batch full
    recolors, which reads as ~1x regardless of host speed.  ``baseline``
    is accepted for interface symmetry with the other gates (its
    recorded number is echoed by the caller) but does not move the bar.
    """
    del baseline  # absolute floor; see docstring
    current = float(run_streaming_smoke(repeats=repeats)["baseline_speedup"])
    return current >= floor, current, floor


def write_streaming_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_STREAMING_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_streaming_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_STREAMING_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
