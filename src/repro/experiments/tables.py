"""One entry point per paper table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..coloring.greedy import greedy_coloring_fast
from ..coloring.verify import num_colors
from ..graph.stats import degree_stats
from ..perfmodel.cpu import CPUModel
from .datasets import DATASET_KEYS, REGISTRY
from .runner import get_graph, get_spec, run_greedy

__all__ = [
    "Table2Row",
    "table2_preprocessing",
    "Table3Row",
    "table3_datasets",
    "Table4Row",
    "table4_colors",
]


@dataclass(frozen=True)
class Table2Row:
    """Preprocessing vs coloring time, single CPU thread (milliseconds).

    Modelled at *paper scale*: per-edge/per-vertex operation counts are
    measured on the stand-in and scaled to the paper graph's dimensions,
    then priced by the CPU cost model (whose memory costs depend on the
    paper-scale color-array size).  The reproduced claim is the *ratio*:
    reordering is a small fraction of coloring time.
    """

    dataset: str
    reorder_ms: float
    coloring_ms: float

    @property
    def reorder_fraction(self) -> float:
        return self.reorder_ms / max(self.coloring_ms, 1e-12)


def table2_preprocessing(keys: Sequence[str] = DATASET_KEYS) -> List[Table2Row]:
    model = CPUModel()
    rows: List[Table2Row] = []
    for key in keys:
        spec = get_spec(key)
        graph = get_graph(key)
        greedy = run_greedy(key, clear_mode="paper")
        c = greedy.counters
        # Scale measured op counts to paper dimensions.
        n_s, e_s = graph.num_vertices, graph.num_edges
        n_p, e_p = spec.paper_nodes, 2 * spec.paper_edges
        stage0 = c.stage0_ops * (e_p / max(e_s, 1))
        # Stage-1 work under the paper-literal clear is a fixed sweep per
        # vertex — scale with vertices.
        stage1 = c.stage1_ops * (n_p / max(n_s, 1))
        stage2 = c.stage2_ops * (n_p / max(n_s, 1))
        p = model.params
        rand = p.random_read_cycles(n_p * 2)
        cycles = (
            stage0 * (rand + p.edge_stream_cycles)
            + stage1 * p.flag_op_cycles
            + stage2 * p.vertex_overhead_cycles
        )
        coloring_s = cycles / (p.frequency_ghz * 1e9)

        class _PaperDims:
            num_vertices = n_p
            num_edges = e_p

        reorder_s = model.preprocessing_time_seconds(_PaperDims)  # type: ignore[arg-type]
        rows.append(
            Table2Row(
                dataset=key,
                reorder_ms=reorder_s * 1e3,
                coloring_ms=coloring_s * 1e3,
            )
        )
    return rows


@dataclass(frozen=True)
class Table3Row:
    """Dataset inventory: paper graph and stand-in side by side."""

    dataset: str
    full_name: str
    category: str
    paper_nodes: int
    paper_edges: int
    standin_nodes: int
    standin_edges: int  # undirected
    paper_avg_degree: float
    standin_avg_degree: float
    hdv_fraction: float


def table3_datasets(keys: Sequence[str] = DATASET_KEYS) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for key in keys:
        spec = REGISTRY[key]
        g = get_graph(key)
        st = degree_stats(g)
        rows.append(
            Table3Row(
                dataset=key,
                full_name=spec.full_name,
                category=spec.category,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                standin_nodes=g.num_vertices,
                standin_edges=g.num_undirected_edges,
                paper_avg_degree=spec.paper_avg_degree,
                standin_avg_degree=st.mean_degree,
                hdv_fraction=spec.hdv_fraction,
            )
        )
    return rows


@dataclass(frozen=True)
class Table4Row:
    """Color counts without vs with the sorting preprocessing.

    The paper reports a 9.3 % average color reduction from its sorting
    scheme.  Within-vertex edge order cannot change a sequential greedy
    result (the neighbour color *set* is what matters), so the reduction
    is attributable to the ordering component of the preprocessing: BSL
    here is greedy in natural vertex order on the raw graph; "sorted" is
    greedy after the full DBG + edge-sort pipeline (descending-degree
    processing order).  See EXPERIMENTS.md for the interpretation note.
    """

    dataset: str
    colors_bsl: int
    colors_sorted: int
    paper_bsl: int | None
    paper_sorted: int | None

    @property
    def reduction(self) -> float:
        if self.colors_bsl == 0:
            return 0.0
        return 1.0 - self.colors_sorted / self.colors_bsl


def table4_colors(keys: Sequence[str] = DATASET_KEYS) -> List[Table4Row]:
    rows: List[Table4Row] = []
    for key in keys:
        spec = REGISTRY[key]
        raw = get_graph(key, preprocessed=False)
        pre = get_graph(key)
        bsl = num_colors(greedy_coloring_fast(raw))
        srt = num_colors(greedy_coloring_fast(pre))
        rows.append(
            Table4Row(
                dataset=key,
                colors_bsl=bsl,
                colors_sorted=srt,
                paper_bsl=spec.paper_colors_bsl,
                paper_sorted=spec.paper_colors_sorted,
            )
        )
    return rows
