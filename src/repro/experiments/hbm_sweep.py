"""HBM crossover sweep — where the DRAM-read merge stops paying.

The MGR optimization (Fig 11's ``mgr`` flag) merges consecutive LDV
color reads that hit the same DRAM block.  On the DDR4 baseline its
value is obvious: four physical channels are shared by every PE, so
each read it removes also removes queueing.  An HBM part changes the
economics — 32 pseudo-channels mean a read often costs *only* its own
occupancy, and the merge buffer's win shrinks toward the bare per-task
stream cycles it saves.  This module maps that surface:

    merge_gain = makespan(mgr off) / makespan(mgr on)

swept over **datasets x physical channels x parallelism x edge layout**
on the ``hbm2`` memory profile at ``tier="paper"``.  A cell where
``merge_gain <= MERGE_PAYS_THRESHOLD`` is one where the merge no longer
pays; the smallest such channel count per (dataset, P, layout) row is
the crossover.  On the measured stand-ins the surface spans the whole
range: CF (RMAT, avg degree 28) keeps a 1.3-1.6x win even at 32
channels, CO holds 5-13%, while CL and EF cross almost immediately.

The sweep deliberately scales the HDV cache down to
``BANDWIDTH_STRESS_CACHE_SCALE`` of the paper's hdv-fraction sizing:
at the full fraction the cache absorbs nearly all color reads and every
memory profile looks identical (gains < 0.1%), which would say nothing
about the memory system.  The scaled cache keeps the LDV read stream
alive so channel count actually matters; the scale is recorded in the
result document.

Colorings are asserted byte-identical across every cell of a dataset —
layouts are encodings and MGR is a timing optimization, so neither may
ever change colors.

The smoke half (gate 10 of ``scripts/bench_smoke.py``) is fully
deterministic — modeled cycles, no wall-clock timing:

* **engine parity** — event vs batched stats/colors must match exactly
  on both memory profiles under all three edge layouts;
* **compression floor** — the delta-compressed layout must cut modeled
  edge-read cycles (``edge_blocks_fetched * dram_stream_cycles``) by at
  least ``SMOKE_MIN_DELTA_REDUCTION`` on every skewed stand-in.

Running ``benchmarks/bench_hbm.py`` regenerates the checked-in
``BENCH_hbm.json``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..graph.layout import DEFAULT_LAYOUT, LAYOUTS
from ..hw import BitColorAccelerator, OptimizationFlags, mem
from .datasets import REGISTRY, load_dataset
from .kernel_bench import smoke_graph

__all__ = [
    "BANDWIDTH_STRESS_CACHE_SCALE",
    "DEFAULT_HBM_RESULT_PATH",
    "MERGE_PAYS_THRESHOLD",
    "MINI_SWEEP",
    "PAPER_SWEEP",
    "SMOKE_DATASETS",
    "SMOKE_MIN_DELTA_REDUCTION",
    "check_hbm_smoke",
    "load_hbm_results",
    "render_hbm_figure",
    "run_hbm_smoke",
    "run_hbm_sweep",
    "write_hbm_results",
]

DEFAULT_HBM_RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_hbm.json"

#: Merge gain at or below which the merge buffer "stops paying" — a
#: <= 2% makespan win does not buy the MGR buffer + sorted-edge
#: requirement on a real part.
MERGE_PAYS_THRESHOLD = 1.02

#: HDV cache scale used by the sweep (fraction of the paper's
#: hdv-fraction sizing) so the LDV read stream survives and the memory
#: profile actually matters.  See the module docstring.
BANDWIDTH_STRESS_CACHE_SCALE = 0.1

#: Floor for the delta-compressed layout's modeled edge-read-cycle
#: reduction on the skewed stand-ins (gate 10).  Measured reductions sit
#: at 25-45%, so 15% has real headroom without being vacuous.
SMOKE_MIN_DELTA_REDUCTION = 0.15

#: Skewed stand-ins for the compression gate: the power-law/RMAT
#: datasets whose sorted neighbor runs delta-compression exploits.
SMOKE_DATASETS: Tuple[str, ...] = ("EF", "CL", "CO", "CF")

#: The checked-in sweep: full channel ladder at two parallelism points.
PAPER_SWEEP: Dict[str, Tuple] = {
    "datasets": ("EF", "CL", "CO", "CF"),
    "channels": (4, 8, 16, 32),
    "parallelisms": (16, 64),
    "tier": "paper",
}

#: CI-sized axes: one dataset, the channel extremes, standin tier.
MINI_SWEEP: Dict[str, Tuple] = {
    "datasets": ("CO",),
    "channels": (4, 32),
    "parallelisms": (16,),
    "tier": "standin",
}

_SWEEP_PROFILE = "hbm2"


def _stress_config(key: str, graph, *, channels: int, parallelism: int):
    """The sweep's HWConfig: hbm2 with a channel override and the
    bandwidth-stress HDV cache (paper hdv-fraction x the stress scale)."""
    spec = REGISTRY[key]
    cache_vertices = max(
        1,
        int(round(spec.hdv_fraction * graph.num_vertices
                  * BANDWIDTH_STRESS_CACHE_SCALE)),
    )
    return mem.profile_config(
        _SWEEP_PROFILE,
        dram_physical_channels=channels,
        parallelism=parallelism,
        cache_bytes=cache_vertices * 2,
    )


def _run(graph, config, *, layout: str, mgr: bool, engine: str = "batched"):
    flags = OptimizationFlags(mgr=mgr)
    acc = BitColorAccelerator(config, flags, engine=engine, layout=layout)
    return acc.run(graph)


def run_hbm_sweep(
    *,
    datasets: Iterable[str] = PAPER_SWEEP["datasets"],
    channels: Sequence[int] = PAPER_SWEEP["channels"],
    parallelisms: Sequence[int] = PAPER_SWEEP["parallelisms"],
    layouts: Sequence[str] = LAYOUTS,
    tier: str = PAPER_SWEEP["tier"],
    engine: str = "batched",
    threshold: float = MERGE_PAYS_THRESHOLD,
) -> Dict[str, object]:
    """Run the channels x layout x P sweep; returns the result document.

    Every cell runs twice (MGR on / MGR off) and records the merge gain;
    colorings are asserted byte-identical across all cells of a dataset.
    Deterministic — modeled cycles only, no timing.
    """
    datasets = tuple(datasets)
    entries = []
    for key in datasets:
        graph = load_dataset(key, tier=tier)
        reference_colors = None
        for parallelism in parallelisms:
            for ch in channels:
                config = _stress_config(
                    key, graph, channels=ch, parallelism=parallelism
                )
                for layout in layouts:
                    on = _run(graph, config, layout=layout, mgr=True,
                              engine=engine)
                    off = _run(graph, config, layout=layout, mgr=False,
                               engine=engine)
                    for label, res in (("mgr on", on), ("mgr off", off)):
                        if reference_colors is None:
                            reference_colors = res.colors
                        elif not np.array_equal(reference_colors, res.colors):
                            raise AssertionError(
                                f"colors diverged on {key} "
                                f"(ch={ch}, P={parallelism}, "
                                f"layout={layout}, {label}) — layouts and "
                                "MGR must never change the coloring"
                            )
                    gain = off.stats.makespan_cycles / on.stats.makespan_cycles
                    entries.append({
                        "dataset": key,
                        "num_vertices": graph.num_vertices,
                        "num_edges": graph.num_edges,
                        "channels": ch,
                        "parallelism": parallelism,
                        "layout": layout,
                        "sharing_divisor": mem.sharing_divisor(parallelism, ch),
                        "makespan_mgr_on": on.stats.makespan_cycles,
                        "makespan_mgr_off": off.stats.makespan_cycles,
                        "merge_gain": round(gain, 6),
                        "merge_pays": gain > threshold,
                        "merged_reads": on.stats.merged_reads,
                        "edge_blocks_fetched": on.stats.edge_blocks_fetched,
                        "edge_read_cycles": (
                            on.stats.edge_blocks_fetched
                            * config.dram_stream_cycles
                        ),
                        "dram_queue_cycles_on": on.stats.dram_queue_cycles,
                        "dram_queue_cycles_off": off.stats.dram_queue_cycles,
                        "num_colors": on.num_colors,
                    })

    crossover = []
    for key in datasets:
        for parallelism in parallelisms:
            for layout in layouts:
                row = [
                    e for e in entries
                    if e["dataset"] == key
                    and e["parallelism"] == parallelism
                    and e["layout"] == layout
                ]
                row.sort(key=lambda e: e["channels"])
                gains = {str(e["channels"]): e["merge_gain"] for e in row}
                stops = [e["channels"] for e in row if not e["merge_pays"]]
                crossover.append({
                    "dataset": key,
                    "parallelism": parallelism,
                    "layout": layout,
                    "gains_by_channels": gains,
                    "merge_stops_paying_at": min(stops) if stops else None,
                })

    results: Dict[str, object] = {
        "benchmark": "hbm-sweep",
        "profile": _SWEEP_PROFILE,
        "tier": tier,
        "engine": engine,
        "cache_scale": BANDWIDTH_STRESS_CACHE_SCALE,
        "merge_pays_threshold": threshold,
        "axes": {
            "datasets": list(datasets),
            "channels": list(channels),
            "parallelisms": list(parallelisms),
            "layouts": list(layouts),
        },
        "colors_identical_across_cells": True,
        "entries": entries,
        "crossover": crossover,
    }
    results["figure"] = render_hbm_figure(results)
    return results


def render_hbm_figure(results: Dict[str, object]) -> str:
    """ASCII crossover surface: one block per (dataset, P), rows =
    channel counts, columns = layouts; ``*`` marks cells where the merge
    stopped paying (gain <= threshold)."""
    axes = results["axes"]
    threshold = results["merge_pays_threshold"]
    layouts = list(axes["layouts"])
    lines = [
        f"merge gain = makespan(mgr off) / makespan(mgr on) "
        f"[{results['profile']}, tier={results['tier']}, "
        f"cache x{results['cache_scale']}]",
        f"* = merge stops paying (gain <= {threshold})",
    ]
    width = max(len(name) for name in layouts) + 2
    for key in axes["datasets"]:
        for parallelism in axes["parallelisms"]:
            lines.append(f"\n{key}  P={parallelism}")
            header = "  channels" + "".join(f"{name:>{width}}"
                                            for name in layouts)
            lines.append(header)
            for ch in axes["channels"]:
                cells = []
                for layout in layouts:
                    match = [
                        e for e in results["entries"]
                        if e["dataset"] == key
                        and e["parallelism"] == parallelism
                        and e["channels"] == ch
                        and e["layout"] == layout
                    ]
                    if not match:
                        cells.append(f"{'-':>{width}}")
                        continue
                    e = match[0]
                    mark = " " if e["merge_pays"] else "*"
                    cells.append(f"{e['merge_gain']:>{width - 2}.3f}x{mark}")
                lines.append(f"  {ch:>8}" + "".join(cells))
    return "\n".join(lines)


def _parity_check(graph, *, profile: str, layout: str) -> None:
    config = mem.profile_config(profile, parallelism=16)
    event = BitColorAccelerator(
        config, OptimizationFlags.all(), engine="event", layout=layout
    ).run(graph)
    batched = BitColorAccelerator(
        config, OptimizationFlags.all(), engine="batched", layout=layout
    ).run(graph)
    what = f"profile={profile}, layout={layout}"
    if not np.array_equal(event.colors, batched.colors):
        raise AssertionError(f"engine colors diverged ({what})")
    if dataclasses.asdict(event.stats) != dataclasses.asdict(batched.stats):
        raise AssertionError(f"engine stats diverged ({what})")


def run_hbm_smoke(
    *,
    datasets: Iterable[str] = SMOKE_DATASETS,
    profiles: Sequence[str] = mem.PROFILE_NAMES,
) -> Dict[str, object]:
    """Gate 10's deterministic smoke: engine parity on every
    (profile x layout), then the delta-compressed edge-read-cycle
    reduction per skewed stand-in.  No timing anywhere."""
    graph = smoke_graph()
    parity_checks = 0
    for profile in profiles:
        for layout in LAYOUTS:
            _parity_check(graph, profile=profile, layout=layout)
            parity_checks += 1

    reductions: Dict[str, float] = {}
    for key in datasets:
        g = load_dataset(key, tier="standin")
        spec = REGISTRY[key]
        cache_vertices = max(
            1, int(round(spec.hdv_fraction * g.num_vertices))
        )
        config = mem.profile_config(
            _SWEEP_PROFILE, parallelism=16, cache_bytes=cache_vertices * 2
        )
        cycles = {}
        for layout in (DEFAULT_LAYOUT, "delta-compressed"):
            res = _run(graph=g, config=config, layout=layout, mgr=True)
            cycles[layout] = (
                res.stats.edge_blocks_fetched * config.dram_stream_cycles
            )
        reductions[key] = round(
            1.0 - cycles["delta-compressed"] / cycles[DEFAULT_LAYOUT], 4
        )

    return {
        "parity_checks": parity_checks,
        "parity_profiles": list(profiles),
        "parity_layouts": list(LAYOUTS),
        "metric": "edge_blocks_fetched * dram_stream_cycles",
        "delta_reduction": reductions,
        "min_delta_reduction": min(reductions.values()),
        "floor": SMOKE_MIN_DELTA_REDUCTION,
    }


def check_hbm_smoke(
    baseline: Optional[Dict[str, object]] = None,
    *,
    floor: float = SMOKE_MIN_DELTA_REDUCTION,
) -> Tuple[bool, float, float]:
    """Gate 10: re-run the deterministic smoke and compare against the
    absolute floor.  Returns ``(ok, current_min_reduction, floor)``;
    parity failures raise (they are never a matter of degree).  The
    optional ``baseline`` document is accepted for signature symmetry
    with the other gates — the gate itself is deterministic, so the
    checked-in numbers are an echo, not a tolerance."""
    del baseline  # deterministic gate; see docstring
    smoke = run_hbm_smoke()
    current = float(smoke["min_delta_reduction"])
    return current >= floor, current, floor


def write_hbm_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_HBM_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_hbm_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_HBM_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
