"""Plain-text rendering of experiment results.

The benchmark harness prints these blocks; EXPERIMENTS.md embeds them.
Rendering is deliberately dependency-free (no tabulate / rich).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .figures import AblationStep, Fig13Result
from .tables import Table2Row, Table3Row, Table4Row

__all__ = [
    "render_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_fig3a",
    "render_fig3b",
    "render_fig11",
    "render_fig12",
    "render_fig13",
    "render_fig14",
]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in srows)
    return "\n".join(lines)


def render_table2(rows: List[Table2Row]) -> str:
    return render_table(
        ["Graph", "Reorder (ms)", "Coloring (ms)", "Reorder/Coloring"],
        [
            (r.dataset, f"{r.reorder_ms:.2f}", f"{r.coloring_ms:.2f}",
             f"{100 * r.reorder_fraction:.1f}%")
            for r in rows
        ],
    )


def render_table3(rows: List[Table3Row]) -> str:
    return render_table(
        ["Graph", "Name", "Category", "Paper N", "Paper E",
         "Stand-in N", "Stand-in E", "Paper deg", "Stand-in deg", "HDV frac"],
        [
            (r.dataset, r.full_name, r.category, r.paper_nodes, r.paper_edges,
             r.standin_nodes, r.standin_edges,
             f"{r.paper_avg_degree:.1f}", f"{r.standin_avg_degree:.1f}",
             f"{r.hdv_fraction:.3f}")
            for r in rows
        ],
    )


def render_table4(rows: List[Table4Row]) -> str:
    avg = sum(r.reduction for r in rows) / max(len(rows), 1)
    body = render_table(
        ["Graph", "BSL colors", "Sorted colors", "Reduction",
         "Paper BSL", "Paper sorted"],
        [
            (r.dataset, r.colors_bsl, r.colors_sorted,
             f"{100 * r.reduction:.1f}%",
             r.paper_bsl if r.paper_bsl is not None else "-",
             r.paper_sorted if r.paper_sorted is not None else "-")
            for r in rows
        ],
    )
    return f"{body}\naverage reduction: {100 * avg:.1f}%  (paper: 9.3%)"


def render_fig3a(rows: Dict[str, Dict[str, float]]) -> str:
    return render_table(
        ["Graph", "Stage0 %", "Stage1 %", "Stage2 %"],
        [
            (k, f"{100 * v['stage0']:.2f}", f"{100 * v['stage1']:.2f}",
             f"{100 * v['stage2']:.2f}")
            for k, v in rows.items()
        ],
    )


def render_fig3b(rows: Dict[str, Dict[int, float]]) -> str:
    intervals = sorted(next(iter(rows.values())).keys())
    return render_table(
        ["Graph"] + [f"k={k}" for k in intervals],
        [
            (g,) + tuple(f"{100 * vals[k]:.3f}%" for k in intervals)
            for g, vals in rows.items()
        ],
    )


def render_fig11(result: Dict[str, List[AblationStep]]) -> str:
    blocks = []
    for key, steps in result.items():
        rows = [
            (s.label, s.compute_cycles, s.dram_cycles, s.total_cycles,
             f"{s.compute_norm:.3f}", f"{s.dram_norm:.3f}", f"{s.total_norm:.3f}")
            for s in steps
        ]
        blocks.append(
            f"[{key}]\n"
            + render_table(
                ["Step", "Compute", "DRAM", "Total",
                 "Compute(norm)", "DRAM(norm)", "Total(norm)"],
                rows,
            )
        )
    # Aggregate endpoint reductions (the paper's 88.63 / 66.89 / 82.91 %).
    finals = [steps[-1] for steps in result.values()]
    n = max(len(finals), 1)
    dram_red = 100 * (1 - sum(s.dram_norm for s in finals) / n)
    comp_red = 100 * (1 - sum(s.compute_norm for s in finals) / n)
    tot_red = 100 * (1 - sum(s.total_norm for s in finals) / n)
    blocks.append(
        f"average reductions vs BSL — DRAM: {dram_red:.2f}% (paper 88.63%), "
        f"compute: {comp_red:.2f}% (paper 66.89%), "
        f"total: {tot_red:.2f}% (paper 82.91%)"
    )
    return "\n\n".join(blocks)


def render_fig12(result: Dict[str, Dict[int, float]]) -> str:
    ps = sorted(next(iter(result.values())).keys())
    body = render_table(
        ["Graph"] + [f"P={p}" for p in ps],
        [
            (g,) + tuple(f"{vals[p]:.2f}x" for p in ps)
            for g, vals in result.items()
        ],
    )
    top = [vals[ps[-1]] for vals in result.values()]
    return (
        f"{body}\nP={ps[-1]} speedup range: {min(top):.2f}x – {max(top):.2f}x "
        f"(paper: 3.92x – 7.01x)"
    )


def render_fig13(result: Fig13Result) -> str:
    body = render_table(
        ["Graph", "CPU (s)", "GPU (s)", "BitColor (s)",
         "vs CPU", "vs GPU"],
        [
            (r.dataset, f"{r.cpu_time_s:.4f}", f"{r.gpu_time_s:.4f}",
             f"{r.fpga_time_s:.5f}", f"{r.speedup_vs_cpu:.1f}x",
             f"{r.speedup_vs_gpu:.2f}x")
            for r in result.rows
        ],
    )
    t = result.avg_mcvs()
    e = result.avg_kcvj()
    return (
        f"{body}\n"
        f"average speedup vs CPU: {result.avg_speedup_vs_cpu:.1f}x (paper 54.9x); "
        f"vs GPU: {result.avg_speedup_vs_gpu:.2f}x (paper 2.71x)\n"
        f"throughput MCV/S — CPU {t['cpu']:.2f} (paper 0.88), "
        f"GPU {t['gpu']:.1f} (paper 15.3), BitColor {t['bitcolor']:.1f} (paper 41.6)\n"
        f"energy KCV/J — CPU {e['cpu']:.0f} (paper 12), GPU {e['gpu']:.0f} (paper 19), "
        f"BitColor {e['bitcolor']:.0f} (paper 156)"
    )


def render_fig14(reports) -> str:
    rows = []
    for r in reports:
        u = r.utilization()
        rows.append(
            (f"P={r.parallelism}", r.luts, f"{u['lut_pct']:.2f}%",
             r.registers, f"{u['register_pct']:.2f}%",
             r.bram_blocks, f"{u['bram_pct']:.2f}%",
             f"{r.frequency_mhz:.0f} MHz")
        )
    return render_table(
        ["Config", "LUTs", "LUT %", "Registers", "FF %",
         "BRAM blocks", "BRAM %", "Frequency"],
        rows,
    ) + "\npaper at P=16: 47.79% LUTs, 51.09% FFs, 96.72% BRAM, >200 MHz"
