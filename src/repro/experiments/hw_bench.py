"""Event-vs-batched accelerator engine benchmark (wall clock, measured).

The two engines of :class:`~repro.hw.accelerator.BitColorAccelerator` are
parity-tested to be exactly equal — colorings, statistics, traces — so
the only open question is speed.  This module times both over the
stand-in suite at the paper settings (``flags.all()``, P=16,
paper-faithful cache scaling) and writes ``BENCH_hw.json`` at the repo
root.  Parity is re-asserted inside the benchmark before any timing is
kept: a fast wrong engine must fail here, not report a speedup.

Entry points mirror :mod:`repro.experiments.kernel_bench`:

* :func:`run_hw_bench` — the full dataset matrix, driven by
  ``benchmarks/bench_hw.py``;
* :func:`run_hw_smoke` / :func:`check_hw_smoke` — one small fixed graph
  timed the same way, compared against the checked-in baseline by
  ``scripts/bench_smoke.py`` so an engine regression fails fast in CI;
* :func:`run_hw_native_smoke` / :func:`check_hw_native_smoke` — the
  batched engine's Python replay vs the optional compiled replay
  (:mod:`repro.kernels.native`); auto-skips when no backend is usable.
  The event-vs-batched baseline itself is pinned to ``replay="python"``
  so its recorded numbers compare the same code paths on every host.

Timings are best-of-``repeats`` wall clock (minimum: noise is strictly
additive in micro-benchmarks).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph import degree_based_grouping, sort_edges
from ..hw import BitColorAccelerator, HWConfig, OptimizationFlags
from .datasets import DATASET_KEYS, REGISTRY, load_dataset
from .kernel_bench import _best_of, smoke_graph

__all__ = [
    "DEFAULT_HW_DATASETS",
    "DEFAULT_HW_RESULT_PATH",
    "LARGEST_STANDIN",
    "MIN_NATIVE_REPLAY_SPEEDUP",
    "check_hw_native_smoke",
    "check_hw_smoke",
    "load_hw_results",
    "run_hw_bench",
    "run_hw_native_smoke",
    "run_hw_smoke",
    "write_hw_results",
]

DEFAULT_HW_RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_hw.json"
"""Checked-in engine benchmark results at the repo root."""

DEFAULT_HW_DATASETS: Tuple[str, ...] = tuple(DATASET_KEYS)
"""All ten stand-ins: the parity claim is suite-wide, so the timing is too."""

LARGEST_STANDIN = "RC"
"""The stand-in with the most vertices — the acceptance target carries a
>=10x speedup requirement there (see ISSUE/EXPERIMENTS notes)."""

HW_SMOKE_SPEC = "powerlaw_cluster(1200, 6, 0.3, seed=7), preprocessed, P=16"

MIN_NATIVE_REPLAY_SPEEDUP = 1.2
"""Acceptance floor for the compiled replay on the batched smoke run.

The whole-run speedup is diluted by the shared vectorized epoch
precompute, so the floor is modest; what the gate must catch is the
native replay silently falling back to the Python recurrence, which
shows up as a ~1x "speedup"."""


def _engines_for(key: str, parallelism: int):
    """(graph, event accelerator, batched accelerator) at paper settings.

    The batched engine is pinned to ``replay="python"`` so the recorded
    event-vs-batched baseline means the same thing on every host,
    with or without a compiler; the native replay is timed separately.
    """
    graph = load_dataset(key, preprocessed=True)
    config = REGISTRY[key].config_for(parallelism, graph.num_vertices)
    flags = OptimizationFlags.all()
    return (
        graph,
        BitColorAccelerator(config, flags),
        BitColorAccelerator(config, flags, engine="batched", replay="python"),
    )


def _assert_engine_parity(graph, reference_acc, candidate_acc) -> None:
    ev = reference_acc.run(graph)
    ba = candidate_acc.run(graph)
    what = (
        f"{candidate_acc.engine}/{candidate_acc.replay} vs "
        f"{reference_acc.engine}/{reference_acc.replay}"
    )
    if not np.array_equal(ev.colors, ba.colors):
        raise AssertionError(f"accelerator colors diverged ({what})")
    if dataclasses.asdict(ev.stats) != dataclasses.asdict(ba.stats):
        raise AssertionError(f"accelerator stats diverged ({what})")


def run_hw_bench(
    datasets: Iterable[str] = DEFAULT_HW_DATASETS,
    *,
    parallelism: int = 16,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time both engines on every stand-in; returns the JSON-ready document.

    Each entry records the best-of-``repeats`` wall clock per engine, the
    speedup, and that exact parity held (asserted, so its presence means
    it passed).
    """
    from ..kernels import native

    use_native = native.available()
    entries: List[Dict[str, object]] = []
    for key in datasets:
        graph, event_acc, batched_acc = _engines_for(key, parallelism)
        _assert_engine_parity(graph, event_acc, batched_acc)  # also warms both
        event_s = _best_of(lambda: event_acc.run(graph), repeats)
        batched_s = _best_of(lambda: batched_acc.run(graph), repeats)
        entry = {
            "dataset": key,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "event_s": event_s,
            "batched_s": batched_s,
            "speedup": event_s / batched_s if batched_s > 0 else float("inf"),
            "exact_parity": True,
        }
        if use_native:
            native_acc = BitColorAccelerator(
                batched_acc.config, batched_acc.flags,
                engine="batched", replay="native",
            )
            _assert_engine_parity(graph, batched_acc, native_acc)
            native_s = _best_of(lambda: native_acc.run(graph), repeats)
            entry["native_s"] = native_s
            entry["native_speedup"] = (
                batched_s / native_s if native_s > 0 else float("inf")
            )
        entries.append(entry)
    return {
        "unit": "seconds, best of repeats",
        "repeats": repeats,
        "parallelism": parallelism,
        "flags": OptimizationFlags.all().label(),
        "largest_standin": LARGEST_STANDIN,
        "native_backend": native.backend_info() if use_native else None,
        "entries": entries,
        "smoke": run_hw_smoke(repeats=repeats),
        "native_smoke": run_hw_native_smoke(repeats=repeats),
    }


def run_hw_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """Time both engines on the fixed smoke graph (see ``HW_SMOKE_SPEC``).

    The recorded ``baseline_speedup`` is what :func:`check_hw_smoke`
    compares future runs against.
    """
    graph = sort_edges(degree_based_grouping(smoke_graph()).graph)
    config = HWConfig(parallelism=16, cache_bytes=graph.num_vertices)
    flags = OptimizationFlags.all()
    event_acc = BitColorAccelerator(config, flags)
    # Python replay, pinned: the recorded baseline must compare the same
    # two code paths on every host, with or without a compiler.
    batched_acc = BitColorAccelerator(
        config, flags, engine="batched", replay="python"
    )
    _assert_engine_parity(graph, event_acc, batched_acc)  # also warms both
    event_s = _best_of(lambda: event_acc.run(graph), repeats)
    batched_s = _best_of(lambda: batched_acc.run(graph), repeats)
    return {
        "graph": HW_SMOKE_SPEC,
        "event_s": event_s,
        "batched_s": batched_s,
        "baseline_speedup": event_s / batched_s if batched_s > 0 else float("inf"),
    }


def run_hw_native_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """Time the batched engine's Python vs native replay on the smoke graph.

    Returns ``{"available": False, "reason": ...}`` when no compiled
    backend is usable, else the timing document with ``baseline_speedup``
    (python replay / native replay, whole batched run) and the compiler
    backend.  Exact parity — colors and every
    :class:`~repro.hw.accelerator.AcceleratorStats` field — is asserted
    before any timing is kept.
    """
    from ..kernels import native

    if not native.available():
        return {"available": False, "reason": native.unavailable_reason()}
    graph = sort_edges(degree_based_grouping(smoke_graph()).graph)
    config = HWConfig(parallelism=16, cache_bytes=graph.num_vertices)
    flags = OptimizationFlags.all()
    python_acc = BitColorAccelerator(
        config, flags, engine="batched", replay="python"
    )
    native_acc = BitColorAccelerator(
        config, flags, engine="batched", replay="native"
    )
    _assert_engine_parity(graph, python_acc, native_acc)  # also warms both
    python_s = _best_of(lambda: python_acc.run(graph), repeats)
    native_s = _best_of(lambda: native_acc.run(graph), repeats)
    return {
        "available": True,
        "graph": HW_SMOKE_SPEC,
        "python_replay_s": python_s,
        "native_replay_s": native_s,
        "baseline_speedup": python_s / native_s if native_s > 0 else float("inf"),
        "backend": native.backend_info(),
    }


def check_hw_native_smoke(
    *, min_speedup: float = MIN_NATIVE_REPLAY_SPEEDUP, repeats: int = 3
) -> Tuple[Optional[bool], float, float]:
    """Gate the compiled replay on the batched smoke run.

    Returns ``(ok, current_speedup, threshold)``; ``ok`` is ``None`` when
    no native backend is available (caller reports a skip — the tier is
    optional by design).  Otherwise the whole-run python-vs-native replay
    speedup must clear :data:`MIN_NATIVE_REPLAY_SPEEDUP`.
    """
    doc = run_hw_native_smoke(repeats=repeats)
    if not doc["available"]:
        return None, 0.0, min_speedup
    current = float(doc["baseline_speedup"])
    return current >= min_speedup, current, min_speedup


def check_hw_smoke(
    baseline: Dict[str, object], *, factor: float = 2.0, repeats: int = 3
) -> Tuple[bool, float, float]:
    """Re-run the hw smoke benchmark against a checked-in baseline.

    Returns ``(ok, current_speedup, threshold)``; passes while the current
    event/batched speedup stays above ``baseline / factor`` — the shape a
    batched-engine regression (vectorized precompute silently degrading to
    scalar work) takes.
    """
    smoke = baseline.get("smoke", baseline)
    baseline_speedup = float(smoke["baseline_speedup"])
    current = float(run_hw_smoke(repeats=repeats)["baseline_speedup"])
    threshold = baseline_speedup / factor
    return current >= threshold, current, threshold


def write_hw_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_HW_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_hw_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_HW_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
