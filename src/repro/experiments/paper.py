"""The paper's reported numbers, centralized.

Single source of truth for every value the benches and EXPERIMENTS.md
compare against, with the section/figure it comes from.  Keeping them in
one place prevents the comparison targets from drifting between the
report renderers, the benchmark assertions, and the docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["PAPER"]


@dataclass(frozen=True)
class PaperNumbers:
    # Figure 3(a): execution-time breakdown of basic greedy on CPU.
    fig3a_stage_breakdown: Tuple[float, float, float] = (0.3924, 0.4653, 0.1423)

    # Figure 3(b): neighbourhood overlap.
    fig3b_average_overlap: float = 0.0496
    fig3b_typical_ceiling: float = 0.10

    # Figure 11: single-BWPE ablation endpoint (reduction vs BSL).
    fig11_dram_reduction: float = 0.8863
    fig11_compute_reduction: float = 0.6689
    fig11_total_reduction: float = 0.8291
    fig11_bwc_compute_reduction: float = 0.45
    fig11_hdc_large_graph_dram_reduction: float = 0.55

    # Figure 12: parallel scaling at P = 16.
    fig12_speedup_range: Tuple[float, float] = (3.92, 7.01)

    # Figure 13 / Section 5.3.
    fig13_cpu_speedup_range: Tuple[float, float] = (30.0, 97.0)
    fig13_cpu_speedup_avg: float = 54.9
    fig13_gpu_speedup_range: Tuple[float, float] = (1.63, 6.69)
    fig13_gpu_speedup_avg: float = 2.71
    throughput_mcvs: Dict[str, float] = None  # set in __post_init__
    energy_kcvj: Dict[str, float] = None
    energy_ratio_vs_cpu: float = 13.0
    energy_ratio_vs_gpu: float = 8.2

    # Figure 14: P = 16 utilization.
    fig14_lut_pct: float = 47.79
    fig14_register_pct: float = 51.09
    fig14_bram_pct: float = 96.72
    fig14_min_frequency_mhz: float = 200.0

    # Table 4: color reduction from the sorting preprocessing.
    table4_avg_reduction: float = 0.093

    # Section 4.4: multi-port cache storage advantage.
    multiport_ratio_formula: str = "2/P"

    def __post_init__(self):
        object.__setattr__(
            self, "throughput_mcvs", {"cpu": 0.88, "gpu": 15.3, "bitcolor": 41.6}
        )
        object.__setattr__(
            self, "energy_kcvj", {"cpu": 12.0, "gpu": 19.0, "bitcolor": 156.0}
        )


PAPER = PaperNumbers()
