"""Calibration-sensitivity analysis.

The reproduction's headline claims (Figure 13's speedup bands, Figure
12's sublinear scaling) rest on a handful of calibrated cost constants
(DESIGN.md §4).  This module perturbs each constant and re-derives the
headline aggregates, demonstrating which conclusions are *robust* (the
orderings and rough magnitudes) and which numbers are *calibrated* (the
exact averages).

``sweep_dram_occupancy`` and ``sweep_physical_channels`` perturb the
accelerator model; ``sweep_cpu_memory`` and ``sweep_gpu_frontier_rate``
perturb the baselines.  Each returns one row per setting with the
average speedups so the bench can assert, e.g., that BitColor still beats
the CPU by >20× even with DRAM costs doubled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..hw.accelerator import BitColorAccelerator
from ..perfmodel.cpu import CPUCostParams, CPUModel
from ..perfmodel.gpu import GPUCostParams, GPUModel
from ..perfmodel.metrics import arith_mean
from .datasets import DATASET_KEYS
from .runner import get_graph, get_spec, run_cpu, run_gpu, run_greedy

__all__ = [
    "SensitivityRow",
    "sweep_dram_occupancy",
    "sweep_physical_channels",
    "sweep_cpu_memory",
    "sweep_gpu_frontier_rate",
]

_SUBSET = ("EF", "CL", "RC", "CF")
"""A 4-dataset slice spanning the suite's regimes (small social, large
social, road, extreme-scale social) — enough for direction checks at a
fraction of the full suite's cost."""


@dataclass(frozen=True)
class SensitivityRow:
    parameter: str
    value: float
    avg_speedup_vs_cpu: float
    avg_speedup_vs_gpu: float


def _fpga_times(keys: Sequence[str], *, occupancy=None, channels=None) -> Dict[str, float]:
    out = {}
    for key in keys:
        g = get_graph(key)
        cfg = get_spec(key).config_for(16, g.num_vertices)
        if occupancy is not None:
            cfg = replace(cfg, dram_read_occupancy_cycles=occupancy)
        if channels is not None:
            cfg = replace(cfg, dram_physical_channels=channels)
        out[key] = BitColorAccelerator(cfg).run(g).time_seconds
    return out


def _rows_for_fpga_variant(name: str, value, fpga: Dict[str, float]) -> SensitivityRow:
    cpu = {k: run_cpu(k).time_seconds for k in fpga}
    gpu = {k: run_gpu(k).time_seconds for k in fpga}
    return SensitivityRow(
        parameter=name,
        value=float(value),
        avg_speedup_vs_cpu=arith_mean(cpu[k] / fpga[k] for k in fpga),
        avg_speedup_vs_gpu=arith_mean(gpu[k] / fpga[k] for k in fpga),
    )


def sweep_dram_occupancy(
    values: Sequence[int] = (5, 10, 20),
    keys: Sequence[str] = _SUBSET,
) -> List[SensitivityRow]:
    """Halve/double the per-read DRAM occupancy of the accelerator."""
    return [
        _rows_for_fpga_variant("dram_read_occupancy_cycles", v,
                               _fpga_times(keys, occupancy=v))
        for v in values
    ]


def sweep_physical_channels(
    values: Sequence[int] = (2, 4, 8),
    keys: Sequence[str] = _SUBSET,
) -> List[SensitivityRow]:
    """Vary the number of shared physical DRAM channels."""
    return [
        _rows_for_fpga_variant("dram_physical_channels", v,
                               _fpga_times(keys, channels=v))
        for v in values
    ]


def sweep_cpu_memory(
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    keys: Sequence[str] = _SUBSET,
) -> List[SensitivityRow]:
    """Scale the CPU model's memory latencies up and down."""
    fpga = _fpga_times(keys)
    gpu = {k: run_gpu(k).time_seconds for k in keys}
    rows = []
    base = CPUCostParams()
    for s in scales:
        params = replace(
            base,
            l2_cycles=base.l2_cycles * s,
            llc_cycles=base.llc_cycles * s,
            dram_cycles=base.dram_cycles * s,
        )
        model = CPUModel(params)
        cpu = {
            k: model.run(
                get_graph(k),
                greedy=run_greedy(k, clear_mode="paper"),
                color_array_vertices=get_spec(k).paper_nodes,
            ).time_seconds
            for k in keys
        }
        rows.append(
            SensitivityRow(
                parameter="cpu_memory_scale",
                value=s,
                avg_speedup_vs_cpu=arith_mean(cpu[k] / fpga[k] for k in keys),
                avg_speedup_vs_gpu=arith_mean(gpu[k] / fpga[k] for k in keys),
            )
        )
    return rows


def sweep_gpu_frontier_rate(
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    keys: Sequence[str] = _SUBSET,
) -> List[SensitivityRow]:
    """Scale the GPU model's per-round frontier throughput."""
    fpga = _fpga_times(keys)
    cpu = {k: run_cpu(k).time_seconds for k in keys}
    base = GPUCostParams()
    rows = []
    for s in scales:
        model = GPUModel(replace(base, frontier_rate_per_s=base.frontier_rate_per_s * s))
        gpu = {k: model.run(get_graph(k)).time_seconds for k in keys}
        rows.append(
            SensitivityRow(
                parameter="gpu_frontier_rate_scale",
                value=s,
                avg_speedup_vs_cpu=arith_mean(cpu[k] / fpga[k] for k in keys),
                avg_speedup_vs_gpu=arith_mean(gpu[k] / fpga[k] for k in keys),
            )
        )
    return rows
