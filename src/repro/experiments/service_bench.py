"""Micro-batching benchmark for the coloring service (wall clock, measured).

The service's batch lane coalesces small concurrent jobs into one
disjoint-union kernel invocation (:mod:`repro.service.batcher`), trading
per-call dispatch overhead for one slightly larger vectorized run.  The
coalesced colors are parity-tested byte-identical to solo runs, so — as
with the accelerator engines — the only open question is speed.  This
module measures it: the same closed-loop workload of small jobs pushed
through a service with micro-batching **on** vs **off**, best-of-repeats,
written to ``BENCH_service.json`` at the repo root.

Entry points mirror :mod:`repro.experiments.hw_bench`:

* :func:`run_service_bench` — the fleet-size sweep, driven by
  ``benchmarks/bench_service.py``;
* :func:`run_service_smoke` / :func:`check_service_smoke` — one fixed
  small workload timed the same way, compared against the checked-in
  baseline by ``scripts/bench_smoke.py`` (gate 4) so a batching
  regression fails fast in CI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph import erdos_renyi
from ..obs import Registry
from .kernel_bench import _best_of

__all__ = [
    "DEFAULT_SERVICE_RESULT_PATH",
    "SERVICE_SMOKE_SPEC",
    "check_service_smoke",
    "load_service_results",
    "run_service_bench",
    "run_service_smoke",
    "write_service_results",
]

DEFAULT_SERVICE_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_service.json"
)
"""Checked-in service benchmark results at the repo root."""

SERVICE_SMOKE_SPEC = (
    "24 x erdos_renyi(~120, p=0.08), closed loop, executors=2, "
    "batch window 10ms"
)

_SMOKE_JOBS = 24
_BATCH_WINDOW_S = 0.01


def _small_fleet(count: int) -> List:
    """Distinct small graphs, all under the service's batch threshold."""
    return [
        erdos_renyi(100 + 7 * (i % 11), 0.08, seed=300 + i, name=f"fleet{i}")
        for i in range(count)
    ]


def _closed_loop_s(graphs, *, batching: bool, executors: int = 2) -> Tuple[float, int]:
    """Push every graph through a fresh service; (seconds, jobs coalesced).

    Closed loop: all jobs are submitted up front and the clock stops when
    the last completes — the shape of a client fleet hammering a served
    instance.  Caching is disabled so every job pays for a real kernel run.
    """
    from ..service import ColoringService, JobRequest, ServiceConfig

    svc = ColoringService(
        ServiceConfig(
            executors=executors,
            batching=batching,
            batch_window_s=_BATCH_WINDOW_S,
            cache_capacity=0,
            max_queue_depth=max(4 * len(graphs), 64),
            registry=Registry(enabled=False),
        )
    )
    try:
        start = time.perf_counter()
        jobs = [svc.submit(JobRequest(graph=g)) for g in graphs]
        results = [job.result_or_raise(timeout=300) for job in jobs]
        elapsed = time.perf_counter() - start
    finally:
        svc.close(drain=False)
    coalesced = sum(1 for r in results if r.batched >= 2)
    return elapsed, coalesced


def _assert_service_parity(graphs) -> None:
    """Batched service colors must equal direct repro.color, byte-exact."""
    from .. import color as direct_color
    from ..service import ColoringService, JobRequest, ServiceConfig

    svc = ColoringService(
        ServiceConfig(
            executors=2,
            batch_window_s=_BATCH_WINDOW_S,
            cache_capacity=0,
            registry=Registry(enabled=False),
        )
    )
    try:
        jobs = [svc.submit(JobRequest(graph=g)) for g in graphs]
        for g, job in zip(graphs, jobs):
            served = job.result_or_raise(timeout=300)
            if not np.array_equal(served.colors, direct_color(g).colors):
                raise AssertionError(
                    f"service colors diverged from direct repro.color on {g.name}"
                )
    finally:
        svc.close(drain=False)


def run_service_bench(
    fleet_sizes: Iterable[int] = (8, 16, 32, 64),
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the closed-loop fleet at several sizes; JSON-ready document.

    Each entry records best-of-``repeats`` wall clock with micro-batching
    on and off, the throughput win, and that byte parity held (asserted
    before any timing is kept — a fast wrong batch lane must fail here,
    not report a speedup).
    """
    entries: List[Dict[str, object]] = []
    for count in fleet_sizes:
        graphs = _small_fleet(count)
        _assert_service_parity(graphs)  # also warms kernels and pools
        coalesced = [0]

        def batched_run():
            seconds, batched_jobs = _closed_loop_s(graphs, batching=True)
            coalesced[0] = batched_jobs
            return seconds

        batched_s = _best_of(batched_run, repeats)
        unbatched_s = _best_of(
            lambda: _closed_loop_s(graphs, batching=False)[0], repeats
        )
        entries.append(
            {
                "jobs": count,
                "batched_s": batched_s,
                "unbatched_s": unbatched_s,
                "batched_jobs_per_s": count / batched_s,
                "unbatched_jobs_per_s": count / unbatched_s,
                "speedup": unbatched_s / batched_s
                if batched_s > 0
                else float("inf"),
                "jobs_coalesced": coalesced[0],
                "exact_parity": True,
            }
        )
    return {
        "unit": "seconds, best of repeats (closed-loop fleet wall clock)",
        "repeats": repeats,
        "batch_window_s": _BATCH_WINDOW_S,
        "entries": entries,
        "smoke": run_service_smoke(repeats=repeats),
    }


def run_service_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """The fixed small workload (see ``SERVICE_SMOKE_SPEC``), timed both ways.

    The recorded ``baseline_speedup`` is what :func:`check_service_smoke`
    compares future runs against.
    """
    graphs = _small_fleet(_SMOKE_JOBS)
    _assert_service_parity(graphs)
    coalesced = [0]

    def batched_run():
        seconds, batched_jobs = _closed_loop_s(graphs, batching=True)
        coalesced[0] = batched_jobs
        return seconds

    batched_s = _best_of(batched_run, repeats)
    unbatched_s = _best_of(
        lambda: _closed_loop_s(graphs, batching=False)[0], repeats
    )
    return {
        "workload": SERVICE_SMOKE_SPEC,
        "jobs": _SMOKE_JOBS,
        "batched_s": batched_s,
        "unbatched_s": unbatched_s,
        "jobs_coalesced": coalesced[0],
        "baseline_speedup": unbatched_s / batched_s
        if batched_s > 0
        else float("inf"),
    }


def check_service_smoke(
    baseline: Dict[str, object], *, factor: float = 2.0, repeats: int = 3
) -> Tuple[bool, float, float]:
    """Re-run the service smoke workload against a checked-in baseline.

    Returns ``(ok, current_speedup, threshold)``; passes while the current
    batched/unbatched throughput win stays above ``baseline / factor`` —
    the shape of the batch lane silently falling apart (every job running
    solo again).  The factor is generous: closed-loop service timings see
    scheduler noise that kernel micro-benchmarks do not.
    """
    smoke = baseline.get("smoke", baseline)
    baseline_speedup = float(smoke["baseline_speedup"])
    current = float(run_service_smoke(repeats=repeats)["baseline_speedup"])
    threshold = baseline_speedup / factor
    return current >= threshold, current, threshold


def write_service_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_SERVICE_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_service_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_SERVICE_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
