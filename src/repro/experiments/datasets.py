"""Dataset registry — synthetic stand-ins for the paper's Table 3 graphs.

The paper evaluates ten SNAP datasets.  This offline reproduction ships a
registry that pairs each paper graph with a *seeded synthetic stand-in*
of the same topology class, scaled down so the pure-Python simulator
finishes in seconds:

* social networks → R-MAT / Holme–Kim power-law generators with the
  paper graph's average degree;
* road networks → perturbed 2-D grids (bounded degree, high locality);
* collaboration / product networks → planted-partition community graphs.

Two paper-critical ratios are preserved per dataset:

1. **average degree** — drives traversal work and color counts;
2. **HDV coverage** — the fraction of vertices the 512 K-entry cache can
   hold (``min(1, 512K / paper_nodes)``).  :meth:`DatasetSpec.config_for`
   scales the model's cache so the stand-in has the *same* fraction of
   cached vertices as the paper's run, which is what makes the HDC/MGR
   ablation behave like Figure 11 (e.g. com-DBLP fits entirely on chip,
   com-Friendster caches under 1 % of vertices).

If a user has the real SNAP downloads, :func:`repro.graph.io.load_snap_edge_list`
feeds them into the exact same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional

from ..graph import (
    CSRGraph,
    community_graph,
    degree_based_grouping,
    powerlaw_cluster,
    rmat,
    road_grid,
    sort_edges,
)
from ..hw.config import HWConfig

__all__ = [
    "DatasetSpec",
    "REGISTRY",
    "DATASET_KEYS",
    "DATASET_TIERS",
    "load_dataset",
    "paper_hdv_fraction",
]

PAPER_CACHE_VERTICES = 512 * 1024
"""The paper's HDV cache capacity: 1 MB of 16-bit colors (Section 5.1.1)."""

DATASET_TIERS = ("standin", "paper")
"""Size tiers for every stand-in.

``"standin"`` (default) is the classic tier sized for the event-driven
simulator (seconds per run).  ``"paper"`` is roughly 10× the vertices in
the same topology class — still far below the real SNAP graphs but big
enough that only the batched engine finishes interactively; callers must
ask for it explicitly (the experiment drivers gate it behind
``BITCOLOR_PAPER_TIER=1``)."""


def paper_hdv_fraction(paper_nodes: int) -> float:
    """Fraction of the paper graph's vertices that fit in the HDV cache."""
    return min(1.0, PAPER_CACHE_VERTICES / paper_nodes)


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 3 dataset and its synthetic stand-in."""

    key: str
    full_name: str
    category: str
    paper_nodes: int
    paper_edges: int  # undirected edge count, as in Table 3
    builder: Callable[[], CSRGraph]
    paper_colors_bsl: Optional[int] = None
    """Table 4 'BSL' color count on the real graph, for reference."""
    paper_colors_sorted: Optional[int] = None
    paper_tier_builder: Optional[Callable[[], CSRGraph]] = None
    """The ~10× "paper" size tier (same topology class and seed family)."""

    @property
    def paper_avg_degree(self) -> float:
        return 2.0 * self.paper_edges / self.paper_nodes

    @property
    def hdv_fraction(self) -> float:
        return paper_hdv_fraction(self.paper_nodes)

    def build_raw(self, tier: str = "standin") -> CSRGraph:
        """The stand-in graph, before any preprocessing."""
        if tier == "standin":
            return self.builder()
        if tier == "paper":
            if self.paper_tier_builder is None:
                raise ValueError(f"dataset {self.key!r} has no paper tier")
            return self.paper_tier_builder()
        raise ValueError(f"unknown tier {tier!r}; expected one of {DATASET_TIERS}")

    def config_for(self, parallelism: int, standin_vertices: int) -> HWConfig:
        """HWConfig whose cache covers the paper's HDV fraction.

        The cache is sized so ``v_t / n`` on the stand-in equals
        ``512K / paper_nodes`` on the real graph (capped at 1).
        """
        frac = self.hdv_fraction
        cache_vertices = max(1, int(round(frac * standin_vertices)))
        return HWConfig(parallelism=parallelism, cache_bytes=cache_vertices * 2)


def _spec(key: str, full_name: str, category: str, nodes: int, edges: int,
          builder: Callable[[], CSRGraph], bsl: Optional[int] = None,
          srt: Optional[int] = None,
          paper_tier: Optional[Callable[[], CSRGraph]] = None) -> DatasetSpec:
    return DatasetSpec(
        key=key,
        full_name=full_name,
        category=category,
        paper_nodes=nodes,
        paper_edges=edges,
        builder=builder,
        paper_colors_bsl=bsl,
        paper_colors_sorted=srt,
        paper_tier_builder=paper_tier,
    )


REGISTRY: Dict[str, DatasetSpec] = {
    "EF": _spec(
        "EF", "ego-Facebook", "Social network", 4_100, 88_200,
        lambda: powerlaw_cluster(4_000, 11, 0.5, seed=101, name="EF"),
        bsl=86, srt=76,
        paper_tier=lambda: powerlaw_cluster(40_000, 11, 0.5, seed=101, name="EF-paper"),
    ),
    "GD": _spec(
        "GD", "gemsec-Deezer_HR", "Social network", 54_500, 498_200,
        lambda: powerlaw_cluster(10_000, 9, 0.2, seed=102, name="GD"),
        bsl=21, srt=17,
        paper_tier=lambda: powerlaw_cluster(100_000, 9, 0.2, seed=102, name="GD-paper"),
    ),
    "CD": _spec(
        "CD", "com-DBLP", "Collaboration network", 317_000, 1_000_000,
        lambda: community_graph(600, 25, p_in=0.24, p_out=0.00006, seed=103, name="CD"),
        bsl=334, srt=328,
        paper_tier=lambda: community_graph(
            6_000, 25, p_in=0.24, p_out=0.000006, seed=103, name="CD-paper"
        ),
    ),
    "CA": _spec(
        "CA", "com-Amazon", "Product network", 335_800, 925_000,
        lambda: community_graph(800, 15, p_in=0.33, p_out=0.00005, seed=104, name="CA"),
        bsl=114, srt=114,
        paper_tier=lambda: community_graph(
            8_000, 15, p_in=0.33, p_out=0.000005, seed=104, name="CA-paper"
        ),
    ),
    "CL": _spec(
        "CL", "com-LiveJournal", "Social network", 3_900_000, 34_700_000,
        lambda: rmat(14, 9, seed=105, name="CL"),
        bsl=10, srt=7,
        paper_tier=lambda: rmat(17, 9, seed=105, name="CL-paper"),
    ),
    "RC": _spec(
        "RC", "roadNet-CA", "Road network", 1_900_000, 5_500_000,
        lambda: road_grid(140, 140, seed=106, name="RC"),
        bsl=5, srt=5,
        paper_tier=lambda: road_grid(443, 443, seed=106, name="RC-paper"),
    ),
    "RP": _spec(
        "RP", "roadNet-PA", "Road network", 1_100_000, 3_100_000,
        lambda: road_grid(110, 110, seed=107, name="RP"),
        bsl=5, srt=5,
        paper_tier=lambda: road_grid(348, 348, seed=107, name="RP-paper"),
    ),
    "RT": _spec(
        "RT", "roadNet-TX", "Road network", 1_300_000, 3_800_000,
        lambda: road_grid(120, 120, seed=108, name="RT"),
        bsl=5, srt=5,
        paper_tier=lambda: road_grid(380, 380, seed=108, name="RT-paper"),
    ),
    "CO": _spec(
        "CO", "com-Orkut", "Social network", 3_000_000, 117_100_000,
        lambda: rmat(12, 39, seed=109, name="CO"),
        bsl=116, srt=87,
        paper_tier=lambda: rmat(15, 39, seed=109, name="CO-paper"),
    ),
    "CF": _spec(
        "CF", "com-Friendster", "Social network", 65_600_000, 1_806_100_000,
        lambda: rmat(13, 28, seed=110, name="CF"),
        bsl=156, srt=129,
        paper_tier=lambda: rmat(16, 28, seed=110, name="CF-paper"),
    ),
}

DATASET_KEYS: List[str] = list(REGISTRY.keys())


@lru_cache(maxsize=None)
def load_dataset(
    key: str, *, preprocessed: bool = True, tier: str = "standin"
) -> CSRGraph:
    """Build (and memoise) a stand-in graph.

    With ``preprocessed`` (the default), the paper's full preprocessing is
    applied: DBG reordering then edge sorting — the input every BitColor
    experiment expects.  ``tier="paper"`` selects the ~10× size tier (see
    :data:`DATASET_TIERS`); pair it with the accelerator's batched engine.
    """
    try:
        spec = REGISTRY[key]
    except KeyError:
        raise KeyError(f"unknown dataset {key!r}; known: {DATASET_KEYS}") from None
    g = spec.build_raw(tier)
    if preprocessed:
        g = sort_edges(degree_based_grouping(g).graph)
    return g
