"""Python-vs-vectorized kernel benchmark (the ``backend`` flag, measured).

The coloring algorithms expose two backends: the reference scalar Python
loops and the packed-bitset kernel layer (:mod:`repro.kernels`).  They are
property-tested to be bit-identical, so the only question left is speed —
this module times both on the synthetic dataset suite and writes
``BENCH_kernels.json`` at the repo root.

Two entry points:

* :func:`run_kernel_bench` — the full matrix (datasets × algorithms),
  driven by ``benchmarks/bench_kernels.py``;
* :func:`run_smoke` / :func:`check_smoke` — a tiny fixed graph timed the
  same way, compared against the checked-in baseline by
  ``scripts/bench_smoke.py`` so a kernel-layer regression fails fast in
  tier-1 without the cost (or flakiness) of the full suite;
* :func:`run_native_smoke` / :func:`check_native_smoke` — the raw
  scatter-OR + first-free kernels, vectorized vs the optional compiled
  tier (:mod:`repro.kernels.native`); auto-skips when no compiler or
  numba is present.  When a native backend is detected, :func:`_measure`
  also times every (dataset, algorithm) pair with ``backend="native"``
  and records ``native_s`` / ``native_speedup`` columns.

Timings are best-of-``repeats`` wall clock: the minimum is the standard
robust statistic for micro-benchmarks because noise is strictly additive.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..coloring import bitwise_greedy_coloring, jones_plassmann_coloring, luby_mis
from ..graph import CSRGraph, powerlaw_cluster
from ..obs import Registry, use_registry
from .datasets import load_dataset

__all__ = [
    "ALGORITHMS",
    "DEFAULT_DATASETS",
    "DEFAULT_RESULT_PATH",
    "MIN_NATIVE_SPEEDUP",
    "SCALING_DATASET",
    "SCALING_WORKERS",
    "check_native_smoke",
    "check_obs_overhead",
    "check_smoke",
    "load_results",
    "run_kernel_bench",
    "run_native_smoke",
    "run_obs_overhead",
    "run_obs_overhead_pair",
    "run_smoke",
    "run_worker_scaling",
    "smoke_graph",
    "write_results",
]

DEFAULT_RESULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_kernels.json"
"""Checked-in benchmark results at the repo root."""

DEFAULT_DATASETS: Tuple[str, ...] = ("EF", "GD", "RC", "CL")
"""One stand-in per topology class: small social, default power-law social
(the acceptance target), road grid, R-MAT."""

ALGORITHMS: Tuple[str, ...] = ("bitwise", "jones_plassmann", "luby_mis")

SMOKE_SPEC = "powerlaw_cluster(1200, 6, 0.3, seed=7)"
"""Human-readable description of :func:`smoke_graph`, recorded in the JSON."""

SCALING_DATASET = "CF"
"""Worker-scaling target: the largest synthetic stand-in by edge count."""

SCALING_WORKERS: Tuple[int, ...] = (1, 2, 4)

NATIVE_SMOKE_SPEC = (
    "scatter-OR + first-free, 65536 updates into a 4096x4-word color state"
)
"""Human-readable description of the raw native kernel micro-benchmark."""

MIN_NATIVE_SPEEDUP = 3.0
"""Acceptance floor for the compiled kernels on the raw micro-benchmark.

An absolute floor rather than a baseline ratio: raw kernel speedups vary
wildly across hosts (NumPy's ``bitwise_or.at`` is unbuffered scalar
dispatch, so the gap only widens on fast machines), and what the gate
must catch is the native tier silently degrading to the vectorized
fallback — which shows up as a ~1x "speedup", far below any real
compiled run."""


def _runner(algorithm: str, graph: CSRGraph, backend: str) -> Callable[[], object]:
    """A zero-argument callable running one (algorithm, backend) pair."""
    if algorithm == "bitwise":
        return lambda: bitwise_greedy_coloring(
            graph, prune_uncolored=True, backend=backend
        )
    if algorithm == "jones_plassmann":
        return lambda: jones_plassmann_coloring(graph, seed=0, backend=backend)
    if algorithm == "luby_mis":
        return lambda: luby_mis(graph, seed=0, backend=backend)
    raise ValueError(f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}")


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(graph: CSRGraph, algorithm: str, repeats: int) -> Dict[str, float]:
    python_fn = _runner(algorithm, graph, "python")
    vector_fn = _runner(algorithm, graph, "vectorized")
    # Warm both paths once (first-call overheads: schedule memoisation,
    # lazy imports) so the timed runs compare steady-state kernels.
    python_fn()
    vector_fn()
    python_s = _best_of(python_fn, repeats)
    vectorized_s = _best_of(vector_fn, repeats)
    timing = {
        "python_s": python_s,
        "vectorized_s": vectorized_s,
        "speedup": python_s / vectorized_s if vectorized_s > 0 else float("inf"),
    }
    from ..kernels import native

    # Luby MIS never touches the packed-bitset kernels, so there is no
    # native tier to time for it.
    if native.available() and algorithm in ("bitwise", "jones_plassmann"):
        native_fn = _runner(algorithm, graph, "native")
        native_fn()
        native_s = _best_of(native_fn, repeats)
        timing["native_s"] = native_s
        timing["native_speedup"] = (
            vectorized_s / native_s if native_s > 0 else float("inf")
        )
    return timing


def run_kernel_bench(
    datasets: Iterable[str] = DEFAULT_DATASETS,
    algorithms: Iterable[str] = ALGORITHMS,
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time every (dataset, algorithm) pair on both backends.

    Returns the JSON-ready result document; :func:`write_results` persists
    it to :data:`DEFAULT_RESULT_PATH`.
    """
    entries: List[Dict[str, object]] = []
    for key in datasets:
        graph = load_dataset(key, preprocessed=True)
        for algorithm in algorithms:
            timing = _measure(graph, algorithm, repeats)
            entries.append(
                {
                    "dataset": key,
                    "algorithm": algorithm,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    **timing,
                }
            )
    from ..kernels import native

    return {
        "unit": "seconds, best of repeats",
        "repeats": repeats,
        "native_backend": native.backend_info() if native.available() else None,
        "entries": entries,
        "smoke": run_smoke(repeats=repeats),
        "native_smoke": run_native_smoke(repeats=repeats),
        "scaling": run_worker_scaling(repeats=repeats),
    }


def run_worker_scaling(
    *,
    dataset: str = SCALING_DATASET,
    workers: Tuple[int, ...] = SCALING_WORKERS,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the parallel backend at several pool widths on one big graph.

    Speedups are relative to the single-process vectorized coloring of the
    whole graph — the honest yardstick, since it is what ``workers`` must
    eventually beat.  ``host_cpus`` is recorded alongside because pool
    widths beyond the physical core count cannot help: on a 1-core host
    every entry measures pure orchestration overhead.  The colors are
    asserted byte-identical across all widths before any timing is kept.
    """
    import os

    import numpy as np

    from ..parallel import parallel_bitwise_coloring

    graph = load_dataset(dataset, preprocessed=True)
    reference_fn = _runner("bitwise", graph, "vectorized")
    reference_fn()  # warm
    reference_s = _best_of(reference_fn, repeats)
    baseline_colors = None
    entries: List[Dict[str, object]] = []
    for w in workers:
        fn = lambda: parallel_bitwise_coloring(graph, workers=w)  # noqa: E731
        result = fn()  # warm: pool start-up, shm export, shard subgraphs
        if baseline_colors is None:
            baseline_colors = result.colors
        elif not np.array_equal(baseline_colors, result.colors):
            raise AssertionError(
                f"parallel colors diverged between workers={workers[0]} and "
                f"workers={w}"
            )
        seconds = _best_of(fn, repeats)
        entries.append(
            {
                "workers": w,
                "seconds": seconds,
                "speedup_vs_vectorized": reference_s / seconds if seconds else 0.0,
            }
        )
    return {
        "dataset": dataset,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "host_cpus": os.cpu_count() or 1,
        "vectorized_s": reference_s,
        "deterministic_across_workers": True,
        "entries": entries,
    }


def smoke_graph() -> CSRGraph:
    """The fixed tiny graph the smoke check times (see :data:`SMOKE_SPEC`)."""
    return powerlaw_cluster(1200, 6, 0.3, seed=7, name="smoke")


def run_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """Time the bitwise backends on the smoke graph.

    The recorded ``baseline_speedup`` is what :func:`check_smoke` compares
    future runs against.
    """
    timing = _measure(smoke_graph(), "bitwise", repeats)
    doc = {
        "algorithm": "bitwise",
        "graph": SMOKE_SPEC,
        "baseline_speedup": timing["speedup"],
        "python_s": timing["python_s"],
        "vectorized_s": timing["vectorized_s"],
    }
    if "native_s" in timing:
        doc["native_s"] = timing["native_s"]
        doc["native_speedup"] = timing["native_speedup"]
    return doc


def check_smoke(
    baseline: Dict[str, object], *, factor: float = 2.0, repeats: int = 3
) -> Tuple[bool, float, float]:
    """Re-run the smoke benchmark against a checked-in baseline.

    Returns ``(ok, current_speedup, threshold)`` where the check passes as
    long as the current speedup is no worse than ``baseline / factor`` —
    loose enough to absorb machine noise, tight enough to catch the kernel
    layer silently falling back to scalar work.
    """
    smoke = baseline.get("smoke", baseline)
    baseline_speedup = float(smoke["baseline_speedup"])
    current = float(run_smoke(repeats=repeats)["baseline_speedup"])
    threshold = baseline_speedup / factor
    return current >= threshold, current, threshold


def _native_workload() -> Tuple[object, object, int, int]:
    """A fixed scatter-OR workload: heavy enough that kernel time dominates.

    65536 (row, color) updates into a 4096-row, 4-word (256-color) state
    matrix — the shape the accelerator's Stage 0 sees on a mid-size graph.
    Deterministic (seeded) so both tiers chew identical bytes.
    """
    import numpy as np

    rng = np.random.default_rng(1234)
    num_rows, num_words, n_updates = 4096, 4, 65536
    rows = rng.integers(0, num_rows, size=n_updates, dtype=np.int64)
    colors = rng.integers(1, num_words * 64 + 1, size=n_updates, dtype=np.int64)
    return rows, colors, num_rows, num_words


def run_native_smoke(*, repeats: int = 3) -> Dict[str, object]:
    """Time the raw scatter-OR + first-free kernels, vectorized vs native.

    Returns ``{"available": False, "reason": ...}`` when no compiled
    backend is usable, else the timing document with ``baseline_speedup``
    (vectorized / native on the combined scatter + first-free pass) and
    the compiler backend that produced it.  Bit-identity of both kernels'
    outputs is asserted before any timing is kept.
    """
    import numpy as np

    from ..kernels import native, resolve_tier_kernels

    if not native.available():
        return {"available": False, "reason": native.unavailable_reason()}
    vec_scatter, vec_ff = resolve_tier_kernels("vectorized")
    nat_scatter, nat_ff = resolve_tier_kernels("native")
    rows, colors, num_rows, num_words = _native_workload()

    vec_states = vec_scatter(rows, colors, num_rows, num_words)
    nat_states = nat_scatter(rows, colors, num_rows, num_words)
    if not np.array_equal(vec_states, nat_states):
        raise AssertionError("native scatter-OR diverged from vectorized")
    if not np.array_equal(vec_ff(vec_states), nat_ff(nat_states)):
        raise AssertionError("native first-free diverged from vectorized")

    vec_fn = lambda: vec_ff(  # noqa: E731
        vec_scatter(rows, colors, num_rows, num_words)
    )
    nat_fn = lambda: nat_ff(  # noqa: E731
        nat_scatter(rows, colors, num_rows, num_words)
    )
    vectorized_s = _best_of(vec_fn, repeats)
    native_s = _best_of(nat_fn, repeats)
    return {
        "available": True,
        "workload": NATIVE_SMOKE_SPEC,
        "vectorized_s": vectorized_s,
        "native_s": native_s,
        "baseline_speedup": (
            vectorized_s / native_s if native_s > 0 else float("inf")
        ),
        "backend": native.backend_info(),
    }


def check_native_smoke(
    *, min_speedup: float = MIN_NATIVE_SPEEDUP, repeats: int = 3
) -> Tuple[Optional[bool], float, float]:
    """Gate the compiled kernels on the raw micro-benchmark.

    Returns ``(ok, current_speedup, threshold)``.  ``ok`` is ``None`` when
    no native backend is available — the caller should report a skip, not
    a failure (the tier is optional by design).  Otherwise the check
    passes while the native scatter+first-free pass beats vectorized by
    at least ``min_speedup`` (see :data:`MIN_NATIVE_SPEEDUP` for why the
    floor is absolute rather than baseline-relative).
    """
    doc = run_native_smoke(repeats=repeats)
    if not doc["available"]:
        return None, 0.0, min_speedup
    current = float(doc["baseline_speedup"])
    return current >= min_speedup, current, min_speedup


def run_obs_overhead(*, repeats: int = 5) -> float:
    """Best-of-``repeats`` smoke-kernel time with obs *disabled* (seconds).

    Times the vectorized bitwise run under an explicitly disabled
    :class:`~repro.obs.Registry`, i.e. exactly the state library users get
    by default — every instrumentation point must reduce to one branch.
    """
    graph = smoke_graph()
    fn = _runner("bitwise", graph, "vectorized")
    with use_registry(Registry(enabled=False)):
        fn()  # warm: schedule memoisation, lazy imports
        return _best_of(fn, repeats)


def run_obs_overhead_pair(*, repeats: int = 5) -> Tuple[float, float]:
    """Obs-disabled ``(vectorized_s, python_s)`` smoke times, same process.

    Measuring both backends back to back gives a machine-speed-free
    ratio: host slowness shifts numerator and denominator together.
    """
    graph = smoke_graph()
    vec = _runner("bitwise", graph, "vectorized")
    py = _runner("bitwise", graph, "python")
    with use_registry(Registry(enabled=False)):
        vec()  # warm: schedule memoisation, lazy imports
        py()
        return _best_of(vec, repeats), _best_of(py, repeats)


def check_obs_overhead(
    baseline: Dict[str, object], *, limit: float = 1.05, repeats: int = 5
) -> Tuple[bool, float, float]:
    """Check the disabled-observability overhead against the baseline.

    Returns ``(ok, current_ratio, threshold_ratio)``; the check passes
    while the instrumented-but-disabled kernel stays within ``limit``
    (default +5 %) of the uninstrumented baseline.

    The comparison is drift-normalized: absolute seconds-vs-seconds
    against a checked-in number flakes whenever the host runs slower
    than the box that recorded the baseline (shared CI runners drift by
    tens of percent).  Instead the gate compares the obs-disabled
    ``vectorized / python`` time ratio, both sides measured in the same
    process moments apart, against the recorded pre-instrumentation
    ``smoke.vectorized_s / smoke.python_s``.  Host speed cancels out of
    the ratio; instrumentation overhead does not — per-run overhead is a
    near-constant cost, and the vectorized run is ~10x shorter, so any
    creep inflates the numerator ~10x more than the denominator.
    """
    smoke = baseline.get("smoke", baseline)
    baseline_ratio = float(smoke["vectorized_s"]) / float(smoke["python_s"])
    # Min over a few measurement windows, for the same reason _best_of
    # takes a min: contention noise is one-sided (it only slows a
    # window), while real instrumentation overhead shifts every window.
    current = min(
        (lambda vp: vp[0] / vp[1])(run_obs_overhead_pair(repeats=repeats))
        for _ in range(3)
    )
    threshold = baseline_ratio * limit
    return current <= threshold, current, threshold


def write_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
