"""Router autotuning benchmark: fitted decision surface vs hand-set thresholds.

The scenario sweep (:mod:`repro.experiments.scenario_sweep`) measures
every fast backend over the sampled generator parameter space; this
module scores the two routing policies on that matrix:

* **fitted** — the argmin of the per-backend latency surfaces
  (:func:`repro.service.decision.fit_decision_model`), restricted to the
  parity-neutral backends the router may actually substitute;
* **constant** — the hand-set ``small/large/skew`` thresholds
  (:func:`repro.service.decision.constant_label`), the pre-autotune
  router behaviour and its documented fallback.

Because both policies are scored against the *recorded* per-backend
seconds, the evaluation is deterministic given the matrix — the bench
gate (``scripts/bench_smoke.py`` gate 9) refits from the checked-in
``BENCH_router.json`` and re-scores without re-timing anything, so CI
catches a fit or router change that degrades agreement, not host noise.
A small **live** byte-parity check rides along: a service booted with
the fitted surface and one on the constants must both color the probe
graphs byte-identically to a direct :func:`repro.color` call.

The acceptance record (ISSUE 9): fitted choice matches the
measured-fastest parity-neutral backend on >= 90 % of matrix points, and
mean routed latency drops >= 10 % vs the constants.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..service.decision import (
    PARITY_NEUTRAL_BACKENDS,
    DecisionModel,
    constant_label,
    fit_decision_model,
)
from ..service.router import MICROBATCH_CROSSOVER
from ..service.stats import GraphFeatures
from .scenario_sweep import (
    FULL_AXES,
    run_scenario_sweep,
    scenario_graph,
    slow_regions,
)

__all__ = [
    "DEFAULT_ROUTER_RESULT_PATH",
    "ROUTER_AGREEMENT_FLOOR",
    "ROUTER_REDUCTION_FLOOR",
    "check_router_smoke",
    "evaluate_policies",
    "load_router_results",
    "run_router_bench",
    "run_router_parity",
    "write_router_results",
]

DEFAULT_ROUTER_RESULT_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_router.json"
)
"""Checked-in router autotuning results (matrix + policy scores)."""

ROUTER_AGREEMENT_FLOOR = 0.9
"""Fitted pick must match the measured-fastest parity-neutral backend on
at least this fraction of matrix points."""

ROUTER_REDUCTION_FLOOR = 0.10
"""Fitted routing must cut mean routed latency vs the constants by at
least this fraction."""

_PARITY_PROBES = (
    (200, 0.3, 0.0, 4),
    (700, 0.6, 0.0, 8),
    (3000, 0.45, 0.6, 6),
)
"""Small scenario points the live parity check colors through both
routing policies (small on purpose — the check rides in the smoke gate)."""


def evaluate_policies(
    table: Dict[str, object],
    model: Optional[DecisionModel] = None,
    *,
    large_vertices: int = 50_000,
    skew_threshold: float = 8.0,
    rel_tol: float = 0.02,
) -> Dict[str, object]:
    """Score fitted vs constant routing on the recorded matrix.

    Per point, each policy's routed latency is the *measured* seconds of
    the backend it picks (the constant policy may pick parity-divergent
    ``parallel`` — that is its real pre-autotune behaviour and its real
    latency; the fitted policy is restricted to the parity-neutral
    pool).  Deterministic given the table: nothing is re-timed.
    """
    if model is None:
        model = fit_decision_model(table)
    tier = str(table.get("software_tier", "vectorized"))
    small = MICROBATCH_CROSSOVER.get(tier, MICROBATCH_CROSSOVER["vectorized"])
    points = list(table.get("points", ()))
    if not points:
        raise ValueError("sweep table has no points to evaluate")
    rows: List[Dict[str, object]] = []
    agree = 0
    fitted_total = 0.0
    constant_total = 0.0
    for p in points:
        seconds = {b: float(s) for b, s in p["seconds"].items()}
        features = GraphFeatures.from_dict(p["features"])
        neutral = [b for b in seconds if b in PARITY_NEUTRAL_BACKENDS]
        fitted = model.choose(features, available=neutral)
        constant = constant_label(
            features,
            small_vertices=small,
            large_vertices=large_vertices,
            skew_threshold=skew_threshold,
            software_tier=tier,
        )
        if constant not in seconds:
            constant = tier
        fastest = min(neutral, key=seconds.get)
        matched = fitted == fastest or math.isclose(
            seconds[fitted], seconds[fastest], rel_tol=rel_tol
        )
        agree += matched
        fitted_total += seconds[fitted]
        constant_total += seconds[constant]
        rows.append(
            {
                "params": dict(p["params"]),
                "fitted": fitted,
                "constant": constant,
                "fastest": fastest,
                "fitted_s": seconds[fitted],
                "constant_s": seconds[constant],
                "fastest_s": seconds[fastest],
                "matched_fastest": bool(matched),
            }
        )
    fitted_mean = fitted_total / len(points)
    constant_mean = constant_total / len(points)
    return {
        "points": len(points),
        "agreement": agree / len(points),
        "fitted_mean_s": fitted_mean,
        "constant_mean_s": constant_mean,
        "latency_reduction": (
            1.0 - fitted_mean / constant_mean if constant_mean > 0 else 0.0
        ),
        "software_tier": tier,
        "rows": rows,
    }


def run_router_parity() -> int:
    """Color the probe graphs through fitted and constant services.

    Both must be byte-identical to direct :func:`repro.color`; returns
    the number of colorings checked.  The fitted surface is trained on a
    one-size mini grid spanning the probes — the point is exercising the
    fitted code path, not the fit quality.
    """
    import tempfile

    from .. import color as direct_color
    from ..service import ColoringService, ServiceConfig

    graphs = [
        scenario_graph(*params, seed=11, name=f"router-probe{i}")
        for i, params in enumerate(_PARITY_PROBES)
    ]
    table = run_scenario_sweep(
        sizes=(256, 2048), skews=(0.3, 0.6), communities=(0.0,),
        densities=(4,), repeats=1, obs_counters=False,
    )
    model = fit_decision_model(table)
    with tempfile.NamedTemporaryFile(suffix=".json", mode="w", delete=False) as f:
        model_path = Path(f.name)
    model.save(model_path)
    checked = 0
    try:
        for config in (
            ServiceConfig(router_table=model_path, cache_capacity=0),
            ServiceConfig(cache_capacity=0),
        ):
            with ColoringService(config) as svc:
                for g in graphs:
                    routed = svc.color(g)
                    if not np.array_equal(
                        routed.colors, direct_color(g, "bitwise").colors
                    ):
                        raise AssertionError(
                            f"routing changed the colors of {g.name} "
                            f"(route: {routed.route})"
                        )
                    checked += 1
    finally:
        model_path.unlink(missing_ok=True)
    return checked


def run_router_bench(
    *,
    axes: Optional[Dict[str, tuple]] = None,
    repeats: int = 2,
    seed: int = 0,
    progress=None,
) -> Dict[str, object]:
    """The full router autotuning record behind ``BENCH_router.json``.

    Runs the scenario sweep (default: the 48-point
    :data:`~repro.experiments.scenario_sweep.FULL_AXES` grid), fits the
    decision surface, scores both policies against the matrix, runs the
    live parity check, and returns the JSON-ready document.
    """
    axes = dict(FULL_AXES if axes is None else axes)
    table = run_scenario_sweep(
        **axes, repeats=repeats, seed=seed, progress=progress
    )
    model = fit_decision_model(table)
    evaluation = evaluate_policies(table, model)
    parity_checked = run_router_parity()
    return {
        "unit": (
            "seconds, best of repeats (per-backend wall clock over the "
            "scenario grid); policies scored on recorded seconds"
        ),
        "repeats": int(repeats),
        "host_cpus": os.cpu_count() or 1,
        "agreement_floor": ROUTER_AGREEMENT_FLOOR,
        "reduction_floor": ROUTER_REDUCTION_FLOOR,
        "matrix": table,
        "model_meta": dict(model.meta),
        "evaluation": evaluation,
        "slow_regions": slow_regions(table),
        "smoke": {
            "agreement": evaluation["agreement"],
            "fitted_mean_s": evaluation["fitted_mean_s"],
            "constant_mean_s": evaluation["constant_mean_s"],
            "latency_reduction": evaluation["latency_reduction"],
            "parity_colorings_checked": parity_checked,
        },
    }


def check_router_smoke(
    baseline: Dict[str, object],
    *,
    agreement_floor: float = ROUTER_AGREEMENT_FLOOR,
    reduction_floor: float = ROUTER_REDUCTION_FLOOR,
    live_parity: bool = True,
) -> Tuple[bool, Dict[str, float], Dict[str, float]]:
    """Refit from the checked-in matrix and re-score both policies.

    Returns ``(ok, current, floors)`` where ``current`` carries the
    re-scored ``agreement`` and ``latency_reduction`` (plus the live
    parity count) and ``floors`` the thresholds they must clear.  The
    scoring is deterministic — a failure means the fit or the router
    policy changed, not that the host is slow.  ``live_parity`` adds the
    byte-parity probe through real services (small graphs, ~seconds).
    """
    matrix = baseline.get("matrix")
    if not isinstance(matrix, dict):
        raise ValueError("router baseline has no sweep matrix")
    model = fit_decision_model(matrix)
    evaluation = evaluate_policies(matrix, model)
    current = {
        "agreement": float(evaluation["agreement"]),
        "latency_reduction": float(evaluation["latency_reduction"]),
        "parity_colorings_checked": 0,
    }
    if live_parity:
        current["parity_colorings_checked"] = run_router_parity()
    floors = {
        "agreement": float(agreement_floor),
        "latency_reduction": float(reduction_floor),
    }
    ok = (
        current["agreement"] >= floors["agreement"]
        and current["latency_reduction"] >= floors["latency_reduction"]
    )
    return ok, current, floors


def write_router_results(
    results: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the result document as pretty-printed JSON; returns the path."""
    path = DEFAULT_ROUTER_RESULT_PATH if path is None else Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def load_router_results(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a previously written result document."""
    path = DEFAULT_ROUTER_RESULT_PATH if path is None else Path(path)
    return json.loads(path.read_text())
