"""One entry point per paper figure.

Each function returns plain data structures (dicts / dataclasses) holding
exactly the series the corresponding figure plots; the benchmark harness
prints them and EXPERIMENTS.md records them against the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graph.stats import overlap_ratio_sweep
from ..hw.config import HWConfig, OptimizationFlags
from ..hw.energy import DEFAULT_POWER
from ..hw.resources import ResourceReport, estimate_resources
from ..perfmodel.metrics import ComparisonRow, arith_mean, kcvj, mcvs
from .datasets import DATASET_KEYS
from .runner import get_graph, get_spec, run_bitcolor, run_cpu, run_gpu

__all__ = [
    "fig3a_breakdown",
    "fig3b_overlap",
    "AblationStep",
    "fig11_ablation",
    "fig12_scaling",
    "Fig13Row",
    "Fig13Result",
    "fig13_comparison",
    "fig14_resources",
    "PARALLELISM_SWEEP",
]

PARALLELISM_SWEEP = (1, 2, 4, 8, 16)

# The cumulative optimization steps of Figure 11, in the paper's order:
# baseline, +HDC, +BWC, +MGR, +PUV.
_ABLATION_STEPS = (
    ("BSL", OptimizationFlags.none()),
    ("+HDC", OptimizationFlags(hdc=True, bwc=False, mgr=False, puv=False)),
    ("+BWC", OptimizationFlags(hdc=True, bwc=True, mgr=False, puv=False)),
    ("+MGR", OptimizationFlags(hdc=True, bwc=True, mgr=True, puv=False)),
    ("+PUV", OptimizationFlags(hdc=True, bwc=True, mgr=True, puv=True)),
)


def fig3a_breakdown(keys: Sequence[str] = DATASET_KEYS) -> Dict[str, Dict[str, float]]:
    """Figure 3(a): per-stage time fractions of the CPU baseline.

    Returns ``{dataset: {stage0, stage1, stage2}}`` plus an ``"average"``
    entry; the paper reports 39.24 / 46.53 / 14.23 %.
    """
    rows: Dict[str, Dict[str, float]] = {}
    totals = {"stage0": 0.0, "stage1": 0.0, "stage2": 0.0}
    for key in keys:
        res = run_cpu(key)
        rows[key] = res.breakdown()
        totals["stage0"] += res.stage0_cycles
        totals["stage1"] += res.stage1_cycles
        totals["stage2"] += res.stage2_cycles
    rows["average"] = {
        s: arith_mean(rows[k][s] for k in keys) for s in ("stage0", "stage1", "stage2")
    }
    # Cycle-weighted aggregate — how the paper's single measured
    # breakdown is most naturally produced (one profile over the suite).
    grand = max(sum(totals.values()), 1e-12)
    rows["aggregate"] = {s: totals[s] / grand for s in totals}
    return rows


def fig3b_overlap(
    keys: Sequence[str] = DATASET_KEYS,
    intervals: Sequence[int] = (1, 2, 4, 8, 16, 32),
    *,
    sample: int = 1500,
) -> Dict[str, Dict[int, float]]:
    """Figure 3(b): neighbourhood overlap ratio vs iteration interval.

    The paper finds most ratios below 10 % with an average of 4.96 %.
    """
    out: Dict[str, Dict[int, float]] = {}
    for key in keys:
        out[key] = overlap_ratio_sweep(get_graph(key), intervals, sample=sample)
    out["average"] = {
        k: arith_mean(out[key][k] for key in keys) for k in intervals
    }
    return out


@dataclass(frozen=True)
class AblationStep:
    """One bar group of Figure 11 (normalised to BSL)."""

    label: str
    compute_cycles: int
    dram_cycles: int
    total_cycles: int
    compute_norm: float
    dram_norm: float
    total_norm: float


def fig11_ablation(
    keys: Sequence[str] = DATASET_KEYS,
    *,
    engine: str = "event",
    tier: str = "standin",
) -> Dict[str, List[AblationStep]]:
    """Figure 11: single-BWPE performance under cumulative optimizations.

    The paper's endpoint (+PUV) shows 88.63 % DRAM-access reduction,
    66.89 % computation reduction and 82.91 % total-time reduction vs BSL
    on average.
    """
    out: Dict[str, List[AblationStep]] = {}
    for key in keys:
        steps: List[AblationStep] = []
        base: Optional[AblationStep] = None
        for label, flags in _ABLATION_STEPS:
            res = run_bitcolor(key, parallelism=1, flags=flags, engine=engine, tier=tier)
            s = res.stats
            if base is None:
                step = AblationStep(
                    label, s.compute_cycles, s.dram_cycles,
                    s.makespan_cycles, 1.0, 1.0, 1.0,
                )
                base = step
            else:
                step = AblationStep(
                    label,
                    s.compute_cycles,
                    s.dram_cycles,
                    s.makespan_cycles,
                    s.compute_cycles / max(base.compute_cycles, 1),
                    s.dram_cycles / max(base.dram_cycles, 1),
                    s.makespan_cycles / max(base.total_cycles, 1),
                )
            steps.append(step)
        out[key] = steps
    return out


def fig12_scaling(
    keys: Sequence[str] = DATASET_KEYS,
    parallelisms: Sequence[int] = PARALLELISM_SWEEP,
    *,
    engine: str = "event",
    tier: str = "standin",
) -> Dict[str, Dict[int, float]]:
    """Figure 12: speedup over a single BWPE at each parallelism.

    The paper reports 3.92×–7.01× at P = 16 — sublinear because of data
    conflicts and scheduling, which the model reproduces via stalls.
    ``engine="batched"`` + ``tier="paper"`` runs the sweep on the ~10×
    stand-ins, which the event engine cannot do interactively.
    """
    out: Dict[str, Dict[int, float]] = {}
    for key in keys:
        base = run_bitcolor(
            key, parallelism=parallelisms[0], engine=engine, tier=tier
        ).stats.makespan_cycles
        out[key] = {}
        for p in parallelisms:
            cyc = run_bitcolor(
                key, parallelism=p, engine=engine, tier=tier
            ).stats.makespan_cycles
            out[key][p] = base / max(cyc, 1)
    return out


@dataclass(frozen=True)
class Fig13Row:
    dataset: str
    cpu_time_s: float
    gpu_time_s: float
    fpga_time_s: float
    speedup_vs_cpu: float
    speedup_vs_gpu: float
    cpu_mcvs: float
    gpu_mcvs: float
    fpga_mcvs: float
    cpu_kcvj: float
    gpu_kcvj: float
    fpga_kcvj: float


@dataclass
class Fig13Result:
    rows: List[Fig13Row] = field(default_factory=list)

    @property
    def avg_speedup_vs_cpu(self) -> float:
        return arith_mean(r.speedup_vs_cpu for r in self.rows)

    @property
    def avg_speedup_vs_gpu(self) -> float:
        return arith_mean(r.speedup_vs_gpu for r in self.rows)

    def avg_mcvs(self) -> Dict[str, float]:
        return {
            "cpu": arith_mean(r.cpu_mcvs for r in self.rows),
            "gpu": arith_mean(r.gpu_mcvs for r in self.rows),
            "bitcolor": arith_mean(r.fpga_mcvs for r in self.rows),
        }

    def avg_kcvj(self) -> Dict[str, float]:
        return {
            "cpu": arith_mean(r.cpu_kcvj for r in self.rows),
            "gpu": arith_mean(r.gpu_kcvj for r in self.rows),
            "bitcolor": arith_mean(r.fpga_kcvj for r in self.rows),
        }


def fig13_comparison(
    keys: Sequence[str] = DATASET_KEYS,
    parallelism: int = 16,
    *,
    engine: str = "event",
) -> Fig13Result:
    """Figure 13 + Section 5.3 aggregates: BitColor vs CPU vs GPU.

    Paper: speedup over CPU 30–97× (avg 54.9×), over GPU 1.63–6.69×
    (avg 2.71×); throughput 0.88 / 15.3 / 41.6 MCV/S; energy 12 / 19 /
    156 KCV/J.
    """
    result = Fig13Result()
    power = DEFAULT_POWER
    for key in keys:
        n = get_graph(key).num_vertices
        cpu = run_cpu(key)
        gpu = run_gpu(key)
        fpga = run_bitcolor(key, parallelism=parallelism, engine=engine)
        fpga_t = fpga.time_seconds
        fpga_w = power.fpga_watts(parallelism)
        result.rows.append(
            Fig13Row(
                dataset=key,
                cpu_time_s=cpu.time_seconds,
                gpu_time_s=gpu.time_seconds,
                fpga_time_s=fpga_t,
                speedup_vs_cpu=cpu.time_seconds / fpga_t,
                speedup_vs_gpu=gpu.time_seconds / fpga_t,
                cpu_mcvs=mcvs(n, cpu.time_seconds),
                gpu_mcvs=mcvs(n, gpu.time_seconds),
                fpga_mcvs=mcvs(n, fpga_t),
                cpu_kcvj=kcvj(n, cpu.time_seconds, power.cpu_watts),
                gpu_kcvj=kcvj(n, gpu.time_seconds, power.gpu_watts),
                fpga_kcvj=kcvj(n, fpga_t, fpga_w),
            )
        )
    return result


def fig14_resources(
    parallelisms: Sequence[int] = PARALLELISM_SWEEP,
) -> List[ResourceReport]:
    """Figure 14: resource utilization and frequency vs parallelism."""
    return [estimate_resources(HWConfig(parallelism=p)) for p in parallelisms]
