"""GraphWorld-style scenario sweep: generator parameter space → backend matrix.

GraphWorld's insight (PAPERS.md) is that benchmarking on a handful of
named datasets samples a few isolated points of graph space, while the
quantity that actually decides which engine wins — degree skew, density,
community structure, size — varies *continuously*.  This module samples
that space with one parameterised generator and times **every fast
backend** at each sampled point, producing the versioned results table
the fitted router (:mod:`repro.service.decision`) is trained on.

The four axes:

* ``size`` — vertex count (the latency scale);
* ``skew`` — the RMAT home-quadrant probability ``a`` (``0.25`` =
  uniform/ER-like, ``0.6`` = heavy power-law tail);
* ``community`` — fraction of edges planted inside √n-sized
  communities (the planted-partition strength knob);
* ``density`` — target mean degree.

Each point records the *measured* :class:`~repro.service.stats.GraphFeatures`
(not the nominal knobs — the knobs are sampling coordinates, the
features are what the router can observe), per-backend best-of-repeats
wall clock, per-backend obs counters, and the coloring width.  Backends
in :data:`~repro.service.decision.PARITY_NEUTRAL_BACKENDS` must produce
**byte-identical** colorings at every point (a fast wrong backend must
fail the sweep, not bias the fit); the ``parallel`` backend is
deterministic but may legally settle on a different proper coloring
(its contract is identity across worker counts, not identity with the
sequential order), so it is instead verified for properness and its
width recorded separately in ``n_colors_by_backend``.

Besides feeding the fit, the table is an optimization roadmap:
:func:`slow_regions` flags parameter regions where **every** backend is
slow relative to the sweep-wide per-edge cost — the points no routing
decision can save, i.e. the next kernel-work targets.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..coloring.verify import assert_proper_coloring
from ..graph.csr import CSRGraph
from ..obs import Registry, use_registry
from ..service.decision import PARITY_NEUTRAL_BACKENDS
from ..service.stats import GraphFeatures

__all__ = [
    "FULL_AXES",
    "MICROBATCH_MAX_VERTICES",
    "MINI_AXES",
    "SWEEP_TABLE_VERSION",
    "default_backends",
    "load_sweep_table",
    "run_scenario_sweep",
    "scenario_graph",
    "slow_regions",
    "sweep_report",
    "write_sweep_table",
]

SWEEP_TABLE_VERSION = 1
"""Bump when the table layout changes; fitters reject other versions."""

FULL_AXES: Dict[str, Tuple] = {
    "sizes": (512, 2048, 8192, 65536),
    "skews": (0.3, 0.45, 0.6),
    "communities": (0.0, 0.6),
    "densities": (4, 12),
}
"""The default 48-point grid behind ``BENCH_router.json``.  The size
axis deliberately straddles the hand-set ``large_vertices = 50_000``
threshold so the fitted surface is scored exactly where the constants
commit to a backend."""

MINI_AXES: Dict[str, Tuple] = {
    "sizes": (256, 1024),
    "skews": (0.3, 0.6),
    "communities": (0.0,),
    "densities": (4, 8),
}
"""The 2×2×2 CI grid (``repro sweep --mini``): seconds, not minutes."""

MICROBATCH_MAX_VERTICES = 4096
"""The ``microbatch`` pseudo-backend is only measured at or below this
size — above it no crossover constant would ever batch, and the fitted
model's per-backend domain range keeps it out of contention there."""

_MICROBATCH_COMPANIONS = 8
"""Union width the microbatch measurement assumes: per-job latency is
one coalesced run of this many same-shape jobs, divided out."""


# ----------------------------------------------------------------------
# The parameterised generator
# ----------------------------------------------------------------------
def scenario_graph(
    size: int,
    skew: float,
    community: float,
    density: float,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> CSRGraph:
    """One sampled point of graph space, deterministic given the knobs.

    Edges are a mixture: ``community`` of them are planted inside
    √n-sized communities, the rest follow an RMAT quadrant walk with
    home-quadrant probability ``skew`` (the remaining mass split evenly,
    so ``skew = 0.25`` degenerates to a uniform random graph).  Target
    edge count is ``size * density / 2`` undirected pairs; duplicates
    and self-loops are canonicalised away by the CSR constructor, so the
    realised density lands slightly below the knob — which is why the
    sweep records measured features, not nominal ones.
    """
    if size < 2:
        raise ValueError("size must be >= 2")
    if not 0.25 <= skew <= 0.95:
        raise ValueError("skew (RMAT home-quadrant probability) must be in [0.25, 0.95]")
    if not 0.0 <= community <= 1.0:
        raise ValueError("community must be in [0, 1]")
    if density <= 0:
        raise ValueError("density must be positive")
    gen = np.random.default_rng(
        np.random.SeedSequence([seed, size, int(skew * 1000),
                                int(community * 1000), int(density * 1000)])
    )
    m = max(1, int(size * density / 2))
    m_comm = int(round(m * community))
    m_skew = m - m_comm
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    if m_skew:
        # RMAT quadrant walk over the next power of two, folded onto
        # [0, size) — preserves the heavy tail for any vertex count.
        scale = max(1, int(np.ceil(np.log2(size))))
        rest = (1.0 - skew) / 3.0
        a, b, c = skew, rest, rest
        src = np.zeros(m_skew, dtype=np.int64)
        dst = np.zeros(m_skew, dtype=np.int64)
        for level in range(scale):
            r = gen.random(m_skew)
            bit = np.int64(1 << (scale - 1 - level))
            go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
            go_down = r >= a + b
            src += bit * go_down.astype(np.int64)
            dst += bit * go_right.astype(np.int64)
        src_parts.append(src % size)
        dst_parts.append(dst % size)
    if m_comm:
        csize = max(4, int(np.sqrt(size)))
        u = gen.integers(0, size, size=m_comm)
        base = (u // csize) * csize
        w = base + gen.integers(0, csize, size=m_comm)
        src_parts.append(u)
        dst_parts.append(np.minimum(w, size - 1))
    return CSRGraph.from_arrays(
        size,
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        name=name
        or f"scenario[n={size},a={skew},c={community},d={density},s={seed}]",
    )


# ----------------------------------------------------------------------
# Backend measurement
# ----------------------------------------------------------------------
def default_backends() -> Tuple[str, ...]:
    """Every fast lane the router can pick on this host.

    ``native`` joins when the compiled tier's capability probe succeeds;
    ``microbatch`` is the coalesced batch lane measured per job at the
    software tier (see :data:`MICROBATCH_MAX_VERTICES`).
    """
    from ..kernels import preferred_tier

    backends = ["vectorized"]
    if preferred_tier() == "native":
        backends.append("native")
    backends.extend(["parallel", "hw", "microbatch"])
    return tuple(backends)


def _software_tier(backends: Sequence[str]) -> str:
    return "native" if "native" in backends else "vectorized"


def _run_backend(graph: CSRGraph, backend: str, tier: str) -> np.ndarray:
    """One coloring on ``backend``; returns the color array."""
    from ..api import color as repro_color
    from ..service.batcher import run_microbatch

    if backend == "microbatch":
        results = run_microbatch(
            [graph] * _MICROBATCH_COMPANIONS, ("bitwise", tier, ())
        )
        return np.asarray(results[0][0])
    if backend == "hw":
        return np.asarray(
            repro_color(graph, "bitwise", backend="hw", engine="batched").colors
        )
    return np.asarray(repro_color(graph, "bitwise", backend=backend).colors)


def _time_backend(
    graph: CSRGraph, backend: str, tier: str, repeats: int
) -> Tuple[float, np.ndarray]:
    """Best-of-``repeats`` seconds (per job) and the color array."""
    best = float("inf")
    colors = np.zeros(graph.num_vertices, dtype=np.int64)
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        colors = _run_backend(graph, backend, tier)
        seconds = time.perf_counter() - start
        best = min(best, seconds)
    if backend == "microbatch":
        best /= _MICROBATCH_COMPANIONS
    return best, colors


def _counters_for(graph: CSRGraph, backend: str, tier: str) -> Dict[str, float]:
    """Obs counters of one instrumented (untimed) run."""
    reg = Registry()
    with use_registry(reg):
        _run_backend(graph, backend, tier)
    return {k: v for k, v in sorted(reg.counters.items())}


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_scenario_sweep(
    *,
    sizes: Sequence[int] = FULL_AXES["sizes"],
    skews: Sequence[float] = FULL_AXES["skews"],
    communities: Sequence[float] = FULL_AXES["communities"],
    densities: Sequence[float] = FULL_AXES["densities"],
    backends: Optional[Sequence[str]] = None,
    repeats: int = 2,
    seed: int = 0,
    obs_counters: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Time every backend over the scenario grid; returns the table.

    Points are the Cartesian product of the four axes in
    ``(size, skew, community, density)`` order.  Per point, every
    parity-neutral backend's coloring is asserted byte-identical before
    its timing is kept — a fast wrong backend must fail the sweep, not
    bias the fit.  Parity-divergent backends (``parallel``) are instead
    checked for properness; their widths land in ``n_colors_by_backend``.
    """
    backends = tuple(backends) if backends is not None else default_backends()
    tier = _software_tier(backends)
    points: List[Dict[str, object]] = []
    grid = [
        (size, skew, comm, dens)
        for size in sizes
        for skew in skews
        for comm in communities
        for dens in densities
    ]
    for i, (size, skew, comm, dens) in enumerate(grid):
        graph = scenario_graph(size, skew, comm, dens, seed=seed)
        features = GraphFeatures.compute(graph)
        seconds: Dict[str, float] = {}
        counters: Dict[str, Dict[str, float]] = {}
        n_colors_by_backend: Dict[str, int] = {}
        reference: Optional[np.ndarray] = None
        for backend in backends:
            if backend == "microbatch" and size > MICROBATCH_MAX_VERTICES:
                continue
            best, colors = _time_backend(graph, backend, tier, repeats)
            n_colors_by_backend[backend] = int(
                np.unique(colors[colors != 0]).size
            )
            if backend in PARITY_NEUTRAL_BACKENDS:
                if reference is None:
                    reference = colors
                elif not np.array_equal(colors, reference):
                    raise AssertionError(
                        f"backend {backend!r} diverged from the parity-neutral "
                        f"reference coloring on {graph.name} — parity broken"
                    )
            else:
                assert_proper_coloring(graph, colors)
            seconds[backend] = best
            if obs_counters:
                counters[backend] = _counters_for(graph, backend, tier)
        fastest = min(seconds, key=seconds.get)
        n_colors = int(
            np.unique(reference[reference != 0]).size
        ) if reference is not None else 0
        points.append(
            {
                "params": {
                    "size": int(size),
                    "skew": float(skew),
                    "community": float(comm),
                    "density": float(dens),
                    "seed": int(seed),
                },
                "features": features.as_dict(),
                "seconds": seconds,
                "counters": counters,
                "n_colors": n_colors,
                "n_colors_by_backend": n_colors_by_backend,
                "fastest": fastest,
            }
        )
        if progress is not None:
            progress(
                f"[{i + 1}/{len(grid)}] n={size} skew={skew} comm={comm} "
                f"dens={dens}: fastest={fastest} "
                f"({seconds[fastest] * 1e3:.2f} ms)"
            )
    return {
        "kind": "router-scenario-sweep",
        "version": SWEEP_TABLE_VERSION,
        "axes": {
            "sizes": [int(s) for s in sizes],
            "skews": [float(s) for s in skews],
            "communities": [float(c) for c in communities],
            "densities": [float(d) for d in densities],
        },
        "backends": list(backends),
        "software_tier": tier,
        "repeats": int(repeats),
        "seed": int(seed),
        "host_cpus": os.cpu_count() or 1,
        "microbatch_companions": _MICROBATCH_COMPANIONS,
        "points": points,
    }


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def write_sweep_table(
    table: Dict[str, object], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(table, indent=2) + "\n")
    return path


def load_sweep_table(path: Union[str, Path]) -> Dict[str, object]:
    table = json.loads(Path(path).read_text())
    if table.get("kind") != "router-scenario-sweep":
        raise ValueError(
            f"{path}: not a scenario sweep table (kind={table.get('kind')!r})"
        )
    if int(table.get("version", -1)) != SWEEP_TABLE_VERSION:
        raise ValueError(
            f"{path}: sweep table version {table.get('version')!r} "
            f"unsupported (expected {SWEEP_TABLE_VERSION})"
        )
    return table


# ----------------------------------------------------------------------
# The "everything is slow here" report
# ----------------------------------------------------------------------
def slow_regions(
    table: Dict[str, object], *, factor: float = 3.0
) -> List[Dict[str, object]]:
    """Points whose *best* backend is slow for the work it does.

    Latency is normalised per directed edge (the natural unit of
    coloring work) and compared against the sweep-wide median: a point
    whose best-backend cost exceeds ``factor ×`` the median ns/edge is
    one no routing decision can save — flagged, descending by slowdown,
    as the next optimization targets.
    """
    points = list(table.get("points", ()))
    if not points:
        return []
    costs = []
    for p in points:
        best = min(p["seconds"].values())
        edges = max(1, int(p["features"]["num_edges"]))
        costs.append(best / edges)
    median = float(np.median(costs))
    flagged = []
    for p, cost in zip(points, costs):
        if median > 0 and cost > factor * median:
            flagged.append(
                {
                    "params": dict(p["params"]),
                    "fastest": p["fastest"],
                    "best_s": min(p["seconds"].values()),
                    "ns_per_edge": cost * 1e9,
                    "slowdown_vs_median": cost / median,
                }
            )
    flagged.sort(key=lambda r: r["slowdown_vs_median"], reverse=True)
    return flagged


def sweep_report(table: Dict[str, object], *, factor: float = 3.0) -> str:
    """Human-readable summary: grid shape, wins per backend, slow regions."""
    points = list(table.get("points", ()))
    lines = [
        f"scenario sweep: {len(points)} points, "
        f"backends: {', '.join(table.get('backends', ()))} "
        f"(software tier: {table.get('software_tier')})",
    ]
    wins: Dict[str, int] = {}
    for p in points:
        wins[p["fastest"]] = wins.get(p["fastest"], 0) + 1
    for backend in table.get("backends", ()):
        if backend in wins:
            lines.append(f"  fastest on {wins[backend]:3d} points: {backend}")
    flagged = slow_regions(table, factor=factor)
    if flagged:
        lines.append(
            f"slow regions (best backend > {factor:.1f}x median ns/edge) — "
            "no routing decision saves these; they are kernel-work targets:"
        )
        for r in flagged:
            p = r["params"]
            lines.append(
                f"  n={p['size']:>6} skew={p['skew']:.2f} "
                f"comm={p['community']:.1f} dens={p['density']:.0f}: "
                f"best={r['fastest']} {r['best_s'] * 1e3:.2f} ms "
                f"({r['ns_per_edge']:.0f} ns/edge, "
                f"{r['slowdown_vs_median']:.1f}x median)"
            )
    else:
        lines.append(
            f"no slow regions at {factor:.1f}x median ns/edge — every grid "
            "point has at least one well-matched backend"
        )
    return "\n".join(lines)
