"""Generality demonstration: a second algorithm on the BitColor substrate.

Section 2.4 of the paper claims the BitColor techniques — HDV caching,
bit-wise state checks, DRAM read merging, uncolored-vertex pruning and
the conflict-table parallelisation — "are applicable to other algorithms
facing similar challenges".  This module substantiates that claim by
running **greedy maximal independent set** (the lexicographically-first
MIS: process vertices in ascending order; ``v`` joins unless an earlier
neighbour already joined) on the same memory and scheduling components:

* the per-vertex state is a single membership *bit* instead of a color
  number, stored in the same :class:`~repro.hw.cache.HDVColorCache` /
  DRAM split with the same ``v_t`` threshold;
* PUV applies verbatim: a neighbour with a larger ID cannot have been
  decided yet, so it can never veto ``v``;
* with sorted edges the Color Loader's read merging applies verbatim;
* concurrent adjacent vertices use the same earlier-task-wins deferral
  as the coloring engine (a deferred partner's membership bit is ORed
  into the veto state).

:func:`greedy_mis` is the sequential reference; tests assert the engine
matches it for every flag/parallelism setting, exactly as the coloring
accelerator matches sequential greedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..graph.csr import CSRGraph
from .accelerator import AcceleratorStats
from .cache import HDVColorCache
from .color_loader import ColorLoader
from .config import HWConfig, OptimizationFlags
from .dram import ColorMemory, DRAMChannel

__all__ = ["greedy_mis", "MISEngineResult", "BitwiseMISAccelerator"]


def greedy_mis(graph: CSRGraph) -> np.ndarray:
    """The lexicographically-first MIS (sequential reference).

    Returns a boolean membership mask.  ``v`` joins iff no neighbour
    ``u < v`` joined — the exact analogue of greedy coloring's "look only
    at earlier neighbours" structure.
    """
    n = graph.num_vertices
    member = np.zeros(n, dtype=bool)
    for v in range(n):
        nbrs = graph.neighbors(v)
        earlier = nbrs[nbrs < v]
        member[v] = not member[earlier].any()
    return member


@dataclass
class MISEngineResult:
    members: np.ndarray
    stats: AcceleratorStats
    config: HWConfig
    flags: OptimizationFlags

    @property
    def set_size(self) -> int:
        return int(np.count_nonzero(self.members))

    @property
    def time_seconds(self) -> float:
        return self.stats.time_seconds(self.config.frequency_mhz)


@dataclass
class _Task:
    vertex: int
    finish: int
    member: bool


class BitwiseMISAccelerator:
    """Greedy-MIS on the BitColor engine substrate.

    The engine loop mirrors :class:`~repro.hw.accelerator.BitColorAccelerator`
    at vertex-task granularity with the same cycle constants; the
    per-neighbour work is one bit-OR (no decompression table needed —
    the "color" IS the bit), and Stage 7 degenerates to a NOT.
    """

    def __init__(
        self,
        config: Optional[HWConfig] = None,
        flags: Optional[OptimizationFlags] = None,
    ):
        self.config = config or HWConfig()
        self.flags = flags or OptimizationFlags.all()

    def run(self, graph: CSRGraph) -> MISEngineResult:
        cfg = self.config
        flags = self.flags
        n = graph.num_vertices
        p = cfg.parallelism
        v_t = cfg.v_t(n) if flags.hdc else 0

        channels = [DRAMChannel(cfg) for _ in range(p)]
        memory = ColorMemory(n, cfg)  # 0 = undecided/out, 1 = in the MIS
        cache = HDVColorCache(cfg, v_t) if flags.hdc else None
        loaders = [
            ColorLoader(cfg, channels[i], memory, enable_merge=flags.mgr)
            for i in range(p)
        ]

        member = np.zeros(n, dtype=bool)
        free = [0] * p
        last_start = 0
        next_slot = 0
        dram_servers = [0] * max(cfg.dram_physical_channels, 1)
        in_flight: Dict[int, _Task] = {}
        stats = AcceleratorStats(num_vertices=n, num_edges=graph.num_edges)
        makespan = 0

        for v in range(n):
            # LDV-style FCFS placement for every task (membership bits are
            # cheap; the HDV sub-FIFO binding is unnecessary because the
            # 1-bit state fits the cache at any residue).
            pe = min(range(p), key=lambda i: (free[i], i))
            t_start = max(free[pe], last_start, next_slot)
            last_start = t_start
            next_slot = t_start + cfg.dispatch_interval_cycles
            for q, task in list(in_flight.items()):
                if task.finish <= t_start:
                    del in_flight[q]

            nbrs = graph.neighbors(v)
            compute = cfg.task_setup_cycles
            dram = 0
            veto = False
            dep_finish = 0
            consumed = 0
            sorted_edges = bool(
                nbrs.size < 2 or np.all(np.diff(nbrs) >= 0)
            )
            running = {t.vertex: t for t in in_flight.values()}
            for w in nbrs:
                w = int(w)
                consumed += 1
                if flags.puv and w > v:
                    stats.pruned_edges += 1
                    compute += 1
                    if sorted_edges:
                        stats.pruned_edges += int(nbrs.size) - consumed
                        break
                    continue
                compute += 1
                task = running.get(w)
                if task is not None:
                    # Deferred conflict: wait for the partner's bit.
                    stats.conflicts += 1
                    veto = veto or task.member
                    dep_finish = max(dep_finish, task.finish)
                    continue
                if flags.hdc and cache is not None and w < v_t:
                    veto = veto or bool(cache.read(w))
                    stats.cache_reads += 1
                else:
                    bit, cycles = loaders[pe].load(w)
                    veto = veto or bool(bit)
                    stats.ldv_reads += 1
                    if cycles <= 1:
                        stats.merged_reads += 1
                    else:
                        dram += cycles - 1
            blocks = -(-consumed // cfg.edges_per_block) if consumed else 0
            dram += blocks * cfg.dram_stream_cycles
            stats.edge_blocks_fetched += blocks

            joins = not veto
            member[v] = joins
            # Stage 7 analogue: a single NOT; write-back routes by v_t.
            compute += 1
            if flags.hdc and cache is not None and v < v_t:
                cache.write(v, int(joins))
                compute += 1
                write = 0
            else:
                memory.write(v, int(joins))
                loaders[pe].invalidate(v)
                write = cfg.dram_write_cycles

            demand = dram + write
            queue = 0
            if demand > 0:
                s = min(range(len(dram_servers)), key=lambda i: dram_servers[i])
                queue = max(0, dram_servers[s] - t_start)
                dram_servers[s] = max(dram_servers[s], t_start) + demand

            end = max(t_start + compute + queue + dram, dep_finish) + write + 1
            stats.stall_cycles += max(0, dep_finish - (t_start + compute + queue + dram))
            stats.dram_queue_cycles += queue
            stats.compute_cycles += compute
            stats.dram_cycles += dram + write
            free[pe] = end
            in_flight[pe] = _Task(vertex=v, finish=end, member=joins)
            makespan = max(makespan, end)

        stats.makespan_cycles = makespan
        return MISEngineResult(
            members=member, stats=stats, config=cfg, flags=flags
        )
