"""Pluggable off-chip memory subsystem.

``repro.hw.mem`` turns the DDR4 constants that used to be hard-coded in
:class:`~repro.hw.config.HWConfig` into named, swappable
:class:`~repro.hw.mem.profiles.MemProfile` records:

>>> from repro.hw import mem
>>> mem.profiles()
('ddr4-u200', 'hbm2')
>>> cfg = mem.profile_config("hbm2", parallelism=32)
>>> cfg.dram_physical_channels
32

``profile_config("ddr4-u200")`` is field-for-field identical to
``HWConfig()``, so existing callers and recorded benchmarks are
unaffected.  Both accelerator engines consume the resulting
``HWConfig`` unchanged — profile selection never forks the cost model,
it only re-parameterises it, which is what keeps the event/batched
``AcceleratorStats`` parity contract intact under every profile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from .profiles import (
    DEFAULT_PROFILE,
    PROFILE_NAMES,
    PROFILES,
    MemProfile,
    get_profile,
    profiles,
    sharing_divisor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import HWConfig

__all__ = [
    "MemProfile",
    "PROFILES",
    "PROFILE_NAMES",
    "DEFAULT_PROFILE",
    "get_profile",
    "profiles",
    "profile_config",
    "describe",
    "sharing_divisor",
]


def profile_config(name: str = DEFAULT_PROFILE, **overrides: Any) -> HWConfig:
    """Build an :class:`HWConfig` for a named memory profile.

    Keyword overrides win over the profile's own values, so sweeps can
    vary a single knob (e.g. ``profile_config("hbm2",
    dram_physical_channels=8)`` models a partially-bonded stack).
    """
    # Imported here (not at module top) so ``repro.hw.config`` can import
    # ``.mem.profiles`` for name validation without a cycle.
    from ..config import HWConfig

    profile = get_profile(name)
    params: dict = dict(profile.config_overrides())
    params["mem_profile"] = profile.name
    params.update(overrides)
    return HWConfig(**params)


def describe() -> List[str]:
    """One line per registered profile — surfaced by ``--version``."""
    return [PROFILES[name].summary() for name in PROFILE_NAMES]
