"""Memory-profile registry — the pluggable off-chip memory models.

The original model hard-coded the Alveo U200's DDR4 subsystem into
:class:`~repro.hw.config.HWConfig` defaults.  A :class:`MemProfile`
captures that same parameter set as data, so a second board class can be
described without touching the cost model:

* ``ddr4-u200`` — the paper's deployment: 4 DDR4-2400 channels, 512-bit
  AXI data path, and the calibrated per-block costs the Figure 11–13
  numbers were produced with.  ``profile_config("ddr4-u200")`` equals
  ``HWConfig()`` field for field, so the profile reproduces the original
  behaviour bit-for-bit.
* ``hbm2`` — a U280/U55C-class HBM2 stack: 32 independent pseudo
  channels behind a hardened crossbar.  Each pseudo channel is
  *narrower* (256-bit effective AXI beat) and its random-access latency
  is a little higher than DDR4's as seen from the kernel clock, but
  bursts stream faster and there are eight times as many channels, so a
  16- or 32-PE instance keeps every logical channel un-shared — the
  Figure 12 sharing knee moves from P=4 to P=32.

This module is intentionally dependency-free (no import from
``..config``) so :mod:`repro.hw.config` can validate profile names
without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

__all__ = [
    "MemProfile",
    "PROFILES",
    "PROFILE_NAMES",
    "DEFAULT_PROFILE",
    "get_profile",
    "profiles",
    "sharing_divisor",
]


@dataclass(frozen=True)
class MemProfile:
    """One off-chip memory technology as the cost model sees it.

    Field names after ``description`` deliberately mirror the
    ``HWConfig`` fields they map onto (``dram_`` prefix dropped), so
    :func:`repro.hw.mem.profile_config` can apply a profile with a
    simple rename.
    """

    name: str
    description: str

    physical_channels: int
    """Independent physical channels (DDR4 controllers or HBM pseudo
    channels).  Each BWPE keeps its own *logical* channel; at
    P > physical_channels several logical channels share one physical
    channel's bandwidth (the Figure 12 scaling knee)."""

    block_bits: int
    """Data-path width of one block transfer on this memory."""

    latency_cycles: int
    """Full random-access latency of one block read (pipeline fill)."""

    read_occupancy_cycles: int
    """Steady-state per-block occupancy of a random read (latency is
    overlapped across the loader's outstanding requests)."""

    stream_cycles: int
    """Per-block cost inside an open sequential burst."""

    write_cycles: int
    """Posted-write occupancy per block (no stall)."""

    def config_overrides(self) -> Dict[str, int]:
        """The ``HWConfig`` field values this profile pins."""
        return {
            "dram_physical_channels": self.physical_channels,
            "dram_block_bits": self.block_bits,
            "dram_latency_cycles": self.latency_cycles,
            "dram_read_occupancy_cycles": self.read_occupancy_cycles,
            "dram_stream_cycles": self.stream_cycles,
            "dram_write_cycles": self.write_cycles,
        }

    def summary(self) -> str:
        return (
            f"{self.name}: {self.physical_channels} ch x {self.block_bits} b, "
            f"occupancy/stream/write = {self.read_occupancy_cycles}/"
            f"{self.stream_cycles}/{self.write_cycles} cyc"
        )


# ``ddr4-u200`` must match the HWConfig defaults exactly — a test pins
# every field pair (see tests/hw/test_mem_profiles.py).
PROFILES: Dict[str, MemProfile] = {
    "ddr4-u200": MemProfile(
        name="ddr4-u200",
        description=(
            "Alveo U200: 4 DDR4-2400 channels, 512-bit data path "
            "(the paper's deployment; reproduces the original model "
            "bit-for-bit)"
        ),
        physical_channels=4,
        block_bits=512,
        latency_cycles=36,
        read_occupancy_cycles=10,
        stream_cycles=4,
        write_cycles=2,
    ),
    "hbm2": MemProfile(
        name="hbm2",
        description=(
            "U280/U55C-class HBM2: 32 pseudo channels, 256-bit "
            "effective beat, higher fill latency, faster bursts"
        ),
        physical_channels=32,
        block_bits=256,
        latency_cycles=48,
        read_occupancy_cycles=8,
        stream_cycles=2,
        write_cycles=2,
    ),
}

PROFILE_NAMES: Tuple[str, ...] = tuple(PROFILES)
DEFAULT_PROFILE = "ddr4-u200"


def profiles() -> Tuple[str, ...]:
    """Capability listing — the registered memory-profile names."""
    return PROFILE_NAMES


def get_profile(name: str) -> MemProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown memory profile {name!r}; expected one of {PROFILE_NAMES}"
        ) from None


def sharing_divisor(parallelism: int, physical_channels: int) -> int:
    """How many logical (per-PE) channels share one physical channel.

    The event and batched engines model contention by queueing the P
    logical channels on ``physical_channels`` shared servers; this
    closed form is the uniform-load upper bound the tests pin (the
    Figure 12 knee: 1 while P <= physical channels, then it climbs).
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if physical_channels < 1:
        raise ValueError("physical_channels must be >= 1")
    return -(-parallelism // physical_channels)
