"""Bit-Wise Processing Engine (Section 4.2, Figure 7).

A BWPE colors one source vertex at a time.  Its work is modelled in the
same two pipelines as the paper:

* the **color fetching pipeline** walks the edge list (Step 1), prunes
  uncolored neighbours (Step 2), checks the data conflict table (Step 3)
  and fetches colors from the HDV cache or the Color Loader (Step 4);
* the **vertex coloring pipeline** decompresses and ORs neighbour colors
  (Step 5), folds in deferred conflict results (Step 6), applies the
  AND-NOT first-free-color expression (Step 7) and compresses/writes the
  result (Step 8), forwarding it to peer DCTs.

Execution is split into :meth:`BWPE.traverse` (Steps 1–5, which can run
as soon as the task is dispatched) and :meth:`BWPE.finalize` (Steps 6–8,
which may stall until conflicting peers complete).  The accelerator's
event loop calls them in order and inserts the stall between them.

Cycle accounting is kept in two buckets, ``compute_cycles`` and
``dram_cycles``, because the paper's Figure 11 reports exactly that
split.  Every optimization toggle changes the accounting the way the
paper describes; the *functional* result (which color) is identical for
every toggle combination — the optimizations are work-savers, not
semantics-changers — and tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..coloring.bitset import CascadedMuxCompressor, Num2BitTable, first_free_bits
from ..graph.layout import EdgeLayout
from .cache import HDVColorCache
from .color_loader import ColorLoader
from .config import HWConfig, OptimizationFlags
from .conflict import DataConflictTable
from .dram import DRAMChannel

__all__ = ["TaskExecution", "BWPE", "finalize_cycles"]


def finalize_cycles(
    config: HWConfig,
    flags: OptimizationFlags,
    color: int,
    max_color_seen: int,
    has_conflicts: bool,
) -> int:
    """Compute cycles of Steps 6–7 for a task that chose ``color``.

    Single source of truth shared by the event-driven engine and the
    batched engine (:mod:`repro.hw.batched`): the conflict OR (when any
    neighbour was deferred), then either the BWC bit-logic path (one
    AND-NOT cycle plus the cascaded-mux compressor latency) or the
    flag-array baseline (scan to the chosen color, then clear the
    engine's in-use extent, ``max_color_seen`` *before* this task).
    """
    cycles = config.conflict_or_cycles if has_conflicts else 0
    if flags.bwc:
        cycles += 1 + CascadedMuxCompressor.LATENCY_CYCLES
    else:
        cycles += color + max_color_seen
    return cycles


@dataclass
class TaskExecution:
    """Result and accounting of coloring one source vertex."""

    v_src: int
    seq: int
    color: int = 0
    color_bits: int = 0

    # Cycle buckets (Figure 11's split).
    compute_cycles: int = 0
    dram_cycles: int = 0

    # Work counters.
    neighbors_total: int = 0
    neighbors_processed: int = 0
    pruned: int = 0
    deferred_peers: List[int] = field(default_factory=list)
    cache_reads: int = 0
    ldv_reads: int = 0
    merged_reads: int = 0
    edge_blocks_fetched: int = 0
    edge_blocks_saved: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.dram_cycles

    @property
    def has_conflicts(self) -> bool:
        return bool(self.deferred_peers)


class BWPE:
    """One bit-wise processing engine with its private datapath."""

    def __init__(
        self,
        pe_id: int,
        config: HWConfig,
        flags: OptimizationFlags,
        *,
        cache: Optional[HDVColorCache],
        loader: ColorLoader,
        channel: DRAMChannel,
        dct: DataConflictTable,
        layout: Optional[EdgeLayout] = None,
    ):
        self.pe_id = pe_id
        self.config = config
        self.flags = flags
        self.cache = cache
        self.loader = loader
        self.channel = channel
        self.dct = dct
        # Optional compressed edge layout (repro.graph.layout).  None means
        # plain CSR accounting: ceil(consumed / edges_per_block) blocks.
        self.layout = layout
        self.num2bit = Num2BitTable(config.max_colors)
        self.compressor = CascadedMuxCompressor(config.max_colors)
        self._state_bits = 0
        self._current: Optional[TaskExecution] = None
        # High-water mark of colors this engine has seen — the extent of
        # flag array the non-BWC baseline must clear per vertex.
        self._max_color_seen = 1

    # ------------------------------------------------------------------
    # Steps 1–5: color fetching + OR accumulation
    # ------------------------------------------------------------------
    def traverse(
        self,
        v_src: int,
        neighbors: np.ndarray,
        seq: int,
        v_t: int,
    ) -> TaskExecution:
        """Walk the edge list and accumulate the neighbour color state.

        ``neighbors`` is the CSR slice for ``v_src`` (ascending when the
        graph was edge-sorted).  ``seq`` is the dispatch sequence number
        used for conflict resolution.  ``v_t`` is the HDV threshold.
        """
        if self._current is not None:
            raise RuntimeError(f"PE {self.pe_id} already has a task in flight")
        cfg = self.config
        flags = self.flags
        task = TaskExecution(v_src=v_src, seq=seq, neighbors_total=int(neighbors.size))
        self.dct.reset_flags()
        self._state_bits = 0

        # Task setup: dispatcher loads v_src, s_e, d_e and DCT config.
        task.compute_cycles += cfg.task_setup_cycles
        # Edge streaming: first block is a random DRAM access; later blocks
        # stream behind the ping-pong buffer and overlap with processing.
        per_block = cfg.edges_per_block
        self.loader.reset_stream()

        consumed = 0
        state = 0
        sorted_edges = bool(neighbors.size < 2 or np.all(np.diff(neighbors) >= 0))
        for v_des in neighbors:
            v_des = int(v_des)
            consumed += 1
            # Step 2 — prune uncolored vertices (needs DBG ascending order).
            if flags.puv and v_des > v_src:
                task.pruned += 1
                task.compute_cycles += 1  # the comparator
                if sorted_edges:
                    # All remaining destinations are larger: prune the tail
                    # without even streaming its edge blocks.
                    task.pruned += int(neighbors.size) - consumed
                    break
                continue
            # Step 3 — data conflict check against peer BWPEs.
            task.compute_cycles += 1
            if self.dct.check(v_des, seq):
                peers = [e.pe_id for e in self.dct.flagged() if e.vertex == v_des]
                task.deferred_peers.extend(
                    p for p in peers if p not in task.deferred_peers
                )
                continue
            # Step 4 — fetch the neighbour color.
            if flags.hdc and self.cache is not None and v_des < v_t:
                color = self.cache.read(v_des)
                task.cache_reads += 1
                task.compute_cycles += cfg.cache_hit_cycles - 1
            else:
                color, cycles = self._ldv_read(v_des)
                task.ldv_reads += 1
                if cycles <= 1:
                    task.merged_reads += 1
                else:
                    task.dram_cycles += cycles - 1
            # Step 5 — decompress and OR (one pipelined cycle per neighbour).
            task.neighbors_processed += 1
            state |= self.num2bit.decompress(color)

        # Edge block accounting: blocks actually streamed vs saved by the
        # sorted-edge prune break.  With a compressed layout the row's
        # consumed prefix occupies fewer blocks (per-row header/entry
        # widths); without one this is plain ceil(consumed / edges_per_block).
        if self.layout is not None:
            blocks_needed = self.layout.prefix_blocks(
                v_src, consumed, cfg.dram_block_bits
            )
            blocks_total = self.layout.prefix_blocks(
                v_src, int(neighbors.size), cfg.dram_block_bits
            )
        else:
            blocks_needed = -(-consumed // per_block) if consumed else 0
            blocks_total = (
                -(-int(neighbors.size) // per_block) if neighbors.size else 0
            )
        task.edge_blocks_fetched = blocks_needed
        task.edge_blocks_saved = blocks_total - blocks_needed
        # The ping-pong buffer prefetches edge blocks while the previous
        # task drains, so edge supply streams at burst rate and only the
        # per-block burst cost lands on the task.
        task.dram_cycles += self.channel.stream_run(blocks_needed)

        self._state_bits = state
        self._current = task
        return task

    def _ldv_read(self, v_des: int) -> tuple[int, int]:
        """Color read that misses the HDV cache — through the Color Loader."""
        return self.loader.load(v_des)

    # ------------------------------------------------------------------
    # Steps 6–8: conflict fold, color determination, write-back
    # ------------------------------------------------------------------
    def finalize(self) -> TaskExecution:
        """Complete the in-flight task: Steps 6–7 (conflict fold and color
        determination).  Step 8 (write-back) is the Writer module's job —
        the accelerator passes the returned task to
        :class:`~repro.hw.writer.Writer`.  Caller guarantees that every
        deferred peer has delivered its result (the event loop models the
        stall); a missing result raises through the DCT."""
        task = self._current
        if task is None:
            raise RuntimeError(f"PE {self.pe_id} has no task to finalize")
        cfg = self.config
        state = self._state_bits

        # Step 6 — parallel OR over deferred conflict colors (one cycle).
        if task.deferred_peers:
            state |= self.dct.gather_conflict_bits()

        # Step 7 — color determination.
        if self.flags.bwc:
            # One cycle of AND-NOT bit logic, then the 3-cycle compressor.
            bits = first_free_bits(state)
            color = self.compressor.compress(bits)
        else:
            # Flag-array traversal: scan from color 1 to the first free
            # flag, then sweep the in-use extent of the flag array clean
            # (Algorithm 1's Stage 1 — the paper's cycle example clears
            # the whole array, one cycle per color in play).
            color = 1
            while state & (1 << (color - 1)):
                color += 1
            bits = 1 << (color - 1)
        task.compute_cycles += finalize_cycles(
            cfg, self.flags, color, self._max_color_seen, bool(task.deferred_peers)
        )
        self._max_color_seen = max(self._max_color_seen, color)
        if color > cfg.max_colors:
            raise ValueError(
                f"vertex {task.v_src} needs color {color} > max {cfg.max_colors}"
            )
        task.color = color
        task.color_bits = bits

        self._state_bits = 0
        self._current = None
        return task

    @property
    def busy(self) -> bool:
        return self._current is not None
