"""Color Loader — LDV color fetch with DRAM read merging (Section 4.5).

The loader receives destination vertex indices (ascending within a vertex
after edge sorting), computes the 512-bit block each color lives in, and
skips the DRAM request entirely when the block equals the last one
requested — the Merge DRAM Read (MGR) optimization.  The last block and
its index persist *across* vertices (the paper's Step 7 updates them at
the end of each response), so a popular low-degree block keeps merging.

Functional data comes from the channel's :class:`~repro.hw.dram.ColorMemory`;
timing comes from the channel's block-read model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HWConfig
from .dram import ColorMemory, DRAMChannel

__all__ = ["LoaderStats", "ColorLoader"]


@dataclass
class LoaderStats:
    requests: int = 0
    """LDV color reads presented to the loader."""

    dram_reads: int = 0
    """Block reads actually issued."""

    merged: int = 0
    """Reads served from the last requested block (saved DRAM accesses)."""

    def merge(self, other: "LoaderStats") -> "LoaderStats":
        return LoaderStats(
            requests=self.requests + other.requests,
            dram_reads=self.dram_reads + other.dram_reads,
            merged=self.merged + other.merged,
        )


class ColorLoader:
    """Per-BWPE LDV color fetch pipeline."""

    def __init__(
        self,
        config: HWConfig,
        channel: DRAMChannel,
        memory: ColorMemory,
        *,
        enable_merge: bool = True,
    ):
        self.config = config
        self.channel = channel
        self.memory = memory
        self.enable_merge = enable_merge
        self.stats = LoaderStats()
        self._last_block: int | None = None

    def load(self, vertex: int) -> tuple[int, int]:
        """Fetch one LDV color; returns ``(color, cycles)``.

        Steps 1–6 of Figure 9: decode block/offset, compare with the last
        request index, issue (or skip) the DRAM read, select the word.
        """
        self.stats.requests += 1
        block = self.memory.block_of(vertex)
        if self.enable_merge and block == self._last_block:
            # Step 2/5: index matches the last request — reuse its block.
            self.stats.merged += 1
            cycles = 1  # bits-selector only
        else:
            cycles = self.channel.read_block(block)
            self.stats.dram_reads += 1
            self._last_block = block
        color = self.memory.read(vertex)
        return color, cycles

    def invalidate(self, vertex: int) -> None:
        """Drop the merged block if ``vertex`` was just rewritten.

        The real Writer updates DRAM directly; a stale merged block would
        return the pre-update color.  The paper avoids the hazard because a
        just-written vertex is never re-read before its block ages out of
        the one-entry buffer under ascending dispatch; the model enforces
        it explicitly so the functional simulator can never go stale.
        """
        if self._last_block is not None and self.memory.block_of(vertex) == self._last_block:
            self._last_block = None

    def reset_stream(self) -> None:
        """Forget channel burst state (new task); merge buffer persists."""
        self.channel.end_stream()
