"""High-degree vertex (HDV) color cache.

After DBG reordering, the HDV cache is a *direct* structure: vertex ``v``
(with ``v < v_t``) lives at word ``v``.  There are no tags, no evictions
and no misses — the threshold comparison in the BWPE's Step 4 guarantees
that only HDVs ever reach the cache.  That is the paper's point: given
graph coloring's hopeless temporal locality (Fig 3b), a statically-pinned
hot set beats any conventional cache.

Multi-port behaviour (who may read/write which word concurrently) is the
job of :mod:`repro.hw.multiport`; this class is the single-copy
functional store plus hit accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import HWConfig

__all__ = ["CacheStats", "HDVColorCache"]


@dataclass
class CacheStats:
    reads: int = 0
    writes: int = 0

    def add(self, *, reads: int = 0, writes: int = 0) -> None:
        """Bulk hit accounting — one call per batched-engine epoch instead
        of one :meth:`HDVColorCache.read` per neighbour."""
        self.reads += reads
        self.writes += writes

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.reads + other.reads, self.writes + other.writes)


class HDVColorCache:
    """Functional HDV color store with capacity enforcement."""

    def __init__(self, config: HWConfig, v_t: int):
        if v_t > config.cache_capacity_vertices:
            raise ValueError(
                f"v_t {v_t} exceeds cache capacity "
                f"{config.cache_capacity_vertices} vertices"
            )
        self.config = config
        self.v_t = v_t
        self.stats = CacheStats()
        self._colors = np.zeros(v_t, dtype=np.int64)

    def covers(self, vertex: int) -> bool:
        """True when this vertex's color lives on-chip."""
        return 0 <= vertex < self.v_t

    def read(self, vertex: int) -> int:
        """Read a cached color; costs ``cache_hit_cycles`` (caller charges)."""
        self._check(vertex)
        self.stats.reads += 1
        return int(self._colors[vertex])

    def write(self, vertex: int, color: int) -> None:
        self._check(vertex)
        if color < 0 or color > self.config.max_colors:
            raise ValueError(f"color {color} outside [0, {self.config.max_colors}]")
        self.stats.writes += 1
        self._colors[vertex] = color

    def read_many(self, vertices: np.ndarray) -> np.ndarray:
        """Bulk functional read (fast path); counts one read per vertex."""
        vertices = np.asarray(vertices)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.v_t):
            raise IndexError("vertex outside HDV range")
        self.stats.reads += int(vertices.size)
        return self._colors[vertices]

    def snapshot(self) -> np.ndarray:
        return self._colors.copy()

    def _check(self, vertex: int) -> None:
        if not self.covers(vertex):
            raise IndexError(
                f"vertex {vertex} outside HDV range [0, {self.v_t}); "
                "LDV colors live in DRAM"
            )
