"""Multi-port cache construction (Section 4.4).

FPGAs only provide dual-ported BRAMs, but P parallel BWPEs need P read
ports and P write ports on the HDV color cache.  Two constructions are
modelled:

* :class:`LVTMultiPortCache` — the classic Live Value Table design
  (LaForest & Steffan): an ``m × n`` grid of bank replicas plus an LVT
  that records, per address, which write-port row holds the live value.
  Costs a full extra table, one cycle of extra read latency, and heavy
  replication.

* :class:`BitSelectMultiPortCache` — the paper's design.  Because the
  degree-aware scheduler guarantees BWPE ``i`` only ever colors HDVs with
  ``v % P == i``, the live bank is a pure function of the address: word
  ``addr // P`` inside the RM group ``(addr % P) // 2``.  No LVT, no
  extra latency, and each BM shrinks to ``2D/P`` words, for a total of
  ``m·n·D/(2P)`` words (``P·D/2`` when ``m = n = P``) — ``2/P`` of the
  LVT design's footprint by the paper's accounting.

Both classes are functional models (they really store and return colors,
and they *enforce* the write-residue discipline) with exact BRAM-word
accounting used by the resource model and the multiport ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "PortViolation",
    "MultiPortCacheModel",
    "BitSelectMultiPortCache",
    "LVTMultiPortCache",
    "bram_blocks_needed",
]

BRAM_BLOCK_BITS = 36 * 1024
"""Capacity of one U200 BRAM block (36 Kb)."""


class PortViolation(RuntimeError):
    """A port was used outside its allowed address class."""


def bram_blocks_needed(words: int, word_bits: int) -> int:
    """How many 36 Kb BRAM blocks hold ``words`` words of ``word_bits`` bits."""
    total_bits = words * word_bits
    return -(-total_bits // BRAM_BLOCK_BITS)  # ceil division


@dataclass
class _PortStats:
    reads: int = 0
    writes: int = 0


class MultiPortCacheModel:
    """Shared functional behaviour: D words, P read ports, P write ports."""

    def __init__(self, depth: int, num_ports: int, word_bits: int = 16):
        if num_ports < 1:
            raise ValueError("need at least one port")
        if num_ports > 1 and num_ports % 2:
            raise ValueError("port count must be even (BRAMs are dual-ported)")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.depth = depth
        self.num_ports = num_ports
        self.word_bits = word_bits
        self.port_stats = [_PortStats() for _ in range(num_ports)]

    # Subclasses implement the real storage topology.
    def read(self, port: int, addr: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def write(self, port: int, addr: int, value: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise PortViolation(f"port {port} outside [0, {self.num_ports})")

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.depth:
            raise IndexError(f"address {addr} outside [0, {self.depth})")

    @property
    def read_latency_cycles(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def bram_words(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def bram_blocks(self) -> int:
        return bram_blocks_needed(self.bram_words(), self.word_bits)


class BitSelectMultiPortCache(MultiPortCacheModel):
    """The paper's address bit-selection multi-port cache (Figure 8(b)).

    Topology for ``P`` ports over ``D`` words:

    * ``P/2`` RM groups; group ``j`` owns addresses with
      ``addr % P ∈ {2j, 2j+1}``;
    * each group is one logical ``2D/P``-word store, physically replicated
      ``P/2``× for read ports (replicas hold identical data, so the model
      stores one copy and counts the replicas in the BRAM cost);
    * write port ``i`` may only write addresses with ``addr % P == i`` —
      exactly the scheduler's guarantee; violations raise
      :class:`PortViolation` because they would silently read stale data
      in real hardware.
    """

    def __init__(self, depth: int, num_ports: int, word_bits: int = 16):
        super().__init__(depth, num_ports, word_bits)
        p = max(num_ports, 1)
        group_words = 2 * ((depth + p - 1) // p) if num_ports > 1 else depth
        self._group_words = group_words
        num_groups = max(num_ports // 2, 1)
        self._groups: List[np.ndarray] = [
            np.zeros(group_words, dtype=np.int64) for _ in range(num_groups)
        ]

    def _locate(self, addr: int) -> tuple[int, int]:
        """(RM group, word index) for an address — the bit-selection step."""
        if self.num_ports == 1:
            return 0, addr
        p = self.num_ports
        residue = addr % p
        return residue // 2, (addr // p) * 2 + (residue & 1)

    def write(self, port: int, addr: int, value: int) -> None:
        self._check_port(port)
        self._check_addr(addr)
        if self.num_ports > 1 and addr % self.num_ports != port:
            raise PortViolation(
                f"write port {port} may not write address {addr} "
                f"(addr % P = {addr % self.num_ports})"
            )
        group, word = self._locate(addr)
        self._groups[group][word] = value
        self.port_stats[port].writes += 1

    def read(self, port: int, addr: int) -> int:
        self._check_port(port)
        self._check_addr(addr)
        group, word = self._locate(addr)
        self.port_stats[port].reads += 1
        return int(self._groups[group][word])

    @property
    def read_latency_cycles(self) -> int:
        """BRAM read + output mux — one cycle, no LVT indirection."""
        return 1

    def bram_words(self) -> int:
        """``m·n·D/(2P)`` physical words (``P·D/2`` for ``m = n = P``)."""
        if self.num_ports == 1:
            return self.depth
        p = self.num_ports
        # P/2 groups × P/2 read replicas × 2D/P words per BM.
        return (p // 2) * (p // 2) * self._group_words


class LVTMultiPortCache(MultiPortCacheModel):
    """Live-Value-Table multi-port cache (Figure 8(a)) — comparison model.

    ``m`` write rows × ``n`` read columns of bank replicas plus an
    ``D``-entry LVT.  A write on port ``w`` updates every bank in row
    ``w`` and records ``LVT[addr] = w``; a read first consults the LVT to
    steer the bank mux, adding a cycle of latency.

    BRAM accounting follows the paper's own comparison (Section 4.4):
    bank storage ``m·n·D/4`` words plus the LVT, giving the quoted
    bit-selection advantage of ``2/P``.
    """

    def __init__(self, depth: int, num_ports: int, word_bits: int = 16):
        super().__init__(depth, num_ports, word_bits)
        rows = max(num_ports, 1)
        self._banks = np.zeros((rows, depth), dtype=np.int64) if depth else np.zeros(
            (rows, 0), dtype=np.int64
        )
        self._lvt = np.zeros(depth, dtype=np.int64)

    def write(self, port: int, addr: int, value: int) -> None:
        self._check_port(port)
        self._check_addr(addr)
        # All n read replicas of row `port` get the value; the model keeps
        # one row per write port since replicas are identical.
        self._banks[port, addr] = value
        self._lvt[addr] = port
        self.port_stats[port].writes += 1

    def read(self, port: int, addr: int) -> int:
        self._check_port(port)
        self._check_addr(addr)
        self.port_stats[port].reads += 1
        live_row = int(self._lvt[addr])
        return int(self._banks[live_row, addr])

    @property
    def read_latency_cycles(self) -> int:
        """LVT lookup + bank read — two cycles."""
        return 2

    def bram_words(self) -> int:
        if self.num_ports == 1:
            return self.depth
        p = self.num_ports
        bank_words = p * p * self.depth // 4
        # LVT: D entries of log2(m) bits, expressed in word-equivalents.
        lvt_bits = self.depth * max((p - 1).bit_length(), 1)
        lvt_words = -(-lvt_bits // self.word_bits)
        return bank_words + lvt_words
