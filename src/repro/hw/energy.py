"""Energy model — KCV/J (kilo colored vertices per joule).

The paper's Section 5.3 reports average energy efficiency of 12 KCV/J
(CPU), 19 KCV/J (GPU) and 156 KCV/J (BitColor) — 13× and 8.2× advantages.
KCV/J is throughput divided by average power, so the model needs only a
power figure per platform:

* CPU: a Xeon Silver 4114 under a single-threaded memory-bound workload
  draws well under TDP; we use a package figure consistent with the
  paper's 12 KCV/J at its measured 0.88 MCV/S (≈ 73 W).
* GPU: a Titan V under an iterative, memory-bound graph kernel; the
  paper's 19 KCV/J at 15.3 MCV/S implies a very high draw — Gunrock's
  coloring keeps the memory system saturated across many launches; we
  use a board+host figure of ≈ 800 W·(effective), folded into a single
  constant calibrated to the 19 KCV/J figure.
* FPGA: the paper's own aggregates imply a measured wall draw of
  ~266 W for the BitColor runs (41.6 MCV/S ÷ 156 KCV/J) — i.e. the
  energy meter covered the host server, not just the ~25 W card.  The
  default FPGA power reproduces that accounting so the reported KCV/J
  *ratios* (13× over CPU, 8.2× over GPU) carry over; the card-only
  figure is available via ``PlatformPower(fpga_static_watts=12,
  fpga_per_pe_watts=0.9)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HWConfig

__all__ = ["PlatformPower", "energy_joules", "kcv_per_joule"]


@dataclass(frozen=True)
class PlatformPower:
    """Average power draw (Watts) while running the coloring workload."""

    cpu_watts: float = 73.0
    gpu_watts: float = 805.0
    fpga_static_watts: float = 240.0
    fpga_per_pe_watts: float = 1.6

    def fpga_watts(self, parallelism: int) -> float:
        return self.fpga_static_watts + self.fpga_per_pe_watts * parallelism


DEFAULT_POWER = PlatformPower()


def energy_joules(time_seconds: float, watts: float) -> float:
    if time_seconds < 0 or watts < 0:
        raise ValueError("time and power must be non-negative")
    return time_seconds * watts


def kcv_per_joule(num_vertices: int, time_seconds: float, watts: float) -> float:
    """Kilo colored vertices per joule (the paper's energy metric)."""
    e = energy_joules(time_seconds, watts)
    if e == 0:
        return float("inf")
    return num_vertices / e / 1e3
