"""Per-BWPE logical DRAM channel model.

Each BWPE connects to its own logical channel (Section 4.1), so channels
never contend in the model.  (Contention between *logical* channels that
share a physical channel — 4 on the U200's DDR4, 32 on an HBM2 stack,
see :mod:`repro.hw.mem` — is modeled by the engines' shared-server
queues, not here.)  A channel is a block-granular memory — block width
``dram_block_bits`` comes from the active memory profile — with two cost
classes:

* a **random** block read costs ``dram_latency_cycles``;
* a block read that continues a **sequential stream** (block index =
  previous + 1) costs ``dram_stream_cycles`` — the burst behaviour the
  edge reader and (after edge sorting) the color loader exploit.

The channel also holds the functional backing store for LDV colors: a
numpy array indexed by vertex ID.  HDV colors live in the on-chip cache
(:mod:`repro.hw.cache`), so positions below ``v_t`` in this array stay 0
when HDC is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import HWConfig

__all__ = ["DRAMStats", "DRAMChannel", "ColorMemory"]


@dataclass
class DRAMStats:
    """Access accounting for one channel."""

    random_reads: int = 0
    stream_reads: int = 0
    writes: int = 0
    read_cycles: int = 0
    write_cycles: int = 0

    @property
    def total_reads(self) -> int:
        return self.random_reads + self.stream_reads

    def add_reads(self, *, random: int = 0, stream: int = 0, cycles: int = 0) -> None:
        """Bulk read accounting — the batched engine folds whole epochs in
        one call instead of one :meth:`DRAMChannel.read_block` per block."""
        self.random_reads += random
        self.stream_reads += stream
        self.read_cycles += cycles

    def add_writes(self, count: int, cycles: int = 0) -> None:
        """Bulk posted-write accounting (batched-engine counterpart of
        :meth:`DRAMChannel.write_block`)."""
        self.writes += count
        self.write_cycles += cycles

    def merge(self, other: "DRAMStats") -> "DRAMStats":
        return DRAMStats(
            random_reads=self.random_reads + other.random_reads,
            stream_reads=self.stream_reads + other.stream_reads,
            writes=self.writes + other.writes,
            read_cycles=self.read_cycles + other.read_cycles,
            write_cycles=self.write_cycles + other.write_cycles,
        )


class DRAMChannel:
    """Block-granular timing model of one logical DRAM channel."""

    def __init__(self, config: HWConfig):
        self.config = config
        self.stats = DRAMStats()
        self._last_block: int | None = None

    def read_block(self, block_index: int) -> int:
        """Account one block read; returns its occupancy cost in cycles.

        The cost is the *pipelined* per-read occupancy: sequential blocks
        stream at burst rate, random blocks pay the steady-state random
        cost (latency is overlapped across the loader's outstanding
        requests, so it appears only as extra occupancy, not as a stall
        per read).
        """
        if block_index < 0:
            raise ValueError("block index must be non-negative")
        if self._last_block is not None and block_index == self._last_block + 1:
            cost = self.config.dram_stream_cycles
            self.stats.stream_reads += 1
        else:
            cost = self.config.dram_read_occupancy_cycles
            self.stats.random_reads += 1
        self._last_block = block_index
        self.stats.read_cycles += cost
        return cost

    def write_block(self, block_index: int) -> int:
        """Account one posted block write; returns occupancy cycles."""
        if block_index < 0:
            raise ValueError("block index must be non-negative")
        cost = self.config.dram_write_cycles
        self.stats.writes += 1
        self.stats.write_cycles += cost
        # A write breaks the read stream at the controller.
        self._last_block = None
        return cost

    def stream_run(self, num_blocks: int) -> int:
        """Account a burst of ``num_blocks`` sequential block reads.

        The edge reader opens one burst per task and streams the row's
        blocks back to back, so every block — including the first —
        costs the burst rate (the stream open is part of the task setup,
        not the per-block occupancy).  Zero-length runs are free no-ops;
        a single-block run is still a (degenerate) sequential burst.
        Returns the total occupancy in cycles.
        """
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if num_blocks == 0:
            return 0
        cost = num_blocks * self.config.dram_stream_cycles
        self.stats.stream_reads += num_blocks
        self.stats.read_cycles += cost
        return cost

    def end_stream(self) -> None:
        """Forget the stream state (e.g. when a new vertex task starts)."""
        self._last_block = None

    def reset(self) -> None:
        self.stats = DRAMStats()
        self._last_block = None


class ColorMemory:
    """Functional backing store for vertex colors kept in DRAM.

    Stores compressed color numbers.  Width checking mirrors the
    hardware's fixed 16-bit slot: a color that does not fit raises.
    """

    def __init__(self, num_vertices: int, config: HWConfig):
        self.config = config
        self._colors = np.zeros(num_vertices, dtype=np.int64)

    def read(self, vertex: int) -> int:
        return int(self._colors[vertex])

    def write(self, vertex: int, color: int) -> None:
        if color < 0 or color > self.config.max_colors:
            raise ValueError(f"color {color} outside [0, {self.config.max_colors}]")
        self._colors[vertex] = color

    def read_many(self, vertices: np.ndarray) -> np.ndarray:
        return self._colors[vertices]

    def snapshot(self) -> np.ndarray:
        return self._colors.copy()

    def block_of(self, vertex: int) -> int:
        """DRAM block index that holds this vertex's color."""
        return vertex // self.config.colors_per_block

    def blocks_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of` (batched MGR/stream accounting)."""
        return np.asarray(vertices) // self.config.colors_per_block

    def offset_of(self, vertex: int) -> int:
        """Word offset of this vertex's color within its block."""
        return vertex % self.config.colors_per_block
