"""Analytic resource and frequency model (Figure 14).

The paper reports U200 utilization versus parallelism: registers, LUTs
and BRAM grow nearly linearly up to P = 8, then super-linearly at P = 16
(the multi-port cache's P²-shaped replication and routing pressure), with
the final P = 16 build using 51.09 % of registers, 47.79 % of LUTs and
96.72 % of BRAMs at a frequency above 200 MHz.

This model reconstructs those curves from per-structure costs:

* per-BWPE logic (pipelines, comparators, DCT registers) — linear in P;
* the Num2Bit decompression table and edge buffers — linear in P;
* the multi-port HDV cache — ``P²·D_group/2`` words by the bit-selection
  formula (each of the P/2 RM groups is replicated P/2× for read ports),
  which is the super-linear BRAM term;
* a routing/congestion LUT overhead growing quadratically, which also
  drives the frequency degradation.

Constants are calibrated once so P = 16 reproduces the paper's reported
utilization; they are not per-experiment knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HWConfig
from .multiport import BRAM_BLOCK_BITS, BitSelectMultiPortCache, LVTMultiPortCache

__all__ = ["U200", "ResourceReport", "estimate_resources", "multiport_bram_comparison"]


@dataclass(frozen=True)
class U200:
    """Available resources of the Xilinx Alveo U200 (Section 5.1.1)."""

    luts: int = 892_000
    registers: int = 2_364_000
    bram_blocks: int = 1766  # 36 Kb each → 63.576 Mb total
    bram_bits: int = 1766 * BRAM_BLOCK_BITS


@dataclass(frozen=True)
class ResourceReport:
    parallelism: int
    luts: int
    registers: int
    bram_blocks: int
    frequency_mhz: float

    def utilization(self, device: U200 = U200()) -> dict:
        return {
            "lut_pct": 100.0 * self.luts / device.luts,
            "register_pct": 100.0 * self.registers / device.registers,
            "bram_pct": 100.0 * self.bram_blocks / device.bram_blocks,
            "frequency_mhz": self.frequency_mhz,
        }


# Calibrated per-structure costs (single calibration, see module docstring).
_LUT_BASE = 24_000          # platform shell interface, dispatcher, writer
_LUT_PER_PE = 17_000        # BWPE pipelines, color loader, DCT compare logic
_LUT_ROUTING_QUAD = 500     # congestion overhead × P²
_FF_BASE = 70_000
_FF_PER_PE = 53_000         # deep pipelines dominate register use
_FF_ROUTING_QUAD = 1_100
_BRAM_BASE = 40             # dispatcher FIFOs, platform
_BRAM_PER_PE = 47           # Num2Bit table (1024×1024 b ≈ 29) + edge buffers
_FREQ_MAX = 295.0
_FREQ_SLOPE = 3.4           # MHz lost per PE (placement pressure)
_FREQ_QUAD = 0.12           # additional loss × P²


def deployed_cache_bytes(config: HWConfig) -> int:
    """Cache data size the build actually deploys.

    The bit-selection construction replicates the cache ``P/2``× for read
    ports; at P = 16 a full 1 MB data set would exceed the U200's BRAM, so
    (as any real build must) the deployment halves the cached data set at
    the top parallelism.  Performance experiments are unaffected: every
    stand-in graph's HDV set fits either size.
    """
    if config.parallelism > 8:
        return config.cache_bytes // 2
    return config.cache_bytes


def estimate_resources(config: HWConfig) -> ResourceReport:
    """Resource/frequency estimate for one configuration."""
    p = config.parallelism
    # The multi-port cache's physical words come straight from the model.
    cache_words = deployed_cache_bytes(config) // (config.color_bits // 8)
    if p > 1:
        mp = BitSelectMultiPortCache(cache_words, p, config.color_bits)
        cache_bram = mp.bram_blocks()
    else:
        cache_bram = -(-cache_words * config.color_bits // BRAM_BLOCK_BITS)
    luts = int(_LUT_BASE + _LUT_PER_PE * p + _LUT_ROUTING_QUAD * p * p)
    regs = int(_FF_BASE + _FF_PER_PE * p + _FF_ROUTING_QUAD * p * p)
    bram = int(_BRAM_BASE + _BRAM_PER_PE * p + cache_bram)
    freq = _FREQ_MAX - _FREQ_SLOPE * p - _FREQ_QUAD * p * p
    return ResourceReport(
        parallelism=p,
        luts=luts,
        registers=regs,
        bram_blocks=bram,
        frequency_mhz=freq,
    )


def multiport_bram_comparison(depth: int, num_ports: int, word_bits: int = 16) -> dict:
    """Bit-selection vs LVT BRAM footprint (the Section 4.4 ablation).

    Returns word counts, block counts and the ratio — the paper's claim is
    bit-selection needs ``2/P`` of the LVT design's storage.
    """
    bs = BitSelectMultiPortCache(depth, num_ports, word_bits)
    lvt = LVTMultiPortCache(depth, num_ports, word_bits)
    return {
        "bit_select_words": bs.bram_words(),
        "lvt_words": lvt.bram_words(),
        "bit_select_blocks": bs.bram_blocks(),
        "lvt_blocks": lvt.bram_blocks(),
        "ratio": bs.bram_words() / lvt.bram_words() if lvt.bram_words() else 0.0,
        "paper_ratio": 2.0 / num_ports if num_ports > 1 else 1.0,
        "bit_select_read_latency": bs.read_latency_cycles,
        "lvt_read_latency": lvt.read_latency_cycles,
    }
