"""Epoch-batched fast path of the BitColor accelerator model.

The event-driven engine (:meth:`~repro.hw.accelerator.BitColorAccelerator._run`)
steps Python loops per task and per neighbour, which caps the stand-ins
at thousands of vertices.  This module computes the *same* model one
dispatch epoch at a time:

1. **Functional result** — the accelerator's coloring provably equals
   the sequential greedy coloring in ascending-ID order (the dependency
   protocol delivers every conflict value before it is consumed), so the
   colors come straight from the vectorized bitwise kernel path.
2. **Per-task precompute (vectorized)** — for each epoch of tasks, one
   NumPy pass over the epoch's CSR slice derives every data-dependent
   per-task quantity: prune boundaries and comparator counts (PUV, with
   the per-row sortedness check), HDV/LDV fetch splits (HDC), edge-block
   streaming counts, and the MGR/stream structure of each task's LDV
   block sequence — collapsed run count ``k``, internal merges, stream
   continuations, first/last block, whether run 1 continues run 0.
   These use the :mod:`repro.kernels` segment primitives.
3. **Schedule recurrence (scalar, O(P) per task)** — dispatch order,
   PE binding and the finish-time recurrence are inherently sequential,
   so a lean loop replays exactly the event engine's schedule: dispatch
   floor, first-idle-PE selection, physical-DRAM-channel queueing,
   conflict deferral against in-flight lower neighbours, merge-buffer
   carry across tasks (with write-back invalidation), and stalls.  The
   recurrence has two interchangeable implementations selected by the
   ``replay=`` parameter: the reference Python loop below, and the
   compiled loop of the native kernel tier (:mod:`repro.kernels.native`)
   — one epoch per call, identical schedule and stats, used by default
   when the capability probe succeeds.

Because the recurrence replays the schedule exactly, *every* stats field
— including the timing-dependent ones (conflicts, merged_reads,
stall/queue cycles, makespan) — matches the event engine exactly; the
cycle_sim tolerance band is slack we do not need.  Tasks whose dispatch
found a conflicting in-flight neighbour are rare, so they take a scalar
correction path that recomputes the task's fetch sequence without the
deferred neighbours.

Two degenerate configurations are rejected (use the event engine):
``dram_stream_cycles <= 1`` or ``dram_read_occupancy_cycles <= 1`` make
the event model count channel reads as "merged" (its merge test is
``cycles <= 1``), an accounting quirk not worth replicating here.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.layout import DEFAULT_LAYOUT, EdgeLayout, build_layout, validate_layout
from ..kernels import (
    adjacent_pair_counts,
    prefix_block_counts,
    rows_sorted,
    run_start_mask,
)
from ..obs import get_registry
from .cache import CacheStats
from .config import HWConfig, OptimizationFlags
from .conflict import conflict_candidates
from .dispatcher import static_pe_binding
from .dram import DRAMStats
from .trace import ExecutionTrace, TaskTrace

__all__ = ["DEFAULT_EPOCH_TASKS", "run_batched"]

DEFAULT_EPOCH_TASKS = 4096
"""Tasks per dispatch epoch: one vectorized precompute + obs span each."""


class _Epoch:
    """Vectorized per-task precompute for tasks ``lo .. hi-1``."""

    __slots__ = (
        "lo", "hi",
        # hot per-task lists (epoch-local index)
        "comp_trav", "dram_b", "delta_a", "c0", "clast",
        # correction-path arrays (numpy, epoch-local index)
        "edge_dram", "hdv_fetch", "k", "mi", "ldv_cnt",
        "ldv_ptr", "ldv_dst", "ldv_blk",
        # conflict candidates
        "low_ptr", "low_dst",
        # epoch totals of the vectorized parts
        "sum_pruned", "sum_cache", "sum_ldv", "sum_mi", "sum_k",
        "sum_blocks_needed", "sum_blocks_saved",
    )


def _precompute_epoch(
    graph: CSRGraph,
    lo: int,
    hi: int,
    v_t: int,
    cfg: HWConfig,
    flags: OptimizationFlags,
    *,
    scalar_lists: bool = True,
    layout: Optional[EdgeLayout] = None,
) -> _Epoch:
    offsets = graph.offsets
    edges = graph.edges
    nloc = hi - lo
    base = int(offsets[lo])
    dst = edges[base:int(offsets[hi])]
    row_ptr = (offsets[lo:hi + 1] - base).astype(np.int64)
    deg = np.diff(row_ptr)
    src_local = np.repeat(np.arange(nloc, dtype=np.int64), deg)
    src = src_local + lo

    # --- Step 2: prune masks (PUV) ------------------------------------
    if flags.puv:
        keep = dst <= src
        n_le = np.bincount(src_local[keep], minlength=nloc)
        srt = rows_sorted(row_ptr, dst)
        has_larger = n_le < deg
        consumed = np.where(srt, n_le + has_larger, deg)
        compares = np.where(srt, has_larger.astype(np.int64), deg - n_le)
        pruned = deg - n_le
        kept = n_le
    else:
        keep = np.ones(dst.size, dtype=bool)
        consumed = deg
        compares = np.zeros(nloc, dtype=np.int64)
        pruned = compares
        kept = deg

    # --- Step 4 split: HDV cache hits vs Color-Loader reads (HDC) -----
    if flags.hdc and v_t > 0:
        is_hdv = dst < v_t
        hdv_sel = keep & is_hdv
        ldv_sel = keep & ~is_hdv
        hdv_fetch = np.bincount(src_local[hdv_sel], minlength=nloc)
    else:
        hdv_fetch = np.zeros(nloc, dtype=np.int64)
        ldv_sel = keep
    ldv_src = src_local[ldv_sel]
    ldv_dst = dst[ldv_sel]
    ldv_cnt = np.bincount(ldv_src, minlength=nloc)
    ldv_ptr = np.zeros(nloc + 1, dtype=np.int64)
    np.cumsum(ldv_cnt, out=ldv_ptr[1:])
    blocks = ldv_dst // cfg.colors_per_block

    # --- MGR collapse + stream structure of each task's block sequence
    if flags.mgr:
        starts = run_start_mask(ldv_src, blocks)
        cblocks = blocks[starts]
        cseg = ldv_src[starts]
    else:
        cblocks = blocks
        cseg = ldv_src
    k = np.bincount(cseg, minlength=nloc)
    cptr = np.zeros(nloc + 1, dtype=np.int64)
    np.cumsum(k, out=cptr[1:])
    mi = ldv_cnt - k  # merges internal to the task (0 unless MGR)
    if cblocks.size >= 2:
        s_full = adjacent_pair_counts(cseg, cblocks[1:] == cblocks[:-1] + 1, nloc)
    else:
        s_full = np.zeros(nloc, dtype=np.int64)
    # First/second/last collapsed block per task.  Sentinels: c0 = -5
    # never equals a carry value (valid carries are >= 0, the invalid
    # carry is -1); clast = -1 means "no LDV reads, keep the carry".
    c0 = np.full(nloc, -5, dtype=np.int64)
    clast = np.full(nloc, -1, dtype=np.int64)
    nz = k > 0
    c0[nz] = cblocks[cptr[:-1][nz]]
    clast[nz] = cblocks[cptr[1:][nz] - 1]
    stream1 = np.zeros(nloc, dtype=np.int64)
    k2 = k >= 2
    first2 = cptr[:-1][k2]
    stream1[k2] = cblocks[first2 + 1] == cblocks[first2] + 1

    # --- Cycle costs ---------------------------------------------------
    rc = cfg.dram_read_occupancy_cycles - 1  # extra cycles per random miss
    sc = cfg.dram_stream_cycles - 1          # extra cycles per stream miss
    # Branch B (no carry merge): k misses, s_full of them streaming.
    dram_b_color = s_full * sc + (k - s_full) * rc
    # Branch A (MGR, carry == first block): the first run merges, so k-1
    # misses; run 1's stream continuation is lost (the channel sees it
    # first, after the per-task stream reset).
    s_a = s_full - stream1
    delta_a = (s_a * sc + (k - 1 - s_a) * rc) - dram_b_color

    if layout is not None:
        # Compressed layout: per-row header/entry widths replace the
        # fixed edge_index_bits word (same math as the event engine's
        # EdgeLayout.prefix_blocks, vectorized over the epoch).
        hb = layout.header_bits[lo:hi]
        eb = layout.entry_bits[lo:hi]
        blocks_needed = prefix_block_counts(hb, eb, consumed, cfg.dram_block_bits)
        blocks_saved = (
            prefix_block_counts(hb, eb, deg, cfg.dram_block_bits) - blocks_needed
        )
    else:
        epb = cfg.edges_per_block
        blocks_needed = (consumed + epb - 1) // epb
        blocks_saved = (deg + epb - 1) // epb - blocks_needed
    edge_dram = blocks_needed * cfg.dram_stream_cycles

    comp_trav = (
        cfg.task_setup_cycles
        + kept
        + compares
        + (cfg.cache_hit_cycles - 1) * hdv_fetch
    )

    ep = _Epoch()
    ep.lo, ep.hi = lo, hi
    low_ptr, low_dst = conflict_candidates(offsets, edges, lo, hi)
    if scalar_lists:
        # The Python replay loop indexes plain lists (faster than numpy
        # scalar access by ~3x in a tight loop).
        ep.comp_trav = comp_trav.tolist()
        ep.dram_b = (edge_dram + dram_b_color).tolist()
        ep.delta_a = delta_a.tolist()
        ep.c0 = c0.tolist()
        ep.clast = clast.tolist()
        ep.edge_dram = edge_dram
        ep.k = k
        ep.mi = mi
        ep.ldv_ptr = ldv_ptr.tolist()
        ep.ldv_dst = ldv_dst.tolist()
        ep.ldv_blk = blocks.tolist()
        ep.low_ptr = low_ptr.tolist()
        ep.low_dst = low_dst.tolist()
    else:
        # The native replay takes contiguous int64 arrays verbatim.
        def a64(x):
            return np.ascontiguousarray(x, dtype=np.int64)

        ep.comp_trav = a64(comp_trav)
        ep.dram_b = a64(edge_dram + dram_b_color)
        ep.delta_a = a64(delta_a)
        ep.c0 = c0
        ep.clast = clast
        ep.edge_dram = a64(edge_dram)
        ep.k = a64(k)
        ep.mi = a64(mi)
        ep.ldv_ptr = a64(ldv_ptr)
        ep.ldv_dst = a64(ldv_dst)
        ep.ldv_blk = a64(blocks)
        ep.low_ptr = a64(low_ptr)
        ep.low_dst = a64(low_dst)
    ep.hdv_fetch = hdv_fetch
    ep.ldv_cnt = ldv_cnt
    ep.sum_pruned = int(pruned.sum())
    ep.sum_cache = int(hdv_fetch.sum())
    ep.sum_ldv = int(ldv_cnt.sum())
    ep.sum_mi = int(mi.sum())
    ep.sum_k = int(k.sum())
    ep.sum_blocks_needed = int(blocks_needed.sum())
    ep.sum_blocks_saved = int(blocks_saved.sum())
    return ep


def run_batched(
    graph: CSRGraph,
    config: HWConfig,
    flags: OptimizationFlags,
    *,
    trace: bool = False,
    epoch_size: int = DEFAULT_EPOCH_TASKS,
    replay: str = "auto",
    layout: str = DEFAULT_LAYOUT,
):
    """Run the batched engine; returns an ``AcceleratorResult``.

    Produces byte-identical colors and an exactly matching
    ``AcceleratorStats`` relative to the event-driven engine (see module
    docstring), at one-to-two orders of magnitude lower wall clock.

    ``replay`` selects the implementation of the scalar schedule
    recurrence (step 3): ``"auto"`` uses the compiled native kernel tier
    when its capability probe succeeds (and the Python loop otherwise),
    ``"python"`` pins the reference loop, ``"native"`` prefers the
    compiled loop but still falls back to Python when no compiler
    backend is usable (the strict form is ``repro.kernels.native.require``).
    Both replays produce identical stats — the parity suite pins this.
    Trace capture records per-task rows, which only the Python loop
    emits: ``trace=True`` silently pins ``replay="auto"`` to Python and
    rejects an explicit ``replay="native"``.

    ``layout`` selects the edge-array encoding (repro.graph.layout);
    compressed layouts change only the per-task edge-block counts fed to
    the precompute, so the schedule recurrence — and the parity contract
    with the event engine — is untouched.
    """
    from ..coloring.bitwise import bitwise_greedy_coloring
    from .accelerator import AcceleratorResult, AcceleratorStats

    cfg = config
    if cfg.dram_stream_cycles <= 1 or cfg.dram_read_occupancy_cycles <= 1:
        raise ValueError(
            "engine='batched' requires dram_stream_cycles > 1 and "
            "dram_read_occupancy_cycles > 1; use engine='event' for "
            "degenerate DRAM cost settings"
        )
    if epoch_size < 1:
        raise ValueError("epoch_size must be >= 1")
    if replay not in ("auto", "python", "native"):
        raise ValueError(
            f"unknown replay {replay!r}; allowed: auto, python, native"
        )
    if trace and replay == "native":
        raise ValueError(
            "trace capture requires replay='python' (per-task rows are "
            "only recorded by the Python replay loop); drop trace= or "
            "the replay pin"
        )
    validate_layout(layout)
    edge_layout = (
        None
        if layout == DEFAULT_LAYOUT
        else build_layout(graph, layout, edge_index_bits=cfg.edge_index_bits)
    )
    native_impl = None
    if not trace and replay in ("auto", "native"):
        from ..kernels import native as _native

        if _native.available():
            native_impl = _native.require()
    use_native = native_impl is not None
    n = graph.num_vertices
    p = cfg.parallelism
    v_t = cfg.v_t(n) if flags.hdc else 0
    obs = get_registry()

    # ------------------------------------------------------------------
    # Functional result: the accelerator's coloring equals the ascending
    # sequential greedy coloring (tests pin this for the event engine).
    # ------------------------------------------------------------------
    colors = bitwise_greedy_coloring(
        graph, prune_uncolored=False, backend="vectorized"
    ).colors.astype(np.int64, copy=True)
    if n and int(colors.max()) > cfg.max_colors:
        over = np.flatnonzero(colors > cfg.max_colors)
        v_bad = int(over[0])
        raise ValueError(
            f"vertex {v_bad} needs color {int(colors[v_bad])} "
            f"> max {cfg.max_colors}"
        )
    colors_l = colors.tolist() if (not flags.bwc and not use_native) else None

    pe_bind_arr = np.ascontiguousarray(static_pe_binding(n, v_t, p), dtype=np.int64)
    pe_bind = pe_bind_arr.tolist() if not use_native else None

    # --- scalar schedule state ----------------------------------------
    mgr = flags.mgr
    bwc = flags.bwc
    interval = cfg.dispatch_interval_cycles
    wc_ldv = cfg.dram_write_cycles
    or_cyc = cfg.conflict_or_cycles
    hitx = cfg.cache_hit_cycles - 1
    rc = cfg.dram_read_occupancy_cycles - 1
    sc = cfg.dram_stream_cycles - 1
    cpb = cfg.colors_per_block
    fin_bwc = 0
    if bwc:
        from ..coloring.bitset import CascadedMuxCompressor

        fin_bwc = 1 + CascadedMuxCompressor.LATENCY_CYCLES

    free = [0] * p
    seen = [1] * p                      # per-PE max color seen (non-BWC)
    carry = [-1] * p                    # per-PE merged block (-1 invalid)
    finish_v = [0] * n                  # finish time by vertex
    servers = [0] * max(cfg.dram_physical_channels, 1)
    ns = len(servers)
    pending_w: List = []                # (finish, block) LDV writes awaiting commit
    floor = 0
    maxfin = 0

    if use_native:
        # The compiled replay keeps the same schedule state in int64
        # arrays; the packed ``nstate`` vector carries the scalars
        # (floor, maxfin, heap size, epoch first-start) and all fourteen
        # accumulators across epochs.  The pending-write heap is a
        # finish-keyed binary heap — the Python heap's (finish, block)
        # tie-break is unobservable because every entry with
        # finish <= t is drained before any carry is read.
        free_a = np.zeros(p, dtype=np.int64)
        seen_a = np.ones(p, dtype=np.int64)
        carry_a = np.full(p, -1, dtype=np.int64)
        finish_a = np.zeros(n, dtype=np.int64)
        servers_a = np.zeros(ns, dtype=np.int64)
        heap_cap = max(n - v_t, 1)
        heap_fin = np.zeros(heap_cap, dtype=np.int64)
        heap_blk = np.zeros(heap_cap, dtype=np.int64)
        dlist_buf = np.zeros(1, dtype=np.int64)
        nstate = np.zeros(18, dtype=np.int64)

    # accumulators
    tot_comp = tot_dram = tot_wc = tot_stall = tot_queue = 0
    conflicts = 0
    count_a = 0                         # unconflicted tasks taking branch A
    conf_mi = conf_merged = conf_k = conf_misses = 0
    conf_ldv_base = conf_ldv_reads = conf_hdv_occ = 0
    sum_pruned = sum_cache = sum_ldv = sum_mi = sum_k = 0
    sum_blocks_needed = sum_blocks_saved = 0

    tr_rows: Optional[list] = [] if trace else None

    for lo in range(0, n, epoch_size):
        hi = min(lo + epoch_size, n)
        ep = _precompute_epoch(
            graph, lo, hi, v_t, cfg, flags,
            scalar_lists=not use_native, layout=edge_layout,
        )
        sum_pruned += ep.sum_pruned
        sum_cache += ep.sum_cache
        sum_ldv += ep.sum_ldv
        sum_mi += ep.sum_mi
        sum_k += ep.sum_k
        sum_blocks_needed += ep.sum_blocks_needed
        sum_blocks_saved += ep.sum_blocks_saved

        if use_native:
            # One compiled call replays the whole epoch's recurrence.
            nstate[3] = -1  # epoch first-start, set at the first dispatch
            ep_conflicts0 = int(nstate[9])
            ep_stall0 = int(nstate[7])
            dmax = int(np.max(np.diff(ep.low_ptr)))
            if dmax > dlist_buf.size:
                dlist_buf = np.zeros(dmax, dtype=np.int64)
            native_impl.replay_epoch(
                (
                    lo, hi - lo, v_t, p, ns, int(mgr), int(bwc), interval,
                    wc_ldv, or_cyc, hitx, rc, sc, cpb, fin_bwc,
                ),
                (
                    ep.comp_trav, ep.dram_b, ep.delta_a, ep.c0, ep.clast,
                    ep.edge_dram, ep.mi, ep.k, ep.low_ptr, ep.low_dst,
                    ep.ldv_ptr, ep.ldv_dst, ep.ldv_blk,
                ),
                (
                    pe_bind_arr, colors, free_a, seen_a, carry_a,
                    finish_a, servers_a, heap_fin, heap_blk, dlist_buf,
                    nstate,
                ),
            )
            if obs.enabled:
                obs.record_span(
                    "hw.batched.epoch",
                    max(int(nstate[3]), 0),
                    int(nstate[1]),
                    epoch=lo // epoch_size,
                    first_vertex=lo,
                    tasks=hi - lo,
                    conflicts=int(nstate[9]) - ep_conflicts0,
                    stall_cycles=int(nstate[7]) - ep_stall0,
                )
                obs.add("hw.batched.epochs")
                obs.add("hw.batched.epoch.tasks", hi - lo)
            continue

        comp_l = ep.comp_trav
        dram_l = ep.dram_b
        da_l = ep.delta_a
        c0_l = ep.c0
        cl_l = ep.clast
        lptr = ep.low_ptr
        ldst = ep.low_dst
        vptr = ep.ldv_ptr
        vdst = ep.ldv_dst
        vblk = ep.ldv_blk
        ep_conflicts0 = conflicts
        ep_stall0 = tot_stall
        ep_first_start = -1

        for vl in range(hi - lo):
            v = lo + vl
            # --- dispatch: PE choice and start time -------------------
            pe = pe_bind[v]
            if pe < 0:
                pe = 0
                fpe = free[0]
                for q in range(1, p):
                    fq = free[q]
                    if fq < fpe:
                        fpe = fq
                        pe = q
            else:
                fpe = free[pe]
            t = fpe if fpe > floor else floor
            floor = t + interval
            if ep_first_start < 0:
                ep_first_start = t

            # --- commits due before this dispatch: merge-buffer
            #     invalidation by completed LDV writes ------------------
            if mgr:
                while pending_w and pending_w[0][0] <= t:
                    wb = heappop(pending_w)[1]
                    for q in range(p):
                        if carry[q] == wb:
                            carry[q] = -1

            # --- conflict deferral against in-flight lower neighbours -
            dep = 0
            deferred = None
            d_hdv_occ = 0
            if maxfin > t:
                for i in range(lptr[vl], lptr[vl + 1]):
                    w = ldst[i]
                    fw = finish_v[w]
                    if fw > t:
                        if w < v_t:
                            d_hdv_occ += 1
                        if deferred is None:
                            deferred = {w}
                            dlist = [w]
                            dep = fw
                        elif w not in deferred:
                            deferred.add(w)
                            dlist.append(w)
                            if fw > dep:
                                dep = fw

            ct = comp_l[vl]
            dr = dram_l[vl]
            if deferred is None:
                if mgr:
                    if c0_l[vl] == carry[pe]:
                        count_a += 1
                        dr += da_l[vl]
                    cl = cl_l[vl]
                    if cl >= 0:
                        carry[pe] = cl
            else:
                # --- correction path: replay the fetch sequence without
                #     the deferred neighbours -----------------------------
                conflicts += len(dlist)
                lp = vptr[vl]
                rp = vptr[vl + 1]
                cur = carry[pe]
                last_c = -1
                merged = misses = stream = reads = 0
                for i in range(lp, rp):
                    if vdst[i] in deferred:
                        continue
                    b = vblk[i]
                    reads += 1
                    if mgr and b == cur:
                        merged += 1
                    else:
                        misses += 1
                        if last_c >= 0 and b == last_c + 1:
                            stream += 1
                        last_c = b
                        cur = b
                if mgr:
                    carry[pe] = cur
                dr = int(ep.edge_dram[vl]) + stream * sc + (misses - stream) * rc
                ct -= hitx * d_hdv_occ
                conf_ldv_base += rp - lp
                conf_ldv_reads += reads
                conf_merged += merged
                conf_misses += misses
                conf_mi += int(ep.mi[vl])
                conf_k += int(ep.k[vl])
                conf_hdv_occ += d_hdv_occ

            # --- finalize cycles (Steps 6-7) ---------------------------
            if bwc:
                cf = fin_bwc
            else:
                col = colors_l[v]
                sm = seen[pe]
                cf = col + sm
                if col > sm:
                    seen[pe] = col
            if deferred is not None:
                cf += or_cyc

            # --- write-back + physical DRAM channel queueing ----------
            if v < v_t:
                wc = 1
                dd = dr
            else:
                wc = wc_ldv
                dd = dr + wc
            qd = 0
            if dd > 0:
                si = 0
                s0 = servers[0]
                for q in range(1, ns):
                    if servers[q] < s0:
                        s0 = servers[q]
                        si = q
                if s0 > t:
                    qd = s0 - t
                    servers[si] = s0 + dd
                else:
                    servers[si] = t + dd

            # --- finish recurrence ------------------------------------
            te = t + ct + qd + dr
            if dep > te:
                stall = dep - te
                fin = dep + cf + wc
            else:
                stall = 0
                fin = te + cf + wc

            free[pe] = fin
            finish_v[v] = fin
            if fin > maxfin:
                maxfin = fin
            if mgr and v >= v_t:
                heappush(pending_w, (fin, v // cpb))

            tot_comp += ct + cf
            tot_dram += dr
            tot_wc += wc
            tot_stall += stall
            tot_queue += qd
            if tr_rows is not None:
                tr_rows.append(
                    TaskTrace(
                        vertex=v,
                        pe=pe,
                        start=t,
                        finish=fin,
                        stall=stall,
                        queue_delay=qd,
                        deferred_on=tuple(dlist) if deferred is not None else (),
                    )
                )

        if obs.enabled:
            obs.record_span(
                "hw.batched.epoch",
                max(ep_first_start, 0),
                maxfin,
                epoch=lo // epoch_size,
                first_vertex=lo,
                tasks=hi - lo,
                conflicts=conflicts - ep_conflicts0,
                stall_cycles=tot_stall - ep_stall0,
            )
            obs.add("hw.batched.epochs")
            obs.add("hw.batched.epoch.tasks", hi - lo)

    if use_native:
        # Unpack the compiled replay's packed state into the same scalar
        # accumulators the Python loop maintains.
        maxfin = int(nstate[1])
        tot_comp = int(nstate[4])
        tot_dram = int(nstate[5])
        tot_wc = int(nstate[6])
        tot_stall = int(nstate[7])
        tot_queue = int(nstate[8])
        conflicts = int(nstate[9])
        count_a = int(nstate[10])
        conf_mi = int(nstate[11])
        conf_merged = int(nstate[12])
        conf_k = int(nstate[13])
        conf_misses = int(nstate[14])
        conf_ldv_base = int(nstate[15])
        conf_ldv_reads = int(nstate[16])
        conf_hdv_occ = int(nstate[17])

    # ------------------------------------------------------------------
    # Fold the vectorized totals and the scalar corrections into the
    # same aggregate objects the event engine reports from.
    # ------------------------------------------------------------------
    misses_total = (sum_k - count_a) - conf_k + conf_misses
    dram_total = DRAMStats()
    dram_total.add_reads(stream=sum_blocks_needed)  # edge streaming
    dram_total.add_reads(random=misses_total)       # color reads (split by
    # stream/random only affects cycles, which the recurrence already
    # accumulated; total_reads is what the stats surface).
    dram_total.add_writes(n - v_t)
    cache_total = CacheStats()
    if flags.hdc:
        cache_total.add(reads=sum_cache - conf_hdv_occ, writes=v_t)

    stats = AcceleratorStats(num_vertices=n, num_edges=graph.num_edges)
    stats.makespan_cycles = maxfin
    stats.compute_cycles = tot_comp
    stats.dram_cycles = tot_dram + tot_wc
    stats.stall_cycles = tot_stall
    stats.dram_queue_cycles = tot_queue
    stats.hdv_tasks = v_t
    stats.ldv_tasks = n - v_t
    stats.conflicts = conflicts
    stats.pruned_edges = sum_pruned
    stats.cache_reads = cache_total.reads
    stats.cache_writes = cache_total.writes
    stats.ldv_reads = sum_ldv - conf_ldv_base + conf_ldv_reads
    stats.merged_reads = sum_mi + count_a - conf_mi + conf_merged
    stats.dram_reads = dram_total.total_reads
    stats.dram_writes = dram_total.writes
    stats.edge_blocks_fetched = sum_blocks_needed
    stats.edge_blocks_saved = sum_blocks_saved

    execution_trace = ExecutionTrace(tasks=tr_rows) if trace else None
    used = np.unique(colors[colors != 0])
    return AcceleratorResult(
        colors=colors,
        num_colors=int(used.size),
        stats=stats,
        config=cfg,
        flags=flags,
        trace=execution_trace,
        layout=layout,
    )
