"""BitColor top level — functional + cycle-approximate accelerator model.

:class:`BitColorAccelerator` wires together the architecture of Figure 6:
a Task Dispatch Unit, P bit-wise processing engines each with a private
logical DRAM channel and Color Loader, the shared HDV color cache (with
its multi-port physical model), the per-PE data conflict tables and the
Writer.  :meth:`BitColorAccelerator.run` executes a whole graph and
returns the coloring (functionally exact) plus cycle-level accounting
(approximate, at vertex-task granularity).

Execution model
---------------
Tasks start in ascending vertex order (see :mod:`repro.hw.dispatcher`).
For each task the engine's traversal/finalize cycle counts are computed
exactly by the :class:`~repro.hw.bwpe.BWPE` model; across engines a
discrete-event schedule tracks when each PE frees up and how long a task
stalls waiting for conflicting peers:

    finish(v) = max(start(v) + traverse_cycles, max_dep_finish) +
                finalize_cycles + write_cycles

Dependency values (conflict partners' color bits) are resolved eagerly —
every value consumed respects the dependency order, so the resulting
coloring is a legal dataflow execution; tests verify it equals the
sequential greedy coloring and is proper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..coloring.outcome import OutcomeMixin
from ..graph.csr import CSRGraph
from ..graph.layout import DEFAULT_LAYOUT, LAYOUTS, build_layout
from ..obs import get_registry, record_trace
from .bwpe import BWPE, TaskExecution
from .cache import HDVColorCache
from .color_loader import ColorLoader
from .config import HWConfig, OptimizationFlags
from .conflict import DataConflictTable
from .dispatcher import TaskDispatchUnit
from .dram import ColorMemory, DRAMChannel, DRAMStats
from .multiport import BitSelectMultiPortCache
from .trace import ExecutionTrace, TaskTrace
from .writer import Writer

__all__ = ["AcceleratorStats", "AcceleratorResult", "BitColorAccelerator"]


@dataclass
class _TaskRecord:
    vertex: int
    pe: int
    seq: int
    start: int
    finish: int
    exec: TaskExecution
    write_cycles: int
    stall: int
    queue_delay: int = 0
    deferred_on: tuple = ()


@dataclass
class AcceleratorStats:
    """Aggregated run statistics (the raw material for Figs 11–13)."""

    num_vertices: int = 0
    num_edges: int = 0
    makespan_cycles: int = 0
    compute_cycles: int = 0
    dram_cycles: int = 0
    stall_cycles: int = 0
    dram_queue_cycles: int = 0
    hdv_tasks: int = 0
    ldv_tasks: int = 0
    conflicts: int = 0
    pruned_edges: int = 0
    cache_reads: int = 0
    cache_writes: int = 0
    ldv_reads: int = 0
    merged_reads: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    edge_blocks_fetched: int = 0
    edge_blocks_saved: int = 0

    @property
    def total_task_cycles(self) -> int:
        """Serial work: what a single PE would take (plus stalls excluded)."""
        return self.compute_cycles + self.dram_cycles

    def time_seconds(self, frequency_mhz: float) -> float:
        return self.makespan_cycles / (frequency_mhz * 1e6)

    def throughput_mcvs(self, frequency_mhz: float) -> float:
        """Million colored vertices per second (the paper's MCV/S)."""
        t = self.time_seconds(frequency_mhz)
        return self.num_vertices / t / 1e6 if t > 0 else float("inf")


@dataclass
class AcceleratorResult(OutcomeMixin):
    colors: np.ndarray
    num_colors: int
    stats: AcceleratorStats
    config: HWConfig
    flags: OptimizationFlags
    trace: Optional["ExecutionTrace"] = None
    """Per-task timing records; populated when ``run(..., trace=True)``."""

    layout: str = DEFAULT_LAYOUT
    """Edge-array layout the run was modeled with (repro.graph.layout)."""

    @property
    def time_seconds(self) -> float:
        return self.stats.time_seconds(self.config.frequency_mhz)

    @property
    def throughput_mcvs(self) -> float:
        return self.stats.throughput_mcvs(self.config.frequency_mhz)


class BitColorAccelerator:
    """One configured BitColor instance; :meth:`run` colors one graph.

    ``engine`` selects the execution model:

    * ``"event"`` (default) — the discrete-event simulator below: one
      Python step per task and per neighbour, driving the full component
      models (BWPE, loader, DCT, writer).  Exact, slow.
    * ``"batched"`` — the epoch-batched fast path
      (:func:`repro.hw.batched.run_batched`): per-task costs vectorized
      over whole dispatch epochs, schedule replayed by a lean recurrence.
      Produces identical colorings and identical statistics at a fraction
      of the wall clock; intended for paper-scale stand-ins.  ``epoch_size``
      sets tasks per vectorized batch and ``replay`` the schedule-recurrence
      implementation (``"auto"`` — the compiled native tier when its
      capability probe succeeds, else the Python loop; ``"python"``;
      ``"native"``); both are only used by this engine.

    ``mem_profile`` names a registered memory profile (see
    :func:`repro.hw.mem.profiles`); when given without an explicit
    ``config``, the config is built from the profile.  ``layout`` selects
    the edge-array encoding (:data:`repro.graph.layout.LAYOUTS`); both
    engines account block fetches through the same layout, so the
    ``AcceleratorStats`` parity contract holds for every
    (profile × layout) combination.
    """

    ENGINES = ("event", "batched")
    REPLAYS = ("auto", "python", "native")
    LAYOUTS = LAYOUTS

    def __init__(
        self,
        config: Optional[HWConfig] = None,
        flags: Optional[OptimizationFlags] = None,
        *,
        engine: str = "event",
        epoch_size: Optional[int] = None,
        replay: str = "auto",
        mem_profile: Optional[str] = None,
        layout: str = DEFAULT_LAYOUT,
    ):
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}"
            )
        if replay not in self.REPLAYS:
            raise ValueError(
                f"unknown replay {replay!r}; expected one of {self.REPLAYS}"
            )
        if layout not in self.LAYOUTS:
            raise ValueError(
                f"unknown layout {layout!r}; expected one of {self.LAYOUTS}"
            )
        if mem_profile is not None:
            from . import mem

            mem.get_profile(mem_profile)  # eager: unknown names raise here
            if config is None:
                config = mem.profile_config(mem_profile)
            elif config.mem_profile != mem_profile:
                raise ValueError(
                    f"mem_profile={mem_profile!r} conflicts with "
                    f"config.mem_profile={config.mem_profile!r}; pass one "
                    "or build the config with repro.hw.mem.profile_config"
                )
        self.config = config or HWConfig()
        self.flags = flags or OptimizationFlags.all()
        self.engine = engine
        self.epoch_size = epoch_size
        self.replay = replay
        self.layout = layout

    # ------------------------------------------------------------------
    def run(self, graph: CSRGraph, *, trace: bool = False) -> AcceleratorResult:
        """Color ``graph``; records spans/counters on the active obs registry."""
        obs = get_registry()
        with obs.span(
            "hw.accelerator.run",
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            parallelism=self.config.parallelism,
            hdc=self.flags.hdc,
            mgr=self.flags.mgr,
            puv=self.flags.puv,
            engine=self.engine,
            mem_profile=self.config.mem_profile,
            layout=self.layout,
        ) as sp:
            if self.engine == "batched":
                from .batched import DEFAULT_EPOCH_TASKS, run_batched

                result = run_batched(
                    graph,
                    self.config,
                    self.flags,
                    trace=trace,
                    epoch_size=self.epoch_size or DEFAULT_EPOCH_TASKS,
                    replay=self.replay,
                    layout=self.layout,
                )
            else:
                result = self._run(graph, trace=trace)
            sp.set(
                makespan_cycles=result.stats.makespan_cycles,
                n_colors=result.num_colors,
            )
        if obs.enabled:
            s = result.stats
            obs.record_span(
                "hw.accelerator.makespan", 0, s.makespan_cycles,
                parallelism=self.config.parallelism,
            )
            obs.add("hw.cycles.compute", s.compute_cycles)
            obs.add("hw.cycles.dram", s.dram_cycles)
            obs.add("hw.cycles.stall", s.stall_cycles)
            obs.add("hw.cycles.dram_queue", s.dram_queue_cycles)
            obs.add("hw.cache.reads", s.cache_reads)
            obs.add("hw.cache.writes", s.cache_writes)
            obs.add("hw.dram.ldv_reads", s.ldv_reads)
            obs.add("hw.dram.merged_reads", s.merged_reads)
            obs.add("hw.dram.reads", s.dram_reads)
            obs.add("hw.dram.writes", s.dram_writes)
            obs.add("hw.conflicts", s.conflicts)
            obs.add("hw.pruned_edges", s.pruned_edges)
            obs.add("hw.tasks.hdv", s.hdv_tasks)
            obs.add("hw.tasks.ldv", s.ldv_tasks)
            obs.gauge("hw.cycles.makespan", s.makespan_cycles)
            obs.gauge("hw.colors", result.num_colors)
            if result.trace is not None:
                record_trace(result.trace, obs)
        return result

    def _run(self, graph: CSRGraph, *, trace: bool = False) -> AcceleratorResult:
        cfg = self.config
        flags = self.flags
        n = graph.num_vertices
        p = cfg.parallelism

        if flags.puv and not graph.meta.get("dbg_reordered", False):
            # PUV is only a pure optimization under descending-degree IDs;
            # it stays *correct* for any ascending processing order, so we
            # allow it but the paper's preprocessing is expected.
            pass
        v_t = cfg.v_t(n) if flags.hdc else 0

        channels = [DRAMChannel(cfg) for _ in range(p)]
        memory = ColorMemory(n, cfg)
        cache = HDVColorCache(cfg, v_t) if flags.hdc else None
        # Physical multi-port model (port-discipline checking).  BRAMs are
        # dual-ported so the construction needs an even port count; odd
        # parallelism (not a deployable configuration, but allowed in the
        # functional simulator) skips the physical shadow model.
        multiport = (
            BitSelectMultiPortCache(v_t, p, cfg.color_bits)
            if flags.hdc and p > 1 and p % 2 == 0 and v_t > 0
            else None
        )
        loaders = [
            ColorLoader(cfg, channels[i], memory, enable_merge=flags.mgr)
            for i in range(p)
        ]
        dcts = [DataConflictTable(i, p) for i in range(p)]
        # Plain layout keeps the original closed-form block math (and the
        # original code path); compressed layouts are encoded once and
        # shared read-only by every PE.
        edge_layout = (
            None
            if self.layout == DEFAULT_LAYOUT
            else build_layout(graph, self.layout, edge_index_bits=cfg.edge_index_bits)
        )
        pes = [
            BWPE(
                i,
                cfg,
                flags,
                cache=cache,
                loader=loaders[i],
                channel=channels[i],
                dct=dcts[i],
                layout=edge_layout,
            )
            for i in range(p)
        ]
        writer = Writer(
            cfg,
            flags,
            cache=cache,
            multiport=multiport,
            memory=memory,
            channels=channels,
            v_t=v_t,
        )
        dispatcher = TaskDispatchUnit(cfg, n, v_t)

        free = [0] * p
        last_start = 0
        next_dispatch_slot = 0
        # Physical DRAM channels: logical per-PE channels share these
        # servers; queueing here is what throttles memory-bound scaling.
        dram_servers = [0] * max(cfg.dram_physical_channels, 1)
        in_flight: Dict[int, _TaskRecord] = {}
        committed: List[_TaskRecord] = []
        stats = AcceleratorStats(num_vertices=n, num_edges=graph.num_edges)

        def commit(rec: _TaskRecord) -> None:
            rec.write_cycles = writer.write_back(rec.pe, rec.exec, pes)
            dispatcher.pst.complete(rec.pe)
            del in_flight[rec.pe]
            committed.append(rec)

        def commit_until(t: int) -> None:
            # Finish-order processing keeps dependency delivery consistent.
            while True:
                due = [r for r in in_flight.values() if r.finish <= t]
                if not due:
                    return
                commit(min(due, key=lambda r: (r.finish, r.seq)))

        while True:
            nxt = dispatcher.next_task()
            if nxt is None:
                break
            v, pe = nxt
            if pe < 0:
                # LDV: first PE to go idle takes it (FCFS).
                pe = min(range(p), key=lambda i: (free[i], i))
                stats.ldv_tasks += 1
            else:
                stats.hdv_tasks += 1
            t_start = max(free[pe], last_start, next_dispatch_slot)
            last_start = t_start
            next_dispatch_slot = t_start + cfg.dispatch_interval_cycles
            commit_until(t_start)
            if pe in in_flight:  # pragma: no cover - scheduling invariant
                raise RuntimeError(f"PE {pe} dispatched while busy")

            # Configure this engine's DCT with a snapshot of running peers.
            dct = dcts[pe]
            for q in range(p):
                if q == pe:
                    continue
                rec = in_flight.get(q)
                if rec is not None:
                    dct.set_peer_task(q, rec.vertex, rec.seq)
                else:
                    dct.clear_peer_task(q)
            dispatcher.pst.start(pe, v, v)

            # Steps 1–5.
            exec_ = pes[pe].traverse(v, graph.neighbors(v), seq=v, v_t=v_t)
            comp_trav = exec_.compute_cycles
            dram_trav = exec_.dram_cycles

            # Resolve conflict dependencies eagerly (values + timing).
            dep_finish = 0
            deferred_on = []
            for q in exec_.deferred_peers:
                dep = in_flight.get(q)
                if dep is None:  # pragma: no cover - protocol invariant
                    raise RuntimeError(f"deferred peer {q} is not in flight")
                dct.deliver_result(q, dep.exec.color_bits)
                dep_finish = max(dep_finish, dep.finish)
                deferred_on.append(dep.vertex)

            # Steps 6–7.
            exec_ = pes[pe].finalize()
            comp_fin = exec_.compute_cycles - comp_trav
            hdv_write = flags.hdc and v < v_t
            write_cycles = 1 if hdv_write else cfg.dram_write_cycles

            # DRAM contention: the task's total block traffic queues on the
            # earliest-free physical channel.
            dram_demand = dram_trav + (0 if hdv_write else write_cycles)
            queue_delay = 0
            if dram_demand > 0:
                s = min(range(len(dram_servers)), key=lambda i: dram_servers[i])
                queue_delay = max(0, dram_servers[s] - t_start)
                dram_servers[s] = max(dram_servers[s], t_start) + dram_demand

            traverse_end = t_start + comp_trav + queue_delay + dram_trav
            stall = max(0, dep_finish - traverse_end)
            finish = max(traverse_end, dep_finish) + comp_fin + write_cycles

            rec = _TaskRecord(
                vertex=v,
                pe=pe,
                seq=v,
                start=t_start,
                finish=finish,
                exec=exec_,
                write_cycles=write_cycles,
                stall=stall,
                queue_delay=queue_delay,
                deferred_on=tuple(deferred_on),
            )
            in_flight[pe] = rec
            free[pe] = finish

        commit_until(max(free) + 1)
        if in_flight:  # pragma: no cover - drain invariant
            raise RuntimeError("tasks left in flight after drain")

        # ------------------------------------------------------------------
        # Aggregate statistics.
        # ------------------------------------------------------------------
        colors = memory.snapshot()
        if cache is not None and v_t > 0:
            colors[:v_t] = cache.snapshot()
        makespan = max((r.finish for r in committed), default=0)
        stats.makespan_cycles = makespan
        for r in committed:
            e = r.exec
            stats.compute_cycles += e.compute_cycles
            stats.dram_cycles += e.dram_cycles + r.write_cycles
            stats.stall_cycles += r.stall
            stats.dram_queue_cycles += r.queue_delay
            stats.conflicts += len(e.deferred_peers)
            stats.pruned_edges += e.pruned
            stats.cache_reads += e.cache_reads
            stats.ldv_reads += e.ldv_reads
            stats.merged_reads += e.merged_reads
            stats.edge_blocks_fetched += e.edge_blocks_fetched
            stats.edge_blocks_saved += e.edge_blocks_saved
        stats.cache_writes = writer.stats.cache_writes
        stats.dram_writes = writer.stats.dram_writes
        dram_total = DRAMStats()
        for ch in channels:
            dram_total = dram_total.merge(ch.stats)
        stats.dram_reads = dram_total.total_reads

        execution_trace = None
        if trace:
            execution_trace = ExecutionTrace(
                tasks=[
                    TaskTrace(
                        vertex=r.vertex,
                        pe=r.pe,
                        start=r.start,
                        finish=r.finish,
                        stall=r.stall,
                        queue_delay=r.queue_delay,
                        deferred_on=r.deferred_on,
                    )
                    for r in sorted(committed, key=lambda r: r.start)
                ]
            )

        used = np.unique(colors[colors != 0])
        return AcceleratorResult(
            colors=colors,
            num_colors=int(used.size),
            stats=stats,
            config=cfg,
            flags=flags,
            trace=execution_trace,
            layout=self.layout,
        )
