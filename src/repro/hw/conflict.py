"""Data Conflict Table (DCT) — Section 4.3.

Each BWPE carries a small register-file table with one column per *other*
BWPE and five rows: PE index, vertex being colored there, completion
valid bit, that vertex's color result (bits), and a conflict flag.  When
the BWPE meets a neighbour that is concurrently being colored elsewhere,
it marks the conflict and defers that neighbour's contribution; once all
flagged partners have raised their valid bits, a single parallel OR folds
their color bits into the state (Step 6 of Figure 7).

Resolution direction: the paper stipulates the BWPE with the smaller
index completes first, which under its dispatch pattern (vertices handed
out in ascending ID order) equals "the earlier-dispatched task wins".
This model keys on the dispatch sequence number, which is the invariant
the PE-index rule is standing in for, and is correct under any dispatch
order (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "DCTEntry",
    "DataConflictTable",
    "ConflictProtocolError",
    "conflict_candidates",
]


def conflict_candidates(offsets, edges, lo: int, hi: int):
    """Per-task candidate sets for DCT conflicts, vectorized over an epoch.

    Under ascending-ID dispatch a neighbour ``w`` can only be flagged by
    :meth:`DataConflictTable.check` when ``w < v`` (the seq comparison
    rejects later-dispatched peers), so the strictly-smaller neighbours of
    each task are the *complete* set the table can ever defer on.  Returns
    ``(ptr, dst)``: a local CSR over tasks ``lo..hi-1`` whose row ``i``
    lists the candidate vertices of task ``lo + i``.  Whether a candidate
    actually conflicts is a timing question (is it still in flight at
    dispatch?) answered by the schedule recurrence.
    """
    import numpy as np

    sl = slice(int(offsets[lo]), int(offsets[hi]))
    dst = edges[sl]
    counts = np.diff(offsets[lo:hi + 1])
    src = np.repeat(np.arange(lo, hi, dtype=np.int64), counts)
    mask = dst < src
    low_dst = dst[mask]
    low_cnt = np.bincount(
        src[mask] - lo, minlength=hi - lo
    )
    ptr = np.zeros(hi - lo + 1, dtype=np.int64)
    np.cumsum(low_cnt, out=ptr[1:])
    return ptr, low_dst


class ConflictProtocolError(RuntimeError):
    """The DCT protocol was violated (e.g. OR before all valids set)."""


@dataclass
class DCTEntry:
    """One column of the table (state of one peer BWPE)."""

    pe_id: int
    vertex: Optional[int] = None
    valid: bool = False
    color_bits: int = 0
    conflict_flag: bool = False
    seq: int = -1
    """Dispatch sequence number of the peer's task (resolution key)."""

    def clear_task(self) -> None:
        self.vertex = None
        self.valid = False
        self.color_bits = 0
        self.conflict_flag = False
        self.seq = -1


class DataConflictTable:
    """The per-BWPE conflict table and its detection/deferral protocol."""

    def __init__(self, pe_id: int, num_pes: int):
        if not 0 <= pe_id < num_pes:
            raise ValueError("pe_id out of range")
        self.pe_id = pe_id
        self.entries: Dict[int, DCTEntry] = {
            pe: DCTEntry(pe_id=pe) for pe in range(num_pes) if pe != pe_id
        }
        self.conflicts_detected = 0

    # ------------------------------------------------------------------
    # Dispatcher-side updates
    # ------------------------------------------------------------------
    def set_peer_task(self, pe: int, vertex: int, seq: int) -> None:
        """Record that peer ``pe`` started coloring ``vertex`` (dispatch)."""
        entry = self._entry(pe)
        entry.vertex = vertex
        entry.valid = False
        entry.color_bits = 0
        entry.conflict_flag = False
        entry.seq = seq

    def clear_peer_task(self, pe: int) -> None:
        self._entry(pe).clear_task()

    def deliver_result(self, pe: int, color_bits: int) -> None:
        """Peer ``pe`` finished: forward its color and raise valid (Step 8)."""
        entry = self._entry(pe)
        if entry.vertex is None:
            raise ConflictProtocolError(f"peer {pe} has no task to complete")
        entry.color_bits = color_bits
        entry.valid = True

    # ------------------------------------------------------------------
    # BWPE-side protocol
    # ------------------------------------------------------------------
    def check(self, v_des: int, my_seq: int) -> bool:
        """Step 3: is ``v_des`` being colored by an earlier-dispatched peer?

        Returns True (and flags the entry) when the neighbour's
        contribution must be deferred to Step 6.  A peer working on
        ``v_des`` that was dispatched *later* than our task is ignored:
        that peer's own DCT will defer on us instead.
        """
        for entry in self.entries.values():
            if entry.vertex == v_des and entry.seq < my_seq:
                if not entry.conflict_flag:
                    entry.conflict_flag = True
                    self.conflicts_detected += 1
                return True
        return False

    def flagged(self) -> List[DCTEntry]:
        """Entries whose conflict flag is set."""
        return [e for e in self.entries.values() if e.conflict_flag]

    def all_flagged_valid(self) -> bool:
        return all(e.valid for e in self.flagged())

    def gather_conflict_bits(self) -> int:
        """Step 6: parallel OR over the flagged entries' color rows.

        One cycle in hardware (register file, not BRAM).  Raises if any
        flagged partner has not completed — the real pipeline stalls here,
        and the simulator models the stall before calling this.
        """
        acc = 0
        for entry in self.flagged():
            if not entry.valid:
                raise ConflictProtocolError(
                    f"gather before peer {entry.pe_id} (vertex {entry.vertex}) completed"
                )
            acc |= entry.color_bits
        return acc

    def reset_flags(self) -> None:
        """Start of a new task on this BWPE: forget old conflict flags."""
        for entry in self.entries.values():
            entry.conflict_flag = False

    def _entry(self, pe: int) -> DCTEntry:
        try:
            return self.entries[pe]
        except KeyError:
            raise ConflictProtocolError(
                f"PE {pe} not tracked by DCT of PE {self.pe_id}"
            ) from None
