"""Writer module — routes color results to the cache or DRAM (Section 4.1).

The Writer receives completed tasks from the BWPEs and

* writes HDV results to the multi-port cache through the write port bound
  to the producing BWPE (the bit-selection scheme requires write port
  ``i`` to only see addresses with ``addr % P == i``, which the
  degree-aware dispatcher guarantees);
* writes LDV results to that BWPE's DRAM channel (posted, so the PE does
  not stall);
* forwards the result bits to every peer BWPE's data conflict table so
  stalled conflict partners can proceed (Step 8's "notify" path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .bwpe import BWPE, TaskExecution
from .cache import HDVColorCache
from .config import HWConfig, OptimizationFlags
from .dram import ColorMemory, DRAMChannel
from .multiport import BitSelectMultiPortCache

__all__ = ["WriterStats", "Writer"]


@dataclass
class WriterStats:
    cache_writes: int = 0
    dram_writes: int = 0
    forwards: int = 0


class Writer:
    """Write-back and result-forwarding stage shared by all BWPEs."""

    def __init__(
        self,
        config: HWConfig,
        flags: OptimizationFlags,
        *,
        cache: Optional[HDVColorCache],
        multiport: Optional[BitSelectMultiPortCache],
        memory: ColorMemory,
        channels: Sequence[DRAMChannel],
        v_t: int,
    ):
        self.config = config
        self.flags = flags
        self.cache = cache
        self.multiport = multiport
        self.memory = memory
        self.channels = list(channels)
        self.v_t = v_t
        self.stats = WriterStats()

    def write_back(self, pe_id: int, task: TaskExecution, pes: Sequence[BWPE]) -> int:
        """Commit ``task``'s color; returns the cycles charged to the PE.

        Also forwards the result to every peer DCT — in hardware this is a
        broadcast register update, not a memory access, hence no extra
        cycles beyond the write itself.
        """
        v, color = task.v_src, task.color
        if self.flags.hdc and self.cache is not None and v < self.v_t:
            # Functional store...
            self.cache.write(v, color)
            # ...and the port-discipline check against the physical model.
            if self.multiport is not None:
                port = v % self.config.parallelism
                self.multiport.write(port, v, color)
            self.stats.cache_writes += 1
            cycles = 1
        else:
            self.memory.write(v, color)
            self.stats.dram_writes += 1
            channel = self.channels[pe_id]
            cycles = channel.write_block(self.memory.block_of(v))
            # A write invalidates any merged block holding this vertex.
            for pe in pes:
                pe.loader.invalidate(v)
        # Forward completion to the peers' conflict tables.
        for pe in pes:
            if pe.pe_id != pe_id:
                entry = pe.dct.entries.get(pe_id)
                if entry is not None and entry.vertex == v:
                    pe.dct.deliver_result(pe_id, task.color_bits)
                    self.stats.forwards += 1
        return cycles
