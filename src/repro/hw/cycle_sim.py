"""Cycle-stepped microsimulation of a single BWPE.

The main simulator (:mod:`repro.hw.accelerator`) accounts cycles at
vertex-task granularity.  This module steps one engine **cycle by
cycle** through explicit pipeline state — edge buffer refills, the
prune/conflict/fetch stages, an outstanding-request DRAM queue, the
OR-accumulator, and the finalize FSM — so the task-level accounting can
be cross-validated against a finer model (tests require agreement within
a tolerance band) and so pipeline behaviour can be inspected directly
(per-cycle occupancy histograms).

Scope: a single engine (the Fig 11 setting), all four optimization
flags.  Conflicts need multiple engines and stay in the event-driven
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from collections import deque

import numpy as np

from ..coloring.bitset import CascadedMuxCompressor, Num2BitTable, first_free_bits
from ..graph.csr import CSRGraph
from ..obs import get_registry
from .config import HWConfig, OptimizationFlags

__all__ = ["CyclePhase", "CycleStats", "CycleAccurateBWPE"]


class CyclePhase:
    """What the engine did in a cycle (occupancy histogram buckets)."""

    SETUP = "setup"
    PROCESS = "process"        # a neighbour moved through the pipeline
    EDGE_WAIT = "edge_wait"    # starved for edge data
    DRAM_WAIT = "dram_wait"    # stalled on a color read
    FINALIZE = "finalize"      # Stage 6–8 FSM
    IDLE = "idle"


# Dense phase ids for the hot loop: indexing a preallocated list beats
# hashing a string per simulated cycle.  Order defines the id.
_PHASE_NAMES = (
    CyclePhase.SETUP,
    CyclePhase.PROCESS,
    CyclePhase.EDGE_WAIT,
    CyclePhase.DRAM_WAIT,
    CyclePhase.FINALIZE,
    CyclePhase.IDLE,
)
_SETUP, _PROCESS, _EDGE_WAIT, _DRAM_WAIT, _FINALIZE, _IDLE = range(
    len(_PHASE_NAMES)
)


@dataclass
class CycleStats:
    cycles: int = 0
    by_phase: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_counts(cls, counts) -> "CycleStats":
        """Build from a dense per-phase-id count array (see ``_PHASE_NAMES``).

        The dict is materialised once here, holding only phases that
        actually occurred — same shape :meth:`bump` would have produced.
        """
        by_phase = {
            _PHASE_NAMES[i]: c for i, c in enumerate(counts) if c
        }
        return cls(cycles=sum(counts), by_phase=by_phase)

    def bump(self, phase: str) -> None:
        self.cycles += 1
        self.by_phase[phase] = self.by_phase.get(phase, 0) + 1

    def fraction(self, phase: str) -> float:
        return self.by_phase.get(phase, 0) / max(self.cycles, 1)


class _EdgeStream:
    """The ping-pong edge buffer: refills in 16-edge blocks.

    The first block of a task is assumed prefetched (the dispatcher
    hands the engine a running stream); later blocks arrive every
    ``dram_stream_cycles`` once requested.
    """

    def __init__(self, cfg: HWConfig, edges: np.ndarray):
        self.cfg = cfg
        self.pending = deque(int(v) for v in edges)
        self.available = min(len(self.pending), cfg.edges_per_block)
        self.refill_timer = 0

    def tick(self) -> None:
        if self.refill_timer > 0:
            self.refill_timer -= 1
            if self.refill_timer == 0:
                self.available = min(
                    self.available + self.cfg.edges_per_block, len(self.pending)
                )
        elif self.available < len(self.pending):
            self.refill_timer = self.cfg.dram_stream_cycles

    def pop(self) -> Optional[int]:
        if self.available > 0 and self.pending:
            self.available -= 1
            return self.pending.popleft()
        return None

    @property
    def exhausted(self) -> bool:
        return not self.pending

    def drop_remaining(self) -> int:
        n = len(self.pending)
        self.pending.clear()
        self.available = 0
        return n


class CycleAccurateBWPE:
    """Single-engine, cycle-stepped coloring run."""

    def __init__(
        self,
        config: Optional[HWConfig] = None,
        flags: Optional[OptimizationFlags] = None,
    ):
        self.config = config or HWConfig(parallelism=1)
        self.flags = flags or OptimizationFlags.all()

    def run(self, graph: CSRGraph) -> tuple:
        """Color ``graph``; returns ``(colors, CycleStats)``."""
        obs = get_registry()
        with obs.span(
            "hw.cycle_sim.run",
            vertices=graph.num_vertices,
            edges=graph.num_edges,
        ):
            colors, stats = self._run(graph)
        if obs.enabled:
            obs.record_span("hw.cycle_sim.cycles", 0, stats.cycles)
            obs.add("hw.cycle_sim.cycles", stats.cycles)
            for phase, count in sorted(stats.by_phase.items()):
                obs.add(f"hw.cycle_sim.phase.{phase}", count)
        return colors, stats

    def _run(self, graph: CSRGraph) -> tuple:
        cfg = self.config
        flags = self.flags
        n = graph.num_vertices
        v_t = cfg.v_t(n) if flags.hdc else 0
        colors = np.zeros(n, dtype=np.int64)
        num2bit = Num2BitTable(cfg.max_colors)
        compressor = CascadedMuxCompressor(cfg.max_colors)
        # Dense per-phase cycle counters; turned into CycleStats once at
        # the end (dict hashing per cycle dominated profiles before).
        counts = [0] * len(_PHASE_NAMES)
        last_block: Optional[int] = None
        max_color_seen = 1

        for v in range(n):
            # --- setup phase -------------------------------------------------
            counts[_SETUP] += cfg.task_setup_cycles
            stream = _EdgeStream(cfg, graph.neighbors(v))
            state = 0
            sorted_edges = graph.meta.get("edges_sorted", False)
            dram_wait = 0

            # --- traversal loop, one cycle per iteration ---------------------
            while True:
                if dram_wait > 0:
                    dram_wait -= 1
                    counts[_DRAM_WAIT] += 1
                    stream.tick()
                    continue
                if stream.exhausted:
                    break
                w = stream.pop()
                stream.tick()
                if w is None:
                    counts[_EDGE_WAIT] += 1
                    continue
                # Prune stage.
                if flags.puv and w > v:
                    counts[_PROCESS] += 1
                    if sorted_edges:
                        stream.drop_remaining()
                        break
                    continue
                # Fetch stage.
                if flags.hdc and w < v_t:
                    color = int(colors[w])
                    counts[_PROCESS] += 1
                else:
                    block = w // cfg.colors_per_block
                    if flags.mgr and block == last_block:
                        color = int(colors[w])
                        counts[_PROCESS] += 1
                    else:
                        color = int(colors[w])
                        last_block = block
                        counts[_PROCESS] += 1
                        dram_wait = cfg.dram_read_occupancy_cycles - 1
                # OR stage (same cycle as the pipeline slot).
                state |= num2bit.decompress(color)

            # --- finalize FSM -------------------------------------------------
            if flags.bwc:
                bits = first_free_bits(state)
                color = compressor.compress(bits)
                # AND-NOT cycle + compressor latency.
                counts[_FINALIZE] += 1 + compressor.LATENCY_CYCLES
            else:
                color = 1
                while state & (1 << (color - 1)):
                    color += 1
                counts[_FINALIZE] += color + max_color_seen
            max_color_seen = max(max_color_seen, color)
            colors[v] = color
            # Write-back.
            if flags.hdc and v < v_t:
                counts[_FINALIZE] += 1
            else:
                if last_block == v // cfg.colors_per_block:
                    last_block = None  # writer invalidates the merge buffer
                counts[_FINALIZE] += cfg.dram_write_cycles

        return colors, CycleStats.from_counts(counts)
