"""Task Dispatch Unit — degree-aware task scheduling (Section 4.6).

The unit owns:

* **HDV sub-FIFOs**, one per BWPE.  Vertex ``v < v_t`` is bound to BWPE
  ``v % P`` so that the bit-selection multi-port cache's write pattern
  (PE ``i`` writes addresses ``i, i+P, i+2P, …``) holds by construction.
* a shared **LDV FIFO** drained first-come-first-served by whichever
  BWPE idles first — LDV results go to DRAM, not the cache, so no port
  binding is needed and FCFS absorbs DRAM-latency imbalance.
* the **PE State Table (PST)**: per PE, the vertex in flight and a
  running flag, used to configure peer DCTs at task dispatch.

Scheduling invariant
--------------------
Tasks *start* in ascending vertex-ID order.  The offset fetcher pushes
vertices in ascending order and the paper's wave pattern (vertex ``kP+i``
on PE ``i``) keeps engines in step; this model makes the invariant
explicit because two of the paper's mechanisms are only correct under
it: PUV prunes neighbours with larger IDs assuming they cannot have been
colored yet, and the DCT resolves conflicts assuming the earlier vertex
completes logically first.  The cost of the invariant — a PE idling
until the preceding vertex has started — is exactly the scheduling/
conflict overhead that keeps the paper's P=16 speedup at 3.9–7.0× rather
than 16×.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from .config import HWConfig

__all__ = [
    "PEState",
    "PEStateTable",
    "TaskDispatchUnit",
    "DispatchStats",
    "static_pe_binding",
]


def static_pe_binding(num_vertices: int, v_t: int, parallelism: int):
    """The dispatch plan that is static under ascending-ID dispatch.

    Returns a ``numpy`` int64 array of length ``num_vertices``: vertex
    ``v < v_t`` is bound to PE ``v % P`` (the HDV port-binding rule),
    every LDV entry is ``-1`` ("first idle PE" — a timing property only
    the schedule recurrence can resolve).  This is the part of
    :class:`TaskDispatchUnit` the batched engine can precompute for a
    whole epoch; the FIFO model above exists to *check* that the real
    unit respects it.
    """
    import numpy as np

    pe = np.full(num_vertices, -1, dtype=np.int64)
    bound = min(max(v_t, 0), num_vertices)
    if bound > 0:
        pe[:bound] = np.arange(bound, dtype=np.int64) % parallelism
    return pe


@dataclass
class PEState:
    """One row of the PE State Table."""

    pe_id: int
    vertex: Optional[int] = None
    running: bool = False
    seq: int = -1


class PEStateTable:
    """Tracks what every BWPE is working on."""

    def __init__(self, num_pes: int):
        self.rows = [PEState(pe_id=i) for i in range(num_pes)]

    def start(self, pe: int, vertex: int, seq: int) -> None:
        row = self.rows[pe]
        if row.running:
            raise RuntimeError(f"PE {pe} already running vertex {row.vertex}")
        row.vertex, row.running, row.seq = vertex, True, seq

    def complete(self, pe: int) -> None:
        row = self.rows[pe]
        if not row.running:
            raise RuntimeError(f"PE {pe} is not running")
        row.vertex, row.running, row.seq = None, False, -1

    def running_tasks(self) -> List[Tuple[int, int, int]]:
        """``(pe, vertex, seq)`` for every busy PE."""
        return [
            (r.pe_id, r.vertex, r.seq) for r in self.rows if r.running
        ]

    def idle_pes(self) -> List[int]:
        return [r.pe_id for r in self.rows if not r.running]


@dataclass
class DispatchStats:
    hdv_tasks: int = 0
    ldv_tasks: int = 0
    offset_fetches: int = 0
    max_hdv_fifo_depth: int = 0
    max_ldv_fifo_depth: int = 0


class TaskDispatchUnit:
    """Degree-aware scheduler feeding the BWPEs.

    The accelerator's event loop drives it with :meth:`next_task`, which
    returns the next vertex and its target PE, honouring the ascending-
    start invariant and the HDV port binding.
    """

    def __init__(self, config: HWConfig, num_vertices: int, v_t: int):
        self.config = config
        self.num_vertices = num_vertices
        self.v_t = v_t
        self.pst = PEStateTable(config.parallelism)
        self.stats = DispatchStats()
        # The offset fetcher streams vertices in ascending order; modelled
        # as a cursor plus the FIFOs it fills.
        self._cursor = 0
        self._hdv_fifos: List[Deque[int]] = [
            deque() for _ in range(config.parallelism)
        ]
        self._ldv_fifo: Deque[int] = deque()
        self._dispatched = 0

    # ------------------------------------------------------------------
    # Offset fetch (fills FIFOs in ascending vertex order)
    # ------------------------------------------------------------------
    def _fill(self, upto: int) -> None:
        """Fetch offsets and enqueue vertices up to (and incl.) ``upto``."""
        while self._cursor <= upto and self._cursor < self.num_vertices:
            v = self._cursor
            self.stats.offset_fetches += 1
            if v < self.v_t:
                fifo = self._hdv_fifos[v % self.config.parallelism]
                fifo.append(v)
                self.stats.max_hdv_fifo_depth = max(
                    self.stats.max_hdv_fifo_depth, len(fifo)
                )
            else:
                self._ldv_fifo.append(v)
                self.stats.max_ldv_fifo_depth = max(
                    self.stats.max_ldv_fifo_depth, len(self._ldv_fifo)
                )
            self._cursor += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._dispatched >= self.num_vertices

    def peek_next_vertex(self) -> Optional[int]:
        """The next vertex to start (ascending invariant)."""
        if self.exhausted:
            return None
        return self._dispatched

    def next_task(self) -> Optional[Tuple[int, int]]:
        """``(vertex, pe)`` for the next dispatch, or None when done.

        HDVs go to their bound PE; LDVs report PE ``-1``, meaning
        "first idle PE" — the event loop resolves which one that is,
        because idleness is a timing property the dispatcher model does
        not own.
        """
        v = self.peek_next_vertex()
        if v is None:
            return None
        self._fill(v)
        if v < self.v_t:
            fifo = self._hdv_fifos[v % self.config.parallelism]
            assert fifo and fifo[0] == v, "HDV FIFO order violated"
            fifo.popleft()
            self.stats.hdv_tasks += 1
            pe = v % self.config.parallelism
        else:
            assert self._ldv_fifo and self._ldv_fifo[0] == v, "LDV FIFO order violated"
            self._ldv_fifo.popleft()
            self.stats.ldv_tasks += 1
            pe = -1
        self._dispatched += 1
        return v, pe
