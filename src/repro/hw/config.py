"""Hardware configuration for the BitColor accelerator model.

All cycle costs and capacities live here, so calibration happens in one
place.  Defaults correspond to the paper's deployment (Section 5.1.1):
Alveo U200, 1 MB color cache per instance (512 K vertices of 16-bit
colors), 1024 colors max, 512-bit DRAM blocks, frequency above 200 MHz.

Cycle-cost calibration notes
----------------------------
``dram_latency_cycles`` is the full random-access latency of an off-chip
DDR4 read as seen by the kernel clock (row activation + controller +
AXI), a few tens of cycles at 200 MHz.  ``dram_stream_cycles`` is the
per-block cost of a sequential burst once a stream is open.  These two
constants (not per-graph tuning) set the compute/memory balance that
drives Figures 11–13.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["HWConfig", "OptimizationFlags", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class OptimizationFlags:
    """The four optimization toggles of the Fig 11 ablation.

    * ``hdc`` — high-degree vertex cache: color reads/writes of vertices
      below ``v_t`` go to on-chip BRAM instead of DRAM.
    * ``bwc`` — bit-wise coloring: Stage 1 is one cycle of bit logic
      (plus the 3-cycle compressor) instead of a flag-array traversal.
    * ``mgr`` — merge DRAM reads: consecutive LDV color reads that hit
      the same 512-bit block reuse the last response (needs sorted edges).
    * ``puv`` — prune uncolored vertices: neighbours with a larger vertex
      ID than the current vertex are skipped (needs DBG ordering); with
      sorted edges, the first pruned neighbour prunes the rest.
    """

    hdc: bool = True
    bwc: bool = True
    mgr: bool = True
    puv: bool = True

    @classmethod
    def none(cls) -> "OptimizationFlags":
        """Baseline (BSL): every optimization off."""
        return cls(hdc=False, bwc=False, mgr=False, puv=False)

    @classmethod
    def all(cls) -> "OptimizationFlags":
        return cls()

    def label(self) -> str:
        parts = [
            name.upper()
            for name in ("hdc", "bwc", "mgr", "puv")
            if getattr(self, name)
        ]
        return "+".join(parts) if parts else "BSL"


@dataclass(frozen=True)
class HWConfig:
    """Static configuration of one BitColor instance."""

    # Parallelism and clocking -----------------------------------------
    parallelism: int = 16
    """Number of BWPEs (P).  The paper's BRAM budget caps it at 16."""

    frequency_mhz: float = 212.0
    """Kernel clock; the paper reports >200 MHz at every parallelism."""

    # Color representation ---------------------------------------------
    max_colors: int = 1024
    color_bits: int = 16
    """Stored width of a compressed color number (10 bits used of 16)."""

    # On-chip memory -----------------------------------------------------
    cache_bytes: int = 1 << 20
    """Capacity of the HDV color cache (single-copy data size)."""

    # Off-chip memory ----------------------------------------------------
    mem_profile: str = "ddr4-u200"
    """Name of the memory profile these ``dram_*`` values describe (see
    :mod:`repro.hw.mem`).  The default field values below *are* the
    ``ddr4-u200`` profile; ``repro.hw.mem.profile_config(name)`` builds
    a config for any registered profile.  The label travels with the
    config so results can be attributed to a board class."""

    dram_block_bits: int = 512
    dram_latency_cycles: int = 36
    """Random-access latency of one 512-bit block read (pipeline fill)."""

    dram_read_occupancy_cycles: int = 10
    """Effective per-block cost of a random read in steady state: the
    Color Loader (Figure 9) is a pipeline with multiple outstanding
    requests, so consecutive misses overlap their latency and each read
    costs its bandwidth slot plus controller overhead, not the full
    random-access latency."""

    dram_stream_cycles: int = 4
    """Per-block cost inside an open sequential burst."""

    dram_write_cycles: int = 2
    """Posted-write occupancy per LDV color update (no stall)."""

    cache_hit_cycles: int = 1

    dram_physical_channels: int = 4
    """Physical DDR4 channels on the U200.  Each BWPE gets a *logical*
    channel, but at P > 4 several logical channels share one physical
    channel's bandwidth — the main reason Figure 12's scaling is
    sublinear on memory-bound graphs."""

    dispatch_interval_cycles: int = 3
    """Minimum cycles between consecutive task dispatches: the Task
    Dispatch Unit's offset fetch, PST update and parameter transfer are a
    shared serial pipeline."""

    # Pipeline constants --------------------------------------------------
    compressor_cycles: int = 3
    """Latency of the Figure 4 cascaded-mux compressor."""

    conflict_or_cycles: int = 1
    """Parallel OR over the data-conflict-table color row (Step 6)."""

    task_setup_cycles: int = 4
    """Dispatcher → BWPE parameter load (v_src, s_e, d_e, DCT config)."""

    edge_buffer_blocks: int = 2
    """Ping-pong edge buffer depth, in DRAM blocks."""

    edge_index_bits: int = 32

    # Derived quantities --------------------------------------------------
    @property
    def colors_per_block(self) -> int:
        """How many color words one DRAM block holds (paper: 512/16 = 32)."""
        return self.dram_block_bits // self.color_bits

    @property
    def edges_per_block(self) -> int:
        """How many edge indices one DRAM block holds (512/32 = 16)."""
        return self.dram_block_bits // self.edge_index_bits

    @property
    def cache_capacity_vertices(self) -> int:
        """How many vertices' colors fit in the HDV cache (paper: 512 K)."""
        return self.cache_bytes // (self.color_bits // 8)

    def v_t(self, num_vertices: int) -> int:
        """HDV threshold for a graph of the given size."""
        return min(num_vertices, self.cache_capacity_vertices)

    def with_parallelism(self, p: int) -> "HWConfig":
        if p < 1:
            raise ValueError("parallelism must be >= 1")
        return replace(self, parallelism=p)

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.dram_block_bits % self.color_bits:
            raise ValueError("color width must divide the DRAM block width")
        if self.max_colors < 1:
            raise ValueError("max_colors must be positive")
        # Deferred import: ``repro.hw.mem`` imports this module back for
        # ``profile_config``; profiles.py itself is dependency-free.
        from .mem.profiles import PROFILE_NAMES

        if self.mem_profile not in PROFILE_NAMES:
            raise ValueError(
                f"unknown memory profile {self.mem_profile!r}; "
                f"expected one of {PROFILE_NAMES}"
            )


DEFAULT_CONFIG = HWConfig()
