"""Hardware model of the BitColor accelerator (functional + cycle-approximate)."""

from . import mem
from .accelerator import AcceleratorResult, AcceleratorStats, BitColorAccelerator
from .batched import DEFAULT_EPOCH_TASKS, run_batched
from .bwpe import BWPE, TaskExecution, finalize_cycles
from .cache import CacheStats, HDVColorCache
from .color_loader import ColorLoader, LoaderStats
from .config import DEFAULT_CONFIG, HWConfig, OptimizationFlags
from .conflict import (
    ConflictProtocolError,
    DataConflictTable,
    DCTEntry,
    conflict_candidates,
)
from .dispatcher import (
    DispatchStats,
    PEState,
    PEStateTable,
    TaskDispatchUnit,
    static_pe_binding,
)
from .dram import ColorMemory, DRAMChannel, DRAMStats
from .multiport import (
    BRAM_BLOCK_BITS,
    BitSelectMultiPortCache,
    LVTMultiPortCache,
    MultiPortCacheModel,
    PortViolation,
    bram_blocks_needed,
)
from .resources import (
    ResourceReport,
    U200,
    deployed_cache_bytes,
    estimate_resources,
    multiport_bram_comparison,
)
from .energy import DEFAULT_POWER, PlatformPower, energy_joules, kcv_per_joule
from .trace import (
    ExecutionTrace,
    TaskTrace,
    critical_path,
    pe_utilization,
    render_gantt,
)
from .cycle_sim import CycleAccurateBWPE, CyclePhase, CycleStats
from .mis_engine import BitwiseMISAccelerator, MISEngineResult, greedy_mis
from .writer import Writer, WriterStats

__all__ = [
    "mem",
    "AcceleratorResult",
    "AcceleratorStats",
    "BitColorAccelerator",
    "DEFAULT_EPOCH_TASKS",
    "run_batched",
    "BWPE",
    "TaskExecution",
    "finalize_cycles",
    "conflict_candidates",
    "static_pe_binding",
    "CacheStats",
    "HDVColorCache",
    "ColorLoader",
    "LoaderStats",
    "DEFAULT_CONFIG",
    "HWConfig",
    "OptimizationFlags",
    "ConflictProtocolError",
    "DataConflictTable",
    "DCTEntry",
    "DispatchStats",
    "PEState",
    "PEStateTable",
    "TaskDispatchUnit",
    "ColorMemory",
    "DRAMChannel",
    "DRAMStats",
    "BRAM_BLOCK_BITS",
    "BitSelectMultiPortCache",
    "LVTMultiPortCache",
    "MultiPortCacheModel",
    "PortViolation",
    "bram_blocks_needed",
    "ResourceReport",
    "U200",
    "deployed_cache_bytes",
    "estimate_resources",
    "multiport_bram_comparison",
    "DEFAULT_POWER",
    "PlatformPower",
    "energy_joules",
    "kcv_per_joule",
    "Writer",
    "WriterStats",
    "BitwiseMISAccelerator",
    "MISEngineResult",
    "greedy_mis",
    "CycleAccurateBWPE",
    "CyclePhase",
    "CycleStats",
    "ExecutionTrace",
    "TaskTrace",
    "critical_path",
    "pe_utilization",
    "render_gantt",
]
