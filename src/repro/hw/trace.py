"""Execution tracing for the accelerator simulator.

``BitColorAccelerator.run(graph, trace=True)`` attaches a
:class:`ExecutionTrace` to the result: one :class:`TaskTrace` per vertex
with start/finish cycles, the owning PE, and the stall/queue breakdown.
This module turns that into engineering views:

* :func:`pe_utilization` — busy fraction per PE over the makespan;
* :func:`render_gantt` — a text Gantt chart of PE occupancy;
* :func:`critical_path` — the dependency chain (conflict deferrals +
  PE serialization) that determines the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["TaskTrace", "ExecutionTrace", "pe_utilization", "render_gantt", "critical_path"]


@dataclass(frozen=True)
class TaskTrace:
    """Timing record of one vertex task."""

    vertex: int
    pe: int
    start: int
    finish: int
    stall: int
    queue_delay: int
    deferred_on: tuple
    """Vertices whose results this task waited for (conflict partners)."""

    @property
    def duration(self) -> int:
        return self.finish - self.start


@dataclass
class ExecutionTrace:
    tasks: List[TaskTrace] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        return max((t.finish for t in self.tasks), default=0)

    def by_pe(self) -> Dict[int, List[TaskTrace]]:
        out: Dict[int, List[TaskTrace]] = {}
        for t in self.tasks:
            out.setdefault(t.pe, []).append(t)
        for tasks in out.values():
            tasks.sort(key=lambda t: t.start)
        return out

    def task_of(self, vertex: int) -> Optional[TaskTrace]:
        for t in self.tasks:
            if t.vertex == vertex:
                return t
        return None

    def to_span_records(self, *, name: str = "hw.task") -> List:
        """The trace as cycle-clock :class:`repro.obs.SpanRecord` rows.

        One span per task, so a JSON-lines export holds simulated cycle
        intervals next to wall-clock spans in the same schema.
        """
        from ..obs.bridge import trace_to_records

        return trace_to_records(self, name=name)


def pe_utilization(trace: ExecutionTrace) -> Dict[int, float]:
    """Busy-cycle fraction per PE over the whole makespan."""
    span = max(trace.makespan, 1)
    return {
        pe: sum(t.duration for t in tasks) / span
        for pe, tasks in sorted(trace.by_pe().items())
    }


def render_gantt(trace: ExecutionTrace, *, width: int = 80) -> str:
    """Text Gantt chart: one row per PE, '#' busy, '.' idle.

    Each column is ``makespan / width`` cycles; a column is busy when any
    task on that PE overlaps it.
    """
    span = trace.makespan
    if span == 0:
        return "(empty trace)"
    lines = []
    for pe, tasks in sorted(trace.by_pe().items()):
        cells = ["."] * width
        for t in tasks:
            lo = min(width - 1, t.start * width // span)
            hi = min(width - 1, max(lo, (t.finish - 1) * width // span))
            for i in range(lo, hi + 1):
                cells[i] = "#"
        util = sum(t.duration for t in tasks) / span
        lines.append(f"PE{pe:>2} |{''.join(cells)}| {100 * util:5.1f}%")
    lines.append(f"      0{' ' * (width - len(str(span)) - 1)}{span} cycles")
    return "\n".join(lines)


def critical_path(trace: ExecutionTrace) -> List[TaskTrace]:
    """The chain of tasks ending at the last finisher, following whichever
    constraint bound each task: its conflict dependency or its PE's
    previous task."""
    if not trace.tasks:
        return []
    by_vertex = {t.vertex: t for t in trace.tasks}
    by_pe = trace.by_pe()
    prev_on_pe: Dict[int, Optional[TaskTrace]] = {}
    for pe, tasks in by_pe.items():
        prev = None
        for t in tasks:
            prev_on_pe[t.vertex] = prev
            prev = t

    path = [max(trace.tasks, key=lambda t: t.finish)]
    while True:
        cur = path[-1]
        # Which constraint bound this task's start/stall?
        candidates: List[TaskTrace] = []
        if cur.stall > 0 and cur.deferred_on:
            candidates.extend(
                by_vertex[v] for v in cur.deferred_on if v in by_vertex
            )
        prev = prev_on_pe.get(cur.vertex)
        if prev is not None:
            candidates.append(prev)
        candidates = [c for c in candidates if c.finish <= cur.finish and c is not cur]
        if not candidates:
            break
        path.append(max(candidates, key=lambda t: t.finish))
    path.reverse()
    return path
