"""Per-request graph features, cached by canonical CSR fingerprint.

Routing needs a handful of cheap structural statistics — vertex/edge
counts, degree skew, density — for every unpinned job.  Computing them
is one pass over the degree array, but the service sees the same graphs
over and over (the whole premise of the result cache), so even that pass
is wasted work after the first sight.  :class:`GraphStatsCache` keys the
computed :class:`GraphFeatures` on :func:`repro.graph.csr_fingerprint`
— the exact key the result cache uses, so the two caches age together
and a graph the service has colored is *never* re-scanned just to be
routed.

The feature set is deliberately tiny and deliberately the same one the
scenario sweep records (:mod:`repro.experiments.scenario_sweep`): the
fitted decision surface (:mod:`repro.service.decision`) is trained on
measured points described by these features, so whatever the router can
observe at request time is exactly what the model was fitted on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import Registry, get_registry

__all__ = [
    "FEATURE_NAMES",
    "GraphFeatures",
    "GraphStatsCache",
]

FEATURE_NAMES: Tuple[str, ...] = (
    "log2_vertices",
    "log2_edges",
    "degree_skew",
    "density",
)
"""Feature vector layout shared by the stats cache, the scenario sweep
table, and the fitted decision model.  Sizes enter in log space (latency
scales multiplicatively with them); skew and density are already
dimensionless ratios."""


@dataclass(frozen=True)
class GraphFeatures:
    """The routing-relevant shape of one graph."""

    num_vertices: int
    num_edges: int
    """Directed edge slots (each undirected edge counted twice), matching
    :attr:`repro.graph.csr.CSRGraph.num_edges`."""
    max_degree: int
    mean_degree: float
    degree_skew: float
    """Max-to-mean degree ratio (0 for edgeless graphs) — the same
    statistic the hand-set ``skew_threshold`` compares against."""
    density: float
    """``mean_degree / (num_vertices - 1)``: fraction of possible
    neighbours the average vertex actually has (0 for trivial graphs)."""

    @classmethod
    def compute(cls, graph: CSRGraph) -> "GraphFeatures":
        n = graph.num_vertices
        m = graph.num_edges
        if n == 0 or m == 0:
            return cls(n, m, 0, 0.0, 0.0, 0.0)
        mean = m / n
        return cls(
            num_vertices=n,
            num_edges=m,
            max_degree=graph.max_degree(),
            mean_degree=mean,
            degree_skew=graph.max_degree() / mean,
            density=mean / (n - 1) if n > 1 else 0.0,
        )

    def vector(self) -> np.ndarray:
        """The features in :data:`FEATURE_NAMES` order (float64)."""
        return np.array(
            [
                np.log2(self.num_vertices + 1),
                np.log2(self.num_edges + 1),
                self.degree_skew,
                self.density,
            ],
            dtype=np.float64,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "degree_skew": self.degree_skew,
            "density": self.density,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "GraphFeatures":
        return cls(
            num_vertices=int(d["num_vertices"]),
            num_edges=int(d["num_edges"]),
            max_degree=int(d["max_degree"]),
            mean_degree=float(d["mean_degree"]),
            degree_skew=float(d["degree_skew"]),
            density=float(d["density"]),
        )


class GraphStatsCache:
    """Thread-safe LRU of :class:`GraphFeatures`, keyed on fingerprint.

    Hits and misses feed the ``router.stats_cache.{hits,misses}``
    counters of whatever registry the caller passes (the service passes
    its own), so a routing path that silently re-scans CSRs shows up in
    the ``/healthz`` snapshot instead of only in a profile.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, GraphFeatures]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self, graph: CSRGraph, *, registry: Optional[Registry] = None
    ) -> GraphFeatures:
        """Features for ``graph``, computed at most once per fingerprint.

        The fingerprint itself is memoised on the graph object (and is
        already computed by the result-cache key path for cacheable
        jobs), so a warm request performs no CSR scan at all.
        """
        reg = registry if registry is not None else get_registry()
        key = graph.fingerprint()
        with self._lock:
            features = self._entries.get(key)
            if features is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                reg.add("router.stats_cache.hits")
                return features
            self.misses += 1
        reg.add("router.stats_cache.misses")
        features = GraphFeatures.compute(graph)
        with self._lock:
            self._entries[key] = features
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return features

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop the entry for one graph (session-lane mutation hook)."""
        with self._lock:
            if fingerprint in self._entries:
                del self._entries[fingerprint]
                return 1
        return 0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
