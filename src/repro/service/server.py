"""Asyncio socket front-end over :class:`~repro.service.service.ColoringService`.

The server listens on a **Unix domain socket** (local by construction —
no TCP surface) and speaks the length-prefixed JSON protocol of
:mod:`repro.service.protocol`.  Each connection is one asyncio task;
many requests may be in flight per connection and across connections,
because the blocking submit-and-wait against the in-process service runs
in the event loop's thread pool — the loop itself only frames bytes.

Embedding options, outermost first:

* :func:`serve` — build a service, bind the socket, run until
  interrupted, then drain and shut down.  This is the CLI's
  ``repro serve`` verb.
* :class:`ServiceServer` with :meth:`ServiceServer.run_in_thread` — a
  running server on a background thread, for tests and applications
  that embed serving next to other work.
* :class:`ServiceServer` ``start``/``stop`` coroutines for callers with
  their own event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import struct
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .jobs import JobRequest, ServiceError
from .protocol import (
    MAX_FRAME_BYTES,
    decode_graph,
    error_to_wire,
    result_to_wire,
)
from .service import ColoringService, ServiceConfig

__all__ = ["ServiceServer", "serve"]

_LEN = struct.Struct(">I")


class ServiceServer:
    """One Unix-socket listener bound to one :class:`ColoringService`."""

    def __init__(
        self,
        service: ColoringService,
        socket_path: Union[str, Path],
        *,
        owns_service: bool = False,
    ):
        self.service = service
        self.socket_path = Path(socket_path)
        self.owns_service = owns_service
        """Whether :meth:`stop` also closes (drains) the service."""
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("server already started")
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )
        self._started.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        if self.owns_service:
            # Drain in a worker thread: close() blocks on in-flight jobs.
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.close
            )
        self._started.clear()

    # ------------------------------------------------------------------
    # Threaded lifecycle (tests, embedding)
    # ------------------------------------------------------------------
    def run_in_thread(self, *, timeout: float = 10.0) -> "ServiceServer":
        """Start the server on a dedicated event-loop thread; returns self."""

        def runner() -> None:
            asyncio.run(self._run_until_stopped())

        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=runner, name="repro-service-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceError(
                f"server did not bind {self.socket_path} within {timeout}s"
            )
        return self

    async def _run_until_stopped(self) -> None:
        self._stop_event = asyncio.Event()
        await self.start()
        await self._stop_event.wait()
        await self.stop()

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Stop a threaded server: unbind, optionally drain, join."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServiceError("server thread did not stop in time")
        self._thread = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_LEN.size)
                except asyncio.IncompleteReadError:
                    break  # clean EOF
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME_BYTES:
                    await self._send(
                        writer,
                        {
                            "ok": False,
                            "error": {
                                "type": "ServiceError",
                                "message": "frame exceeds protocol cap",
                            },
                        },
                    )
                    break
                body = await reader.readexactly(length)
                response = await self._dispatch(json.loads(body.decode()))
                await self._send(writer, response)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        writer.write(_LEN.pack(len(body)) + body)
        await writer.drain()

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "status":
                return {"ok": True, "status": self.service.status()}
            if op == "color":
                return await self._handle_color(message)
            raise ServiceError(f"unknown op {op!r}")
        except BaseException as exc:  # every failure becomes a frame
            return {"ok": False, "error": error_to_wire(exc)}

    async def _handle_color(self, message: Dict[str, Any]) -> Dict[str, Any]:
        graph = None
        if message.get("graph") is not None:
            graph = decode_graph(message["graph"])
        request = JobRequest(
            graph=graph,
            dataset=message.get("dataset"),
            algorithm=message.get("algorithm", "bitwise"),
            backend=message.get("backend"),
            engine=message.get("engine"),
            opts=dict(message.get("opts") or {}),
            priority=int(message.get("priority", 0)),
            client_id=str(message.get("client_id", "socket")),
            timeout_s=message.get("timeout_s"),
        )
        loop = asyncio.get_running_loop()

        def submit_and_wait():
            job = self.service.submit(request)  # RetryAfter propagates
            return job.result_or_raise()

        result = await loop.run_in_executor(None, submit_and_wait)
        return {"ok": True, "result": result_to_wire(result)}


def serve(
    socket_path: Union[str, Path],
    config: Optional[ServiceConfig] = None,
    *,
    service: Optional[ColoringService] = None,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run a coloring service on ``socket_path`` until interrupted.

    Builds a fresh :class:`ColoringService` from ``config`` (or adopts
    ``service``), binds the socket, and blocks.  ``SIGINT``/``SIGTERM``
    (or :meth:`ServiceServer.shutdown` from another thread) trigger the
    clean path: stop accepting, drain queued and in-flight jobs, close
    the service.  SIGTERM matters operationally: supervisors (systemd,
    CI) send it, and processes backgrounded by non-interactive shells
    inherit SIGINT ignored, so ctrl-C semantics alone are not enough.
    ``ready`` is set once the socket is bound (used by embedding tests
    to know when to connect).
    """
    owns = service is None
    svc = service if service is not None else ColoringService(config)
    server = ServiceServer(svc, socket_path, owns_service=owns)

    async def main() -> None:
        server._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, server._stop_event.set)
        await server.start()
        if ready is not None:
            ready.set()
        try:
            await server._stop_event.wait()
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            # Swallowing a cancel leaves the task in a cancelling state
            # where every further await re-raises; undo it so the clean
            # stop (drain!) below can actually run its awaits.
            task = asyncio.current_task()
            if task is not None and hasattr(task, "uncancel"):
                task.uncancel()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        if owns:
            svc.close()
