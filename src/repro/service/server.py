"""Asyncio socket front-end over :class:`~repro.service.service.ColoringService`.

The server listens on a **Unix domain socket** (local by construction —
no TCP surface) and speaks the length-prefixed JSON protocol of
:mod:`repro.service.protocol`.  Each connection is one asyncio task;
many requests may be in flight per connection and across connections,
because the blocking submit-and-wait against the in-process service runs
in the event loop's thread pool — the loop itself only frames bytes.

Embedding options, outermost first:

* :func:`serve` — build a service, bind the socket, run until
  interrupted, then drain and shut down.  This is the CLI's
  ``repro serve`` verb.
* :class:`ServiceServer` with :meth:`ServiceServer.run_in_thread` — a
  running server on a background thread, for tests and applications
  that embed serving next to other work.
* :class:`ServiceServer` ``start``/``stop`` coroutines for callers with
  their own event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import struct
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .jobs import ServiceError
from .protocol import (
    MAX_FRAME_BYTES,
    apply_outcome_to_wire,
    decode_edge_pairs,
    encode_colors,
    error_to_wire,
    request_from_wire,
    result_to_wire,
    session_info_to_wire,
)
from .service import ColoringService, ServiceConfig

__all__ = ["ServiceServer", "serve"]

_LEN = struct.Struct(">I")


class ServiceServer:
    """One Unix-socket listener bound to one :class:`ColoringService`."""

    def __init__(
        self,
        service: ColoringService,
        socket_path: Union[str, Path],
        *,
        owns_service: bool = False,
    ):
        self.service = service
        self.socket_path = Path(socket_path)
        self.owns_service = owns_service
        """Whether :meth:`stop` also closes (drains) the service."""
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("server already started")
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )
        self._started.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        if self.owns_service:
            # Drain in a worker thread: close() blocks on in-flight jobs.
            await asyncio.get_running_loop().run_in_executor(
                None, self.service.close
            )
        self._started.clear()

    # ------------------------------------------------------------------
    # Threaded lifecycle (tests, embedding)
    # ------------------------------------------------------------------
    def run_in_thread(self, *, timeout: float = 10.0) -> "ServiceServer":
        """Start the server on a dedicated event-loop thread; returns self."""

        def runner() -> None:
            asyncio.run(self._run_until_stopped())

        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=runner, name="repro-service-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceError(
                f"server did not bind {self.socket_path} within {timeout}s"
            )
        return self

    async def _run_until_stopped(self) -> None:
        self._stop_event = asyncio.Event()
        await self.start()
        await self._stop_event.wait()
        await self.stop()

    def shutdown(self, *, timeout: float = 30.0) -> None:
        """Stop a threaded server: unbind, optionally drain, join."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServiceError("server thread did not stop in time")
        self._thread = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_LEN.size)
                except asyncio.IncompleteReadError:
                    break  # clean EOF
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME_BYTES:
                    await self._send(
                        writer,
                        {
                            "ok": False,
                            "error": {
                                "type": "ServiceError",
                                "message": "frame exceeds protocol cap",
                            },
                        },
                    )
                    break
                body = await reader.readexactly(length)
                response = await self._dispatch(json.loads(body.decode()))
                await self._send(writer, response)
        except asyncio.CancelledError:
            # Loop teardown cancels handlers whose peer (e.g. a mesh
            # router's pooled link) is still connected at shutdown; end
            # quietly instead of logging a cancellation traceback.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        writer.write(_LEN.pack(len(body)) + body)
        await writer.drain()

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "status":
                return {"ok": True, "status": self.service.status()}
            if op == "color":
                return await self._handle_color(message)
            if op == "session.register":
                return await self._handle_session_register(message)
            if op == "session.apply":
                return await self._handle_session_apply(message)
            if op == "session.verify":
                session_id = str(message.get("session_id", ""))
                summary = await self._offload(
                    self.service.sessions.verify, session_id
                )
                return {"ok": True, "verify": summary}
            if op == "session.colors":
                session_id = str(message.get("session_id", ""))
                colors = await self._offload(
                    self.service.sessions.colors, session_id
                )
                return {"ok": True, "colors_i64": encode_colors(colors)}
            if op == "session.describe":
                session_id = str(message.get("session_id", ""))
                info = await self._offload(
                    self.service.sessions.describe, session_id
                )
                return {"ok": True, "session": info}
            if op == "session.close":
                session_id = str(message.get("session_id", ""))
                await self._offload(self.service.sessions.close, session_id)
                return {"ok": True, "closed": session_id}
            if op == "shard.color":
                return await self._handle_shard_color(message)
            if op == "shard.repair":
                return await self._handle_shard_repair(message)
            if op == "shard.release":
                return await self._handle_shard_release()
            raise ServiceError(f"unknown op {op!r}")
        except BaseException as exc:  # every failure becomes a frame
            return {"ok": False, "error": error_to_wire(exc)}

    async def _offload(self, fn, *args):
        """Run blocking service work on the loop's default thread pool —
        never on the loop itself, which only frames bytes."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    async def _handle_color(self, message: Dict[str, Any]) -> Dict[str, Any]:
        request = request_from_wire(message)

        def submit_and_wait():
            job = self.service.submit(request)  # RetryAfter propagates
            return job.result_or_raise()

        result = await self._offload(submit_and_wait)
        return {"ok": True, "result": result_to_wire(result)}

    async def _handle_session_register(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        # Reuse the color-envelope decoding (graph/dataset, algorithm,
        # backend, opts) — register's knobs are a superset of color's.
        request = request_from_wire(message)

        def do_register():
            return self.service.sessions.register(
                request.graph,
                dataset=request.dataset,
                algorithm=request.algorithm,
                backend=request.backend,
                client_id=request.client_id,
                timeout_s=request.timeout_s,
                **request.opts,
            )

        info = await self._offload(do_register)
        return {"ok": True, "session": session_info_to_wire(info)}

    # ------------------------------------------------------------------
    # Mesh shard ops: this worker's lane onto a shared-memory graph.
    # The graph and the colors vector both live in named shared-memory
    # blocks owned by the mesh router; only block names, shard indices
    # and (tiny) ready lists cross the socket.  Every op is idempotent —
    # shard coloring and ready-set recoloring are pure functions of
    # phase-start state writing disjoint slots — so the router may replay
    # an op on another worker after a death without corrupting anything.
    # ------------------------------------------------------------------
    async def _handle_shard_color(self, message: Dict[str, Any]) -> Dict[str, Any]:
        def work():
            from ..parallel.coloring import color_shard
            from ..parallel.shm import attach_array, attach_graph
            from .protocol import shard_spec_from_wire

            spec = shard_spec_from_wire(message["spec"])
            graph = attach_graph(spec)
            colors = attach_array(
                str(message["colors_name"]), spec.num_vertices
            )
            shards = [int(s) for s in message.get("shards", [])]
            for shard in shards:
                vertices, shard_colors = color_shard(
                    graph,
                    shard,
                    int(message["num_shards"]),
                    strategy=str(message.get("strategy", "range")),
                    prune_uncolored=bool(message.get("prune", False)),
                )
                colors[vertices] = shard_colors
            return {"shards": shards}

        return {"ok": True, "shard": await self._offload(work)}

    async def _handle_shard_repair(self, message: Dict[str, Any]) -> Dict[str, Any]:
        def work():
            from ..parallel.coloring import recolor_first_free
            from ..parallel.shm import attach_array, attach_graph
            from .protocol import decode_colors, shard_spec_from_wire

            spec = shard_spec_from_wire(message["spec"])
            graph = attach_graph(spec)
            colors = attach_array(
                str(message["colors_name"]), spec.num_vertices
            )
            ready = decode_colors(message.get("ready_i64", ""))
            recolor_first_free(graph, colors, ready)
            return {"repaired": int(ready.size)}

        return {"ok": True, "shard": await self._offload(work)}

    async def _handle_shard_release(self) -> Dict[str, Any]:
        def work():
            from ..parallel.shm import detach_all

            return {"released": detach_all()}

        return {"ok": True, "shard": await self._offload(work)}

    async def _handle_session_apply(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        session_id = str(message.get("session_id", ""))
        additions = decode_edge_pairs(message.get("additions_i64", ""))
        removals = decode_edge_pairs(message.get("removals_i64", ""))
        add_vertices = int(message.get("add_vertices", 0))

        def do_apply():
            return self.service.sessions.apply(
                session_id,
                additions=additions,
                removals=removals,
                add_vertices=add_vertices,
            )

        outcome = await self._offload(do_apply)
        return {"ok": True, "apply": apply_outcome_to_wire(outcome)}


def serve(
    socket_path: Union[str, Path],
    config: Optional[ServiceConfig] = None,
    *,
    service: Optional[ColoringService] = None,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run a coloring service on ``socket_path`` until interrupted.

    Builds a fresh :class:`ColoringService` from ``config`` (or adopts
    ``service``), binds the socket, and blocks.  ``SIGINT``/``SIGTERM``
    (or :meth:`ServiceServer.shutdown` from another thread) trigger the
    clean path: stop accepting, drain queued and in-flight jobs, close
    the service.  SIGTERM matters operationally: supervisors (systemd,
    CI) send it, and processes backgrounded by non-interactive shells
    inherit SIGINT ignored, so ctrl-C semantics alone are not enough.
    ``ready`` is set once the socket is bound (used by embedding tests
    to know when to connect).
    """
    owns = service is None
    svc = service if service is not None else ColoringService(config)
    server = ServiceServer(svc, socket_path, owns_service=owns)

    async def main() -> None:
        server._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(sig, server._stop_event.set)
        await server.start()
        if ready is not None:
            ready.set()
        try:
            await server._stop_event.wait()
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            # Swallowing a cancel leaves the task in a cancelling state
            # where every further await re-raises; undo it so the clean
            # stop (drain!) below can actually run its awaits.
            task = asyncio.current_task()
            if task is not None and hasattr(task, "uncancel"):
                task.uncancel()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        if owns:
            svc.close()
