"""Backend routing: which execution lane should a job take?

The router turns one job (plus its resolved graph) into a
:class:`RouteDecision`:

* a **pinned** job — the caller named a backend and/or engine — keeps it
  verbatim: parity with a direct :func:`repro.color` call is the
  contract, so routing never overrides an explicit choice (small pinned
  ``vectorized``/``python`` bitwise jobs may still ride a micro-batch,
  which is color-identical by construction);
* an unpinned **small** job goes to the micro-batch lane, where the
  batcher coalesces it with its queue neighbours into one vectorized
  kernel invocation; the size threshold is the **per-tier micro-batch
  crossover** (:data:`MICROBATCH_CROSSOVER`) — when the compiled native
  kernel tier is available, small jobs stop paying NumPy dispatch
  overhead, so the crossover drops and more jobs run solo on the
  native tier instead of waiting for batch companions;
* an unpinned **large** job is routed by degree skew, following how the
  backends actually behave on the two graph families the paper
  evaluates: power-law graphs (high skew) shard well, so they go to
  ``backend="parallel"`` and reuse the persistent process pool across
  requests; regular low-skew graphs (roads, grids) go to the
  accelerator model's epoch-batched engine, whose DRAM merging thrives
  on sorted bounded-degree adjacency.

The size/skew thresholds above are the **documented fallback**.  When
the router is constructed with a fitted
:class:`~repro.service.decision.DecisionModel` (trained on the
scenario-sweep table — see :mod:`repro.experiments.scenario_sweep` and
``docs/autotune.md``), every unpinned bitwise job is instead routed to
the backend the model predicts fastest for the graph's measured
features, restricted to
:data:`~repro.service.decision.PARITY_NEUTRAL_BACKENDS` so the choice
can never change the colors.  The features come from a
fingerprint-keyed :class:`~repro.service.stats.GraphStatsCache`, so a
graph the service has seen is never re-scanned just to be routed.  Any
failure along the fitted path (stats unavailable, model missing the
algorithm's backends) falls back to the constant thresholds with a
warn-once event and a ``router.fallback`` counter — never silently.

The router also owns the **degradation ladder** the executor climbs
down when a backend keeps failing: ``parallel → vectorized → python``
(and ``hw → vectorized``, ``native → vectorized``), each rung trading
speed for a simpler, more isolated execution path that cannot be broken
by pool workers dying.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

from ..coloring.registry import get_algorithm
from ..graph.csr import CSRGraph
from ..obs import Registry, get_registry
from .batcher import batch_key
from .decision import PARITY_NEUTRAL_BACKENDS, DecisionModel
from .jobs import JobRequest
from .stats import GraphFeatures, GraphStatsCache

__all__ = [
    "DEGRADATION_LADDER",
    "MICROBATCH_CROSSOVER",
    "RouteDecision",
    "Router",
    "next_rung",
    "preferred_software_tier",
]

DEGRADATION_LADDER = {
    "parallel": "vectorized",
    "hw": "vectorized",
    "native": "vectorized",
    "vectorized": "python",
}
"""``backend -> next rung`` when a backend repeatedly fails; ``python``
(absent) is the floor — the pure in-process reference loop."""

MICROBATCH_CROSSOVER = {
    "python": 256,
    "vectorized": 2048,
    "native": 512,
}
"""Micro-batch crossover (max vertices) per software kernel tier: below
it, an unpinned job is worth coalescing with queue companions; above it,
a solo kernel invocation amortises its own dispatch overhead.  Measured
on the kernel bench smoke graphs: the native tier's per-call overhead is
a fraction of NumPy dispatch, so its crossover sits ~4x lower — exactly
the tier's rationale (small jobs stop paying dispatch overhead)."""


def preferred_software_tier() -> str:
    """The software tier the router prefers for unpinned jobs.

    ``"native"`` when the compiled kernel tier's capability probe
    succeeds, else ``"vectorized"`` (detection is cached after the first
    call).
    """
    from ..kernels import preferred_tier

    return preferred_tier()


def next_rung(backend: Optional[str]) -> Optional[str]:
    """The fallback backend one rung down, or None at the floor."""
    if backend is None:
        return None
    return DEGRADATION_LADDER.get(backend)


@dataclass(frozen=True)
class RouteDecision:
    """Where one job executes."""

    lane: str
    """``"batch"`` (micro-batch coalescing) or ``"direct"``."""
    backend: Optional[str]
    engine: Optional[str]
    reason: str
    batch_key: Optional[tuple] = None
    """Coalescing key for the batch lane (jobs with equal keys may share
    one kernel invocation); None on the direct lane."""

    @property
    def label(self) -> str:
        parts = [self.lane]
        if self.backend:
            parts.append(f"backend={self.backend}")
        if self.engine:
            parts.append(f"engine={self.engine}")
        parts.append(self.reason)
        return " ".join(parts)


class Router:
    """Size/skew routing heuristics (thresholds are service config).

    ``software_tier`` is the kernel tier unpinned software jobs run on
    (``"native"`` when available, else ``"vectorized"`` — see
    :func:`preferred_software_tier`); it also selects the micro-batch
    crossover from :data:`MICROBATCH_CROSSOVER` when ``small_vertices``
    is left at None.

    When ``decision`` carries a fitted
    :class:`~repro.service.decision.DecisionModel`, unpinned bitwise
    jobs take the fitted path instead of the thresholds (see the module
    docstring); the thresholds stay as the documented fallback and keep
    governing every other job.
    """

    def __init__(
        self,
        *,
        small_vertices: Optional[int] = None,
        large_vertices: int = 50_000,
        skew_threshold: float = 8.0,
        batching: bool = True,
        software_tier: Optional[str] = None,
        decision: Optional[DecisionModel] = None,
        stats_cache: Optional[GraphStatsCache] = None,
        registry: Optional[Registry] = None,
    ):
        self.software_tier = software_tier or preferred_software_tier()
        if self.software_tier not in MICROBATCH_CROSSOVER:
            raise ValueError(
                f"unknown software tier {self.software_tier!r}; "
                f"known: {', '.join(MICROBATCH_CROSSOVER)}"
            )
        self.small_vertices = (
            small_vertices
            if small_vertices is not None
            else MICROBATCH_CROSSOVER[self.software_tier]
        )
        self.large_vertices = large_vertices
        self.skew_threshold = skew_threshold
        self.batching = batching
        self.decision = decision
        self.stats_cache = stats_cache if stats_cache is not None else GraphStatsCache()
        self._registry = registry
        self._warned: set = set()

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------
    def _reg(self) -> Registry:
        return self._registry if self._registry is not None else get_registry()

    def features(self, graph: CSRGraph) -> GraphFeatures:
        """Routing features for ``graph``, via the fingerprint-keyed
        stats cache (computed at most once per distinct graph)."""
        return self.stats_cache.get(graph, registry=self._registry)

    def _fallback(self, reason: str) -> None:
        """Record one constant-threshold fallback; warn once per reason."""
        self._reg().add("router.fallback")
        if reason not in self._warned:
            self._warned.add(reason)
            warnings.warn(
                f"router.fallback reason={reason!r}: routing with the "
                "hand-set thresholds for this and similar requests",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, request: JobRequest, graph: CSRGraph) -> RouteDecision:
        spec = get_algorithm(request.algorithm)
        pinned = request.backend is not None or request.engine is not None
        backend = request.backend or spec.default_backend
        # Unpinned jobs whose spec default is the vectorized tier ride
        # the preferred software tier instead (pinned choices are kept
        # verbatim — parity with a direct repro.color call).
        if (
            request.backend is None
            and backend == "vectorized"
            and self.software_tier in spec.backends
        ):
            backend = self.software_tier
        engine = request.engine

        key = (
            batch_key(request, graph, default_backend=self.software_tier)
            if self.batching
            else None
        )
        if not pinned and self.decision is not None:
            # Fitted routing applies only where the sweep measured:
            # bitwise kernels.  Other algorithms keep the constant
            # policy (their backends were never timed by the table).
            if request.algorithm == "bitwise":
                fitted = self._route_fitted(graph, spec, key, backend)
                if fitted is not None:
                    return fitted
        if key is not None and graph.num_vertices <= self.small_vertices:
            reason = "(pinned, batchable)" if pinned else "(small)"
            return RouteDecision(
                lane="batch",
                backend=backend,
                engine=None,
                reason=reason,
                batch_key=key,
            )
        if pinned:
            return RouteDecision(
                lane="direct", backend=backend, engine=engine, reason="(pinned)"
            )
        if (
            graph.num_vertices >= self.large_vertices
            and "parallel" in spec.backends
        ):
            if self.features(graph).degree_skew >= self.skew_threshold:
                return RouteDecision(
                    lane="direct",
                    backend="parallel",
                    engine=None,
                    reason="(large, skewed)",
                )
            if "hw" in spec.backends:
                return RouteDecision(
                    lane="direct",
                    backend="hw",
                    engine="batched",
                    reason="(large, regular)",
                )
        return RouteDecision(
            lane="direct", backend=backend, engine=None, reason="(default)"
        )

    def _route_fitted(
        self,
        graph: CSRGraph,
        spec,
        key: Optional[tuple],
        tier_backend: str,
    ) -> Optional[RouteDecision]:
        """The fitted decision for one unpinned bitwise job.

        Returns None (after recording the fallback) when the fitted path
        cannot answer — the caller then applies the constant thresholds.
        Candidates are restricted to the parity-neutral backends: the
        fitted surface changes which engine runs, never the colors.
        """
        try:
            features = self.features(graph)
        except Exception as exc:  # stats failure must never kill routing
            self._fallback(f"stats unavailable ({type(exc).__name__})")
            return None
        candidates: List[str] = [
            b for b in spec.backends if b in PARITY_NEUTRAL_BACKENDS
        ]
        if key is not None:
            candidates.append("microbatch")
        try:
            pick = self.decision.choose(features, available=candidates)
        except (KeyError, ValueError):
            self._fallback("no fitted backend for request")
            return None
        self._reg().add("router.fitted")
        if pick == "microbatch":
            return RouteDecision(
                lane="batch",
                backend=tier_backend,
                engine=None,
                reason="(fitted, microbatch)",
                batch_key=key,
            )
        if pick == "hw":
            # The sweep measures the accelerator model's epoch-batched
            # engine; the event engine is never an autotuned target.
            return RouteDecision(
                lane="direct", backend="hw", engine="batched", reason="(fitted)"
            )
        return RouteDecision(
            lane="direct", backend=pick, engine=None, reason="(fitted)"
        )
