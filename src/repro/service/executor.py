"""Fault-tolerant execution: retries, backoff, and the degradation ladder.

One attempt is one :func:`repro.color` call.  Around it this module
wraps the service's survival rules:

* **retry with exponential backoff** — a dead pool worker, a broken
  shared-memory segment, or an injected fault fails one attempt, not the
  job; the next attempt waits ``backoff_base_s * 2**k`` (capped);
* **degradation ladder** — every failure is charged against the backend
  that ran it; once a backend accumulates ``failure_threshold``
  *consecutive* failures the service stops trusting it and walks the
  job (and subsequent jobs) down :data:`~repro.service.router.DEGRADATION_LADDER`
  — ``parallel → vectorized → python`` — trading speed for isolation.
  One success resets the backend's count: transient incidents heal;
* **deadline checks** — between attempts; an attempt itself is never
  preempted (NumPy kernels are not interruptible), so a timeout fires at
  the next seam.

The ``fault_hook`` config is the chaos harness: called before every
attempt with ``(request, attempt)``; raising from it simulates a worker
dying mid-job.  The robustness tests drive it directly.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import Registry
from .jobs import JobFailed, JobRequest, JobTimeout
from .router import next_rung

__all__ = ["BACKEND_ONLY_OPTS", "BackendHealth", "Executor"]

BACKEND_ONLY_OPTS: Dict[str, Tuple[str, ...]] = {
    "parallel": ("workers", "num_shards", "partition"),
    "hw": (
        "config", "parallelism", "flags", "trace", "engine", "epoch_size",
        "replay",
    ),
    "native": ("native_strict",),
}
"""Options only one backend understands.  A degraded job must not leak
them to the rung that actually runs (the vectorized kernel rejects
``workers=``, the hw model rejects nothing silently, etc.)."""


class BackendHealth:
    """Consecutive-failure bookkeeping per backend rung."""

    def __init__(self, failure_threshold: int = 3):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self._failures: Dict[str, int] = {}
        self._lock = threading.Lock()

    def record_failure(self, backend: Optional[str]) -> int:
        if backend is None:
            return 0
        with self._lock:
            count = self._failures.get(backend, 0) + 1
            self._failures[backend] = count
            return count

    def record_success(self, backend: Optional[str]) -> None:
        if backend is None:
            return
        with self._lock:
            self._failures.pop(backend, None)

    def broken(self, backend: Optional[str]) -> bool:
        if backend is None:
            return False
        with self._lock:
            return self._failures.get(backend, 0) >= self.failure_threshold

    def effective(self, backend: Optional[str]) -> Optional[str]:
        """``backend`` or the first non-broken rung below it."""
        seen = set()
        while backend is not None and self.broken(backend):
            if backend in seen:  # defensive: ladder is acyclic by shape
                break
            seen.add(backend)
            lower = next_rung(backend)
            if lower is None:
                break
            backend = lower
        return backend

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._failures)


class Executor:
    """Runs one request to completion through retries and degradation."""

    def __init__(
        self,
        *,
        registry: Registry,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        failure_threshold: int = 3,
        fault_hook: Optional[Callable[[JobRequest, int], None]] = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.registry = registry
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.health = BackendHealth(failure_threshold)
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------
    def run_request(
        self,
        request: JobRequest,
        graph: CSRGraph,
        backend: Optional[str],
        engine: Optional[str],
        *,
        deadline: Optional[float] = None,
    ) -> Tuple[np.ndarray, int, Optional[str], Optional[str], int]:
        """Execute with retries; ``(colors, n_colors, backend, engine, attempts)``.

        ``backend``/``engine`` are the routed choice; what actually ran is
        returned (degradation may have moved the job down the ladder).
        Raises :class:`JobTimeout` past the deadline, :class:`JobFailed`
        when every attempt is spent.
        """
        from ..api import color as repro_color

        reg = self.registry
        last_error: Optional[BaseException] = None
        run_backend = self.health.effective(backend)
        if run_backend != backend:
            self._count_degraded(backend, run_backend)
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {request.job_id} deadline passed before attempt "
                    f"{attempt} ({request.algorithm})"
                )
            run_engine = engine if run_backend == "hw" else None
            opts = dict(request.opts)
            for owner, names in BACKEND_ONLY_OPTS.items():
                if run_backend != owner:
                    for name in names:
                        opts.pop(name, None)
            if run_engine is not None:
                opts["engine"] = run_engine
            try:
                with reg.span(
                    "service.attempt",
                    job=request.job_id,
                    attempt=attempt,
                    algorithm=request.algorithm,
                    backend=run_backend or "",
                ):
                    if self.fault_hook is not None:
                        self.fault_hook(request, attempt)
                    out = repro_color(
                        graph, request.algorithm, backend=run_backend, **opts
                    )
            except (JobTimeout,):
                raise
            except Exception as exc:  # one attempt down, not the job
                last_error = exc
                failures = self.health.record_failure(run_backend)
                reg.add("service.attempt_failures")
                if attempt >= self.max_attempts:
                    break
                reg.add("service.retries")
                fallback = self.health.effective(run_backend)
                if fallback != run_backend:
                    self._count_degraded(run_backend, fallback)
                    run_backend = fallback
                self._backoff(attempt)
                continue
            self.health.record_success(run_backend)
            return out.colors, out.n_colors, run_backend, run_engine, attempt
        raise JobFailed(
            f"job {request.job_id} failed after {self.max_attempts} attempts "
            f"(last backend {run_backend!r}): {last_error!r}"
        )

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        delay = min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_cap_s)
        if delay > 0:
            time.sleep(delay)

    def _count_degraded(
        self, frm: Optional[str], to: Optional[str]
    ) -> None:
        self.registry.add("service.degraded")
        self.registry.add(f"service.degraded.{frm or 'none'}_to_{to or 'none'}")
